#!/usr/bin/env python3
"""Scenario 2 of the paper's introduction: new information about the
workload — star schema vs snowflake schema.

A data warehouse starts with a denormalized star schema: a Sales fact
table and one wide Product dimension embedding its category.  When the
workload becomes update-heavy, the category is split out (star ->
snowflake, a DECOMPOSE).  When it turns query-heavy again — "most
queries look for addresses given skills", as the paper puts it — the
dimension is folded back (snowflake -> star, a MERGE).

CODS makes flipping between the two cheap enough to do routinely.

Run:  python examples/warehouse_star_snowflake.py [sales_rows]
"""

import sys
import time

from repro import EvolutionEngine
from repro.workload import SalesStarWorkload


def show(engine: EvolutionEngine) -> None:
    print("    current schema:")
    for line in engine.catalog.describe().splitlines():
        print("       ", line)


def main() -> None:
    n_sales = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    workload = SalesStarWorkload(
        n_sales, n_products=500, n_categories=40, seed=7
    )
    sales, products = workload.build()

    engine = EvolutionEngine()
    engine.load_table(sales)
    engine.load_table(products)

    print(f"Star schema loaded: Sales({n_sales:,} rows) + "
          f"Product({products.nrows} rows, category embedded)")
    show(engine)

    # Workload turns update-heavy -> normalize (star -> snowflake).
    print("\n-> workload became update-heavy: DECOMPOSE the dimension")
    started = time.perf_counter()
    status = engine.apply(workload.snowflake_op())
    print(f"    {1e3 * (time.perf_counter() - started):8.1f} ms   "
          f"{status.summary()}")
    show(engine)
    category = engine.table("Category")
    print(f"    Category: {category.nrows} rows "
          f"{category.sorted_rows()[:3]} …")

    # Workload turns query-heavy -> denormalize (snowflake -> star).
    print("\n-> workload became query-heavy: MERGE the category back")
    started = time.perf_counter()
    status = engine.apply(workload.star_op())
    print(f"    {1e3 * (time.perf_counter() - started):8.1f} ms   "
          f"{status.summary()}")
    show(engine)

    # The fact table was never touched by either evolution.
    assert engine.table("Sales").same_content(sales, ordered=True)
    assert engine.table("Product").same_content(products)
    print("\nRound-trip verified: Product is bit-identical to the "
          "original; Sales was never touched.")
    print("Schema history:")
    for line in engine.history.describe().splitlines():
        print("   ", line)


if __name__ == "__main__":
    main()
