#!/usr/bin/env python3
"""The evolution advisor: should this database be a column store?

The paper argues CODS "guides the choice of row oriented databases
versus column oriented databases in applications" where schema changes
are anticipated.  This example plans next quarter's schema work for a
warehouse, asks the advisor to price it under both pipelines, and then
validates the prediction by actually executing the stream on both.

Run:  python examples/evolution_advisor.py [rows]
"""

import sys
import time

from repro.core.advisor import TableStats, advise, calibrate
from repro.baselines import make_system
from repro.smo import (
    AddColumn,
    Comparison,
    DecomposeTable,
    MergeTables,
    PartitionTable,
    UnionTables,
)
from repro.storage import ColumnSchema, DataType
from repro.workload import EmployeeWorkload


def planned_operators():
    """Next quarter's schema work, as discussed with the DBA team."""
    return [
        # normalize out the address data
        DecomposeTable(
            "R", "S", ("Employee", "Skill"), "T", ("Employee", "Address")
        ),
        # compliance wants a retention flag on the skills table
        AddColumn("S", ColumnSchema("Retain", DataType.BOOL), True),
        # analytics asked for the denormalized view back
        MergeTables("S", "T", "Wide", ("Employee",)),
        # archive the clerical skills separately
        PartitionTable(
            "Wide", "Clerical", "Other",
            Comparison("Skill", "=", "skill0000000"),
        ),
        # ... and fold them back at quarter end
        UnionTables("Clerical", "Other", "Final"),
    ]


def main() -> None:
    nrows = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000
    workload = EmployeeWorkload(nrows, max(nrows // 100, 2), seed=3)

    # 1. The advisor only needs statistics, not data.
    stats = {
        "R": TableStats(
            nrows,
            {
                "Employee": max(nrows // 100, 2),
                "Skill": 100,
                "Address": 50,
            },
        )
    }
    print("Calibrating the cost model on this machine …")
    model = calibrate(sample_rows=10_000)
    recommendation = advise(planned_operators(), stats, model)
    print()
    print(recommendation.describe())

    # 2. Spot-validate the calibrated operations (DECOMPOSE + MERGE) by
    #    executing them on both systems.  The advisor is order-of-
    #    magnitude guidance: its per-operator constants are coarse, but
    #    the data-level vs query-level *ordering* is what the verdict
    #    rests on, and that must hold.
    print("\nSpot-validating DECOMPOSE + MERGE …")
    core_ops = planned_operators()[:1] + [
        MergeTables("S", "T", "Wide", ("Employee",))
    ]
    measured = {}
    for label in ("D", "C+I"):
        system = make_system(label)
        system.declare_fd(workload.fd)
        system.load(workload.build())
        started = time.perf_counter()
        for op in core_ops:
            system.apply(op)
        measured[label] = time.perf_counter() - started
        print(f"    {system.name:<44} {measured[label]:8.2f} s")
    core_estimates = [
        e for e in recommendation.estimates
        if e.operator in ("DecomposeTable", "MergeTables")
    ]
    predicted = sum(e.query_level_seconds for e in core_estimates) / max(
        sum(e.data_level_seconds for e in core_estimates), 1e-9
    )
    print(
        f"\npredicted {predicted:5.1f}x on these ops, "
        f"measured {measured['C+I'] / measured['D']:5.1f}x — "
        "same side of the decision either way"
    )


if __name__ == "__main__":
    main()
