#!/usr/bin/env python3
"""A Wikipedia-style evolution history: many versions, replayed.

The paper motivates CODS with databases that evolve constantly ("the
Wikipedia database has had more than 170 versions in the past 5
years").  This example drives a long randomized stream of schema
modification operators through the engine, records the PRISM-style
history, persists the final catalog, and then replays the whole history
onto a fresh engine to verify the evolution is deterministic.

Run:  python examples/schema_history_replay.py [versions]
"""

import random
import sys
import tempfile
from pathlib import Path

from repro import (
    AddColumn,
    ColumnSchema,
    CopyTable,
    DataType,
    DropColumn,
    DropTable,
    EvolutionEngine,
    RenameColumn,
    RenameTable,
    UnionTables,
)
from repro.smo import Comparison, PartitionTable
from repro.storage import load_catalog, save_catalog
from repro.workload import EmployeeWorkload


def random_operator(engine: EvolutionEngine, rng: random.Random, step: int):
    """Pick an applicable operator for the current catalog state."""
    names = engine.catalog.table_names()
    table_name = rng.choice(names)
    table = engine.table(table_name)
    choices = ["copy", "rename_table", "add_column"]
    if len(table.schema.columns) > 2:
        choices += ["drop_column", "rename_column"]
    if table.nrows > 10:
        choices.append("partition")
    if len(names) > 3:
        choices.append("drop")

    kind = rng.choice(choices)
    if kind == "copy":
        return CopyTable(table_name, f"t{step}_copy")
    if kind == "rename_table":
        return RenameTable(table_name, f"t{step}_renamed")
    if kind == "add_column":
        return AddColumn(
            table_name,
            ColumnSchema(f"col{step}", DataType.INT),
            rng.randrange(10),
        )
    if kind == "drop_column":
        droppable = [
            c.name
            for c in table.schema.columns[1:]
            if c.name not in table.schema.primary_key
        ]
        return DropColumn(table_name, rng.choice(droppable))
    if kind == "rename_column":
        column = rng.choice(table.schema.columns[1:]).name
        return RenameColumn(table_name, column, f"{column}_v{step}")
    if kind == "partition":
        first = table.schema.columns[0]
        value = table.column(first.name).dictionary.value(0)
        return PartitionTable(
            table_name,
            f"t{step}_a",
            f"t{step}_b",
            Comparison(first.name, "=", value),
        )
    return DropTable(table_name)


def main() -> None:
    versions = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    rng = random.Random(170)

    base = EmployeeWorkload(5_000, 200, seed=170).build()
    engine = EvolutionEngine()
    engine.load_table(base)

    print(f"Evolving through {versions} schema versions …")
    applied = 0
    while applied < versions:
        op = random_operator(engine, rng, applied)
        try:
            engine.apply(op)
        except Exception:
            continue  # operator raced an earlier rename; pick another
        applied += 1
        # Occasionally fold partitions back so tables keep growing.
        names = engine.catalog.table_names()
        pairs = [
            (a, b)
            for a in names
            for b in names
            if a < b
            and engine.table(a).schema.compatible_with(
                engine.table(b).schema
            )
        ]
        if pairs and rng.random() < 0.3 and applied < versions:
            a, b = rng.choice(pairs)
            engine.apply(UnionTables(a, b, f"t{applied}_union"))
            applied += 1

    print(f"Final catalog ({len(engine.catalog.table_names())} tables, "
          f"version {engine.catalog.version}):")
    for line in engine.catalog.describe().splitlines()[:8]:
        print("   ", line)
    print(f"    … history has {len(engine.history)} operators")

    # Persist and reload the evolved catalog.
    with tempfile.TemporaryDirectory() as tmp:
        save_catalog(engine.catalog, Path(tmp) / "evolved")
        reloaded = load_catalog(Path(tmp) / "evolved")
        assert reloaded.table_names() == engine.catalog.table_names()
    print("Catalog persisted and reloaded (compressed bitmaps verbatim).")

    # Replay the recorded history on a fresh engine.
    fresh = EvolutionEngine()
    fresh.load_table(base)
    engine.history.replay(fresh)
    assert fresh.catalog.table_names() == engine.catalog.table_names()
    for name in engine.catalog.table_names():
        assert fresh.table(name).same_content(engine.table(name))
    print(f"History replay reproduced all "
          f"{len(engine.catalog.table_names())} tables exactly.")


if __name__ == "__main__":
    main()
