#!/usr/bin/env python3
"""Online updates: the write path over the read-optimized store.

The CODS store keeps every column as WAH-compressed per-value bitmaps —
great for scans and evolution, terrible for point writes.  This
walkthrough shows the `repro.delta` answer: DML lands in a per-table
write buffer, reads merge both sides at query time, compaction folds
the buffer into fresh compressed columns, and schema evolution on a
table with pending writes flushes the buffer automatically.

Run:  python examples/online_updates.py
"""

import tempfile
from pathlib import Path

from repro import (
    CompactionPolicy,
    DataType,
    EvolutionEngine,
    MutableColumnAdapter,
    SqlExecutor,
    table_from_python,
)
from repro.smo.predicate import Comparison
from repro.storage import load_engine, save_engine


def build_r():
    """The paper's Figure 1 table R(Employee, Skill, Address)."""
    return table_from_python(
        "R",
        {
            "Employee": (
                DataType.STRING,
                ["Jones", "Jones", "Roberts", "Ellis", "Jones", "Ellis",
                 "Harrison"],
            ),
            "Skill": (
                DataType.STRING,
                ["Typing", "Shorthand", "Light Cleaning", "Alchemy",
                 "Whittling", "Juggling", "Light Cleaning"],
            ),
            "Address": (
                DataType.STRING,
                ["425 Grant Ave", "425 Grant Ave", "747 Industrial Way",
                 "747 Industrial Way", "425 Grant Ave",
                 "747 Industrial Way", "425 Grant Ave"],
            ),
        },
    )


def main() -> None:
    print("=" * 64)
    print("CODS online updates — main/delta write path")
    print("=" * 64)

    # 1. DML through the engine's mutable handle.
    engine = EvolutionEngine()
    engine.load_table(build_r())
    mutable = engine.mutable("R", CompactionPolicy.never())
    mutable.insert(("Smith", "Welding", "12 Elm St"))
    mutable.update({"Skill": "Filing"}, Comparison("Employee", "=", "Ellis"))
    mutable.delete(Comparison("Employee", "=", "Jones"))
    stats = mutable.delta_stats()
    print(f"\nAfter DML: {stats.as_dict()}")
    print("Merged read (main + delta at query time):")
    for row in mutable.to_rows():
        print("   ", row)

    # 2. Schema evolution on a table with pending writes: the engine
    #    flushes the delta first and records it in the status log.
    status = engine.apply_sql_like(
        "DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)"
    )
    print(f"\nDECOMPOSE flushed {status.delta_rows_flushed} delta row(s):")
    for event in status.events:
        print(f"    [{event.step}] {event.detail}")
    print("S =", engine.table("S").to_rows())

    # 3. The same DML through SQL, on the delta-backed adapter.
    executor = SqlExecutor(MutableColumnAdapter(engine))
    executor.execute("INSERT INTO S VALUES ('Nguyen', 'Poetry')")
    executor.execute("UPDATE S SET Skill = 'Sonnets' "
                     "WHERE Employee = 'Nguyen'")
    executor.execute("DELETE FROM S WHERE Skill = 'Filing'")
    print("\nAfter SQL DML, SELECT * FROM S:")
    for row in executor.execute("SELECT * FROM S"):
        print("   ", row)

    # 4. Compaction produces a pure-WAH table again.
    table = engine.mutable("S").compact()
    print(f"\nCompacted S: {table.nrows} rows, codecs "
          f"{sorted({table.column(n).codec_name for n in table.column_names})}")

    # 5. Delta state survives a save/load round trip.
    engine.mutable("T", CompactionPolicy.never()).insert(
        ("Nguyen", "1 Verse Blvd")
    )
    with tempfile.TemporaryDirectory() as directory:
        save_engine(engine, directory)
        sidecars = sorted(p.name for p in Path(directory).glob("*.delta"))
        print(f"\nSaved engine; delta sidecars on disk: {sidecars}")
        restored = load_engine(directory, CompactionPolicy.never())
        print("Restored merged T:",
              restored.mutable("T").to_rows())


if __name__ == "__main__":
    main()
