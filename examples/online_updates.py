#!/usr/bin/env python3
"""Online updates: the write path behind the `repro.db` façade.

The CODS store keeps every column as WAH-compressed per-value bitmaps —
great for scans and evolution, terrible for point writes.  This
walkthrough shows the `repro.delta` answer through its serving surface:
SQL DML lands in per-table write buffers, reads merge both sides at
query time, whole-catalog transactions pin a frozen epoch vector,
compaction folds the buffer into fresh compressed columns, and the
catalog (buffers included) survives a save/load round trip.

Run:  python examples/online_updates.py
"""

import tempfile

from repro import CompactionPolicy, DataType, table_from_python
from repro.db import Database
from repro.smo.predicate import Comparison


def build_r():
    """The paper's Figure 1 table R(Employee, Skill, Address)."""
    return table_from_python(
        "R",
        {
            "Employee": (
                DataType.STRING,
                ["Jones", "Jones", "Roberts", "Ellis", "Jones", "Ellis",
                 "Harrison"],
            ),
            "Skill": (
                DataType.STRING,
                ["Typing", "Shorthand", "Light Cleaning", "Alchemy",
                 "Whittling", "Juggling", "Light Cleaning"],
            ),
            "Address": (
                DataType.STRING,
                ["425 Grant Ave", "425 Grant Ave", "747 Industrial Way",
                 "747 Industrial Way", "425 Grant Ave",
                 "747 Industrial Way", "425 Grant Ave"],
            ),
        },
    )


def main() -> None:
    print("=" * 64)
    print("CODS online updates — main/delta write path via repro.db")
    print("=" * 64)

    # 1. SQL DML through the façade: every write lands in R's delta
    #    buffer, never in the compressed columns.
    db = Database(policy=CompactionPolicy.never())
    db.load_table(build_r())
    db.execute("INSERT INTO R VALUES (?, ?, ?)",
               ("Smith", "Welding", "12 Elm St"))
    db.execute("UPDATE R SET Skill = 'Filing' WHERE Employee = 'Ellis'")
    db.execute("DELETE FROM R WHERE Employee = 'Jones'")
    stats = db.delta_stats()[0]
    print(f"\nAfter DML: {stats.as_dict()}")
    print("Merged read (main + delta at query time):")
    for row in db.execute("SELECT * FROM R"):
        print("   ", row)

    # 2. Schema evolution *through the same execute()*: the engine
    #    flushes R's delta first and records it in the status log.
    status = db.execute(
        "DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)"
    )
    print(f"\nDECOMPOSE flushed {status.delta_rows_flushed} delta row(s):")
    for event in status.events:
        print(f"    [{event.step}] {event.detail}")
    print("S =", db.execute("SELECT * FROM S"))

    # 3. A read-write transaction: reads pin the whole catalog, writes
    #    apply to the scope's overlay (read-your-writes) and replay
    #    against live state at commit (roll back on an exception).
    with db.transaction() as tx:
        frozen = tx.execute("SELECT * FROM S")
        tx.execute("INSERT INTO S VALUES ('Nguyen', 'Poetry')")
        tx.execute("UPDATE S SET Skill = 'Sonnets' "
                   "WHERE Employee = 'Nguyen'")
        # The scope sees its own writes ...
        assert tx.execute("SELECT * FROM S") == frozen + [
            ("Nguyen", "Sonnets")
        ]
        # ... while other sessions read live state until commit.
        assert db.execute("SELECT * FROM S") == frozen
    print("\nAfter the transaction committed, SELECT * FROM S:")
    for row in db.execute("SELECT * FROM S"):
        print("   ", row)

    # 4. Compaction produces a pure-WAH table again.
    table = db.compact("S")
    print(f"\nCompacted S: {table.nrows} rows, codecs "
          f"{sorted({table.column(n).codec_name for n in table.column_names})}")

    # 5. Delta state survives a save/load round trip of the whole
    #    catalog directory.
    db.execute("INSERT INTO T VALUES ('Nguyen', '1 Verse Blvd')")
    with tempfile.TemporaryDirectory() as directory:
        db.save(directory)
        restored = Database(directory, policy=CompactionPolicy.never())
        print(f"\nSaved and reopened from {directory!r}")
        print("Restored merged T:",
              restored.execute("SELECT * FROM T WHERE Employee = 'Nguyen'"))
        print("Restored delta stats:",
              [s.as_dict() for s in restored.delta_stats()])

    # The lower-level handles remain available underneath the façade:
    mutable = db.engine.mutable("T")
    mutable.delete(Comparison("Employee", "=", "Nguyen"))
    print("\nDirect MutableTable delete still works:",
          db.execute("SELECT * FROM T WHERE Employee = 'Nguyen'"))


if __name__ == "__main__":
    main()
