#!/usr/bin/env python3
"""Scenario 1 of the paper's introduction: new information about the data.

A growing HR table starts as R(Employee, Skill).  Later, addresses
emerge (ADD COLUMN), and once it becomes clear employees have multiple
skills, the table is decomposed to remove redundancy and update
anomalies — then workload changes pull it back together (MERGE).

This example runs at a realistic scale (100 000 rows by default) and
prints data-level vs query-level timings for each evolution step.

Run:  python examples/employee_skills.py [rows]
"""

import sys
import time

from repro import (
    EvolutionEngine,
    MergeTables,
    make_system,
    parse_smo,
)
from repro.workload import EmployeeWorkload


def main() -> None:
    nrows = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000
    n_employees = max(nrows // 100, 2)
    workload = EmployeeWorkload(nrows, n_employees, seed=42)

    print(f"Building R(Employee, Skill, Address): {nrows:,} rows, "
          f"{n_employees:,} distinct employees …")
    table = workload.build()

    # --- data level ------------------------------------------------------
    engine = EvolutionEngine(extra_fds=[workload.fd])
    engine.load_table(table)

    print("\n[data level] DECOMPOSE R -> S(Employee, Skill), "
          "T(Employee, Address)")
    started = time.perf_counter()
    status = engine.apply(workload.decompose_op())
    decompose_seconds = time.perf_counter() - started
    print(f"    {decompose_seconds * 1e3:8.1f} ms   "
          f"counters: {status.summary()}")
    print(f"    S: {engine.table('S').nrows:,} rows (columns reused), "
          f"T: {engine.table('T').nrows:,} rows (deduplicated)")

    print("\n[data level] MERGE S, T -> R (workload became query-heavy)")
    started = time.perf_counter()
    status = engine.apply(MergeTables("S", "T", "R", ("Employee",)))
    merge_seconds = time.perf_counter() - started
    print(f"    {merge_seconds * 1e3:8.1f} ms   "
          f"counters: {status.summary()}")

    # --- query level (for contrast) ---------------------------------------
    print("\n[query level] the same two evolutions on a row store "
          "with indexes (C+I):")
    system = make_system("C+I")
    system.load(workload.build())
    ql_decompose = system.timed_apply(workload.decompose_op())
    print(f"    DECOMPOSE: {ql_decompose:8.2f} s "
          f"({ql_decompose / decompose_seconds:,.0f}x slower)")
    ql_merge = system.timed_apply(workload.merge_op())
    print(f"    MERGE:     {ql_merge:8.2f} s "
          f"({ql_merge / merge_seconds:,.0f}x slower)")

    # --- verify ------------------------------------------------------------
    assert engine.table("R").same_content(table.renamed("R"), ordered=True)
    assert system.extract("R").same_content(table.renamed("R"))
    print("\nBoth pipelines produced identical tables — the data-level "
          "one never materialized a tuple.")


if __name__ == "__main__":
    main()
