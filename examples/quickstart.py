#!/usr/bin/env python3
"""Quickstart: one database for SQL, SMOs and transactions.

Opens a `repro.db.Database`, loads the paper's Figure 1 table, runs
ordinary SQL and a schema-evolution statement through the *same*
`execute()`, reads a multi-table consistent view under a transaction,
and contrasts the data-level pipeline with the query-level pipeline of
Figure 2.

Run:  python examples/quickstart.py
"""

from repro import make_system, parse_smo
from repro.db import Database

FIGURE1_ROWS = [
    ("Jones", "Typing", "425 Grant Ave"),
    ("Jones", "Shorthand", "425 Grant Ave"),
    ("Roberts", "Light Cleaning", "747 Industrial Way"),
    ("Ellis", "Alchemy", "747 Industrial Way"),
    ("Jones", "Whittling", "425 Grant Ave"),
    ("Ellis", "Juggling", "747 Industrial Way"),
    ("Harrison", "Light Cleaning", "425 Grant Ave"),
]


def build_r(db: Database) -> None:
    """The paper's Figure 1 table R(Employee, Skill, Address)."""
    db.execute(
        "CREATE TABLE R (Employee STRING, Skill STRING, Address STRING)"
    )
    db.executemany("INSERT INTO R VALUES (?, ?, ?)", FIGURE1_ROWS)


def main() -> None:
    print("=" * 64)
    print("CODS quickstart — one facade for SQL, SMOs and transactions")
    print("=" * 64)

    # 1. One Database object: SQL DDL/DML and SMO statements go through
    #    the same execute(), against the same catalog.
    db = Database()
    build_r(db)
    print("\nLoaded R; SELECT * FROM R LIMIT 3:")
    for row in db.execute("SELECT * FROM R LIMIT 3"):
        print("   ", row)

    # 2. Watch each data-level step as it happens (the demo's status pane).
    db.engine.subscribe(
        lambda event: print(
            f"    [data-level] {event.step}: {event.detail}"
        )
    )

    # 3. Decompose: an SMO statement through the same front door — no
    #    SQL execution, no tuple materialization inside the engine.
    print("\nDECOMPOSE TABLE R INTO S (Employee, Skill), "
          "T (Employee, Address)")
    status = db.execute(
        "DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)"
    )
    print(f"    counters: {status.summary()}")
    print("\nT (deduplicated via distinction + bitmap filtering):")
    for row in db.execute("SELECT * FROM T ORDER BY Employee"):
        print("   ", row)

    # 4. A whole-catalog transaction: both tables read at one frozen
    #    epoch vector, whatever lands concurrently.
    with db.transaction(read_only=True) as tx:
        print(f"\nPinned epoch vector: {tx.epoch_vector}")
        s_before = tx.execute("SELECT * FROM S")
        db.execute("INSERT INTO S VALUES ('Nguyen', 'Poetry')")  # outside
        assert tx.execute("SELECT * FROM S") == s_before
        print("    concurrent INSERT never entered the pinned view")
    print("After the scope:",
          db.execute("SELECT * FROM S WHERE Employee = 'Nguyen'"))
    db.execute("DELETE FROM S WHERE Employee = 'Nguyen'")

    # 5. Merge back (key–foreign-key mergence reuses all of S's columns).
    print("\nMERGE TABLES S, T INTO R")
    db.execute("MERGE TABLES S, T INTO R")
    restored = db.execute("SELECT * FROM R")
    print(f"    R restored with {len(restored)} rows")

    # 6. The same evolution at query level (Figure 2, right side) for
    #    contrast: SQL through a row store, materializing everything.
    print("\n" + "-" * 64)
    print("The same DECOMPOSE at query level (commercial-style row store):")
    query_level = make_system("C")
    with Database() as scratch:
        build_r(scratch)
        # compact() folds the delta-buffered inserts into the main
        # store so the comparator receives the full 7-row table.
        query_level.load(scratch.compact("R"))
    seconds = query_level.timed_apply(
        parse_smo(
            "DECOMPOSE TABLE R INTO S (Employee, Skill), "
            "T (Employee, Address)"
        )
    )
    print(f"    executed INSERT INTO … SELECT [DISTINCT] … "
          f"({seconds * 1e3:.1f} ms, all tuples materialized)")
    print("    -> same result, different cost model; see "
          "benchmarks/run_figures.py for the scaling curves")


if __name__ == "__main__":
    main()
