#!/usr/bin/env python3
"""Quickstart: data-level schema evolution in five minutes.

Builds a small table, decomposes it (the paper's headline operation),
merges it back, and contrasts the data-level pipeline with the
query-level pipeline of Figure 2 — printing the stage log of both.

Run:  python examples/quickstart.py
"""

from repro import (
    DataType,
    EvolutionEngine,
    MergeTables,
    make_system,
    parse_smo,
    table_from_python,
)


def build_r():
    """The paper's Figure 1 table R(Employee, Skill, Address)."""
    return table_from_python(
        "R",
        {
            "Employee": (
                DataType.STRING,
                ["Jones", "Jones", "Roberts", "Ellis", "Jones", "Ellis",
                 "Harrison"],
            ),
            "Skill": (
                DataType.STRING,
                ["Typing", "Shorthand", "Light Cleaning", "Alchemy",
                 "Whittling", "Juggling", "Light Cleaning"],
            ),
            "Address": (
                DataType.STRING,
                ["425 Grant Ave", "425 Grant Ave", "747 Industrial Way",
                 "747 Industrial Way", "425 Grant Ave",
                 "747 Industrial Way", "425 Grant Ave"],
            ),
        },
    )


def main() -> None:
    print("=" * 64)
    print("CODS quickstart — data-level data evolution")
    print("=" * 64)

    # 1. Load a table into the CODS engine (a bitmap-encoded column store).
    engine = EvolutionEngine()
    engine.load_table(build_r())
    print("\nLoaded R:")
    for row in engine.table("R").head():
        print("   ", row)

    # 2. Watch each data-level step as it happens (the demo's status pane).
    engine.subscribe(
        lambda event: print(
            f"    [data-level] {event.step}: {event.detail}"
        )
    )

    # 3. Decompose: one SMO statement, no SQL, no tuple materialization.
    print("\nDECOMPOSE TABLE R INTO S (Employee, Skill), "
          "T (Employee, Address)")
    status = engine.apply(
        parse_smo(
            "DECOMPOSE TABLE R INTO S (Employee, Skill), "
            "T (Employee, Address)"
        )
    )
    print(f"    counters: {status.summary()}")
    print("\nT (the changed side, deduplicated via distinction + "
          "bitmap filtering):")
    for row in engine.table("T").sorted_rows():
        print("   ", row)

    # 4. Merge back (key–foreign-key mergence reuses all of S's columns).
    print("\nMERGE TABLES S, T INTO R")
    engine.apply(MergeTables("S", "T", "R"))
    print(f"    R restored with {engine.table('R').nrows} rows")

    # 5. The same evolution at query level (Figure 2, right side) for
    #    contrast: SQL through a row store, materializing everything.
    print("\n" + "-" * 64)
    print("The same DECOMPOSE at query level (commercial-style row store):")
    query_level = make_system("C")
    query_level.load(build_r())
    seconds = query_level.timed_apply(
        parse_smo(
            "DECOMPOSE TABLE R INTO S (Employee, Skill), "
            "T (Employee, Address)"
        )
    )
    print(f"    executed INSERT INTO … SELECT [DISTINCT] … "
          f"({seconds * 1e3:.1f} ms, all tuples materialized)")
    print("    -> same result, different cost model; see "
          "benchmarks/run_figures.py for the scaling curves")


if __name__ == "__main__":
    main()
