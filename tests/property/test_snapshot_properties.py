"""Property tests for MVCC: under ANY interleaving of DML, incremental
compaction steps and snapshot pin/close, every open snapshot keeps
returning exactly the row list frozen at its pin time, the live view
matches the eager oracle, and superseded generations are reclaimed once
the last pinning snapshot closes."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta import CompactionPolicy, MutableTable
from repro.smo.predicate import And, Comparison, Not, Or
from repro.storage import DataType, table_from_python

KS = list(range(5))
SS = ["a", "b", "c"]


def base_table(rows):
    return table_from_python(
        "R",
        {
            "K": (DataType.INT, [k for k, _s in rows]),
            "S": (DataType.STRING, [s for _k, s in rows]),
        },
    )


class Oracle:
    """Eager row-list semantics (multiset-compared)."""

    def __init__(self, rows):
        self.rows = [tuple(row) for row in rows]

    def insert(self, row):
        self.rows.append(tuple(row))

    def delete(self, predicate):
        if predicate is None:
            count = len(self.rows)
            self.rows = []
            return count
        kept = [row for row in self.rows if not _matches(predicate, row)]
        count = len(self.rows) - len(kept)
        self.rows = kept
        return count

    def update(self, assignments, predicate):
        count = 0
        for index, row in enumerate(self.rows):
            if predicate is None or _matches(predicate, row):
                self.rows[index] = (
                    assignments.get("K", row[0]),
                    assignments.get("S", row[1]),
                )
                count += 1
        return count


def _matches(predicate, row):
    return predicate.matches(lambda attr: row[0 if attr == "K" else 1])


comparisons = st.one_of(
    st.tuples(
        st.just("K"),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.sampled_from(KS),
    ).map(lambda t: Comparison(*t)),
    st.tuples(
        st.just("S"), st.sampled_from(["=", "!="]), st.sampled_from(SS)
    ).map(lambda t: Comparison(*t)),
)

predicates = st.recursive(
    comparisons,
    lambda inner: st.one_of(
        st.tuples(inner, inner).map(lambda t: And(*t)),
        st.tuples(inner, inner).map(lambda t: Or(*t)),
        inner.map(Not),
    ),
    max_leaves=3,
)

rows = st.tuples(st.sampled_from(KS), st.sampled_from(SS))

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), rows),
        st.tuples(st.just("delete"), st.none() | predicates),
        st.tuples(
            st.just("update"),
            st.tuples(
                st.fixed_dictionaries({}, optional={
                    "K": st.sampled_from(KS), "S": st.sampled_from(SS),
                }),
                st.none() | predicates,
            ),
        ),
        st.tuples(st.just("step"), st.integers(min_value=1, max_value=2)),
        st.tuples(st.just("compact"), st.none()),
        st.tuples(st.just("pin"), st.none()),
        st.tuples(st.just("close_oldest"), st.none()),
    ),
    max_size=16,
)


def apply_stream(mutable, oracle, stream, pinned=None):
    pinned = list(pinned or [])  # (snapshot, frozen row list)
    for kind, payload in stream:
        if kind == "insert":
            mutable.insert(payload)
            oracle.insert(payload)
        elif kind == "delete":
            assert mutable.delete(payload) == oracle.delete(payload)
        elif kind == "update":
            assignments, predicate = payload
            if not assignments:
                continue
            assert mutable.update(assignments, predicate) == oracle.update(
                assignments, predicate
            )
        elif kind == "step":
            mutable.compact_step(columns=payload)
        elif kind == "compact":
            mutable.compact()
        elif kind == "pin":
            snapshot = mutable.snapshot()
            pinned.append((snapshot, snapshot.to_rows()))
        elif kind == "close_oldest" and pinned:
            snapshot, _frozen = pinned.pop(0)
            snapshot.close()
        # Invariants after every operation:
        assert sorted(mutable.to_rows()) == sorted(oracle.rows)
        assert sorted(mutable.scan()) == sorted(oracle.rows)
        for snapshot, frozen in pinned:
            assert snapshot.to_rows() == frozen
        live_generations = {s.generation for s, _ in pinned}
        assert set(mutable.retained_versions) <= live_generations
    return pinned


@settings(max_examples=50, deadline=None)
@given(
    initial=st.lists(rows, max_size=8),
    stream=operations,
    index_threshold=st.sampled_from([None, 1, 4]),
)
def test_snapshots_never_move_under_dml_and_compaction(
    initial, stream, index_threshold
):
    mutable = MutableTable(
        base_table(initial),
        CompactionPolicy(None, None, None, index_threshold=index_threshold),
    )
    oracle = Oracle(initial)
    pinned = apply_stream(mutable, oracle, stream)

    # A final full compaction still never moves any pinned snapshot.
    mutable.compact()
    assert sorted(mutable.to_rows()) == sorted(oracle.rows)
    for snapshot, frozen in pinned:
        assert snapshot.to_rows() == frozen

    # Closing the last pins reclaims every retained generation.
    for snapshot, _frozen in pinned:
        snapshot.close()
    assert mutable.retained_versions == ()
    assert mutable.open_snapshots == 0


@settings(max_examples=30, deadline=None)
@given(initial=st.lists(rows, max_size=6), stream=operations)
def test_snapshot_matches_predicate_oracle(initial, stream):
    """matching_rows on a pinned snapshot equals filtering its frozen
    row list, whatever happened afterwards."""
    mutable = MutableTable(
        base_table(initial),
        CompactionPolicy(None, None, None, index_threshold=2),
    )
    oracle = Oracle(initial)
    snapshot = mutable.snapshot()
    frozen = snapshot.to_rows()
    apply_stream(mutable, oracle, stream, pinned=[(snapshot, frozen)])
    if not snapshot.closed:  # the stream's close_oldest may have taken it
        predicate = Comparison("S", "=", "a")
        assert sorted(snapshot.matching_rows(predicate)) == sorted(
            row for row in frozen if _matches(predicate, row)
        )
        snapshot.close()
