"""Property tests: crash anywhere, reopen, recover a committed prefix.

Each schedule is a seeded-random interleaving of DML, multi-statement
transactions (committed and rolled back), compaction steps and explicit
checkpoints, run against a durable :class:`~repro.db.Database`.  The
crash harness (``tests/harness/crashpoint``) enumerates every labeled
crash point the schedule passes and re-runs it, aborting at each one in
turn; after every simulated power cut the catalog is reopened and
compared against an in-memory oracle:

* ``durability="commit"`` — the recovered table equals the oracle
  state after the acknowledged operations, or that plus the single
  operation in flight at the crash (its commit record may have reached
  the disk image even though the ack never came back; what can never
  happen is losing an acked commit or half-applying anything);
* ``durability="group"`` — the recovered table equals the oracle state
  after **some prefix** of those operations (the documented bounded
  loss window);
* in both modes, rows inserted by rolled-back transactions never
  resurrect.

Schedules are deterministic functions of their seed, so a failure
reproduces from the printed ``(seed, label, hit)`` triple alone.
"""

from __future__ import annotations

import random

import pytest

from repro.db import Database
from tests.harness.crashpoint import (
    Acked,
    crash_opportunities,
    run_to_crash,
)

KS = list(range(4))


# ----------------------------------------------------------------------
# Schedules and the oracle
# ----------------------------------------------------------------------


def build_schedule(seed: int, n_ops: int = 5) -> list[tuple]:
    """A deterministic random schedule.  Every inserted/updated row
    carries a globally unique marker ``u``, so any resurrected
    rolled-back row is identifiable in the recovered table."""
    rng = random.Random(seed)
    uid = iter(range(10_000))
    ops: list[tuple] = []

    def dml():
        kind = rng.choice(["insert", "insert", "update", "delete"])
        if kind == "insert":
            return ("insert", rng.choice(KS), next(uid))
        if kind == "update":
            return ("update", rng.choice(KS), next(uid))
        return ("delete", rng.choice(KS))

    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.55:
            ops.append(dml())
        elif roll < 0.70:
            ops.append(("txn", [dml() for _ in range(rng.randint(1, 3))]))
        elif roll < 0.85:
            ops.append(
                ("rollback", [dml() for _ in range(rng.randint(1, 2))])
            )
        elif roll < 0.95:
            ops.append(("compact",))
        else:
            ops.append(("checkpoint",))
    return ops


def oracle_apply(state: list[tuple], op: tuple) -> list[tuple]:
    """Reference semantics of one schedule op on a row list."""
    kind = op[0]
    if kind == "insert":
        return state + [(op[1], op[2])]
    if kind == "update":
        return [(k, op[2] if k == op[1] else u) for k, u in state]
    if kind == "delete":
        return [(k, u) for k, u in state if k != op[1]]
    if kind == "txn":
        for inner in op[1]:
            state = oracle_apply(state, inner)
        return state
    # rollback / compact / checkpoint leave the logical content alone
    return state


def oracle_states(ops) -> list[list[tuple]]:
    """State after each prefix: ``states[i]`` is the table content once
    the first ``i`` operations have been acknowledged."""
    states = [[]]
    for op in ops:
        states.append(oracle_apply(states[-1], op))
    return states


def rolled_back_uids(ops) -> set[int]:
    return {
        inner[2]
        for op in ops
        if op[0] == "rollback"
        for inner in op[1]
        if inner[0] in ("insert", "update")
    }


# ----------------------------------------------------------------------
# Driving a schedule against a real database
# ----------------------------------------------------------------------


def apply_dml(target, op) -> None:
    kind = op[0]
    if kind == "insert":
        target.execute("INSERT INTO r VALUES (?, ?)", (op[1], op[2]))
    elif kind == "update":
        target.execute("UPDATE r SET u = ? WHERE k = ?", (op[2], op[1]))
    else:
        target.execute("DELETE FROM r WHERE k = ?", (op[1],))


def run_schedule(directory, ops, ledger: Acked, mode: str) -> None:
    """The scenario the harness crashes: open durable, create the
    table, run the ops (acking each as the database acknowledges it),
    close cleanly."""
    db = Database(directory, durability=mode, group_size=3)
    db.execute("CREATE TABLE r (k INT, u INT)")
    for index, op in enumerate(ops):
        kind = op[0]
        if kind == "txn":
            with db.transaction() as tx:
                for inner in op[1]:
                    apply_dml(tx, inner)
        elif kind == "rollback":
            try:
                with db.transaction() as tx:
                    for inner in op[1]:
                        apply_dml(tx, inner)
                    raise _Rollback()
            except _Rollback:
                pass
        elif kind == "compact":
            db.compact_step("r")
        elif kind == "checkpoint":
            db.checkpoint()
        else:
            apply_dml(db, op)
        ledger.ack(index)
    db.close()


class _Rollback(Exception):
    pass


def recovered_rows(directory):
    """Reopen after the crash (recovery runs) and read the table back;
    ``None`` when the crash predates the table's first checkpoint."""
    with Database(directory, durability="commit") as db:
        if "r" not in db.tables():
            return None
        return sorted(db.execute("SELECT k, u FROM r"))


def check_crash(tmp_path, seed, ops, label, hit, mode, run_id) -> bool:
    """One simulated power cut: returns True when the plan fired."""
    directory = tmp_path / f"cat-{run_id}"
    ledger = Acked()
    crashed, _ = run_to_crash(
        lambda: run_schedule(directory, ops, ledger, mode), label, hit
    )
    context = f"seed={seed} label={label} hit={hit} mode={mode}"
    rows = recovered_rows(directory)
    states = oracle_states(ops)
    if rows is None:
        assert not ledger.acked, context
        return crashed
    acked = len(ledger.acked)
    if mode == "commit":
        # Every acked op survived; the op in flight at the crash may
        # have landed its commit record (crash between write and ack).
        allowed = [sorted(states[acked])]
        if acked + 1 < len(states):
            allowed.append(sorted(states[acked + 1]))
        assert rows in allowed, context
    else:
        prefixes = [sorted(state) for state in states[: acked + 2]]
        assert rows in prefixes, context
    ghosts = {u for _, u in rows} & rolled_back_uids(ops)
    assert not ghosts, f"{context}: rolled-back rows resurrected {ghosts}"
    return crashed


# ----------------------------------------------------------------------
# The tests
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_exhaustive_crash_sweep(tmp_path, seed):
    """Crash at EVERY (label, occurrence) a schedule passes — the full
    fault-injection sweep on a handful of schedules."""
    ops = build_schedule(seed)
    opportunities = crash_opportunities(
        lambda: run_schedule(tmp_path / "dry", ops, Acked(), "commit")
    )
    assert opportunities, "the schedule announced no crash points"
    for run_id, (label, hit) in enumerate(opportunities):
        fired = check_crash(
            tmp_path, seed, ops, label, hit, "commit", run_id
        )
        assert fired, f"dry-run opportunity not reached: {label}#{hit}"


@pytest.mark.parametrize("seed", range(100))
def test_randomized_schedules_crash_at_sampled_points(tmp_path, seed):
    """≥100 randomized schedules, each crashed at three points drawn
    deterministically from its own opportunity list."""
    ops = build_schedule(seed, n_ops=6)
    opportunities = crash_opportunities(
        lambda: run_schedule(tmp_path / "dry", ops, Acked(), "commit")
    )
    rng = random.Random(seed * 7919 + 1)
    picks = rng.sample(opportunities, min(3, len(opportunities)))
    for run_id, (label, hit) in enumerate(picks):
        check_crash(tmp_path, seed, ops, label, hit, "commit", run_id)


@pytest.mark.parametrize("seed", range(20))
def test_group_commit_recovers_some_committed_prefix(tmp_path, seed):
    """Under group commit an acked-but-unflushed tail may vanish, but
    recovery still lands on a committed prefix and never resurrects a
    rolled-back row."""
    ops = build_schedule(seed + 500, n_ops=6)
    opportunities = crash_opportunities(
        lambda: run_schedule(tmp_path / "dry", ops, Acked(), "group")
    )
    rng = random.Random(seed * 104729 + 3)
    picks = rng.sample(opportunities, min(3, len(opportunities)))
    for run_id, (label, hit) in enumerate(picks):
        check_crash(tmp_path, seed + 500, ops, label, hit, "group", run_id)


def test_sweep_reaches_every_wal_crash_point(tmp_path):
    """The canonical schedule exercises the whole label set: append,
    commit, flush (including the torn-write point), checkpoint,
    sidecar/manifest publication and log truncation."""
    ops = [
        ("insert", 0, 1),
        ("txn", [("insert", 1, 2), ("update", 1, 3)]),
        ("checkpoint",),
        ("insert", 2, 4),
        ("compact",),
    ]
    opportunities = crash_opportunities(
        lambda: run_schedule(tmp_path / "dry", ops, Acked(), "commit")
    )
    labels = {label for label, _ in opportunities}
    assert {
        "wal.append.frame",
        "wal.commit.record",
        "wal.flush.write",
        "wal.flush.torn",
        "wal.flush.fsync",
        "wal.truncate.temp",
        "wal.truncate.replace",
        "checkpoint.begin",
        "checkpoint.table",
        "checkpoint.truncate",
        "checkpoint.cleanup",
        "save.table.temp",
        "save.table.replace",
        "save.delta.temp",
        "save.delta.replace",
        "save.manifest.temp",
        "save.manifest.replace",
    } <= labels, sorted(labels)
