"""Property-based tests (hypothesis) for the WAH codec.

DESIGN.md invariants 1 and 2: round-trips against dense truth, identity
with the pure-Python reference encoder, and agreement of every
structural/logical operation with its NumPy-on-dense counterpart.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import WAHBitmap
from repro.bitmap.reference import encode_reference

bit_arrays = st.lists(st.booleans(), min_size=0, max_size=600).map(
    lambda bits: np.array(bits, dtype=bool)
)

# Run-structured arrays stress the fill paths.
run_arrays = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=1, max_value=120)),
    min_size=0,
    max_size=12,
).map(
    lambda runs: np.concatenate(
        [np.full(length, value, dtype=bool) for value, length in runs]
    )
    if runs
    else np.zeros(0, dtype=bool)
)

any_bits = st.one_of(bit_arrays, run_arrays)


@given(any_bits)
def test_dense_roundtrip(bits):
    assert np.array_equal(WAHBitmap.from_dense(bits).to_dense(), bits)


@given(any_bits)
def test_matches_reference_encoder(bits):
    bm = WAHBitmap.from_dense(bits)
    assert [int(w) for w in bm.words] == encode_reference(bits.tolist())


@given(any_bits)
def test_positions_roundtrip(bits):
    bm = WAHBitmap.from_dense(bits)
    positions = bm.positions()
    assert np.array_equal(positions, np.flatnonzero(bits))
    assert WAHBitmap.from_positions(positions, len(bits)) == bm


@given(any_bits)
def test_intervals_roundtrip(bits):
    bm = WAHBitmap.from_dense(bits)
    starts, ends = bm.one_intervals()
    assert WAHBitmap.from_intervals(starts, ends, len(bits)) == bm
    # Intervals are maximal: strictly separated and nonempty.
    assert np.all(ends > starts)
    if len(starts) > 1:
        assert np.all(starts[1:] > ends[:-1])


@given(any_bits)
def test_count_and_first_set(bits):
    bm = WAHBitmap.from_dense(bits)
    assert bm.count() == int(bits.sum())
    expected_first = int(np.argmax(bits)) if bits.any() else -1
    assert bm.first_set() == expected_first


@given(any_bits, st.randoms(use_true_random=False))
def test_select_matches_fancy_indexing(bits, rnd):
    bm = WAHBitmap.from_dense(bits)
    n = len(bits)
    k = rnd.randint(0, n) if n else 0
    picks = np.array(sorted(rnd.sample(range(n), k)), dtype=np.int64)
    assert np.array_equal(bm.select(picks).to_dense(), bits[picks])


@given(any_bits, any_bits)
def test_concat_matches_numpy(left, right):
    a = WAHBitmap.from_dense(left)
    b = WAHBitmap.from_dense(right)
    assert np.array_equal(
        a.concat(b).to_dense(), np.concatenate([left, right])
    )


@given(st.integers(1, 400), st.integers(0, 10 ** 9))
def test_logical_ops_match_numpy(n, seed):
    rng = np.random.default_rng(seed)
    x = rng.random(n) < 0.5
    y = rng.random(n) < 0.5
    a, b = WAHBitmap.from_dense(x), WAHBitmap.from_dense(y)
    assert np.array_equal((a & b).to_dense(), x & y)
    assert np.array_equal((a | b).to_dense(), x | y)
    assert np.array_equal((a ^ b).to_dense(), x ^ y)
    assert np.array_equal(a.invert().to_dense(), ~x)


@given(any_bits)
def test_serialization_roundtrip(bits):
    bm = WAHBitmap.from_dense(bits)
    assert WAHBitmap.from_bytes(bm.to_bytes()) == bm


@settings(max_examples=40)
@given(
    st.lists(
        st.integers(min_value=0, max_value=5_000),
        min_size=0,
        max_size=50,
        unique=True,
    ).map(sorted)
)
def test_sparse_positions_independent_of_nbits(positions):
    """Compressed size depends on structure, not on nbits."""
    positions = np.array(positions, dtype=np.int64)
    small = WAHBitmap.from_positions(positions, 5_001)
    large = WAHBitmap.from_positions(positions, 50_000_000)
    assert np.array_equal(small.positions(), large.positions())
    # Tail padding adds at most a couple of words.
    assert large.word_count <= small.word_count + 2
