"""Property-based tests for the evolution algorithms.

DESIGN.md invariants 3–6 on hypothesis-generated tables: lossless
decomposition inverts under mergence, data-level equals query-level,
general mergence equals the nested-loop reference, and Property 1's
zero-work guarantee holds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EvolutionEngine, EvolutionStatus, merge_general
from repro.smo import DecomposeTable, MergeTables
from repro.storage import DataType, table_from_python
from tests.conftest import nested_loop_join


@st.composite
def fd_tables(draw):
    """R(K, P, D) with K -> D guaranteed; arbitrary sizes and skew."""
    n_keys = draw(st.integers(min_value=1, max_value=12))
    nrows = draw(st.integers(min_value=n_keys, max_value=80))
    keys = draw(
        st.lists(
            st.integers(0, n_keys - 1), min_size=nrows, max_size=nrows
        )
    )
    keys[:n_keys] = list(range(n_keys))  # realize all key values
    payload = draw(
        st.lists(st.integers(0, 5), min_size=nrows, max_size=nrows)
    )
    dependent_of_key = draw(
        st.lists(st.integers(0, 3), min_size=n_keys, max_size=n_keys)
    )
    return table_from_python(
        "R",
        {
            "K": (DataType.INT, keys),
            "P": (DataType.INT, payload),
            "D": (DataType.INT, [dependent_of_key[k] for k in keys]),
        },
    )


@st.composite
def join_pairs(draw):
    """S(J, A) and T(J, B) with arbitrary duplication on both sides."""
    n_join = draw(st.integers(min_value=1, max_value=6))
    left_rows = draw(st.integers(min_value=0, max_value=30))
    right_rows = draw(st.integers(min_value=0, max_value=30))
    left_join = draw(
        st.lists(st.integers(0, n_join - 1), min_size=left_rows,
                 max_size=left_rows)
    )
    right_join = draw(
        st.lists(st.integers(0, n_join - 1), min_size=right_rows,
                 max_size=right_rows)
    )
    left_payload = draw(
        st.lists(st.integers(0, 3), min_size=left_rows, max_size=left_rows)
    )
    right_payload = draw(
        st.lists(st.integers(0, 3), min_size=right_rows,
                 max_size=right_rows)
    )
    left = table_from_python(
        "S",
        {"J": (DataType.INT, left_join), "A": (DataType.INT, left_payload)},
    )
    right = table_from_python(
        "T",
        {"J": (DataType.INT, right_join), "B": (DataType.INT, right_payload)},
    )
    return left, right


DECOMPOSE = DecomposeTable("R", "S", ("K", "P"), "T", ("K", "D"))


def _engine_with_declared_fd() -> EvolutionEngine:
    """Engine that knows K -> D at the schema level.

    With the FD declared, the lossless-join check deterministically
    picks T as the changed side; without it, a table where K -> P also
    happens to hold in the data may legitimately dedup S instead.
    """
    from repro.fd import FunctionalDependency

    return EvolutionEngine(
        extra_fds=[FunctionalDependency.of("K", "D")],
        verify_with_data=False,
    )


@settings(max_examples=60, deadline=None)
@given(fd_tables())
def test_decompose_merge_identity(table):
    engine = EvolutionEngine()
    engine.load_table(table)
    engine.apply(DECOMPOSE)
    engine.apply(MergeTables("S", "T", "R"))
    assert engine.table("R").same_content(table, ordered=True)


@settings(max_examples=60, deadline=None)
@given(fd_tables())
def test_changed_side_is_distinct_projection(table):
    engine = _engine_with_declared_fd()
    engine.load_table(table)
    engine.apply(DECOMPOSE)
    expected = sorted(
        set(
            zip(
                table.column("K").to_values(),
                table.column("D").to_values(),
            )
        )
    )
    assert engine.table("T").sorted_rows() == expected


@settings(max_examples=60, deadline=None)
@given(fd_tables())
def test_property1_column_sharing(table):
    engine = _engine_with_declared_fd()
    engine.load_table(table)
    key_column = table.column("K")
    payload_column = table.column("P")
    engine.apply(DECOMPOSE)
    assert engine.table("S").column("K") is key_column
    assert engine.table("S").column("P") is payload_column


@settings(max_examples=60, deadline=None)
@given(join_pairs())
def test_general_merge_matches_nested_loop(pair):
    left, right = pair
    op = MergeTables("S", "T", "R", ("J",))
    merged = merge_general(left, right, op, ("J",), EvolutionStatus())
    expected = nested_loop_join(left.to_rows(), right.to_rows(), 0, 0)
    assert merged.sorted_rows() == expected


@settings(max_examples=60, deadline=None)
@given(join_pairs())
def test_merge_output_is_clustered_by_join_value(pair):
    left, right = pair
    op = MergeTables("S", "T", "R", ("J",))
    merged = merge_general(left, right, op, ("J",), EvolutionStatus())
    join_values = [row[0] for row in merged.to_rows()]
    # Clustered: each join value occupies one contiguous block.
    seen = set()
    previous = object()
    for value in join_values:
        if value != previous:
            assert value not in seen, "join value appears in two blocks"
            seen.add(value)
            previous = value


@settings(max_examples=30, deadline=None)
@given(fd_tables(), st.integers(0, 1))
def test_data_level_equals_query_level(table, which):
    """CODS output ≡ SQL output, on random inputs (invariant 4)."""
    from repro.baselines import make_system

    label = ["C", "M"][which]
    cods = make_system("D")
    query = make_system(label)
    for system in (cods, query):
        system.load(table)
        system.apply(DECOMPOSE)
    assert cods.extract("S").sorted_rows() == query.extract(
        "S"
    ).sorted_rows()
    assert cods.extract("T").sorted_rows() == query.extract(
        "T"
    ).sorted_rows()
