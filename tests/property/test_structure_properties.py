"""Property-based tests for RLE vectors, columns, FDs and the SMO parser."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import RLEVector
from repro.fd import (
    FunctionalDependency,
    candidate_keys,
    closure,
    is_superkey,
    minimal_cover,
)
from repro.fd.functional_deps import implies
from repro.smo import parse_smo
from repro.storage import BitmapColumn, DataType

vid_arrays = st.lists(
    st.integers(min_value=0, max_value=6), min_size=0, max_size=120
).map(lambda xs: np.array(xs, dtype=np.int64))


class TestRLEProperties:
    @given(vid_arrays)
    def test_roundtrip(self, vids):
        assert np.array_equal(RLEVector.from_values(vids).decode(), vids)

    @given(vid_arrays)
    def test_positions_partition_rows(self, vids):
        vector = RLEVector.from_values(vids)
        collected = np.sort(
            np.concatenate(
                [vector.positions_of(v) for v in set(vids.tolist())]
            )
        ) if len(vids) else np.empty(0)
        assert np.array_equal(collected, np.arange(len(vids)))

    @given(vid_arrays, st.randoms(use_true_random=False))
    def test_select_matches_fancy_indexing(self, vids, rnd):
        vector = RLEVector.from_values(vids)
        n = len(vids)
        k = rnd.randint(0, n) if n else 0
        picks = np.array(sorted(rnd.sample(range(n), k)), dtype=np.int64)
        assert np.array_equal(vector.select(picks).decode(), vids[picks])

    @given(vid_arrays, vid_arrays)
    def test_concat(self, left, right):
        combined = RLEVector.from_values(left).concat(
            RLEVector.from_values(right)
        )
        assert np.array_equal(
            combined.decode(), np.concatenate([left, right])
        )

    @given(vid_arrays)
    def test_serialization(self, vids):
        vector = RLEVector.from_values(vids)
        assert RLEVector.from_bytes(vector.to_bytes()) == vector


class TestColumnProperties:
    @given(vid_arrays)
    def test_values_roundtrip(self, vids):
        column = BitmapColumn.from_values(
            "c", DataType.INT, vids.tolist()
        )
        assert column.to_values() == vids.tolist()

    @given(vid_arrays)
    def test_counts_sum_to_rows(self, vids):
        column = BitmapColumn.from_values("c", DataType.INT, vids.tolist())
        assert int(column.value_counts().sum()) == len(vids)

    @given(vid_arrays, st.randoms(use_true_random=False))
    def test_select_matches_fancy_indexing(self, vids, rnd):
        column = BitmapColumn.from_values("c", DataType.INT, vids.tolist())
        n = len(vids)
        k = rnd.randint(0, n) if n else 0
        picks = np.array(sorted(rnd.sample(range(n), k)), dtype=np.int64)
        assert column.select(picks).to_values() == vids[picks].tolist()


attrs = st.sets(st.sampled_from("ABCDE"), min_size=1, max_size=5)
fds = st.lists(
    st.tuples(attrs, attrs).map(
        lambda pair: FunctionalDependency(
            frozenset(pair[0]), frozenset(pair[1])
        )
    ),
    min_size=0,
    max_size=6,
)


class TestFdProperties:
    @given(attrs, fds)
    def test_closure_is_monotone_and_idempotent(self, start, dependencies):
        first = closure(start, dependencies)
        assert frozenset(start) <= first
        assert closure(first, dependencies) == first

    @given(fds)
    def test_minimal_cover_equivalent(self, dependencies):
        cover = minimal_cover(dependencies)
        for fd in dependencies:
            assert implies(cover, fd)
        for fd in cover:
            assert implies(dependencies, fd)

    @given(fds)
    def test_candidate_keys_are_minimal_superkeys(self, dependencies):
        universe = frozenset("ABCDE")
        keys = candidate_keys(universe, dependencies)
        assert keys, "every relation has at least one key"
        for key in keys:
            assert is_superkey(key, universe, dependencies)
            for attr in key:
                assert not is_superkey(
                    key - {attr}, universe, dependencies
                ), "key is not minimal"


identifiers = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper() not in {
        "KEY", "IN", "TO", "ON", "AND", "OR", "NOT", "TABLE", "TABLES",
        "INTO", "FROM", "WHERE", "DEFAULT", "DROP", "ADD", "RENAME", "COPY",
        "UNION", "MERGE", "CREATE", "DECOMPOSE", "PARTITION", "COLUMN",
        "TRUE", "FALSE", "NULL",
    }
)


class TestParserProperties:
    @given(identifiers, identifiers)
    def test_rename_roundtrip(self, old, new):
        op = parse_smo(f"RENAME TABLE {old} TO {new}")
        assert parse_smo(op.describe()) == op

    @given(identifiers, identifiers, identifiers)
    def test_union_roundtrip(self, a, b, c):
        op = parse_smo(f"UNION TABLES {a}, {b} INTO {c}")
        assert parse_smo(op.describe()) == op

    @given(st.integers(-10**6, 10**6))
    def test_numeric_literals(self, value):
        op = parse_smo(f"PARTITION TABLE R INTO A, B WHERE x = {value}")
        assert op.predicate.value == value

    @given(st.text(alphabet=st.characters(
        blacklist_characters="'", min_codepoint=32, max_codepoint=126,
    ), max_size=15))
    def test_string_literals(self, text):
        op = parse_smo(f"PARTITION TABLE R INTO A, B WHERE x = '{text}'")
        assert op.predicate.value == text
