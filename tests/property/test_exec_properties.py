"""Predicate-pushdown equivalence: the batch pipeline vs seed semantics.

For random schemas, rows, predicates and delta states (buffered
inserts, updates, deletes, partial compaction), a SELECT executed
through the vectorized pipeline must return exactly — same rows, same
order — what the seed row-at-a-time reference produces over the same
adapter scan, including while an MVCC snapshot pins an older state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta import CompactionPolicy
from repro.smo.predicate import And, Comparison, Not, Or
from repro.sql import MutableColumnAdapter, SqlExecutor
from repro.sql.ast import Select

COLUMNS = ("a", "b", "c")
STRINGS = ("x", "y", "z")


@st.composite
def comparisons(draw):
    attr = draw(st.sampled_from(COLUMNS))
    if attr == "c":
        op = draw(st.sampled_from(["=", "!=", "<", ">=", "IN"]))
        if op == "IN":
            value = tuple(
                draw(st.lists(st.sampled_from(STRINGS), min_size=1,
                              max_size=2))
            )
        else:
            value = draw(st.sampled_from(STRINGS))
    else:
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">=", "IN"]))
        if op == "IN":
            value = tuple(
                draw(st.lists(st.integers(0, 4), min_size=1, max_size=3))
            )
        else:
            value = draw(st.integers(0, 4))
    return Comparison(attr, op, value)


@st.composite
def predicates(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(comparisons())
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return Not(draw(predicates(depth=depth - 1)))
    left = draw(predicates(depth=depth - 1))
    right = draw(predicates(depth=depth - 1))
    return And(left, right) if kind == "and" else Or(left, right)


@st.composite
def row_batches(draw, max_rows=12):
    nrows = draw(st.integers(0, max_rows))
    return [
        (
            draw(st.integers(0, 4)),
            draw(st.integers(0, 3)),
            draw(st.sampled_from(STRINGS)),
        )
        for _ in range(nrows)
    ]


@st.composite
def delta_states(draw):
    """A table with a main store, then a random DML tail that leaves a
    delta behind (optionally with a mid-stream compaction and a forced
    hash index)."""
    return {
        "main": draw(row_batches(max_rows=15)),
        "tail": draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["insert", "update", "delete"]),
                    row_batches(max_rows=3),
                    predicates(depth=1),
                ),
                max_size=4,
            )
        ),
        "compact_midway": draw(st.booleans()),
        "index": draw(st.booleans()),
    }


def build_adapter(state):
    adapter = MutableColumnAdapter(
        policy=CompactionPolicy.never()
    )
    executor = SqlExecutor(adapter)
    executor.execute("CREATE TABLE t (a INT, b INT, c STRING)")
    if state["main"]:
        adapter.insert_rows("t", state["main"])
    adapter.compact("t")  # the seed main store
    steps = state["tail"]
    for index, (kind, rows, predicate) in enumerate(steps):
        if kind == "insert" and rows:
            adapter.insert_rows("t", rows)
        elif kind == "update":
            adapter.update_rows("t", [("b", 1)], predicate)
        elif kind == "delete":
            adapter.delete_rows("t", predicate)
        if state["compact_midway"] and index == 0 and len(steps) > 1:
            adapter.compact_step("t")
    if state["index"]:
        mutable = adapter.evolution_engine.delta_handle("t")
        if mutable is not None and mutable.is_valid:
            mutable.delta.build_index("a")
            mutable.delta.build_index("c")
    return adapter, executor


def reference_select(scan_rows, predicate, projection):
    """The seed row-at-a-time SELECT over the same adapter scan."""
    positions = {n: i for i, n in enumerate(COLUMNS)}
    rows = list(scan_rows)
    if predicate is not None:
        rows = [
            row
            for row in rows
            if predicate.matches(lambda a, r=row: r[positions[a]])
        ]
    if projection is not None:
        out = [positions[c] for c in projection]
        rows = [tuple(row[p] for p in out) for row in rows]
    return rows


@st.composite
def select_shapes(draw):
    projection = draw(
        st.sampled_from([None, ("a",), ("c", "a"), ("b", "c", "a")])
    )
    where = draw(st.one_of(st.none(), predicates()))
    limit = draw(st.one_of(st.none(), st.integers(0, 6)))
    return projection, where, limit


@settings(max_examples=120, deadline=None)
@given(delta_states(), select_shapes())
def test_batch_select_equals_seed_row_path(state, shape):
    projection, where, limit = shape
    adapter, executor = build_adapter(state)
    select = Select(projection, "t", where=where, limit=limit)
    got = executor.execute(select)
    expected = reference_select(adapter.scan_rows("t"), where, projection)
    if limit is not None:
        expected = expected[:limit]
    assert got == expected


@settings(max_examples=60, deadline=None)
@given(delta_states(), select_shapes(), delta_states())
def test_batch_select_under_open_snapshot(state, shape, later):
    """Pin the table, capture the seed reference, land more DML, and
    the batch pipeline must keep answering from the pinned state."""
    projection, where, _limit = shape
    adapter, executor = build_adapter(state)
    adapter.begin_snapshot("t")
    try:
        pinned_reference = reference_select(
            adapter.scan_rows("t"), where, projection
        )
        # Concurrent DML lands outside the pinned scope.
        for kind, rows, predicate in later["tail"]:
            mutable = adapter.evolution_engine.mutable("t")
            if kind == "insert" and rows:
                mutable.insert_rows(rows)
            elif kind == "update":
                mutable.update({"b": 2}, predicate)
            else:
                mutable.delete(predicate)
        select = Select(projection, "t", where=where)
        assert executor.execute(select) == pinned_reference
    finally:
        adapter.end_snapshot("t")
    # After the pin is released, reads see the live state again.
    live = executor.execute(Select(projection, "t", where=where))
    assert live == reference_select(
        adapter.scan_rows("t"), where, projection
    )
