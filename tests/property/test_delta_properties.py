"""Property tests: delta/main merged reads match an eager row-list
oracle under any interleaving of insert/update/delete/compact, and
compaction preserves content (``same_content``)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta import CompactionPolicy, MutableTable
from repro.smo.predicate import And, Comparison, Not, Or
from repro.storage import DataType, Table, table_from_python

KS = list(range(5))
SS = ["a", "b", "c"]


def base_table(rows):
    return table_from_python(
        "R",
        {
            "K": (DataType.INT, [k for k, _s in rows]),
            "S": (DataType.STRING, [s for _k, s in rows]),
        },
    )


class Oracle:
    """Eager row-list semantics: the specification the delta store must
    match.  Updates patch rows in place; row *multisets* are compared,
    so out-of-place updates in the implementation are equivalent."""

    def __init__(self, rows):
        self.rows = [tuple(row) for row in rows]

    def insert(self, row):
        self.rows.append(tuple(row))

    def delete(self, predicate):
        if predicate is None:
            count = len(self.rows)
            self.rows = []
            return count
        kept = [row for row in self.rows if not self._matches(predicate, row)]
        count = len(self.rows) - len(kept)
        self.rows = kept
        return count

    def update(self, assignments, predicate):
        count = 0
        for index, row in enumerate(self.rows):
            if predicate is None or self._matches(predicate, row):
                self.rows[index] = (
                    assignments.get("K", row[0]),
                    assignments.get("S", row[1]),
                )
                count += 1
        return count

    @staticmethod
    def _matches(predicate, row):
        return predicate.matches(lambda attr: row[0 if attr == "K" else 1])


comparisons = st.one_of(
    st.tuples(
        st.just("K"),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.sampled_from(KS),
    ).map(lambda t: Comparison(*t)),
    st.tuples(
        st.just("S"),
        st.sampled_from(["=", "!="]),
        st.sampled_from(SS),
    ).map(lambda t: Comparison(*t)),
    st.tuples(
        st.just("K"),
        st.lists(st.sampled_from(KS), min_size=1, max_size=3),
    ).map(lambda t: Comparison(t[0], "IN", tuple(t[1]))),
)

predicates = st.recursive(
    comparisons,
    lambda inner: st.one_of(
        st.tuples(inner, inner).map(lambda t: And(*t)),
        st.tuples(inner, inner).map(lambda t: Or(*t)),
        inner.map(Not),
    ),
    max_leaves=3,
)

rows = st.tuples(st.sampled_from(KS), st.sampled_from(SS))

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), rows),
        st.tuples(st.just("delete"), st.none() | predicates),
        st.tuples(
            st.just("update"),
            st.tuples(
                st.dictionaries(
                    st.sampled_from(["K", "S"]),
                    st.sampled_from(KS) | st.sampled_from(SS),
                    min_size=1,
                    max_size=2,
                ),
                st.none() | predicates,
            ),
        ),
        st.tuples(st.just("compact"), st.none()),
    ),
    max_size=12,
)


def coerced_assignments(raw):
    """Keep only type-correct assignments (K int, S string)."""
    out = {}
    for column, value in raw.items():
        if column == "K" and isinstance(value, int):
            out[column] = value
        if column == "S" and isinstance(value, str):
            out[column] = value
    return out


def apply_stream(mutable, oracle, stream):
    for kind, payload in stream:
        if kind == "insert":
            mutable.insert(payload)
            oracle.insert(payload)
        elif kind == "delete":
            assert mutable.delete(payload) == oracle.delete(payload)
        elif kind == "update":
            raw, predicate = payload
            assignments = coerced_assignments(raw)
            if not assignments:
                continue
            assert mutable.update(assignments, predicate) == oracle.update(
                assignments, predicate
            )
        else:
            mutable.compact()
        assert mutable.nrows == len(oracle.rows)
        assert sorted(mutable.to_rows()) == sorted(oracle.rows)


@settings(max_examples=60, deadline=None)
@given(
    initial=st.lists(rows, max_size=8),
    stream=operations,
)
def test_any_interleaving_matches_oracle(initial, stream):
    mutable = MutableTable(base_table(initial), CompactionPolicy.never())
    oracle = Oracle(initial)
    apply_stream(mutable, oracle, stream)

    # Final compaction folds everything into a pure-WAH table that is
    # same_content-equal to the oracle's eager table.
    compacted = mutable.compact()
    expected = Table.from_rows(compacted.schema, oracle.rows)
    assert compacted.same_content(expected)
    assert all(
        compacted.column(name).codec_name == "wah"
        for name in compacted.column_names
    )
    assert not mutable.has_pending_changes


@settings(max_examples=30, deadline=None)
@given(
    initial=st.lists(rows, max_size=8),
    stream=operations,
    threshold=st.integers(min_value=1, max_value=4),
)
def test_autocompaction_is_transparent(initial, stream, threshold):
    """Whatever the compaction policy does in the background, reads
    never change."""
    eager = MutableTable(
        base_table(initial), CompactionPolicy(threshold, 0.25, 0.25)
    )
    oracle = Oracle(initial)
    apply_stream(eager, oracle, stream)
    assert sorted(eager.to_rows()) == sorted(oracle.rows)


@settings(max_examples=30, deadline=None)
@given(initial=st.lists(rows, min_size=1, max_size=8), stream=operations)
def test_persistence_preserves_any_state(tmp_path_factory, initial, stream):
    from repro.storage import load_mutable_table, save_mutable_table

    mutable = MutableTable(base_table(initial), CompactionPolicy.never())
    oracle = Oracle(initial)
    apply_stream(mutable, oracle, stream)

    path = tmp_path_factory.mktemp("delta") / "r.cods"
    save_mutable_table(mutable, path)
    restored = load_mutable_table(path, CompactionPolicy.never())
    assert sorted(restored.to_rows()) == sorted(oracle.rows)


@pytest.mark.parametrize("threshold", [1, 3, 7])
def test_repeated_compaction_is_idempotent(threshold):
    mutable = MutableTable(
        base_table([(1, "a"), (2, "b")]), CompactionPolicy.never()
    )
    for index in range(threshold):
        mutable.insert((index, "c"))
    first = mutable.compact()
    second = mutable.compact()
    assert first is second  # no pending changes -> same main returned
