"""SQL conformance: our executor against SQLite as an oracle.

For randomly generated tables and queries from the supported subset,
the row engine, the column-store adapter and SQLite must return the
same multiset of rows.  This pins the semantics the query-level
baselines rely on (if our SQL engine were subtly wrong, the Figure 3
comparisons would compare unequal work).
"""

import sqlite3

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import ColumnStoreAdapter, RowEngineAdapter, SqlExecutor

_COLUMNS = ("a", "b", "c")


@st.composite
def small_tables(draw):
    nrows = draw(st.integers(min_value=0, max_value=25))
    rows = [
        (
            draw(st.integers(0, 4)),
            draw(st.integers(0, 3)),
            draw(st.sampled_from(["x", "y", "z"])),
        )
        for _ in range(nrows)
    ]
    return rows


@st.composite
def where_clauses(draw):
    attr = draw(st.sampled_from(_COLUMNS))
    if attr == "c":
        literal = repr(draw(st.sampled_from(["x", "y", "z"])))
        op = draw(st.sampled_from(["=", "!=", "<", ">="]))
    else:
        literal = str(draw(st.integers(0, 4)))
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    clause = f"{attr} {op} {literal}"
    if draw(st.booleans()):
        other = draw(st.sampled_from(_COLUMNS[:2]))
        connective = draw(st.sampled_from(["AND", "OR"]))
        clause = f"{clause} {connective} {other} = {draw(st.integers(0, 4))}"
    return clause


@st.composite
def select_queries(draw):
    columns = draw(
        st.sampled_from(["*", "a", "a, b", "c, a", "a, b, c", "b"])
    )
    distinct = "DISTINCT " if draw(st.booleans()) else ""
    where = ""
    if draw(st.booleans()):
        where = f" WHERE {draw(where_clauses())}"
    return f"SELECT {distinct}{columns} FROM t{where}"


def run_ours(adapter, rows, query):
    executor = SqlExecutor(adapter)
    executor.execute("CREATE TABLE t (a INT, b INT, c STRING)")
    if rows:
        executor.adapter.insert_rows("t", rows)
    return sorted(executor.execute(query))


def run_sqlite(rows, query):
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE t (a INTEGER, b INTEGER, c TEXT)")
    connection.executemany("INSERT INTO t VALUES (?, ?, ?)", rows)
    # SQLite's != works like ours; string comparisons use the same
    # lexicographic order for ASCII.
    out = sorted(tuple(row) for row in connection.execute(query))
    connection.close()
    return out


@settings(max_examples=120, deadline=None)
@given(small_tables(), select_queries())
def test_row_engine_matches_sqlite(rows, query):
    assert run_ours(RowEngineAdapter(), rows, query) == run_sqlite(
        rows, query
    )


@settings(max_examples=60, deadline=None)
@given(small_tables(), select_queries())
def test_column_adapter_matches_sqlite(rows, query):
    assert run_ours(ColumnStoreAdapter(), rows, query) == run_sqlite(
        rows, query
    )


@settings(max_examples=60, deadline=None)
@given(small_tables(), small_tables())
def test_join_matches_sqlite(left_rows, right_rows):
    executor = SqlExecutor(RowEngineAdapter())
    executor.execute("CREATE TABLE s (a INT, b INT, c STRING)")
    executor.execute("CREATE TABLE t2 (a INT, d INT, e STRING)")
    if left_rows:
        executor.adapter.insert_rows("s", left_rows)
    if right_rows:
        executor.adapter.insert_rows("t2", right_rows)
    ours = sorted(
        executor.execute("SELECT a, b, d FROM s JOIN t2 ON (a)")
    )

    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE s (a INTEGER, b INTEGER, c TEXT)")
    connection.execute("CREATE TABLE t2 (a INTEGER, d INTEGER, e TEXT)")
    connection.executemany("INSERT INTO s VALUES (?, ?, ?)", left_rows)
    connection.executemany("INSERT INTO t2 VALUES (?, ?, ?)", right_rows)
    theirs = sorted(
        tuple(row)
        for row in connection.execute(
            "SELECT s.a, s.b, t2.d FROM s JOIN t2 USING (a)"
        )
    )
    connection.close()
    assert ours == theirs
