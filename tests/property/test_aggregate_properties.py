"""Aggregation, DISTINCT and ORDER BY: property tests against SQLite
and against the pre-existing row engine.

Two oracles, used for what each is actually authoritative about:

* **SQLite** pins the value semantics — grouping, NULL-skipping
  aggregates (``COUNT(col)``/``SUM``/``MIN``/``MAX``/``AVG`` ignore
  NULLs; ``SUM`` of an empty group is NULL), DISTINCT over NULLs.
  Comparisons are multiset comparisons, because our engine's pinned
  ORDER BY places NULLs last ascending / first descending while SQLite
  treats NULL as smallest.
* **The row engine** pins our own pre-aggregation semantics — the
  compressed and hash paths of ``repro.exec.aggregate`` must return
  exactly what the seed row-at-a-time path returns, including ORDER BY
  output order under LIMIT, where the SQLite comparison is not valid.

A third group exercises the epoch story on a live ``Database``: the
answers of an aggregate query are frozen inside a read-only
transaction while DML and ``compact_step()`` churn underneath, a write
transaction's aggregates see its own buffered rows, and results are
stable at every intermediate step of an incremental compaction.
"""

import sqlite3

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.delta import CompactionPolicy
from repro.sql import (
    ColumnStoreAdapter,
    MutableColumnAdapter,
    RowEngineAdapter,
    SqlExecutor,
)

_AGGREGATES = (
    "COUNT(*)",
    "COUNT(b)",
    "SUM(b)",
    "MIN(b)",
    "MAX(b)",
    "AVG(b)",
)


@st.composite
def small_tables(draw):
    """Rows for ``t (a INT, b INT, c STRING)`` — low-cardinality group
    keys, a measure column with NULLs mixed in."""
    nrows = draw(st.integers(min_value=0, max_value=25))
    return [
        (
            draw(st.integers(0, 3)),
            draw(st.one_of(st.none(), st.integers(-2, 5))),
            draw(st.sampled_from(["x", "y", "z"])),
        )
        for _ in range(nrows)
    ]


@st.composite
def aggregate_queries(draw):
    group_by = draw(st.sampled_from(["", "a", "c", "a, c"]))
    naggs = draw(st.integers(1, 3))
    aggs = [draw(st.sampled_from(_AGGREGATES)) for _ in range(naggs)]
    columns = ", ".join(([group_by] if group_by else []) + aggs)
    where = ""
    if draw(st.booleans()):
        where = f" WHERE a {draw(st.sampled_from(['=', '!=', '<=']))} " \
            f"{draw(st.integers(0, 3))}"
    tail = f" GROUP BY {group_by}" if group_by else ""
    return f"SELECT {columns} FROM t{where}{tail}"


@st.composite
def distinct_queries(draw):
    columns = draw(st.sampled_from(["a", "b", "c", "a, c", "b, c"]))
    where = ""
    if draw(st.booleans()):
        where = f" WHERE a != {draw(st.integers(0, 3))}"
    return f"SELECT DISTINCT {columns} FROM t{where}"


@st.composite
def order_by_queries(draw):
    # The grammar sorts by a single key, which must be selected.
    columns, keys = draw(
        st.sampled_from(
            [
                ("*", ("a", "b", "c")),
                ("a, b", ("a", "b")),
                ("c, b", ("c", "b")),
                ("b", ("b",)),
            ]
        )
    )
    key = draw(st.sampled_from(keys))
    direction = draw(st.sampled_from(["", " ASC", " DESC"]))
    limit = ""
    if draw(st.booleans()):
        limit = f" LIMIT {draw(st.integers(0, 10))}"
    out_columns = ("a", "b", "c") if columns == "*" else tuple(
        name.strip() for name in columns.split(",")
    )
    return (
        f"SELECT {columns} FROM t ORDER BY {key}{direction}{limit}",
        bool(limit),
        out_columns.index(key),
    )


def _normalized(rows):
    """Multiset form, tolerant of float-vs-int AVG/SUM results."""
    return sorted(
        (
            tuple(
                round(value, 9) if isinstance(value, float) else value
                for value in row
            )
            for row in rows
        ),
        key=repr,
    )


def run_ours(adapter, rows, query):
    executor = SqlExecutor(adapter)
    executor.execute("CREATE TABLE t (a INT, b INT, c STRING)")
    if rows:
        executor.adapter.insert_rows("t", rows)
    return executor.execute(query)


def run_sqlite(rows, query):
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE t (a INTEGER, b INTEGER, c TEXT)")
    connection.executemany("INSERT INTO t VALUES (?, ?, ?)", rows)
    out = [tuple(row) for row in connection.execute(query)]
    connection.close()
    return out


@settings(max_examples=100, deadline=None)
@given(small_tables(), aggregate_queries())
def test_aggregates_match_sqlite(rows, query):
    """Compressed popcount/vid-fold paths, the hash fallback and the
    row engine all reproduce SQLite's aggregate value semantics."""
    oracle = _normalized(run_sqlite(rows, query))
    for adapter in (
        MutableColumnAdapter(),
        ColumnStoreAdapter(),
        RowEngineAdapter(),
    ):
        assert _normalized(run_ours(adapter, rows, query)) == oracle


@settings(max_examples=60, deadline=None)
@given(small_tables(), distinct_queries())
def test_distinct_matches_sqlite_and_row_path(rows, query):
    """DISTINCT via live-vid enumeration returns SQLite's multiset,
    and the exact sequence the row engine produces."""
    row_path = run_ours(RowEngineAdapter(), rows, query)
    assert _normalized(row_path) == _normalized(run_sqlite(rows, query))
    for adapter in (MutableColumnAdapter(), ColumnStoreAdapter()):
        assert run_ours(adapter, rows, query) == row_path


@settings(max_examples=60, deadline=None)
@given(small_tables(), order_by_queries())
def test_order_by_matches_row_path(rows, query_spec):
    """Dictionary-order presorted runs reproduce the row engine's
    exact output order (the engine's pinned NULL placement), and —
    without LIMIT, where row sets cannot be cut differently — SQLite's
    multiset."""
    query, has_limit, _key = query_spec
    row_path = run_ours(RowEngineAdapter(), rows, query)
    if not has_limit:
        assert _normalized(row_path) == _normalized(
            run_sqlite(rows, query)
        )
    for adapter in (MutableColumnAdapter(), ColumnStoreAdapter()):
        assert run_ours(adapter, rows, query) == row_path


@settings(max_examples=40, deadline=None)
@given(small_tables(), order_by_queries())
def test_order_by_null_free_key_sequence_matches_sqlite(rows, query_spec):
    """With no NULLs in play the pinned NULL placement is moot: the
    sequence of sort-key values must equal SQLite's (tie order within
    a key is each engine's own, so full rows compare as multisets)."""
    rows = [row for row in rows if row[1] is not None]
    query, has_limit, key = query_spec
    if has_limit:
        # LIMIT can cut a tie group differently per engine; the exact
        # cut is pinned against the row engine above.
        query = query[: query.index(" LIMIT")]
    theirs = run_sqlite(rows, query)
    for adapter in (
        MutableColumnAdapter(),
        ColumnStoreAdapter(),
        RowEngineAdapter(),
    ):
        ours = run_ours(adapter, rows, query)
        assert [row[key] for row in ours] == [row[key] for row in theirs]
        assert _normalized(ours) == _normalized(theirs)


@settings(max_examples=40, deadline=None)
@given(small_tables(), aggregate_queries())
def test_aggregates_match_the_sqlite_baseline_system(rows, query):
    """Same check through the repo's own SQLite baseline
    (``repro.baselines.row_sqlite.SqliteEvolution``) — the system the
    Figure 3 comparisons treat as the row-store ground truth."""
    from repro.baselines.row_sqlite import SqliteEvolution
    from repro.storage.schema import ColumnSchema, TableSchema
    from repro.storage.table import Table
    from repro.storage.types import DataType

    schema = TableSchema(
        "t",
        (
            ColumnSchema("a", DataType.INT),
            ColumnSchema("b", DataType.INT),
            ColumnSchema("c", DataType.STRING),
        ),
    )
    baseline = SqliteEvolution()
    baseline.load(Table.from_rows(schema, rows))
    oracle = _normalized(
        tuple(row) for row in baseline.connection.execute(query)
    )
    assert _normalized(
        run_ours(MutableColumnAdapter(), rows, query)
    ) == oracle


# --- Epoch consistency on a live Database ---------------------------

AGG_QUERIES = (
    "SELECT grp, COUNT(*) FROM t GROUP BY grp",
    "SELECT grp, COUNT(v), SUM(v), MIN(v), MAX(v) FROM t GROUP BY grp",
    "SELECT COUNT(*), SUM(v) FROM t",
    "SELECT DISTINCT grp FROM t",
    "SELECT v FROM t ORDER BY v DESC",
)


def seeded_db(nrows=120):
    db = Database(policy=CompactionPolicy.never())
    db.execute("CREATE TABLE t (grp STRING, v INT)")
    for i in range(nrows):
        db.execute(
            f"INSERT INTO t VALUES ('g{i % 7}', {i % 13})"
        )
    return db


class TestEpochConsistency:
    def test_snapshot_pins_aggregates_under_dml_and_compaction(self):
        db = seeded_db()
        with db.transaction(read_only=True) as tx:
            before = [tx.execute(q) for q in AGG_QUERIES]

            db.execute("INSERT INTO t VALUES ('g99', 999)")
            db.execute("DELETE FROM t WHERE grp = 'g3'")
            db.execute("UPDATE t SET v = 12 WHERE grp = 'g1'")
            while not db.compact_step("t").done:
                pass
            db.execute("INSERT INTO t VALUES ('g98', 998)")

            after = [tx.execute(q) for q in AGG_QUERIES]
            assert before == after

            # A plain read outside the scope sees the live counts.
            live_count = db.execute("SELECT COUNT(*) FROM t")
            assert live_count != before[2][0][:1]

        assert [db.execute(q) for q in AGG_QUERIES] != before

    def test_write_transaction_aggregates_see_own_writes(self):
        db = seeded_db(nrows=20)
        with db.transaction() as tx:
            frozen = tx.execute("SELECT COUNT(*), SUM(v) FROM t")
            tx.execute("INSERT INTO t VALUES ('mine', 100)")
            tx.execute("INSERT INTO t VALUES ('mine', 50)")
            assert tx.execute(
                "SELECT COUNT(*), SUM(v) FROM t WHERE grp = 'mine'"
            ) == [(2, 150)]
            count, total = tx.execute("SELECT COUNT(*), SUM(v) FROM t")[0]
            assert (count, total) == (frozen[0][0] + 2, frozen[0][1] + 150)
            # Other sessions keep aggregating the pre-commit state.
            assert db.execute("SELECT COUNT(*), SUM(v) FROM t") == frozen
        assert db.execute(
            "SELECT COUNT(*) FROM t WHERE grp = 'mine'"
        ) == [(2,)]

    def test_results_stable_at_every_compaction_step(self):
        db = seeded_db()
        # More delta traffic so the incremental compactor has several
        # steps to take.
        for i in range(60):
            db.execute(f"INSERT INTO t VALUES ('g{i % 5}', {i % 11})")
        db.execute("DELETE FROM t WHERE v = 10")

        expected = [db.execute(q) for q in AGG_QUERIES]
        steps = 0
        while not db.compact_step("t").done:
            steps += 1
            assert [db.execute(q) for q in AGG_QUERIES] == expected
        assert [db.execute(q) for q in AGG_QUERIES] == expected
        assert steps >= 1
