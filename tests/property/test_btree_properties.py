"""Property-based stress of the B+-tree against a dict-of-lists oracle."""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rowstore import BPlusTree

operations = st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, 10 ** 6)),
    min_size=0,
    max_size=300,
)


@settings(max_examples=50, deadline=None)
@given(operations, st.sampled_from([4, 8, 64]))
def test_insert_search_matches_oracle(pairs, order):
    tree = BPlusTree(order=order)
    oracle = defaultdict(list)
    for key, row_id in pairs:
        tree.insert(key, row_id)
        oracle[key].append(row_id)
    assert len(tree) == len(pairs)
    for key in range(41):
        assert sorted(tree.search(key)) == sorted(oracle.get(key, []))
    assert tree.keys() == sorted(oracle)


@settings(max_examples=50, deadline=None)
@given(operations, st.sampled_from([4, 16]))
def test_bulk_load_matches_oracle(pairs, order):
    tree = BPlusTree.bulk_load(pairs, order=order)
    oracle = defaultdict(list)
    for key, row_id in pairs:
        oracle[key].append(row_id)
    for key in oracle:
        assert sorted(tree.search(key)) == sorted(oracle[key])
    assert tree.keys() == sorted(oracle)


@settings(max_examples=50, deadline=None)
@given(
    operations,
    st.integers(-5, 45),
    st.integers(-5, 45),
)
def test_range_search_matches_oracle(pairs, low, high):
    if low > high:
        low, high = high, low
    tree = BPlusTree(order=8)
    expected = []
    for key, row_id in pairs:
        tree.insert(key, row_id)
        if low <= key <= high:
            expected.append(row_id)
    assert sorted(tree.range_search(low, high)) == sorted(expected)
