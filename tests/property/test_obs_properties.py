"""Property: observability never changes results.

Two databases replay the same random statement stream — one reading
through a span-traced session (``trace_queries=True``), one untraced —
and every SELECT must return byte-identical row lists, including reads
through pinned read-only transactions held open across DML and
compaction, and reads issued mid-transaction while writes sit in the
commit buffer.  Tracing is observation only; the planner's timing
wrappers must never reorder, drop or duplicate a row."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database

KS = list(range(5))
SS = ["a", "b", "c"]

SELECTS = [
    "SELECT * FROM r",
    "SELECT k FROM r",
    "SELECT DISTINCT s FROM r ORDER BY s",
    "SELECT k, s FROM r WHERE k >= 2 ORDER BY k LIMIT 4",
    "SELECT s FROM r WHERE k = 1 OR s = 'a'",
]

dml = st.one_of(
    st.tuples(st.sampled_from(KS), st.sampled_from(SS)).map(
        lambda t: f"INSERT INTO r VALUES ({t[0]}, '{t[1]}')"
    ),
    st.sampled_from(KS).map(lambda k: f"DELETE FROM r WHERE k = {k}"),
    st.tuples(st.sampled_from(SS), st.sampled_from(KS)).map(
        lambda t: f"UPDATE r SET s = '{t[0]}' WHERE k > {t[1]}"
    ),
)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("dml"), dml),
        st.tuples(st.just("query"), st.sampled_from(SELECTS)),
        st.tuples(st.just("step"), st.integers(min_value=1, max_value=2)),
        st.tuples(st.just("pin"), st.none()),
        st.tuples(st.just("tx_query"), st.sampled_from(SELECTS)),
        st.tuples(st.just("close_oldest"), st.none()),
    ),
    max_size=14,
)


def build_pair(initial, backend="mutable"):
    """Two identical databases; the second one's session traces."""
    databases, sessions = [], []
    for _ in range(2):
        db = Database(backend=backend)
        db.execute("CREATE TABLE r (k INT, s STRING, KEY(k))")
        if initial:
            db.executemany("INSERT INTO r VALUES (?, ?)", initial)
        databases.append(db)
        sessions.append(db.session())
    sessions[1].trace_queries = True
    return databases, sessions


def open_pinned_pair(databases):
    """Matching read-only scopes, the traced one reading through a
    span-traced session (the scope's session is transaction-internal,
    so the test flips the flag directly)."""
    plain = databases[0].transaction(read_only=True).begin()
    traced = databases[1].transaction(read_only=True).begin()
    traced._session.trace_queries = True
    frozen = plain.execute("SELECT * FROM r")
    return plain, traced, frozen


@settings(max_examples=25, deadline=None)
@given(initial=st.lists(
    st.tuples(st.sampled_from(KS), st.sampled_from(SS)), max_size=8,
), stream=operations)
def test_traced_reads_equal_untraced_reads(initial, stream):
    databases, sessions = build_pair(initial)
    pinned = []  # (plain tx, traced tx, frozen SELECT *)
    try:
        for kind, payload in stream:
            if kind == "dml":
                affected = [s.execute(payload) for s in sessions]
                assert affected[0] == affected[1]
            elif kind == "query":
                plain_rows, traced_rows = (
                    s.execute(payload) for s in sessions
                )
                assert traced_rows == plain_rows
                trace = sessions[1].last_trace
                assert trace is not None and trace.executed
                assert trace.root.rows_out == len(traced_rows)
            elif kind == "step":
                for db in databases:
                    db.compact_step("r", columns=payload)
            elif kind == "pin":
                pinned.append(open_pinned_pair(databases))
            elif kind == "tx_query":
                for plain, traced, frozen in pinned:
                    plain_rows = plain.execute(payload)
                    assert traced.execute(payload) == plain_rows
                    assert plain.execute("SELECT * FROM r") == frozen
            elif kind == "close_oldest" and pinned:
                plain, traced, _frozen = pinned.pop(0)
                plain.rollback()
                traced.rollback()
        # Whatever the stream did, the two live states converged.
        assert sessions[1].execute("SELECT * FROM r") == sessions[0].execute(
            "SELECT * FROM r"
        )
    finally:
        for plain, traced, _frozen in pinned:
            plain.rollback()
            traced.rollback()


@settings(max_examples=25, deadline=None)
@given(
    initial=st.lists(
        st.tuples(st.sampled_from(KS), st.sampled_from(SS)), max_size=6,
    ),
    buffered=st.lists(dml, min_size=1, max_size=4),
    select=st.sampled_from(SELECTS),
)
def test_tracing_mid_transaction_with_buffered_writes(
    initial, buffered, select
):
    databases, sessions = build_pair(initial)
    scopes = [db.transaction() for db in databases]
    with scopes[0] as plain, scopes[1] as traced:
        traced._session.trace_queries = True
        for statement in buffered:
            plain.execute(statement)
            traced.execute(statement)
        # Mid-transaction reads see the pinned state, traced or not.
        assert traced.execute(select) == plain.execute(select)
        assert traced.execute("SELECT * FROM r") == plain.execute(
            "SELECT * FROM r"
        )
    # The replayed commits leave both databases byte-identical.
    assert sessions[1].execute("SELECT * FROM r") == sessions[0].execute(
        "SELECT * FROM r"
    )


@settings(max_examples=10, deadline=None)
@given(
    initial=st.lists(
        st.tuples(st.sampled_from(KS), st.sampled_from(SS)),
        min_size=1, max_size=8,
    ),
    select=st.sampled_from(SELECTS),
)
def test_tracing_is_inert_on_every_backend(initial, select):
    for backend in ("mutable", "column", "row"):
        _databases, sessions = build_pair(initial, backend=backend)
        plain_rows, traced_rows = (s.execute(select) for s in sessions)
        assert traced_rows == plain_rows
        analyzed = sessions[1].execute("EXPLAIN ANALYZE " + select)
        assert analyzed[0][4] == len(plain_rows)  # root rows_out
