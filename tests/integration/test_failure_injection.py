"""Integration: failure injection and defensive behaviour.

Corrupt the storage on purpose and check that every layer either detects
the damage (verification, decode guards) or fails with a library error
rather than silently producing wrong answers.
"""

import numpy as np
import pytest

from repro.bitmap import WAHBitmap
from repro.core import EvolutionEngine, EvolutionStatus
from repro.core.distinction import distinction_bitmap
from repro.errors import CodsError, EvolutionError, StorageError
from repro.smo import parse_smo
from repro.storage import DataType, table_from_python, verify_table


@pytest.fixture
def table():
    return table_from_python(
        "R",
        {
            "K": (DataType.INT, [1, 1, 2, 3]),
            "P": (DataType.INT, [7, 8, 9, 9]),
            "D": (DataType.INT, [4, 4, 5, 6]),
        },
    )


class TestCorruptedBitmaps:
    def test_empty_value_bitmap_caught_by_distinction(self, table):
        column = table.column("K")
        column.bitmaps[1] = WAHBitmap.zeros(table.nrows)
        with pytest.raises(EvolutionError, match="stale"):
            distinction_bitmap(column, EvolutionStatus())

    def test_coverage_gap_caught_by_decode(self, table):
        column = table.column("P")
        column.bitmaps[0] = WAHBitmap.zeros(table.nrows)
        with pytest.raises(StorageError):
            column.decode_vids()

    def test_verify_pinpoints_overlap(self, table):
        column = table.column("D")
        column.bitmaps[0] = WAHBitmap.ones(table.nrows)
        report = verify_table(table)
        assert not report.ok
        assert any("D" in v for v in report.violations)

    def test_corruption_does_not_crash_engine_validation(self, table):
        """Validation is schema-level; corruption surfaces at execution
        as a library error, never as silently wrong output."""
        engine = EvolutionEngine()
        engine.load_table(table)
        engine.table("R").column("K").bitmaps[0] = WAHBitmap.zeros(
            table.nrows
        )
        with pytest.raises(CodsError):
            engine.apply(
                parse_smo("DECOMPOSE TABLE R INTO S (K, P), T (K, D)")
            )


class TestDefensiveErrors:
    def test_bitmap_length_mismatch(self):
        with pytest.raises(CodsError):
            _ = WAHBitmap.ones(10) & WAHBitmap.ones(11)

    def test_select_with_out_of_range_positions(self):
        bm = WAHBitmap.ones(10)
        # Positions beyond nbits: searchsorted clamps, so selecting past
        # the end yields zero bits rather than garbage.
        out = bm.select(np.array([5, 20], dtype=np.int64))
        assert out.nbits == 2
        assert out.get(0) is True
        assert out.get(1) is False

    def test_engine_missing_table(self, table):
        engine = EvolutionEngine()
        engine.load_table(table)
        with pytest.raises(CodsError):
            engine.apply(parse_smo("DROP TABLE Missing"))
        with pytest.raises(CodsError):
            engine.table("Missing")

    def test_sql_errors_are_library_errors(self):
        from repro.sql import RowEngineAdapter, SqlExecutor

        executor = SqlExecutor(RowEngineAdapter())
        with pytest.raises(CodsError):
            executor.execute("SELECT * FROM ghost")
        with pytest.raises(CodsError):
            executor.execute("NOT EVEN SQL")

    def test_csv_loader_errors(self, tmp_path):
        from repro.storage import load_csv

        path = tmp_path / "bad.csv"
        path.write_text("a\nx\ny,z\n")
        with pytest.raises(CodsError):
            load_csv(path)

    def test_all_public_errors_share_root(self):
        import repro.errors as errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.CodsError:
                    assert issubclass(obj, errors.CodsError), name
