"""Integration: failure injection and defensive behaviour.

Corrupt the storage on purpose and check that every layer either detects
the damage (verification, decode guards) or fails with a library error
rather than silently producing wrong answers.  The WAL cases damage the
redo log itself: a torn tail is the expected debris of a crash and is
repaired, anything deeper raises a typed
:class:`~repro.errors.WalCorruptionError` — committed data is never
silently dropped.
"""

import struct

import numpy as np
import pytest

from repro.bitmap import WAHBitmap
from repro.core import EvolutionEngine, EvolutionStatus
from repro.core.distinction import distinction_bitmap
from repro.db import Database
from repro.errors import (
    CodsError,
    EvolutionError,
    StorageError,
    WalCorruptionError,
)
from repro.smo import parse_smo
from repro.storage import DataType, table_from_python, verify_table
from repro.wal import records as wal_records
from repro.wal import wal_path


@pytest.fixture
def table():
    return table_from_python(
        "R",
        {
            "K": (DataType.INT, [1, 1, 2, 3]),
            "P": (DataType.INT, [7, 8, 9, 9]),
            "D": (DataType.INT, [4, 4, 5, 6]),
        },
    )


class TestCorruptedBitmaps:
    def test_empty_value_bitmap_caught_by_distinction(self, table):
        column = table.column("K")
        column.bitmaps[1] = WAHBitmap.zeros(table.nrows)
        with pytest.raises(EvolutionError, match="stale"):
            distinction_bitmap(column, EvolutionStatus())

    def test_coverage_gap_caught_by_decode(self, table):
        column = table.column("P")
        column.bitmaps[0] = WAHBitmap.zeros(table.nrows)
        with pytest.raises(StorageError):
            column.decode_vids()

    def test_verify_pinpoints_overlap(self, table):
        column = table.column("D")
        column.bitmaps[0] = WAHBitmap.ones(table.nrows)
        report = verify_table(table)
        assert not report.ok
        assert any("D" in v for v in report.violations)

    def test_corruption_does_not_crash_engine_validation(self, table):
        """Validation is schema-level; corruption surfaces at execution
        as a library error, never as silently wrong output."""
        engine = EvolutionEngine()
        engine.load_table(table)
        engine.table("R").column("K").bitmaps[0] = WAHBitmap.zeros(
            table.nrows
        )
        with pytest.raises(CodsError):
            engine.apply(
                parse_smo("DECOMPOSE TABLE R INTO S (K, P), T (K, D)")
            )


class TestDamagedWal:
    """Satellite: deliberate damage to ``wal.log`` and the checkpoint
    metadata.  Each case either recovers (torn tail — the one shape a
    crash legitimately produces) or fails with a typed error; committed
    records before the damage are never silently dropped."""

    @pytest.fixture
    def crashed_catalog(self, tmp_path):
        """A catalog whose database committed two inserts and then
        crashed: the log holds both, the sidecars neither."""
        directory = tmp_path / "cat"
        db = Database(directory, durability="commit")
        db.execute("CREATE TABLE r (k INT, s STRING)")
        db.checkpoint()
        db.execute("INSERT INTO r VALUES (1, 'a')")
        db.execute("INSERT INTO r VALUES (2, 'b')")
        return directory  # abandoned without close(): the "crash"

    def test_torn_tail_record_recovers_the_committed_prefix(
        self, crashed_catalog
    ):
        log = wal_path(crashed_catalog)
        with log.open("ab") as handle:
            # Half a frame: the prefix promises more bytes than exist.
            handle.write(struct.pack("<II", 4096, 0) + b"partial")
        with Database(crashed_catalog, durability="commit") as db:
            assert db.execute("SELECT * FROM r") == [(1, "a"), (2, "b")]
        assert b"partial" not in log.read_bytes()  # repair is durable

    def test_bit_flipped_record_mid_log_is_typed_corruption(
        self, crashed_catalog
    ):
        log = wal_path(crashed_catalog)
        data = bytearray(log.read_bytes())
        # Flip one payload byte of the FIRST frame: intact frames
        # follow, so this cannot be read as a torn tail.
        data[wal_records.HEADER_SIZE + wal_records.FRAME_PREFIX + 2] ^= 0xFF
        log.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError, match="checksum"):
            Database(crashed_catalog, durability="commit")

    def test_truncated_header_is_typed_corruption(self, crashed_catalog):
        log = wal_path(crashed_catalog)
        log.write_bytes(log.read_bytes()[:6])
        with pytest.raises(WalCorruptionError, match="not a write-ahead"):
            Database(crashed_catalog, durability="commit")

    def test_checkpoint_past_log_end_is_typed_corruption(self, tmp_path):
        import json

        from repro.storage.filefmt import (
            _DELTA_MAGIC,
            _DELTA_VERSION,
            _read_delta_payload,
            _write_block,
            delta_sidecar_path,
        )

        directory = tmp_path / "cat"
        with Database(directory, durability="commit") as db:
            db.execute("CREATE TABLE r (k INT)")
            db.execute("INSERT INTO r VALUES (1)")
        sidecar = delta_sidecar_path(directory / "r.cods")
        _, payload = _read_delta_payload(sidecar)
        assert payload["wal_lsn"] is not None
        payload["wal_lsn"] = 10**9  # claims a log that never existed
        with sidecar.open("wb") as handle:
            handle.write(_DELTA_MAGIC)
            handle.write(struct.pack("<H", _DELTA_VERSION))
            _write_block(handle, json.dumps(payload).encode())
        with pytest.raises(WalCorruptionError, match="outside"):
            Database(directory, durability="commit")

    def test_log_without_catalog_is_typed_corruption(self, tmp_path):
        directory = tmp_path / "cat"
        db = Database(directory, durability="commit")
        db.execute("CREATE TABLE r (k INT)")
        db.execute("INSERT INTO r VALUES (1)")
        (directory / "catalog.json").unlink()  # mis-assembled directory
        with pytest.raises(WalCorruptionError, match="catalog"):
            Database(directory, durability="commit")


class TestDefensiveErrors:
    def test_bitmap_length_mismatch(self):
        with pytest.raises(CodsError):
            _ = WAHBitmap.ones(10) & WAHBitmap.ones(11)

    def test_select_with_out_of_range_positions(self):
        bm = WAHBitmap.ones(10)
        # Positions beyond nbits: searchsorted clamps, so selecting past
        # the end yields zero bits rather than garbage.
        out = bm.select(np.array([5, 20], dtype=np.int64))
        assert out.nbits == 2
        assert out.get(0) is True
        assert out.get(1) is False

    def test_engine_missing_table(self, table):
        engine = EvolutionEngine()
        engine.load_table(table)
        with pytest.raises(CodsError):
            engine.apply(parse_smo("DROP TABLE Missing"))
        with pytest.raises(CodsError):
            engine.table("Missing")

    def test_sql_errors_are_library_errors(self):
        from repro.sql import RowEngineAdapter, SqlExecutor

        executor = SqlExecutor(RowEngineAdapter())
        with pytest.raises(CodsError):
            executor.execute("SELECT * FROM ghost")
        with pytest.raises(CodsError):
            executor.execute("NOT EVEN SQL")

    def test_csv_loader_errors(self, tmp_path):
        from repro.storage import load_csv

        path = tmp_path / "bad.csv"
        path.write_text("a\nx\ny,z\n")
        with pytest.raises(CodsError):
            load_csv(path)

    def test_all_public_errors_share_root(self):
        import repro.errors as errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.CodsError:
                    assert issubclass(obj, errors.CodsError), name
