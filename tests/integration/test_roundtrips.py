"""Integration: structural roundtrips across the whole stack.

Covers DESIGN.md invariants 3 (decompose∘merge = identity) and 7
(history replay determinism), plus persistence across an evolution.
"""

import pytest

from repro.core import EvolutionEngine
from repro.smo import (
    Comparison,
    DecomposeTable,
    MergeTables,
    PartitionTable,
    UnionTables,
    parse_smo,
)
from repro.storage import load_catalog, save_catalog
from repro.workload import EmployeeWorkload, SalesStarWorkload
from tests.conftest import make_fd_table


class TestDecomposeMergeIdentity:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_tables(self, seed):
        table = make_fd_table(120, 10 + seed, seed=seed)
        engine = EvolutionEngine()
        engine.load_table(table)
        engine.apply(DecomposeTable("R", "S", ("K", "P"), "T", ("K", "D")))
        engine.apply(MergeTables("S", "T", "R"))
        assert engine.table("R").same_content(table, ordered=True)

    def test_workload_scale(self):
        workload = EmployeeWorkload(5_000, 300, seed=17)
        table = workload.build()
        engine = EvolutionEngine(extra_fds=[workload.fd])
        engine.load_table(table)
        engine.apply(workload.decompose_op())
        engine.apply(workload.merge_op())
        assert engine.table("R").same_content(table, ordered=True)

    def test_repeated_cycles_stable(self):
        table = make_fd_table(100, 8, seed=5)
        engine = EvolutionEngine()
        engine.load_table(table)
        for _ in range(3):
            engine.apply(
                DecomposeTable("R", "S", ("K", "P"), "T", ("K", "D"))
            )
            engine.apply(MergeTables("S", "T", "R"))
        assert engine.table("R").same_content(table, ordered=True)


class TestPartitionUnionIdentity:
    def test_roundtrip_multiset(self):
        table = make_fd_table(150, 12, seed=6)
        engine = EvolutionEngine()
        engine.load_table(table)
        engine.apply(
            PartitionTable("R", "A", "B", Comparison("P", "<", 2))
        )
        engine.apply(UnionTables("A", "B", "R"))
        assert engine.table("R").same_content(table)  # row order may differ

    def test_empty_side(self):
        table = make_fd_table(50, 5, seed=7)
        engine = EvolutionEngine()
        engine.load_table(table)
        engine.apply(
            PartitionTable("R", "A", "B", Comparison("P", ">=", 0))
        )
        assert engine.table("A").nrows == 50
        assert engine.table("B").nrows == 0
        engine.apply(UnionTables("A", "B", "R"))
        assert engine.table("R").same_content(table)


class TestPersistenceAcrossEvolution:
    def test_save_evolve_load(self, tmp_path, fig1_table):
        engine = EvolutionEngine()
        engine.load_table(fig1_table)
        engine.apply(
            parse_smo(
                "DECOMPOSE TABLE R INTO S (Employee, Skill), "
                "T (Employee, Address)"
            )
        )
        save_catalog(engine.catalog, tmp_path / "db")
        loaded = load_catalog(tmp_path / "db")
        # Continue evolving the reloaded catalog.
        resumed = EvolutionEngine(loaded)
        resumed.apply(MergeTables("S", "T", "R"))
        assert resumed.table("R").same_content(fig1_table.renamed("R"))


class TestHistoryReplay:
    def test_star_snowflake_history(self):
        workload = SalesStarWorkload(800, n_products=40, n_categories=6)
        sales, products = workload.build()
        engine = EvolutionEngine()
        engine.load_table(sales)
        engine.load_table(products)
        engine.apply(workload.snowflake_op())
        engine.apply(workload.star_op())
        engine.apply(parse_smo("RENAME TABLE Product TO ProductV2"))

        fresh = EvolutionEngine()
        fresh.load_table(sales)
        fresh.load_table(products)
        engine.history.replay(fresh)
        assert fresh.catalog.table_names() == engine.catalog.table_names()
        for name in engine.catalog.table_names():
            assert fresh.table(name).same_content(engine.table(name))

    def test_versions_increase_monotonically(self, fig1_table):
        engine = EvolutionEngine()
        engine.load_table(fig1_table)
        engine.apply_script(
            "COPY TABLE R TO A; COPY TABLE R TO B; DROP TABLE A; DROP TABLE B"
        )
        versions = [entry.version for entry in engine.history]
        assert versions == [1, 2, 3, 4]
