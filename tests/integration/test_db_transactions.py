"""Whole-catalog transactions through the `repro.db` façade.

The acceptance bar for the API layer: a ``db.transaction()`` read scope
must return *identical multi-table results* before and after concurrent
DML and incremental compaction, and read-write scopes must buffer until
commit and vanish on rollback.
"""

import pytest

from repro.db import Database
from repro.delta import CompactionPolicy
from repro.errors import CapabilityError, TransactionError
from repro.workload.readwrite import MixedReadWriteWorkload


def seeded_db() -> Database:
    db = Database(policy=CompactionPolicy.never())
    db.execute_script(
        """
        CREATE TABLE emp (name STRING, skill STRING);
        INSERT INTO emp VALUES ('Jones', 'Typing'), ('Ellis', 'Alchemy');
        CREATE TABLE addr (name STRING, street STRING);
        INSERT INTO addr VALUES ('Jones', 'Grant Ave'),
            ('Ellis', 'Industrial Way');
        CREATE TABLE audit (name STRING, note STRING);
        INSERT INTO audit VALUES ('Jones', 'hired')
        """
    )
    return db


QUERIES = (
    "SELECT * FROM emp",
    "SELECT * FROM addr",
    "SELECT * FROM audit",
    "SELECT name, street FROM emp JOIN addr ON (name)",
)


class TestCrossTableSnapshot:
    def test_read_scope_frozen_under_dml_and_compaction(self):
        """The acceptance criterion: every table (and a cross-table
        join) answers identically before and after concurrent inserts,
        updates, deletes and compact_step() on multiple tables."""
        db = seeded_db()
        with db.transaction(read_only=True) as tx:
            before = [tx.execute(q) for q in QUERIES]

            # Concurrent traffic on every table, outside the scope.
            db.execute("INSERT INTO emp VALUES ('Smith', 'Welding')")
            db.execute("UPDATE emp SET skill = 'Filing' "
                       "WHERE name = 'Ellis'")
            db.execute("DELETE FROM addr WHERE name = 'Jones'")
            db.execute("INSERT INTO audit VALUES ('Smith', 'hired')")
            # Incremental compaction on two tables, driven to completion.
            while not db.compact_step("emp").done:
                pass
            while not db.compact_step("addr").done:
                pass
            db.execute("INSERT INTO emp VALUES ('Nguyen', 'Poetry')")

            after = [tx.execute(q) for q in QUERIES]
            assert before == after

            # The pins are scope-local: a plain read on the database,
            # issued while the scope is still open, sees live state.
            outside = db.execute("SELECT * FROM emp")
            assert ("Smith", "Welding") in outside
            assert ("Nguyen", "Poetry") in outside

        # After the scope the live state remains visible — and differs.
        live = [db.execute(q) for q in QUERIES]
        assert live != before
        assert ("Smith", "Welding") in live[0]
        assert all(name != "Jones" for name, _street in live[1])

    def test_epoch_vector_names_every_table(self):
        db = seeded_db()
        with db.transaction(read_only=True) as tx:
            vector = tx.epoch_vector
        assert set(vector) == {"emp", "addr", "audit"}
        assert all(
            isinstance(generation, int) and isinstance(epoch, int)
            for generation, epoch in vector.values()
        )

    def test_scopes_nest(self):
        db = seeded_db()
        with db.transaction(read_only=True) as outer:
            base = outer.execute("SELECT * FROM emp")
            db.execute("INSERT INTO emp VALUES ('Smith', 'Welding')")
            with db.transaction(read_only=True) as inner:
                newer = inner.execute("SELECT * FROM emp")
                assert ("Smith", "Welding") in newer
            # Ending the inner scope re-exposes the outer pin.
            assert outer.execute("SELECT * FROM emp") == base


class TestReadWriteScopes:
    def test_writes_buffer_until_commit(self):
        db = seeded_db()
        with db.transaction() as tx:
            frozen = tx.execute("SELECT * FROM emp")
            # DML applies to the scope's overlay immediately (returning
            # its affected count) while the statement text buffers for
            # commit replay.
            assert tx.execute(
                "INSERT INTO emp VALUES (?, ?)", ("Smith", "Welding")
            ) == 1
            assert tx.execute(
                "UPDATE emp SET skill = 'Sonnets' WHERE name = 'Smith'"
            ) == 1
            assert tx.pending_writes == 2
            # Read-your-writes: the scope sees its own buffered DML on
            # top of the pinned view ...
            assert tx.execute("SELECT * FROM emp") == (
                frozen + [("Smith", "Sonnets")]
            )
            # ... while other sessions keep reading live state, where
            # nothing has landed yet.
            assert db.execute("SELECT * FROM emp") == frozen
        assert tx.state == "committed"
        assert ("Smith", "Sonnets") in db.execute("SELECT * FROM emp")

    def test_exception_rolls_back(self):
        db = seeded_db()
        with pytest.raises(RuntimeError):
            with db.transaction() as tx:
                tx.execute("DELETE FROM emp")
                raise RuntimeError("abort")
        assert tx.state == "rolled-back"
        assert len(db.execute("SELECT * FROM emp")) == 2

    def test_explicit_commit_returns_affected_rows(self):
        db = seeded_db()
        tx = db.transaction().begin()
        tx.execute("INSERT INTO emp VALUES ('A', 'x')")
        tx.execute("DELETE FROM emp WHERE name = 'A'")
        assert tx.commit() == 2
        with pytest.raises(TransactionError, match="committed"):
            tx.execute("SELECT * FROM emp")

    def test_commit_failure_names_the_statement(self):
        db = seeded_db()
        tx = db.transaction().begin()
        tx.execute("INSERT INTO emp VALUES ('A', 'x')")
        tx._buffered.append("DELETE FROM vanished")  # simulate a race
        with pytest.raises(Exception, match="statement 2"):
            tx.commit()
        # Terminal failed state: the applied statement left the buffer,
        # the failing one remains, and the scope cannot be reused.
        assert tx.state == "commit-failed"
        assert tx.pending_writes == 1
        with pytest.raises(TransactionError, match="commit-failed"):
            tx.execute("SELECT * FROM emp")
        assert ("A", "x") in db.execute("SELECT * FROM emp")

    def test_buffered_writes_fail_fast_on_unknown_tables(self):
        db = seeded_db()
        with db.transaction() as tx:
            with pytest.raises(Exception, match="vanished"):
                tx.execute("INSERT INTO vanished VALUES ('A', 'x')")
            assert tx.pending_writes == 0

    def test_read_only_rejects_writes(self):
        db = seeded_db()
        with db.transaction(read_only=True) as tx:
            with pytest.raises(TransactionError, match="read-only"):
                tx.execute("DELETE FROM emp")

    def test_schema_changes_rejected_inside_any_scope(self):
        db = seeded_db()
        with db.transaction() as tx:
            with pytest.raises(TransactionError, match="not transactional"):
                tx.execute("ADD COLUMN age INT TO emp")
            with pytest.raises(TransactionError, match="not transactional"):
                tx.execute("DROP TABLE emp")

    def test_transactions_need_snapshot_capability(self):
        db = Database(backend="row")
        db.execute("CREATE TABLE r (k INT)")
        with pytest.raises(CapabilityError, match="snapshots"):
            db.transaction()


class TestTransactionsUnderWorkload:
    def test_pinned_scope_survives_the_mixed_stream(self):
        """A long-lived read scope stays frozen while the whole mixed
        DML stream lands through the façade."""
        workload = MixedReadWriteWorkload(500, 60, n_employees=20)
        db = Database(policy=CompactionPolicy(max_delta_rows=64))
        db.load_table(workload.build())
        session = db.session()
        with db.transaction(read_only=True) as tx:
            frozen = tx.execute("SELECT * FROM R")
            counters = workload.apply_to_session(session)
            assert counters["rows_affected"] > 0
            assert tx.execute("SELECT * FROM R") == frozen
        assert len(db.execute("SELECT * FROM R")) != len(frozen)


class TestDroppedTableScopes:
    """A pinned scope must be invalidated when its table is dropped —
    by SQL DROP TABLE *or* by an SMO that consumes the table — so a
    name reused after the drop serves the replacement table, never
    dropped rows, to the stale scope (the PR-3 ROADMAP hazard).  The
    scope's first read of the reused name pins it on touch, so repeat
    reads stay consistent from there on."""

    def test_smo_drop_invalidates_the_pinned_scope(self):
        db = seeded_db()
        tx = db.transaction(read_only=True).begin()
        assert len(tx.execute("SELECT * FROM audit")) == 1
        # An SMO consumes the pinned table outside the scope ...
        db.execute("DECOMPOSE TABLE audit INTO audit (name), "
                   "note_log (name, note)")
        # ... and reuses the name.  The stale scope must see the new
        # table (one column now), not the dropped two-column rows; the
        # read pins the replacement on touch.
        rows = tx.execute("SELECT * FROM audit")
        assert rows == [("Jones",)]
        db.execute("INSERT INTO audit VALUES ('Reused')")
        # Pinned on first touch: the later outside insert stays
        # invisible to this scope.
        assert tx.execute("SELECT * FROM audit") == [("Jones",)]
        tx.rollback()
        assert ("Reused",) in db.execute("SELECT * FROM audit")

    def test_sql_drop_invalidates_other_scopes_too(self):
        db = seeded_db()
        tx = db.transaction(read_only=True).begin()
        db.execute("DROP TABLE audit")
        db.execute("CREATE TABLE audit (n INT)")
        db.execute("INSERT INTO audit VALUES (7)")
        # The scope's pin died with the dropped table: reads of the
        # reused name go to the replacement table (pinned on touch).
        assert tx.execute("SELECT * FROM audit") == [(7,)]
        tx.rollback()

    def test_unconsumed_tables_stay_pinned(self):
        """Dropping one table must not disturb the other pins."""
        db = seeded_db()
        with db.transaction(read_only=True) as tx:
            before = tx.execute("SELECT * FROM emp")
            db.execute("DROP TABLE audit")
            db.execute("INSERT INTO emp VALUES ('Smith', 'Welding')")
            assert tx.execute("SELECT * FROM emp") == before

    def test_merge_consuming_pinned_inputs_clears_both(self):
        db = seeded_db()
        with db.transaction(read_only=True) as tx:
            tx.execute("SELECT * FROM emp")
            db.execute("MERGE TABLES emp, addr INTO emp ON (name)")
            rows = tx.execute("SELECT * FROM emp")
            # Live post-merge shape: name, skill, street.
            assert all(len(row) == 3 for row in rows)

    def test_snapshot_scope_on_adapter_follows_smo_drop(self):
        """The same invalidation through the shared adapter's
        snapshot_scope (no transaction machinery involved)."""
        db = seeded_db()
        adapter = db.adapter
        with adapter.snapshot_scope("audit"):
            db.execute("DECOMPOSE TABLE audit INTO audit (name), "
                       "note_log (name, note)")
            rows = list(adapter.scan_rows("audit"))
            assert rows == [("Jones",)]


class TestPinOnFirstTouch:
    """A table created by another session after ``begin()`` is missing
    from the epoch vector; the scope pins it on first touch so repeat
    reads stay stable (regression for the pin-on-create hole, where
    such a table silently served live state forever)."""

    def test_mid_scope_created_table_pins_on_first_touch(self):
        db = seeded_db()
        with db.transaction(read_only=True) as tx:
            assert "late" not in tx.epoch_vector
            db.execute("CREATE TABLE late (n INT)")
            db.execute("INSERT INTO late VALUES (1)")
            first = tx.execute("SELECT * FROM late")
            assert first == [(1,)]
            assert "late" in tx.epoch_vector
            # The touch pinned it: later outside traffic is invisible.
            db.execute("INSERT INTO late VALUES (2)")
            db.execute("DELETE FROM late WHERE n = 1")
            assert tx.execute("SELECT * FROM late") == first
        assert db.execute("SELECT * FROM late") == [(2,)]

    def test_writes_pin_the_created_table_too(self):
        db = seeded_db()
        with db.transaction() as tx:
            db.execute("CREATE TABLE late (n INT)")
            assert tx.execute("INSERT INTO late VALUES (7)") == 1
            db.execute("INSERT INTO late VALUES (8)")  # outside, post-pin
            assert tx.execute("SELECT * FROM late") == [(7,)]
        # Commit replays against live state: both rows land.
        assert sorted(db.execute("SELECT * FROM late")) == [(7,), (8,)]


class TestReadYourWrites:
    def test_scope_sees_its_own_updates_and_deletes_only(self):
        db = seeded_db()
        with db.transaction() as tx:
            assert tx.execute("DELETE FROM emp WHERE name = 'Jones'") == 1
            assert tx.execute(
                "UPDATE emp SET skill = 'Brewing' WHERE name = 'Ellis'"
            ) == 1
            assert tx.execute("SELECT * FROM emp") == [("Ellis", "Brewing")]
            # Other sessions keep reading live, untouched state.
            assert sorted(db.execute("SELECT * FROM emp")) == [
                ("Ellis", "Alchemy"), ("Jones", "Typing"),
            ]
        assert db.execute("SELECT * FROM emp") == [("Ellis", "Brewing")]

    def test_insert_select_reads_the_scopes_own_writes(self):
        db = seeded_db()
        with db.transaction() as tx:
            tx.execute("INSERT INTO emp VALUES ('Smith', 'Welding')")
            copied = tx.execute("INSERT INTO audit SELECT * FROM emp")
            assert copied == 3  # the two pinned rows plus the overlay's
            assert len(tx.execute("SELECT * FROM audit")) == 4
        assert len(db.execute("SELECT * FROM audit")) == 4

    def test_rollback_discards_the_overlay(self):
        db = seeded_db()
        tx = db.transaction().begin()
        tx.execute("DELETE FROM emp")
        assert tx.execute("SELECT * FROM emp") == []
        tx.rollback()
        assert len(db.execute("SELECT * FROM emp")) == 2
