"""Threaded stress tests: writers, pinned readers, and the background
compactor sharing one catalog.

The locking contract under test (see docs/ARCHITECTURE.md,
"Concurrency"): DML serializes per table under the writer lock, whole
transactions serialize under the database commit lock, and snapshot
pins stay consistent throughout — no lost updates, no torn epoch
vectors, and a final state equal to a single-threaded oracle (writers
touch disjoint key ranges, so their interleaving is order-independent).

Deadlock guards: every thread is joined with a timeout and the test
fails loudly if one is still alive; exceptions raised inside threads
are collected and re-raised.  In CI the file additionally runs under
pytest-timeout with pytest's faulthandler dump enabled (see ci.yml);
the ``timeout`` marker is registered-but-inert locally, where the
plugin is not a dependency.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.db import Database
from repro.delta import CompactionPolicy
from repro.errors import CapabilityError

pytestmark = pytest.mark.timeout(120)

WRITERS = 4
ROWS_PER_WRITER = 50
JOIN_TIMEOUT = 60.0


def writer_script(writer: int):
    """The deterministic DML stream of one writer thread: inserts into
    a disjoint key range, with periodic updates and deletes."""
    base = writer * 1000
    for i in range(ROWS_PER_WRITER):
        key = base + i
        yield ("INSERT INTO t VALUES (?, ?, ?)", (key, writer, "v%d" % i))
        if i % 7 == 3:
            yield ("UPDATE t SET s = ? WHERE k = ?", ("u%d" % i, key))
        if i % 11 == 5:
            yield ("DELETE FROM t WHERE k = ?", (key - 1,))


def expected_rows(writer: int) -> list[tuple]:
    """Single-threaded oracle for one writer's script."""
    rows: dict[int, tuple] = {}
    base = writer * 1000
    for i in range(ROWS_PER_WRITER):
        key = base + i
        rows[key] = (key, writer, "v%d" % i)
        if i % 7 == 3:
            rows[key] = (key, writer, "u%d" % i)
        if i % 11 == 5:
            rows.pop(key - 1, None)
    return list(rows.values())


def oracle() -> list[tuple]:
    return sorted(
        row for writer in range(WRITERS) for row in expected_rows(writer)
    )


def run_writer(db, writer, errors, gate):
    try:
        session = db.session()
        gate.wait(timeout=30)
        for statement, params in writer_script(writer):
            session.execute(statement, params)
    except BaseException as exc:  # noqa: BLE001 - re-raised by the test
        errors.append(exc)


def join_all(threads):
    for thread in threads:
        thread.join(JOIN_TIMEOUT)
    stuck = [thread.name for thread in threads if thread.is_alive()]
    assert not stuck, f"threads deadlocked or hung: {stuck}"


class TestConcurrentWriters:
    def test_no_lost_updates_under_writers_and_compactor(self):
        db = Database(policy=CompactionPolicy(max_delta_rows=32))
        db.execute("CREATE TABLE t (k INT, w INT, s STRING)")
        db.start_compactor(interval=0.001, columns=1)
        errors: list = []
        gate = threading.Barrier(WRITERS + 2)
        stop_readers = threading.Event()

        def run_reader():
            try:
                gate.wait(timeout=30)
                while not stop_readers.is_set():
                    # A pinned scope must answer identically twice no
                    # matter what the writers and the compactor do.
                    with db.transaction(read_only=True) as tx:
                        first = tx.execute("SELECT * FROM t")
                        assert tx.execute("SELECT * FROM t") == first
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        writers = [
            threading.Thread(
                target=run_writer,
                args=(db, writer, errors, gate),
                name="writer-%d" % writer,
            )
            for writer in range(WRITERS)
        ]
        readers = [
            threading.Thread(target=run_reader, name="reader-%d" % reader)
            for reader in range(2)
        ]
        for thread in writers + readers:
            thread.start()
        join_all(writers)
        stop_readers.set()
        join_all(readers)
        db.stop_compactor()  # re-raises anything the thread died on
        if errors:
            raise errors[0]
        assert sorted(db.execute("SELECT * FROM t")) == oracle()

    def test_cross_table_pins_are_atomic_against_commits(self):
        """A committing transaction inserts matched rows into two
        tables; a reader pinning both must never observe one table's
        commit without the other's — a torn epoch vector."""
        db = Database()
        db.execute("CREATE TABLE left_t (k INT)")
        db.execute("CREATE TABLE right_t (k INT)")
        errors: list = []
        gate = threading.Barrier(3)
        stop_readers = threading.Event()

        def run_paired_writer():
            try:
                gate.wait(timeout=30)
                for k in range(40):
                    with db.transaction() as tx:
                        tx.execute("INSERT INTO left_t VALUES (?)", (k,))
                        tx.execute("INSERT INTO right_t VALUES (?)", (k,))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                stop_readers.set()

        def run_reader():
            try:
                gate.wait(timeout=30)
                while not stop_readers.is_set():
                    with db.transaction(read_only=True) as tx:
                        left = tx.execute("SELECT * FROM left_t")
                        right = tx.execute("SELECT * FROM right_t")
                        assert len(left) == len(right), "torn epoch vector"
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=run_paired_writer, name="pair-writer"),
            threading.Thread(target=run_reader, name="reader-0"),
            threading.Thread(target=run_reader, name="reader-1"),
        ]
        for thread in threads:
            thread.start()
        join_all(threads)
        if errors:
            raise errors[0]
        assert len(db.execute("SELECT * FROM left_t")) == 40
        assert len(db.execute("SELECT * FROM right_t")) == 40

    def test_durable_stress_recovers_to_the_oracle(self, tmp_path):
        """Concurrent writers through the WAL, then a crash (the object
        abandoned without close): recovery must rebuild exactly the
        oracle state from the interleaved log."""
        db = Database(
            tmp_path / "cat",
            durability="commit",
            policy=CompactionPolicy(max_delta_rows=32),
        )
        db.execute("CREATE TABLE t (k INT, w INT, s STRING)")
        errors: list = []
        gate = threading.Barrier(WRITERS)
        writers = [
            threading.Thread(
                target=run_writer,
                args=(db, writer, errors, gate),
                name="writer-%d" % writer,
            )
            for writer in range(WRITERS)
        ]
        for thread in writers:
            thread.start()
        join_all(writers)
        if errors:
            raise errors[0]
        # Crash: abandon the object without close().
        with Database(tmp_path / "cat", durability="commit") as db2:
            assert sorted(db2.execute("SELECT * FROM t")) == oracle()
            assert db2.metrics()["wal.recoveries"] == 1


class TestBackgroundCompactor:
    def test_folds_pending_deltas(self):
        db = Database(policy=CompactionPolicy.never())
        db.execute("CREATE TABLE t (k INT)")
        for k in range(64):
            db.execute("INSERT INTO t VALUES (?)", (k,))
        assert db.engine.pending_delta("t") is not None
        compactor = db.start_compactor(interval=0.001, columns=1)
        assert compactor.running
        deadline = time.monotonic() + 10
        while db.engine.pending_delta("t") is not None:
            assert time.monotonic() < deadline, "compactor made no progress"
            time.sleep(0.01)
        db.stop_compactor()
        metrics = db.metrics()
        assert metrics["compactor.cycles"] >= 1
        assert metrics["compactor.steps"] >= 1
        assert db.execute("SELECT k FROM t") == [(k,) for k in range(64)]

    def test_start_is_idempotent_and_close_stops_it(self):
        db = Database()
        db.execute("CREATE TABLE t (k INT)")
        compactor = db.start_compactor(interval=0.01)
        assert db.start_compactor() is compactor
        db.close()
        assert not compactor.running

    def test_stop_is_idempotent(self):
        db = Database()
        db.execute("CREATE TABLE t (k INT)")
        db.start_compactor(interval=0.01)
        db.stop_compactor()
        db.stop_compactor()

    def test_requires_compaction_capability(self):
        db = Database(backend="row")
        with pytest.raises(CapabilityError, match="compaction"):
            db.start_compactor()

    def test_survives_a_concurrent_drop(self):
        """Tables dropped between the catalog walk and the step are
        skipped, never fatal."""
        db = Database(policy=CompactionPolicy.never())
        db.execute("CREATE TABLE keep (k INT)")
        db.start_compactor(interval=0.001, columns=1)
        for round_ in range(5):
            db.execute("CREATE TABLE doomed (k INT)")
            for k in range(16):
                db.execute("INSERT INTO doomed VALUES (?)", (k,))
                db.execute("INSERT INTO keep VALUES (?)", (k,))
            db.execute("DROP TABLE doomed")
        db.stop_compactor()  # re-raises anything the thread died on
        assert len(db.execute("SELECT k FROM keep")) == 80


class TestAggregateReadersUnderWrites:
    def test_aggregate_scan_mix_is_consistent_while_writers_churn(self):
        """Reader threads drive the workload generator's aggregate scan
        mix (GROUP BY on the skewed Skill/Address columns) through
        sessions while writer threads churn DML on the same table and
        the background compactor folds deltas.  Every aggregate answer
        must be internally consistent: within one read-only scope the
        grouped COUNTs must sum to the pinned COUNT(*)."""
        from repro.workload import MixedReadWriteWorkload

        workload = MixedReadWriteWorkload(
            400, 40, n_employees=25, scan_mix="aggregate", seed=7
        )
        db = Database(policy=CompactionPolicy(max_delta_rows=32))
        db.load_table(workload.build())
        db.start_compactor(interval=0.001, columns=1)
        errors: list = []
        gate = threading.Barrier(4)
        stop_checks = threading.Event()

        def run_workload(seed: int):
            try:
                stream = MixedReadWriteWorkload(
                    400, 40, n_employees=25, scan_mix="aggregate",
                    seed=seed,
                )
                session = db.session()
                gate.wait(timeout=30)
                counters = stream.apply_to_session(session, table="R")
                assert counters["scan"] > 0
                assert counters["rows_scanned"] > 0
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def run_invariant_checks():
            try:
                gate.wait(timeout=30)
                while not stop_checks.is_set():
                    with db.transaction(read_only=True) as tx:
                        total = tx.execute("SELECT COUNT(*) FROM R")
                        grouped = tx.execute(
                            "SELECT Skill, COUNT(*) FROM R GROUP BY Skill"
                        )
                        assert sum(n for _skill, n in grouped) == (
                            total[0][0]
                        )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(
                target=run_workload, args=(seed,), name=f"agg-writer-{seed}"
            )
            for seed in (11, 12, 13)
        ] + [threading.Thread(target=run_invariant_checks, name="agg-check")]
        for thread in threads[:-1]:
            thread.start()
        threads[-1].start()
        join_all(threads[:-1])
        stop_checks.set()
        join_all(threads[-1:])
        db.close()
        if errors:
            raise errors[0]
