"""Integration: the paper's running example, end to end and exact.

Figure 1 of the paper shows R(Employee, Skill, Address) decomposed into
S(Employee, Skill) and T(Employee, Address) and merged back.  These
tests pin the exact tuples, the status narrative of Section 3, and the
cost accounting that Property 1 promises.
"""

import pytest

from repro.core import EvolutionEngine
from repro.smo import MergeTables, parse_smo


DECOMPOSE = (
    "DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)"
)


@pytest.fixture
def engine(fig1_table):
    engine = EvolutionEngine()
    engine.load_table(fig1_table)
    return engine


class TestFigure1:
    def test_exact_s_and_t(self, engine, fig1_decomposed):
        engine.apply(parse_smo(DECOMPOSE))
        s_rows, t_rows = fig1_decomposed
        # S keeps all 7 tuples in R's row order (unchanged table).
        assert engine.table("S").to_rows() == s_rows
        # T holds the 4 distinct (Employee, Address) pairs.
        assert engine.table("T").sorted_rows() == t_rows
        assert engine.table("T").schema.primary_key == ("Employee",)

    def test_section1_queries_equivalent(self, engine, fig1_table):
        """The SQL of Section 1 produces the same S and T as CODS."""
        from repro.sql import RowEngineAdapter, SqlExecutor

        executor = SqlExecutor(RowEngineAdapter())
        executor.execute(
            "CREATE TABLE R (Employee STRING, Skill STRING, Address STRING)"
        )
        executor.adapter.insert_rows("R", fig1_table.to_rows())
        executor.execute(
            "CREATE TABLE S (Employee STRING, Skill STRING)"
        )
        executor.execute("CREATE TABLE T (Employee STRING, Address STRING)")
        # 1. INSERT INTO S SELECT EMPLOYEE, SKILL FROM R
        executor.execute("INSERT INTO S SELECT Employee, Skill FROM R")
        # 2. INSERT INTO T SELECT DISTINCT EMPLOYEE, ADDRESS FROM R
        executor.execute(
            "INSERT INTO T SELECT DISTINCT Employee, Address FROM R"
        )
        engine.apply(parse_smo(DECOMPOSE))
        assert sorted(executor.execute("SELECT * FROM S")) == sorted(
            engine.table("S").to_rows()
        )
        assert sorted(executor.execute("SELECT * FROM T")) == sorted(
            engine.table("T").to_rows()
        )

    def test_merge_back_restores_r(self, engine, fig1_table):
        engine.apply(parse_smo(DECOMPOSE))
        engine.apply(MergeTables("S", "T", "R"))
        restored = engine.table("R")
        assert restored.same_content(fig1_table, ordered=True)

    def test_property1_unchanged_side_shares_columns(self, engine):
        table = engine.table("R")
        skill_column = table.column("Skill")
        employee_column = table.column("Employee")
        engine.apply(parse_smo(DECOMPOSE))
        # The unchanged table S holds the very same column objects.
        assert engine.table("S").column("Skill") is skill_column
        assert engine.table("S").column("Employee") is employee_column

    def test_status_narrative_matches_section3(self, engine):
        status = engine.apply(parse_smo(DECOMPOSE))
        steps = [event.step for event in status.events]
        assert "distinction" in steps
        assert "filtering" in steps
        assert "column reuse" in steps
        # Data-level evolution never materializes tuples.
        assert status.rows_materialized == 0

    def test_merge_status_shows_reuse(self, engine):
        engine.apply(parse_smo(DECOMPOSE))
        status = engine.apply(MergeTables("S", "T", "R"))
        assert status.columns_reused == 2  # Employee and Skill from S
        strategies = [
            event.detail for event in status.events
            if event.step == "merge strategy"
        ]
        assert strategies == ["kfk-right"]
