"""Integration tests for the network front end: `repro.server` serving
`repro.client` connections over loopback TCP.

The multi-client stress scenario reuses the writer scripts and the
single-threaded oracle of ``test_concurrency.py`` — the same DML
streams, driven over the wire instead of in-process threads, must land
on the same final state while pinned remote readers observe frozen
views.  The crash test kills the server mid-transaction and checks WAL
recovery: every acknowledged autocommit statement survives, nothing of
an uncommitted transaction does.

Deadlock guards as in ``test_concurrency.py``: timed joins with loud
failures, thread exceptions collected and re-raised, pytest-timeout
armed in CI.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.client import connect
from repro.db import Database
from repro.delta import CompactionPolicy
from repro.errors import (
    AuthenticationError,
    CapabilityError,
    NetworkError,
    SqlExecutionError,
    SqlSyntaxError,
    TransactionError,
)
from repro.server import CodsServer
from test_concurrency import WRITERS, join_all, oracle, writer_script

pytestmark = pytest.mark.timeout(120)


@pytest.fixture()
def served():
    """An in-memory database behind a server on an ephemeral port."""
    db = Database(backend="mutable")
    server = CodsServer(db, "127.0.0.1", 0)
    server.start()
    try:
        yield db, server
    finally:
        server.stop()


class TestServerBasics:
    def test_hello_reports_server_and_catalog(self, served):
        db, server = served
        db.execute("CREATE TABLE r (k INT)")
        with connect(*server.address) as conn:
            assert conn.server_info["server"] == "cods"
            assert conn.server_info["backend"] == "mutable"
            assert conn.tables() == ["r"]

    def test_execute_mirrors_the_session_shapes(self, served):
        _, server = served
        with connect(*server.address) as conn:
            assert conn.execute("CREATE TABLE r (k INT, s STRING)") is None
            assert conn.executemany(
                "INSERT INTO r VALUES (?, ?)",
                [(k, f"s{k}") for k in range(5)],
            ) == 5
            assert conn.execute(
                "SELECT s FROM r WHERE k = ?", (3,)
            ) == [("s3",)]
            assert conn.execute("DELETE FROM r WHERE k = ?", (0,)) == 1
            status = conn.execute("ADD COLUMN c INT TO r DEFAULT 7")
            assert status["rows_materialized"] >= 0
            assert set(status) >= {"columns_reused", "bitmaps_created"}
            assert conn.execute(
                "SELECT c FROM r WHERE k = ?", (3,)
            ) == [(7,)]

    def test_auth_token_is_required_when_configured(self):
        db = Database(backend="mutable")
        server = CodsServer(db, "127.0.0.1", 0, auth_token="sesame")
        server.start()
        try:
            with pytest.raises(AuthenticationError):
                connect(*server.address, auth_token="wrong")
            with pytest.raises(AuthenticationError):
                connect(*server.address)
            with connect(*server.address, auth_token="sesame") as conn:
                assert conn.server_info["server"] == "cods"
        finally:
            server.stop()

    def test_errors_cross_the_wire_typed(self, served):
        _, server = served
        with connect(*server.address) as conn:
            with pytest.raises(SqlSyntaxError):
                conn.execute("SELEC nope")
            with pytest.raises(SqlExecutionError):
                conn.execute("SELECT * FROM missing")
            with pytest.raises(TransactionError):
                conn.commit()
            # The connection stays usable after typed errors.
            conn.execute("CREATE TABLE r (k INT)")
            assert conn.execute("SELECT * FROM r") == []

    def test_result_sets_stream_in_batches(self, served):
        db, _ = served
        server = CodsServer(db, "127.0.0.1", 0, fetch_rows=8,
                            close_database=False)
        server.start()
        try:
            with connect(*server.address, fetch_rows=8) as conn:
                conn.execute("CREATE TABLE r (k INT)")
                conn.executemany(
                    "INSERT INTO r VALUES (?)", [(k,) for k in range(30)]
                )
                before = conn.metrics()["server.requests"]
                with conn.cursor() as cursor:
                    cursor.execute("SELECT k FROM r")
                    assert [name for name, *_ in cursor.description] == ["k"]
                    rows = cursor.fetchall()
                assert sorted(rows) == [(k,) for k in range(30)]
                after = conn.metrics()["server.requests"]
                # 30 rows at 8 per frame: the first batch rides the
                # execute response, then 3 fetch round trips.
                assert after - before >= 4
        finally:
            server.stop()

    def test_abandoned_cursor_is_released_server_side(self, served):
        _, server = served
        with connect(*server.address, fetch_rows=4) as conn:
            conn.execute("CREATE TABLE r (k INT)")
            conn.executemany(
                "INSERT INTO r VALUES (?)", [(k,) for k in range(20)]
            )
            cursor = conn.cursor()
            cursor.execute("SELECT k FROM r")
            assert cursor.fetchone() is not None
            cursor.close()  # half-streamed: sends close_cursor
            with pytest.raises(CapabilityError):
                cursor.fetchone()

    def test_metrics_command_proxies_registry_and_slow_log(self, served):
        db, server = served
        db.slow_query_seconds = 0.0  # log everything
        with connect(*server.address) as conn:
            conn.execute("CREATE TABLE r (k INT)")
            conn.execute("INSERT INTO r VALUES (1)")
            metrics = conn.metrics()
            assert metrics["server.connections_active"] >= 1
            assert metrics["server.requests"] >= 2
            assert metrics["server.errors"] == 0
            assert metrics["server.bytes_in"] > 0
            assert metrics["server.bytes_out"] > 0
            prometheus = conn.metrics("prometheus")
            assert "server_requests" in prometheus
            slow = conn.slow_queries()
            assert any(
                "INSERT INTO r" in entry["statement"] for entry in slow
            )

    def test_idle_sessions_are_reaped(self):
        db = Database(backend="mutable")
        server = CodsServer(db, "127.0.0.1", 0, idle_timeout=0.2)
        server.start()
        try:
            conn = connect(*server.address)
            conn.execute("CREATE TABLE r (k INT)")
            time.sleep(0.8)
            with pytest.raises(NetworkError):
                conn.execute("SELECT * FROM r")
            assert conn.closed
            with connect(*server.address) as probe:
                assert probe.metrics()["server.sessions_reaped"] >= 1
        finally:
            server.stop()

    def test_graceful_stop_checkpoints_a_durable_catalog(self, tmp_path):
        db = Database(tmp_path / "cat", durability="commit")
        server = CodsServer(db, "127.0.0.1", 0)
        server.start()
        with connect(*server.address) as conn:
            conn.execute("CREATE TABLE r (k INT)")
            conn.executemany(
                "INSERT INTO r VALUES (?)", [(k,) for k in range(10)]
            )
        server.stop()
        assert db.closed
        server.stop()  # idempotent
        with Database(tmp_path / "cat", durability="commit") as db2:
            assert len(db2.execute("SELECT * FROM r")) == 10

    def test_stop_closes_connected_clients(self, served):
        _, server = served
        conn = connect(*server.address)
        conn.execute("CREATE TABLE r (k INT)")
        server.stop()
        with pytest.raises(NetworkError):
            conn.execute("SELECT * FROM r")


class TestRemoteTransactions:
    def test_read_your_writes_across_round_trips(self, served):
        _, server = served
        with connect(*server.address) as writer, \
                connect(*server.address) as other:
            writer.execute("CREATE TABLE r (k INT)")
            writer.begin()
            writer.execute("INSERT INTO r VALUES (1)")
            writer.execute("INSERT INTO r VALUES (2)")
            # The writer sees its overlay; the other connection must not
            # until commit.
            assert sorted(writer.execute("SELECT * FROM r")) == [(1,), (2,)]
            assert other.execute("SELECT * FROM r") == []
            assert writer.commit() == 2
            assert sorted(other.execute("SELECT * FROM r")) == [(1,), (2,)]

    def test_rollback_discards_the_overlay(self, served):
        _, server = served
        with connect(*server.address) as conn:
            conn.execute("CREATE TABLE r (k INT)")
            conn.begin()
            conn.execute("INSERT INTO r VALUES (1)")
            assert conn.rollback() == 1
            assert conn.execute("SELECT * FROM r") == []

    def test_context_manager_commits_and_rolls_back(self, served):
        _, server = served
        with connect(*server.address) as conn:
            conn.execute("CREATE TABLE r (k INT)")
            with conn.transaction() as tx:
                tx.execute("INSERT INTO r VALUES (1)")
            assert conn.execute("SELECT * FROM r") == [(1,)]
            with pytest.raises(SqlExecutionError):
                with conn.transaction() as tx:
                    tx.execute("INSERT INTO r VALUES (2)")
                    tx.execute("SELECT * FROM missing")
            assert conn.execute("SELECT * FROM r") == [(1,)]

    def test_read_only_scope_pins_a_frozen_view(self, served):
        _, server = served
        with connect(*server.address) as reader, \
                connect(*server.address) as writer:
            writer.execute("CREATE TABLE r (k INT)")
            writer.execute("INSERT INTO r VALUES (1)")
            reader.begin(read_only=True)
            pinned = reader.execute("SELECT * FROM r")
            writer.execute("INSERT INTO r VALUES (2)")
            assert reader.execute("SELECT * FROM r") == pinned
            reader.commit()
            assert sorted(reader.execute("SELECT * FROM r")) == [(1,), (2,)]

    def test_one_transaction_per_connection(self, served):
        _, server = served
        with connect(*server.address) as conn:
            conn.execute("CREATE TABLE r (k INT)")
            conn.begin()
            with pytest.raises(TransactionError, match="already open"):
                conn.begin()
            conn.rollback()

    def test_disconnect_mid_transaction_rolls_back(self, served):
        _, server = served
        with connect(*server.address) as setup:
            setup.execute("CREATE TABLE r (k INT)")
        conn = connect(*server.address)
        conn.begin()
        conn.execute("INSERT INTO r VALUES (1)")
        conn._abandon()  # drop the socket without goodbye
        deadline = time.monotonic() + 10
        with connect(*server.address) as probe:
            while time.monotonic() < deadline:
                if probe.metrics()["server.connections_active"] <= 1:
                    break
                time.sleep(0.02)
            # The server saw the hangup, tore the connection down and
            # rolled the transaction back.
            assert probe.metrics()["server.connections_active"] <= 1
            assert probe.execute("SELECT * FROM r") == []
            probe.begin()  # the rolled-back scope released its locks
            probe.rollback()


class TestMultiClientStress:
    def test_concurrent_clients_land_on_the_oracle(self):
        """The ``test_concurrency`` writer scripts, driven by 4 network
        clients against one server (compactor running), plus 2 remote
        pinned readers: the final state must equal the single-threaded
        oracle and every pinned read must be stable."""
        db = Database(policy=CompactionPolicy(max_delta_rows=32))
        db.execute("CREATE TABLE t (k INT, w INT, s STRING)")
        db.start_compactor(interval=0.001, columns=1)
        server = CodsServer(db, "127.0.0.1", 0)
        server.start()
        errors: list = []
        gate = threading.Barrier(WRITERS + 2)
        stop_readers = threading.Event()

        def run_writer(writer: int):
            try:
                with connect(*server.address) as conn:
                    gate.wait(timeout=30)
                    for statement, params in writer_script(writer):
                        conn.execute(statement, params)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def run_reader():
            try:
                with connect(*server.address) as conn:
                    gate.wait(timeout=30)
                    while not stop_readers.is_set():
                        with conn.transaction(read_only=True) as tx:
                            first = tx.execute("SELECT * FROM t")
                            assert tx.execute("SELECT * FROM t") == first
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        writers = [
            threading.Thread(target=run_writer, args=(w,), name=f"client-{w}")
            for w in range(WRITERS)
        ]
        readers = [
            threading.Thread(target=run_reader, name=f"remote-reader-{r}")
            for r in range(2)
        ]
        for thread in writers + readers:
            thread.start()
        join_all(writers)
        stop_readers.set()
        join_all(readers)
        if errors:
            raise errors[0]
        with connect(*server.address) as conn:
            assert sorted(conn.execute("SELECT * FROM t")) == oracle()
        server.stop()
        assert db.closed


    def test_aggregate_workload_over_the_wire(self):
        """The aggregate scan mix driven by concurrent network clients
        (``apply_to_client``) against one served table: every client's
        stream completes, and the final grouped COUNT over the wire
        matches a client-side fold of the final full scan."""
        from repro.workload import MixedReadWriteWorkload

        db = Database(policy=CompactionPolicy(max_delta_rows=64))
        base = MixedReadWriteWorkload(
            300, 30, n_employees=20, scan_mix="mixed", seed=5
        )
        db.load_table(base.build())
        server = CodsServer(db, "127.0.0.1", 0)
        server.start()
        errors: list = []
        gate = threading.Barrier(3)

        def run_client(seed: int):
            try:
                stream = MixedReadWriteWorkload(
                    300, 30, n_employees=20, scan_mix="mixed", seed=seed,
                )
                with connect(*server.address) as conn:
                    gate.wait(timeout=30)
                    counters = stream.apply_to_client(conn, table="R")
                    assert counters["scan"] > 0
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        clients = [
            threading.Thread(
                target=run_client, args=(seed,), name=f"agg-client-{seed}"
            )
            for seed in (21, 22, 23)
        ]
        for thread in clients:
            thread.start()
        join_all(clients)
        if errors:
            raise errors[0]
        with connect(*server.address) as conn:
            rows = conn.execute("SELECT * FROM R")
            grouped = conn.execute(
                "SELECT Skill, COUNT(*) FROM R GROUP BY Skill"
            )
            folded: dict = {}
            for _employee, skill, _address in rows:
                folded[skill] = folded.get(skill, 0) + 1
            assert dict(grouped) == folded
        server.stop()
        assert db.closed


class TestCrashRecovery:
    def test_kill_mid_transaction_recovers_acked_writes_only(self, tmp_path):
        """Kill the server with one client mid-transaction: WAL replay
        on restart must reproduce every acknowledged autocommit write
        and nothing of the uncommitted overlay — no torn commits."""
        db = Database(tmp_path / "cat", durability="commit")
        db.execute("CREATE TABLE t (k INT)")
        server = CodsServer(db, "127.0.0.1", 0)
        server.start()

        committed = connect(*server.address)
        committed.executemany(
            "INSERT INTO t VALUES (?)", [(k,) for k in range(20)]
        )
        torn = connect(*server.address)
        torn.begin()
        torn.execute("INSERT INTO t VALUES (100)")
        torn.execute("INSERT INTO t VALUES (101)")

        server.kill()  # no drain, no rollback, no checkpoint
        with pytest.raises(NetworkError):
            committed.execute("SELECT * FROM t")

        db2 = Database(tmp_path / "cat", durability="commit")
        server2 = CodsServer(db2, "127.0.0.1", 0)
        server2.start()
        try:
            with connect(*server2.address) as conn:
                rows = sorted(conn.execute("SELECT * FROM t"))
                assert rows == [(k,) for k in range(20)]
                assert conn.metrics()["wal.recoveries"] == 1
        finally:
            server2.stop()
