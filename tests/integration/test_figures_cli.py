"""Integration: the figure-regeneration CLI at miniature scale.

Runs the real harness (all five systems) on tiny inputs so CI exercises
the exact code path that produces EXPERIMENTS.md, and asserts the
paper's qualitative claims hold even at toy scale.
"""

from collections import defaultdict

import pytest

from repro.bench.figures import figure_text, main
from repro.bench.harness import run_figure, run_table1


@pytest.fixture(scope="module")
def fig3a_results():
    return run_figure("3a", nrows=3_000, sweep=[5, 60])


@pytest.fixture(scope="module")
def fig3b_results():
    return run_figure("3b", nrows=3_000, sweep=[5, 60])


def by_series(results):
    table = defaultdict(dict)
    for result in results:
        table[result.series][result.distinct] = result.seconds
    return table


class TestShapeClaims:
    def test_fig3a_cods_wins_everywhere(self, fig3a_results):
        # S (real SQLite, implemented in C) can tie our pure-Python
        # engine at this toy scale; the D-vs-S gap is asserted at real
        # scale by the EXPERIMENTS run.  The same-substrate comparisons
        # (C, C+I, M are Python too) must hold at any scale; per-point
        # numbers get a small tolerance for CI timing noise, the sweep
        # total must win outright.
        series = by_series(fig3a_results)
        for label in ("C", "C+I", "M"):
            for distinct, seconds in series[label].items():
                assert series["D"][distinct] < seconds * 1.5, (
                    f"D not faster than {label} at distinct={distinct}"
                )
            assert sum(series["D"].values()) < sum(series[label].values())

    def test_fig3b_cods_wins_everywhere(self, fig3b_results):
        series = by_series(fig3b_results)
        for label in ("C", "C+I", "M"):
            for distinct, seconds in series[label].items():
                assert series["D"][distinct] < seconds * 1.5, (
                    f"D not faster than {label} at distinct={distinct}"
                )
            assert sum(series["D"].values()) < sum(series[label].values())

    def test_all_points_present(self, fig3a_results, fig3b_results):
        assert len(fig3a_results) == 5 * 2  # 5 series × 2 sweep points
        assert len(fig3b_results) == 4 * 2


class TestTable1Micro:
    def test_schema_level_ops_are_fast_for_cods(self):
        rows = run_table1(nrows=1_000, series=("D",))
        costs = {row["operator"]: row["D"] for row in rows}
        # Schema-level and metadata operators are orders cheaper than
        # the data-heavy ones even at toy scale.
        assert costs["RENAME TABLE"] < costs["DECOMPOSE TABLE"]
        assert costs["RENAME COLUMN"] < costs["MERGE TABLES"]
        assert costs["CREATE TABLE"] < costs["UNION TABLES"]


class TestCli:
    def test_figure_text_3a(self):
        import repro.bench.harness as harness

        original = harness.scaled_distinct_sweep
        harness.scaled_distinct_sweep = lambda nrows: [5]
        try:
            text = figure_text("3a", 2_000)
        finally:
            harness.scaled_distinct_sweep = original
        assert "Figure 3(a)" in text
        assert "D vs C" in text

    def test_main_writes_output(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(
            harness, "scaled_distinct_sweep", lambda nrows: [5]
        )
        out = tmp_path / "report.txt"
        assert main(["--figure", "3b", "--rows", "2000",
                     "--out", str(out)]) == 0
        assert "Figure 3(b)" in out.read_text()

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            figure_text("9z", 100)
