"""Integration: the data-level engine and every query-level baseline
must agree on arbitrary operator streams (DESIGN.md invariant 4)."""

import numpy as np
import pytest

from repro.baselines import make_system
from repro.smo import (
    AddColumn,
    Comparison,
    CopyTable,
    DecomposeTable,
    DropColumn,
    MergeTables,
    PartitionTable,
    RenameColumn,
    RenameTable,
    UnionTables,
)
from repro.storage import ColumnSchema, DataType
from tests.conftest import make_fd_table, make_join_pair

LABELS = ["D", "C", "C+I", "S", "M"]


def run_stream(label, tables, operators):
    system = make_system(label)
    for table in tables:
        system.load(table)
    for op in operators:
        system.apply(op)
    return system


def assert_all_agree(tables, operators, check_tables):
    reference = None
    for label in LABELS:
        system = run_stream(label, tables, operators)
        state = {
            name: system.extract(name).sorted_rows()
            for name in check_tables
        }
        if reference is None:
            reference = (label, state)
        else:
            assert state == reference[1], (
                f"{label} disagrees with {reference[0]}"
            )


class TestCrossSystemAgreement:
    def test_decompose_random_table(self):
        table = make_fd_table(150, 12, seed=21)
        op = DecomposeTable("R", "S", ("K", "P"), "T", ("K", "D"))
        assert_all_agree([table], [op], ["S", "T"])

    def test_decompose_then_merge(self):
        table = make_fd_table(120, 15, seed=22)
        ops = [
            DecomposeTable("R", "S", ("K", "P"), "T", ("K", "D")),
            MergeTables("S", "T", "R2"),
        ]
        assert_all_agree([table], ops, ["R2"])

    def test_general_merge(self):
        left, right = make_join_pair(60, 50, 8, seed=23)
        op = MergeTables("S", "T", "R")
        # SQLite and every other engine must agree on the n1*n2 blow-up.
        assert_all_agree([left, right], [op], ["R"])

    def test_partition_union_roundtrip(self):
        table = make_fd_table(100, 10, seed=24)
        ops = [
            PartitionTable("R", "Hi", "Lo", Comparison("P", ">=", 2)),
            UnionTables("Hi", "Lo", "Back"),
        ]
        assert_all_agree([table], ops, ["Back"])

    def test_column_smo_chain(self):
        table = make_fd_table(80, 8, seed=25)
        ops = [
            AddColumn("R", ColumnSchema("Flag", DataType.INT), 7),
            RenameColumn("R", "Flag", "Marker"),
            CopyTable("R", "R2"),
            DropColumn("R2", "Marker"),
            RenameTable("R2", "Slim"),
        ]
        assert_all_agree([table], ops, ["R", "Slim"])

    def test_long_mixed_stream(self):
        table = make_fd_table(90, 9, seed=26)
        ops = [
            CopyTable("R", "Work"),
            DecomposeTable("Work", "S", ("K", "P"), "T", ("K", "D")),
            AddColumn("S", ColumnSchema("Note", DataType.STRING), "n/a"),
            MergeTables("S", "T", "Wide"),
            PartitionTable("Wide", "Odd", "Even", Comparison("P", "=", 1)),
            UnionTables("Odd", "Even", "Final"),
        ]
        assert_all_agree([table], ops, ["R", "Final"])


class TestScaleSpotCheck:
    def test_cods_vs_sqlite_at_10k(self):
        """One medium-size run: data-level result equals a real RDBMS."""
        table = make_fd_table(10_000, 500, seed=30)
        op = DecomposeTable("R", "S", ("K", "P"), "T", ("K", "D"))
        cods = run_stream("D", [table], [op])
        sqlite = run_stream("S", [table], [op])
        assert cods.extract("T").sorted_rows() == sqlite.extract(
            "T"
        ).sorted_rows()
        assert cods.extract("S").nrows == 10_000

    def test_merge_blowup_at_scale(self):
        rng = np.random.default_rng(31)
        left, right = make_join_pair(2_000, 1_500, 40, seed=31)
        op = MergeTables("S", "T", "R")
        cods = run_stream("D", [left, right], [op])
        sqlite = run_stream("S", [left, right], [op])
        assert cods.extract("R").nrows == sqlite.extract("R").nrows
        assert cods.extract("R").sorted_rows() == sqlite.extract(
            "R"
        ).sorted_rows()
