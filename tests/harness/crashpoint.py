"""Deterministic crash-point driver for the WAL fault-injection tests.

The production code announces every crash-atomic step through
:func:`repro.wal.crash_point` labels (``wal.flush.torn``,
``checkpoint.truncate``, ...).  This harness turns those labels into a
reproducible crash schedule:

* :func:`run_to_crash` runs a scenario with a :class:`CrashPlan` that
  aborts at the *n*-th occurrence of one label — "crash exactly here";
* :func:`crash_opportunities` dry-runs a scenario with a counting hook
  and enumerates every ``(label, occurrence)`` pair it passes, so a
  test can sweep "crash at every point this workload reaches";
* :class:`Acked` records which operations fully returned before the
  crash — the oracle's committed prefix.

The crash model: :class:`~repro.wal.CrashPoint` derives from
``BaseException`` so no production ``except Exception`` can swallow it;
the in-memory buffers and file handles of the abandoned database object
model exactly what a power cut loses; "reboot" is reopening the
directory with a fresh :class:`~repro.db.Database`.
"""

from __future__ import annotations

from repro.wal import CrashPoint, crash_hook


class CrashPlan:
    """Crash at the ``hit``-th time ``label`` is announced (1-based).

    Every other label passes through untouched, so a plan pins one
    precise point in the schedule.  ``fired`` records whether the
    scenario actually reached it.
    """

    def __init__(self, label: str, hit: int = 1):
        self.label = label
        self.hit = hit
        self.seen = 0
        self.fired = False

    def __call__(self, label: str) -> None:
        if label != self.label:
            return
        self.seen += 1
        if self.seen == self.hit and not self.fired:
            self.fired = True
            raise CrashPoint(label)


class HitCounter:
    """Counting hook: records how often each label fires, never crashes."""

    def __init__(self):
        self.counts: dict[str, int] = {}

    def __call__(self, label: str) -> None:
        self.counts[label] = self.counts.get(label, 0) + 1


class Acked:
    """The oracle's ledger: call :meth:`ack` *after* an operation fully
    returns, and ``acked`` names exactly the operations the database
    acknowledged before the crash — the prefix durability must honor."""

    def __init__(self):
        self.acked: list = []

    def ack(self, item) -> None:
        self.acked.append(item)


def run_to_crash(scenario, label: str, hit: int = 1):
    """Run ``scenario()`` with a crash planned at the ``hit``-th
    occurrence of ``label``.

    Returns ``(crashed, result)``: ``crashed`` is True when the plan
    fired (``result`` is then None); when the scenario finishes without
    reaching the point, ``crashed`` is False and ``result`` is the
    scenario's return value.
    """
    plan = CrashPlan(label, hit)
    with crash_hook(plan):
        try:
            result = scenario()
        except CrashPoint:
            return True, None
    return False, result


def crash_opportunities(scenario) -> list[tuple[str, int]]:
    """Dry-run ``scenario()`` (no crash) and enumerate every
    ``(label, occurrence)`` crash opportunity it passes, in a stable
    order.  Re-running the same deterministic scenario with
    :func:`run_to_crash` at each pair sweeps every possible crash."""
    counter = HitCounter()
    with crash_hook(counter):
        scenario()
    return [
        (label, hit)
        for label in sorted(counter.counts)
        for hit in range(1, counter.counts[label] + 1)
    ]
