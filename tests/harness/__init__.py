"""Fault-injection harnesses shared by unit/integration/property tests."""
