"""Unit tests for functional-dependency theory and data-driven checks."""

import pytest

from repro.errors import LosslessJoinError
from repro.fd import (
    FunctionalDependency,
    candidate_keys,
    chase_lossless,
    check_lossless,
    closure,
    discover,
    fds_from_keys,
    holds,
    implies,
    is_key_in_data,
    is_superkey,
    minimal_cover,
    project_fds,
)
from repro.storage import ColumnSchema, DataType, TableSchema, table_from_python

FD = FunctionalDependency.of


class TestClosure:
    def test_reflexive(self):
        assert closure({"A"}, []) == frozenset({"A"})

    def test_transitive(self):
        fds = [FD("A", "B"), FD("B", "C")]
        assert closure({"A"}, fds) == frozenset({"A", "B", "C"})

    def test_composite_lhs(self):
        fds = [FD(["A", "B"], "C")]
        assert closure({"A"}, fds) == frozenset({"A"})
        assert closure({"A", "B"}, fds) == frozenset({"A", "B", "C"})

    def test_implies(self):
        fds = [FD("A", "B"), FD("B", "C")]
        assert implies(fds, FD("A", "C"))
        assert not implies(fds, FD("C", "A"))

    def test_is_superkey(self):
        fds = [FD("A", ["B", "C"])]
        assert is_superkey({"A"}, {"A", "B", "C"}, fds)
        assert not is_superkey({"B"}, {"A", "B", "C"}, fds)


class TestCandidateKeys:
    def test_simple(self):
        fds = [FD("A", ["B", "C"])]
        assert candidate_keys({"A", "B", "C"}, fds) == [frozenset({"A"})]

    def test_two_keys(self):
        fds = [FD("A", "B"), FD("B", "A"), FD("A", "C")]
        keys = candidate_keys({"A", "B", "C"}, fds)
        assert sorted(map(sorted, keys)) == [["A"], ["B"]]

    def test_composite_key(self):
        fds = [FD(["A", "B"], "C")]
        keys = candidate_keys({"A", "B", "C"}, fds)
        assert keys == [frozenset({"A", "B"})]

    def test_no_fds_whole_relation_is_key(self):
        keys = candidate_keys({"A", "B"}, [])
        assert keys == [frozenset({"A", "B"})]

    def test_minimality(self):
        fds = [FD("A", ["B", "C", "D"]), FD(["A", "B"], "D")]
        keys = candidate_keys({"A", "B", "C", "D"}, fds)
        assert keys == [frozenset({"A"})]


class TestMinimalCover:
    def test_splits_rhs(self):
        cover = minimal_cover([FD("A", ["B", "C"])])
        assert all(len(fd.rhs) == 1 for fd in cover)
        assert len(cover) == 2

    def test_removes_redundant(self):
        cover = minimal_cover([FD("A", "B"), FD("B", "C"), FD("A", "C")])
        assert FD("A", "C") not in cover
        assert implies(cover, FD("A", "C"))

    def test_trims_extraneous_lhs(self):
        cover = minimal_cover([FD("A", "B"), FD(["A", "C"], "B")])
        assert all(fd.lhs == frozenset({"A"}) for fd in cover)

    def test_str(self):
        assert str(FD("A", "B")) == "A -> B"


class TestProjectFds:
    def test_projection_keeps_implied(self):
        fds = [FD("A", "B"), FD("B", "C")]
        projected = project_fds(fds, {"A", "C"})
        assert implies(projected, FD("A", "C"))

    def test_projection_drops_outside(self):
        fds = [FD("A", "B")]
        projected = project_fds(fds, {"A", "C"})
        assert projected == []


class TestCheckLossless:
    ALL = ("E", "S", "A")

    def test_figure1_shape(self):
        # Employee -> Address: T(E, A) is keyed by the common attr E.
        fds = [FD("E", "A")]
        plan = check_lossless(self.ALL, ("E", "S"), ("E", "A"), fds)
        assert plan.changed_side == "right"
        assert plan.unchanged_side == "left"
        assert plan.common == frozenset({"E"})

    def test_no_common_attributes(self):
        with pytest.raises(LosslessJoinError):
            check_lossless(self.ALL, ("E", "S"), ("A",), [])

    def test_not_covering(self):
        with pytest.raises(LosslessJoinError):
            check_lossless(self.ALL, ("E",), ("E", "A"), [FD("E", "A")])

    def test_neither_side_determined(self):
        with pytest.raises(LosslessJoinError):
            check_lossless(self.ALL, ("E", "S"), ("E", "A"), [])

    def test_both_sides_determined_prefers_smaller(self):
        fds = [FD("E", ["S", "A"])]
        plan = check_lossless(("E", "S", "A"), ("E", "S", "A"), ("E",), fds)
        assert plan.changed_side == "right"

    def test_prefer_changed_override(self):
        fds = [FD("E", ["S", "A"])]
        plan = check_lossless(
            self.ALL, ("E", "S"), ("E", "A"), fds, prefer_changed="left"
        )
        assert plan.changed_side == "left"

    def test_fds_from_keys(self):
        schema = TableSchema(
            "T",
            (
                ColumnSchema("a", DataType.INT),
                ColumnSchema("b", DataType.INT),
            ),
            primary_key=("a",),
        )
        fds = fds_from_keys(schema)
        assert implies(fds, FD("a", "b"))


class TestChase:
    def test_binary_agrees_with_closure_test(self):
        fds = [FD("E", "A")]
        assert chase_lossless(
            ("E", "S", "A"), [("E", "S"), ("E", "A")], fds
        )
        assert not chase_lossless(("E", "S", "A"), [("E", "S"), ("E", "A")], [])

    def test_ternary_decomposition(self):
        # Classic: R(A,B,C,D), A->B, C->D; split into (A,B), (A,C), (C,D).
        fds = [FD("A", "B"), FD("C", "D")]
        assert chase_lossless(
            ("A", "B", "C", "D"),
            [("A", "B"), ("A", "C"), ("C", "D")],
            fds,
        )

    def test_lossy_ternary(self):
        assert not chase_lossless(
            ("A", "B", "C"), [("A", "B"), ("B", "C")], []
        )


class TestDataDriven:
    @pytest.fixture
    def table(self):
        return table_from_python(
            "R",
            {
                "K": (DataType.INT, [1, 1, 2, 3, 3]),
                "P": (DataType.INT, [9, 8, 9, 7, 6]),
                "D": (DataType.INT, [5, 5, 6, 5, 5]),
            },
        )

    def test_holds_positive(self, table):
        assert holds(table, ["K"], ["D"])

    def test_holds_negative(self, table):
        assert not holds(table, ["K"], ["P"])
        assert not holds(table, ["D"], ["K"])

    def test_holds_trivial(self, table):
        assert holds(table, ["K"], ["K"])
        assert holds(table, ["K", "P"], ["K"])

    def test_is_key_in_data(self, table):
        assert not is_key_in_data(table, ["K"])
        assert is_key_in_data(table, ["K", "P"])

    def test_discover_finds_built_in_fd(self, table):
        found = discover(table, max_lhs=1)
        assert FD("K", "D") in found
        assert FD("K", "P") not in found

    def test_discover_prunes_supersets(self, table):
        found = discover(table, max_lhs=2)
        # K -> D present; {K,P} -> D must be pruned as implied.
        lhs_sizes = [
            len(fd.lhs) for fd in found if fd.rhs == frozenset({"D"})
            and "K" in fd.lhs
        ]
        assert 1 in lhs_sizes
        assert all(
            not (fd.lhs > frozenset({"K"}) and fd.rhs == frozenset({"D"}))
            for fd in found
        )

    def test_empty_table(self):
        table = table_from_python("E", {"a": (DataType.INT, [])})
        assert holds(table, ["a"], ["a"])
        assert is_key_in_data(table, ["a"])
