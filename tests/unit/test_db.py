"""Unit tests for the `repro.db` façade: routing, registry,
sessions/cursors, parameter binding, scripts, persistence and
capability gating."""

import json
import struct

import pytest

from repro.db import (
    Database,
    available_backends,
    backend_spec,
    bind_parameters,
    classify_statement,
    connect,
    iter_script_statements,
)
from repro.errors import (
    CapabilityError,
    SqlExecutionError,
    SqlSyntaxError,
    StorageError,
)
from repro.storage import DataType, table_from_python


def small_table(name="R"):
    return table_from_python(
        name,
        {
            "K": (DataType.INT, [1, 2, 3, 4]),
            "S": (DataType.STRING, ["a", "b", "a", "c"]),
        },
    )


def seeded_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.execute("CREATE TABLE r (k INT, s STRING)")
    db.executemany(
        "INSERT INTO r VALUES (?, ?)", [(1, "a"), (2, "b"), (3, "a")]
    )
    return db


class TestRouter:
    @pytest.mark.parametrize("text,expected", [
        ("SELECT * FROM r", "sql"),
        ("insert into r values (1)", "sql"),
        ("UPDATE r SET a = 1", "sql"),
        ("DELETE FROM r", "sql"),
        ("CREATE TABLE r (a INT)", "sql"),
        ("CREATE INDEX i ON r (a)", "sql"),
        ("DROP TABLE r", "sql"),
        ("ALTER TABLE r RENAME TO s", "sql"),
        ("  decompose TABLE r INTO s (a), t (a, b)", "smo"),
        ("MERGE TABLES s, t INTO r", "smo"),
        ("COPY TABLE r TO s", "smo"),
        ("UNION TABLES r, s INTO t", "smo"),
        ("PARTITION TABLE r INTO s, t WHERE a = 1", "smo"),
        ("ADD COLUMN c INT TO r", "smo"),
        ("DROP COLUMN c FROM r", "smo"),
        ("RENAME TABLE r TO s", "smo"),
        ("RENAME COLUMN a TO b IN r", "smo"),
    ])
    def test_classification(self, text, expected):
        assert classify_statement(text) == expected

    def test_script_split_drops_comments(self):
        statements = iter_script_statements(
            "-- preamble\nSELECT a FROM r;\n\n-- note\n"
            "INSERT INTO r VALUES (1);;\nDROP TABLE r"
        )
        assert statements == [
            "SELECT a FROM r",
            "INSERT INTO r VALUES (1)",
            "DROP TABLE r",
        ]

    def test_semicolon_inside_a_comment_is_not_a_statement(self):
        statements = iter_script_statements(
            "SELECT a FROM r; -- drop; stuff\nSELECT b FROM r"
        )
        assert statements == ["SELECT a FROM r", "SELECT b FROM r"]

    def test_comment_marker_inside_a_string_is_data(self):
        statements = iter_script_statements(
            "INSERT INTO r VALUES ('a--b'); SELECT a FROM r"
        )
        assert statements == [
            "INSERT INTO r VALUES ('a--b')",
            "SELECT a FROM r",
        ]

    def test_multi_line_string_literal_stays_whole(self):
        # The tokenizer accepts newlines inside '...'; the splitter
        # must not treat structure characters on later lines of the
        # literal as statement boundaries or comments.
        statements = iter_script_statements(
            "INSERT INTO r VALUES (1, 'a\nb;c -- d'); SELECT a FROM r"
        )
        assert statements == [
            "INSERT INTO r VALUES (1, 'a\nb;c -- d')",
            "SELECT a FROM r",
        ]

    def test_parse_sql_script_shares_the_splitter(self):
        from repro.sql import parse_sql_script

        statements = parse_sql_script(
            "INSERT INTO r VALUES ('a;b'); -- note\nSELECT a FROM r"
        )
        assert len(statements) == 2


class TestRegistry:
    def test_builtins_present(self):
        assert {"row", "column", "mutable"} <= set(available_backends())

    def test_unknown_backend(self):
        with pytest.raises(CapabilityError, match="unknown backend"):
            Database(backend="graph")

    def test_duplicate_registration_rejected(self):
        from repro.db import BackendSpec, register_backend

        spec = backend_spec("row")
        with pytest.raises(CapabilityError, match="already registered"):
            register_backend(
                BackendSpec("row", "dup", spec.factory)
            )

    def test_capabilities_by_backend(self):
        assert Database(backend="mutable").capabilities.smo
        assert Database(backend="mutable").capabilities.snapshots
        assert not Database(backend="row").capabilities.smo
        assert not Database(backend="column").capabilities.snapshots
        assert Database(backend="row").capabilities.hash_join


class TestParameterBinding:
    def test_literals(self):
        assert bind_parameters(
            "INSERT INTO r VALUES (?, ?, ?, ?, ?)",
            (1, -2.5, "it's", None, True),
        ) == "INSERT INTO r VALUES (1, -2.5, 'it''s', NULL, TRUE)"

    def test_placeholder_inside_string_untouched(self):
        assert bind_parameters(
            "SELECT * FROM r WHERE s = '?' AND k = ?", (7,)
        ) == "SELECT * FROM r WHERE s = '?' AND k = 7"

    def test_arity_mismatches(self):
        with pytest.raises(SqlSyntaxError, match="more placeholders"):
            bind_parameters("SELECT * FROM r WHERE k = ? AND j = ?", (1,))
        with pytest.raises(SqlSyntaxError, match="placeholder"):
            bind_parameters("SELECT * FROM r", (1,))

    def test_unbindable_type(self):
        with pytest.raises(SqlSyntaxError, match="cannot bind"):
            bind_parameters("SELECT * FROM r WHERE k = ?", ([1, 2],))

    def test_exponent_repr_floats_round_trip(self):
        db = Database()
        db.execute("CREATE TABLE f (x FLOAT)")
        db.executemany(
            "INSERT INTO f VALUES (?)", [(1e20,), (1e-07,), (2.0,)]
        )
        assert db.execute("SELECT * FROM f") == [(1e20,), (1e-07,), (2.0,)]

    def test_non_finite_floats_rejected(self):
        with pytest.raises(SqlSyntaxError, match="non-finite"):
            bind_parameters("SELECT * FROM r WHERE k = ?",
                            (float("inf"),))


class TestExecuteRouting:
    def test_sql_and_smo_through_one_entry_point(self):
        db = seeded_db()
        status = db.execute("DECOMPOSE TABLE r INTO a (k), b (k, s)")
        assert status.summary()["columns_reused"] >= 1
        assert db.tables() == ["a", "b"]
        assert sorted(db.execute("SELECT * FROM b")) == [
            (1, "a"), (2, "b"), (3, "a"),
        ]

    def test_dml_counts_and_ddl_none(self):
        db = seeded_db()
        assert db.execute("UPDATE r SET s = 'z' WHERE k = 1") == 1
        assert db.execute("DELETE FROM r WHERE s = 'z'") == 1
        assert db.execute("DROP TABLE r") is None
        assert db.tables() == []

    @pytest.mark.parametrize("backend", ["row", "column"])
    def test_smo_requires_capability(self, backend):
        db = Database(backend=backend)
        db.execute("CREATE TABLE r (k INT)")
        with pytest.raises(CapabilityError, match="mutable"):
            db.execute("ADD COLUMN c INT TO r")

    @pytest.mark.parametrize("backend", ["row", "column", "mutable"])
    def test_sql_works_on_every_backend(self, backend):
        db = Database(backend=backend)
        db.execute("CREATE TABLE r (k INT, s STRING)")
        db.execute("INSERT INTO r VALUES (1, 'a'), (2, 'b')")
        assert db.execute("SELECT s FROM r WHERE k = 2") == [("b",)]

    def test_engine_none_without_smo_backend(self):
        assert Database(backend="row").engine is None
        assert Database(backend="mutable").engine is not None

    def test_closed_database_rejects_execution(self):
        db = seeded_db()
        db.close()
        assert db.closed
        with pytest.raises(StorageError, match="closed"):
            db.execute("SELECT * FROM r")
        db.close()  # idempotent


class TestExecuteScript:
    def test_mixed_script_results(self):
        db = Database()
        results = db.execute_script(
            """
            -- build and evolve in one script
            CREATE TABLE r (k INT, s STRING);
            INSERT INTO r VALUES (1, 'a'), (2, 'b');
            RENAME TABLE r TO s;
            SELECT * FROM s ORDER BY k
            """
        )
        assert results[0] is None
        assert results[1] == 2
        assert results[3] == [(1, "a"), (2, "b")]
        assert db.tables() == ["s"]

    def test_error_carries_position_and_fragment(self):
        db = seeded_db()
        with pytest.raises(SqlExecutionError) as excinfo:
            db.execute_script(
                "SELECT * FROM r; DELETE FROM nope; SELECT * FROM r"
            )
        assert "statement 2" in str(excinfo.value)
        assert "DELETE FROM nope" in str(excinfo.value)

    def test_syntax_error_carries_position(self):
        db = seeded_db()
        with pytest.raises(SqlSyntaxError, match="statement 2"):
            db.execute_script("SELECT * FROM r; SELEKT chaos")

    def test_syntax_error_executes_nothing(self):
        db = seeded_db()
        with pytest.raises(SqlSyntaxError, match="statement 2"):
            db.execute_script(
                "INSERT INTO r VALUES (9, 'z'); SELEKT chaos"
            )
        # The whole script was rejected before execution began.
        assert db.execute("SELECT * FROM r WHERE k = 9") == []

    def test_string_literal_semicolons_survive_the_split(self):
        db = seeded_db()
        results = db.execute_script(
            "INSERT INTO r VALUES (9, 'a;b'); "
            "SELECT s FROM r WHERE k = 9"
        )
        assert results == [1, [("a;b",)]]


class TestSessionsAndCursors:
    def test_sessions_share_the_catalog(self):
        db = seeded_db()
        one, two = db.session(), db.session()
        one.execute("INSERT INTO r VALUES (9, 'z')")
        assert two.execute("SELECT * FROM r WHERE k = 9") == [(9, "z")]

    def test_cursor_select(self):
        db = seeded_db()
        cursor = db.cursor().execute("SELECT k, s FROM r ORDER BY k")
        assert [d[0] for d in cursor.description] == ["k", "s"]
        assert cursor.fetchone() == (1, "a")
        assert cursor.fetchmany(1) == [(2, "b")]
        assert cursor.fetchall() == [(3, "a")]
        assert cursor.fetchone() is None

    def test_cursor_select_star_description(self):
        db = seeded_db()
        cursor = db.cursor().execute("SELECT * FROM r")
        assert [d[0] for d in cursor.description] == ["k", "s"]
        assert len(list(cursor)) == 3

    def test_cursor_dml_rowcount(self):
        db = seeded_db()
        cursor = db.cursor().execute("UPDATE r SET s = 'q' WHERE s = 'a'")
        assert cursor.rowcount == 2
        assert cursor.description is None
        with pytest.raises(CapabilityError, match="no result set"):
            cursor.fetchall()

    def test_cursor_executemany(self):
        db = seeded_db()
        cursor = db.cursor().executemany(
            "INSERT INTO r VALUES (?, ?)", [(7, "x"), (8, "y")]
        )
        assert cursor.rowcount == 2

    def test_cursor_close(self):
        db = seeded_db()
        cursor = db.cursor()
        cursor.close()
        with pytest.raises(CapabilityError, match="closed"):
            cursor.execute("SELECT * FROM r")


class TestPersistence:
    def test_round_trip_with_delta_sidecar(self, tmp_path):
        from repro.delta import CompactionPolicy

        directory = tmp_path / "catalog"
        with Database(directory, policy=CompactionPolicy.never()) as db:
            db.execute("CREATE TABLE r (k INT, s STRING)")
            db.execute("INSERT INTO r VALUES (1, 'a')")
            db.compact("r")
            db.execute("INSERT INTO r VALUES (2, 'b')")  # pending delta
        # close() wrote the catalog; sidecar present for the open delta
        assert (directory / "r.cods").exists()
        assert (directory / "r.cods.delta").exists()
        reopened = Database(directory)
        assert reopened.execute("SELECT * FROM r ORDER BY k") == [
            (1, "a"), (2, "b"),
        ]
        stats = reopened.delta_stats()[0]
        assert stats.delta_live == 1

    def test_exception_skips_the_write_back(self, tmp_path):
        directory = tmp_path / "catalog"
        with Database(directory) as db:
            db.execute("CREATE TABLE r (k INT)")
        with pytest.raises(RuntimeError):
            with Database(directory) as db:
                db.execute("INSERT INTO r VALUES (1)")
                raise RuntimeError("abort")
        assert Database(directory).execute("SELECT * FROM r") == []

    def test_row_backend_has_no_persistence(self, tmp_path):
        db = Database(backend="row")
        with pytest.raises(CapabilityError, match="no persistence"):
            db.save(tmp_path / "x")

    def test_save_needs_a_directory(self):
        with pytest.raises(StorageError, match="no catalog directory"):
            Database().save()

    def test_column_backend_round_trip(self, tmp_path):
        directory = tmp_path / "catalog"
        db = Database(directory, backend="column")
        db.execute("CREATE TABLE r (k INT)")
        db.execute("INSERT INTO r VALUES (4)")
        db.save()
        assert Database(
            directory, backend="column"
        ).execute("SELECT * FROM r") == [(4,)]

    def test_connect_alias(self, tmp_path):
        db = connect(tmp_path / "catalog")
        db.execute("CREATE TABLE r (k INT)")
        assert db.save().name == "catalog"

    def test_v1_delta_sidecar_loads_through_the_facade(self, tmp_path):
        """A pre-MVCC (version 1) sidecar written next to a saved
        catalog must come back as a merged table when the directory is
        opened as a Database."""
        directory = tmp_path / "catalog"
        db = Database(directory)
        db.load_table(small_table())
        db.save()
        payload = {
            "table": "R",
            "columns": {"K": [5, 6], "S": ["d", "e"]},
            "deleted_main": [1],
            "deleted_delta": [0],
        }
        blob = json.dumps(payload).encode()
        (directory / "R.cods.delta").write_bytes(
            b"CODD" + struct.pack("<H", 1)
            + struct.pack("<I", len(blob)) + blob
        )
        reopened = Database(directory)
        # main minus position 1, plus the one surviving buffered row
        assert reopened.execute("SELECT * FROM R") == [
            (1, "a"), (3, "a"), (4, "c"), (6, "e"),
        ]
        stats = reopened.delta_stats()[0]
        assert stats.deleted_main == 1
        assert stats.delta_live == 1
        # and the restored state keeps evolving normally
        assert reopened.execute("DELETE FROM R WHERE S = 'e'") == 1


class TestRenameUnderPinnedSnapshot:
    def test_smo_rename_keeps_the_pinned_scope(self):
        db = seeded_db()
        with db.transaction(read_only=True) as tx:
            before = tx.execute("SELECT * FROM r")
            db.execute("RENAME TABLE r TO r2")          # SMO route
            db.execute("INSERT INTO r2 VALUES (9, 'z')")
            assert tx.execute("SELECT * FROM r2") == before
        assert (9, "z") in db.execute("SELECT * FROM r2")

    def test_sql_alter_rename_keeps_the_pinned_scope(self):
        db = seeded_db()
        with db.transaction(read_only=True) as tx:
            before = tx.execute("SELECT * FROM r")
            db.execute("ALTER TABLE r RENAME TO r2")    # SQL route
            db.execute("DELETE FROM r2")
            assert tx.execute("SELECT * FROM r2") == before
        assert db.execute("SELECT * FROM r2") == []

    def test_rename_column_under_pin(self):
        db = seeded_db()
        with db.transaction(read_only=True) as tx:
            before = tx.execute("SELECT * FROM r")
            db.execute("RENAME COLUMN s TO label IN r")
            assert tx.execute("SELECT k, label FROM r") == before


class TestDemoSqlCommand:
    def make_session(self):
        import io

        from repro.demo.cli import DemoSession

        out = io.StringIO()
        return DemoSession(out=out), out

    def test_sql_select_and_smo(self):
        session, out = self.make_session()
        session.handle("sql CREATE TABLE w (a INT, b STRING)")
        session.handle("sql INSERT INTO w VALUES (1, 'x'), (2, 'y')")
        session.handle("sql SELECT * FROM w WHERE a = 2")
        session.handle("sql ADD COLUMN c INT TO w DEFAULT 7")
        session.handle("sql SELECT c FROM w")
        text = out.getvalue()
        assert "2 row(s) affected" in text
        assert "(2, 'y')" in text
        assert "counters" in text
        assert "(7,)" in text

    def test_sql_error_reported_not_raised(self):
        session, out = self.make_session()
        assert session.handle("sql SELECT * FROM missing") is True
        assert "error:" in out.getvalue()
