"""Tests for multi-bitmap operations and compression statistics."""

import numpy as np
import pytest

from repro.bitmap import CompressionStats, PlainBitmap, WAHBitmap, bitmap_stats
from repro.bitmap.ops import intersection, union, union_disjoint


class TestUnions:
    def test_union_disjoint(self):
        a = WAHBitmap.from_positions([0, 5], 20)
        b = WAHBitmap.from_positions([3, 10], 20)
        c = WAHBitmap.from_positions([19], 20)
        combined = union_disjoint([a, b, c], 20)
        assert combined.positions().tolist() == [0, 3, 5, 10, 19]

    def test_union_overlapping(self):
        a = WAHBitmap.from_positions([1, 2, 3], 10)
        b = WAHBitmap.from_positions([3, 4], 10)
        combined = union([a, b], 10)
        assert combined.positions().tolist() == [1, 2, 3, 4]

    def test_union_empty_list_with_codec(self):
        result = union([], 10, codec=WAHBitmap)
        assert result.count() == 0
        assert result.nbits == 10

    def test_union_empty_list_without_codec(self):
        with pytest.raises(ValueError):
            union([], 10)

    def test_union_disjoint_plain_codec(self):
        a = PlainBitmap.from_positions([0], 5)
        b = PlainBitmap.from_positions([4], 5)
        combined = union_disjoint([a, b], 5)
        assert isinstance(combined, PlainBitmap)
        assert combined.positions().tolist() == [0, 4]

    def test_intersection(self):
        a = WAHBitmap.from_positions([1, 2, 3, 7], 10)
        b = WAHBitmap.from_positions([2, 3, 8], 10)
        c = WAHBitmap.from_positions([0, 2, 3, 9], 10)
        combined = intersection([a, b, c], 10)
        assert combined.positions().tolist() == [2, 3]

    def test_intersection_empty_list(self):
        result = intersection([], 6, codec=WAHBitmap)
        assert result.count() == 6  # identity of AND is all-ones


class TestCompressionStats:
    def test_ratio(self):
        stats = CompressionStats(logical_bits=8_000, compressed_bytes=100)
        assert stats.logical_bytes == 1_000
        assert stats.ratio == 10.0

    def test_zero_compressed(self):
        assert CompressionStats(0, 0).ratio == 1.0
        assert CompressionStats(100, 0).ratio == float("inf")

    def test_addition(self):
        total = CompressionStats(100, 10) + CompressionStats(200, 5)
        assert total.logical_bits == 300
        assert total.compressed_bytes == 15

    def test_bitmap_stats_wah_vs_plain(self):
        fills = WAHBitmap.ones(31 * 10_000)
        plain = PlainBitmap.ones(31 * 10_000)
        assert bitmap_stats(fills).ratio > bitmap_stats(plain).ratio

    def test_random_data_compresses_poorly(self):
        rng = np.random.default_rng(1)
        bm = WAHBitmap.from_dense(rng.random(31_000) < 0.5)
        # Random 50% data: WAH degenerates to ~literal-per-group.
        assert 0.5 < bitmap_stats(bm).ratio < 1.5
