"""Unit tests for the compressed-domain aggregation subsystem
(``repro.exec.aggregate``) and its statistics-driven strategy choice.

Semantics across backends are pinned by the property suite
(``tests/property/test_aggregate_properties.py``); these tests target
the pieces directly: strategy selection and its reason strings, the
validation rules, the per-vid selected-count kernel's three paths, the
bincount-vs-unique histogram helper, the statistics catalog, and the
``exec.agg_*`` counters.
"""

import numpy as np
import pytest

from repro.bitmap import WAHBitmap
from repro.errors import SqlExecutionError
from repro.exec.aggregate import (
    _nonzero_counts,
    _selected_value_counts,
    choose_aggregate_strategy,
    validate_aggregate_select,
)
from repro.sql import MutableColumnAdapter, RowEngineAdapter, SqlExecutor
from repro.sql.parser import parse_sql
from repro.storage.column import BitmapColumn
from repro.storage.statistics import (
    ColumnStats,
    TableStats,
    column_statistics,
    table_statistics,
)
from repro.storage.types import DataType


def stats_with(distincts: dict, main_rows=10_000, delta_rows=0):
    return TableStats(
        "t",
        main_rows,
        delta_rows,
        {
            name: ColumnStats(name, distinct)
            for name, distinct in distincts.items()
        },
    )


GROUPED = parse_sql("SELECT grp, COUNT(*) FROM t GROUP BY grp")


class TestStrategyChoice:
    def test_low_cardinality_group_is_compressed(self):
        strategy, reason = choose_aggregate_strategy(
            GROUPED, stats_with({"grp": 32}, delta_rows=100)
        )
        assert strategy == "compressed"
        assert "32" in reason and "delta share" in reason

    def test_no_pushdown_forces_hash(self):
        strategy, reason = choose_aggregate_strategy(
            GROUPED, stats_with({"grp": 32}), pushdown=False
        )
        assert strategy == "hash"
        assert "decodes to values" in reason

    def test_no_statistics_forces_hash(self):
        strategy, reason = choose_aggregate_strategy(GROUPED, None)
        assert strategy == "hash"
        assert "no table statistics" in reason

    def test_missing_column_stats_forces_hash(self):
        strategy, reason = choose_aggregate_strategy(
            GROUPED, stats_with({"other": 4})
        )
        assert strategy == "hash"
        assert "'grp'" in reason

    def test_high_cardinality_group_falls_back(self):
        strategy, reason = choose_aggregate_strategy(
            GROUPED, stats_with({"grp": 5_000}, main_rows=10_000)
        )
        assert strategy == "hash"
        assert "estimated groups 5000" in reason

    def test_multi_column_estimate_is_the_product(self):
        select = parse_sql("SELECT a, b, COUNT(*) FROM t GROUP BY a, b")
        stats = stats_with({"a": 50, "b": 40}, main_rows=10_000)
        strategy, reason = choose_aggregate_strategy(select, stats)
        assert strategy == "hash"
        assert "estimated groups 2000" in reason
        # 1250 estimated groups stays at the 10_000/8 ceiling.
        strategy, _ = choose_aggregate_strategy(
            select, stats_with({"a": 50, "b": 25}, main_rows=10_000)
        )
        assert strategy == "compressed"

    def test_small_table_keeps_the_64_group_floor(self):
        strategy, _ = choose_aggregate_strategy(
            GROUPED, stats_with({"grp": 60}, main_rows=100)
        )
        assert strategy == "compressed"


class TestValidation:
    def schema(self):
        executor = SqlExecutor(RowEngineAdapter())
        executor.execute("CREATE TABLE t (grp STRING, v INT)")
        return executor.adapter.schema("t")

    def check(self, sql, message):
        with pytest.raises(SqlExecutionError, match=message):
            validate_aggregate_select(parse_sql(sql), self.schema())

    def test_bare_column_must_be_grouped(self):
        self.check(
            "SELECT v, COUNT(*) FROM t GROUP BY grp",
            "must appear in GROUP BY",
        )

    def test_star_cannot_be_grouped(self):
        self.check("SELECT * FROM t GROUP BY grp", r"SELECT \*")

    def test_sum_star_rejected_by_the_grammar(self):
        from repro.errors import SqlSyntaxError

        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT SUM(*) FROM t")

    def test_unknown_columns_rejected(self):
        self.check("SELECT COUNT(nope) FROM t", "no column 'nope'")
        self.check(
            "SELECT nope, COUNT(*) FROM t GROUP BY nope",
            "no column 'nope'",
        )

    def test_valid_select_returns_groups_and_aggs(self):
        groups, aggs = validate_aggregate_select(
            parse_sql("SELECT grp, COUNT(*), SUM(v) FROM t GROUP BY grp"),
            self.schema(),
        )
        assert groups == ("grp",)
        assert [agg.label for agg in aggs] == ["count(*)", "sum(v)"]


class TestSelectedValueCounts:
    """The three paths — full popcounts, point lookups on the smaller
    selection side, and the full position decode — must agree with a
    brute-force histogram."""

    def column(self, nrows=400, cardinality=7, seed=3):
        rng = np.random.default_rng(seed)
        values = [f"v{vid}" for vid in rng.integers(0, cardinality, nrows)]
        return values, BitmapColumn.from_values(
            "c", DataType.STRING, values
        )

    def brute_force(self, values, column, dense):
        order = list(column.dictionary.values())
        counts = np.zeros(len(order), dtype=np.int64)
        for position, value in enumerate(values):
            if dense is None or dense[position]:
                counts[order.index(value)] += 1
        return counts

    def test_no_selection_uses_popcounts(self):
        values, column = self.column()
        got = _selected_value_counts(column, None)
        assert np.array_equal(got, self.brute_force(values, column, None))

    @pytest.mark.parametrize(
        "selected",
        [
            [3],  # tiny selection: point lookups on the selected side
            list(range(398)),  # tiny complement: popcounts minus lookups
            list(range(0, 400, 2)),  # balanced: full position decode
            [],
        ],
    )
    def test_selection_paths_agree(self, selected):
        values, column = self.column()
        selection = WAHBitmap.from_positions(selected, len(values))
        got = _selected_value_counts(column, selection)
        assert np.array_equal(
            got,
            self.brute_force(values, column, selection.to_dense()),
        )


class TestNonzeroCounts:
    @pytest.mark.parametrize("space", [8, 100_000])
    def test_matches_numpy_unique(self, space):
        rng = np.random.default_rng(9)
        codes = rng.integers(0, min(space, 8), 500)
        got_values, got_counts = _nonzero_counts(codes, space)
        want_values, want_counts = np.unique(codes, return_counts=True)
        assert np.array_equal(got_values, want_values)
        assert np.array_equal(got_counts, want_counts)


class TestStatisticsCatalog:
    def test_column_statistics_skip_nulls(self):
        column = BitmapColumn.from_values(
            "c", DataType.INT, [4, None, 9, 4, 1]
        )
        stats = column_statistics("c", column)
        assert (stats.distinct, stats.min, stats.max) == (4, 1, 9)

    def test_all_null_column_has_no_range(self):
        column = BitmapColumn.from_values("c", DataType.INT, [None, None])
        stats = column_statistics("c", column)
        assert (stats.distinct, stats.min, stats.max) == (1, None, None)

    def test_table_statistics_cached_per_table_object(self):
        adapter = MutableColumnAdapter()
        executor = SqlExecutor(adapter)
        executor.execute("CREATE TABLE t (grp STRING, v INT)")
        adapter.insert_rows("t", [("a", 1), ("b", 2), ("a", 3)])
        mutable = adapter._mutable("t")
        while not mutable.compact_step().done:
            pass
        table = mutable.main
        first = table_statistics(table)
        again = table_statistics(table)
        assert first.columns is again.columns
        assert first.main_rows == 3
        assert first.column("grp").distinct == 2

    def test_delta_share(self):
        stats = TableStats("t", 75, 25)
        assert stats.total_rows == 100
        assert stats.delta_share == 0.25
        assert TableStats("t", 0, 0).delta_share == 0.0

    def test_adapter_table_stats_counts_live_rows(self):
        from repro.delta import CompactionPolicy

        adapter = MutableColumnAdapter(policy=CompactionPolicy.never())
        executor = SqlExecutor(adapter)
        executor.execute("CREATE TABLE t (grp STRING, v INT)")
        adapter.insert_rows("t", [("a", 1), ("b", 2), ("a", 3)])
        while not adapter._mutable("t").compact_step().done:
            pass
        executor.execute("DELETE FROM t WHERE v = 2")
        executor.execute("INSERT INTO t VALUES ('c', 4)")
        stats = adapter.table_stats("t")
        assert stats.main_rows == 2
        assert stats.delta_rows == 1

    def test_row_backend_has_no_stats(self):
        adapter = RowEngineAdapter()
        SqlExecutor(adapter).execute("CREATE TABLE t (a INT)")
        assert adapter.table_stats("t") is None


class TestAggCounters:
    def test_compressed_and_hash_batches_counted(self):
        adapter = MutableColumnAdapter()
        executor = SqlExecutor(adapter)
        executor.execute("CREATE TABLE t (grp STRING, v INT)")
        adapter.insert_rows(
            "t", [("a", 1), ("b", 2), ("a", 3), ("b", 4)]
        )
        # Delta rows force a hash partial next to the compressed one.
        executor.execute("INSERT INTO t VALUES ('c', 5)")
        rows = executor.execute(
            "SELECT grp, COUNT(*) FROM t GROUP BY grp"
        )
        assert rows == [("a", 2), ("b", 2), ("c", 1)]
        registry = adapter.metrics
        assert registry.counter("exec.agg_batches_compressed").value >= 1
        assert registry.counter("exec.agg_batches_hash").value >= 1
        assert registry.counter("exec.agg_groups").value >= 3


class TestAggregateBench:
    def test_bench_script_runs(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        out = tmp_path / "BENCH_aggregate.json"
        result = subprocess.run(
            [
                sys.executable,
                str(repo / "benchmarks" / "bench_aggregate.py"),
                # Tiny run: the result-equality checks are the point
                # here, the ≥3× gate of record needs the 1M-row run.
                "--rows", "3000", "--min-speedup", "0.01",
                "--out", str(out),
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        from repro.bench.exporters import load_aggregate_json

        payload = load_aggregate_json(out)
        assert payload["benchmark"] == "aggregate"
        for backend in ("mutable", "column"):
            record = payload[backend]
            assert record["grouped_count"]["groups"] <= 32
            assert record["grouped_count"]["speedup"] > 0
        assert payload["mutable"]["delta_rows"] > 0
