"""Unit tests for the SQL subset: parser and executor on both adapters."""

import pytest

from repro.errors import SqlExecutionError, SqlSyntaxError
from repro.sql import (
    ColumnStoreAdapter,
    RowEngineAdapter,
    SqlExecutor,
    parse_sql,
    parse_sql_script,
)
from repro.sql.ast import (
    CreateIndex,
    CreateTable,
    DropTable,
    InsertSelect,
    InsertValues,
    RenameTable,
    Select,
)
from repro.storage import DataType


class TestParser:
    def test_select_star(self):
        statement = parse_sql("SELECT * FROM r")
        assert isinstance(statement, Select)
        assert statement.columns is None
        assert statement.table == "r"

    def test_select_columns_distinct(self):
        statement = parse_sql("SELECT DISTINCT a, b FROM r")
        assert statement.distinct
        assert statement.columns == ("a", "b")

    def test_select_full_clause_stack(self):
        statement = parse_sql(
            "SELECT a FROM r WHERE a > 3 AND b = 'x' "
            "ORDER BY a DESC LIMIT 10"
        )
        assert statement.where is not None
        assert statement.order_by == ("a", False)
        assert statement.limit == 10

    def test_select_join(self):
        statement = parse_sql(
            "SELECT a, b, c FROM s JOIN t ON (a, b)"
        )
        assert statement.join.table == "t"
        assert statement.join.join_attrs == ("a", "b")

    def test_insert_values(self):
        statement = parse_sql(
            "INSERT INTO r VALUES (1, 'x'), (2, 'y')"
        )
        assert isinstance(statement, InsertValues)
        assert statement.rows == ((1, "x"), (2, "y"))

    def test_insert_values_literals(self):
        statement = parse_sql(
            "INSERT INTO r VALUES (-1.5, TRUE, NULL)"
        )
        assert statement.rows == ((-1.5, True, None),)

    def test_insert_select(self):
        statement = parse_sql(
            "INSERT INTO s SELECT DISTINCT a FROM r"
        )
        assert isinstance(statement, InsertSelect)
        assert statement.select.distinct

    def test_insert_select_star(self):
        statement = parse_sql("INSERT INTO s SELECT * FROM r")
        assert statement.select.columns is None

    def test_create_table(self):
        statement = parse_sql(
            "CREATE TABLE r (a INT, b TEXT, KEY (a))"
        )
        assert isinstance(statement, CreateTable)
        assert statement.schema.primary_key == ("a",)
        assert statement.schema.column("b").dtype == DataType.STRING

    def test_create_index(self):
        statement = parse_sql("CREATE INDEX i ON r (a)")
        assert statement == CreateIndex("i", "r", "a")
        with pytest.raises(SqlSyntaxError):
            parse_sql("CREATE INDEX i ON r (a, b)")

    def test_ddl(self):
        assert parse_sql("DROP TABLE r") == DropTable("r")
        assert parse_sql("ALTER TABLE r RENAME TO r2") == RenameTable(
            "r", "r2"
        )

    def test_syntax_errors(self):
        for bad in (
            "SELECT FROM r",
            "SELECT a r",
            "INSERT r VALUES (1)",
            "LIMIT 5",
            "SELECT a FROM r LIMIT 1.5",
            "SELECT a FROM r GARBAGE",
        ):
            with pytest.raises(SqlSyntaxError):
                parse_sql(bad)

    def test_script(self):
        statements = parse_sql_script(
            "CREATE TABLE r (a INT); INSERT INTO r VALUES (1); "
            "SELECT * FROM r"
        )
        assert len(statements) == 3


@pytest.fixture(params=["row", "column"])
def executor(request):
    adapter = RowEngineAdapter() if request.param == "row" else ColumnStoreAdapter()
    ex = SqlExecutor(adapter)
    ex.execute("CREATE TABLE r (a INT, b STRING)")
    ex.execute(
        "INSERT INTO r VALUES (1, 'x'), (2, 'y'), (1, 'x'), (3, 'z')"
    )
    return ex


class TestExecutor:
    def test_select_all(self, executor):
        assert executor.execute("SELECT * FROM r") == [
            (1, "x"), (2, "y"), (1, "x"), (3, "z"),
        ]

    def test_projection(self, executor):
        assert executor.execute("SELECT b FROM r") == [
            ("x",), ("y",), ("x",), ("z",),
        ]

    def test_distinct(self, executor):
        assert executor.execute("SELECT DISTINCT a, b FROM r") == [
            (1, "x"), (2, "y"), (3, "z"),
        ]

    def test_where(self, executor):
        assert executor.execute("SELECT b FROM r WHERE a = 1") == [
            ("x",), ("x",),
        ]
        assert executor.execute(
            "SELECT a FROM r WHERE b = 'z' OR a = 2"
        ) == [(2,), (3,)]

    def test_order_limit(self, executor):
        assert executor.execute(
            "SELECT a FROM r ORDER BY a DESC LIMIT 2"
        ) == [(3,), (2,)]
        assert executor.execute("SELECT a FROM r ORDER BY a LIMIT 2") == [
            (1,), (1,),
        ]

    def test_order_by_requires_selected_column(self, executor):
        with pytest.raises(SqlExecutionError):
            executor.execute("SELECT a FROM r ORDER BY b")

    def test_insert_select(self, executor):
        executor.execute("CREATE TABLE s (a INT)")
        count = executor.execute(
            "INSERT INTO s SELECT DISTINCT a FROM r"
        )
        assert count == 3
        assert sorted(executor.execute("SELECT * FROM s")) == [
            (1,), (2,), (3,),
        ]

    def test_join(self, executor):
        executor.execute("CREATE TABLE dim (a INT, label STRING)")
        executor.execute(
            "INSERT INTO dim VALUES (1, 'one'), (2, 'two'), (3, 'three')"
        )
        rows = sorted(
            executor.execute(
                "SELECT a, b, label FROM r JOIN dim ON (a)"
            )
        )
        assert rows == [
            (1, "x", "one"), (1, "x", "one"),
            (2, "y", "two"), (3, "z", "three"),
        ]

    def test_join_star(self, executor):
        executor.execute("CREATE TABLE dim (a INT, label STRING)")
        executor.execute("INSERT INTO dim VALUES (1, 'one')")
        rows = executor.execute("SELECT * FROM r JOIN dim ON (a)")
        assert rows == [(1, "x", "one"), (1, "x", "one")]

    def test_join_with_where(self, executor):
        executor.execute("CREATE TABLE dim (a INT, label STRING)")
        executor.execute(
            "INSERT INTO dim VALUES (1, 'one'), (3, 'three')"
        )
        rows = executor.execute(
            "SELECT a, label FROM r JOIN dim ON (a) WHERE label = 'three'"
        )
        assert rows == [(3, "three")]

    def test_missing_table(self, executor):
        with pytest.raises(SqlExecutionError):
            executor.execute("SELECT * FROM nope")
        with pytest.raises(SqlExecutionError):
            executor.execute("DROP TABLE nope")

    def test_ddl_roundtrip(self, executor):
        executor.execute("ALTER TABLE r RENAME TO r2")
        assert len(executor.execute("SELECT * FROM r2")) == 4
        executor.execute("DROP TABLE r2")
        with pytest.raises(SqlExecutionError):
            executor.execute("SELECT * FROM r2")

    def test_create_index(self, executor):
        executor.execute("CREATE INDEX idx ON r (a)")  # no raise

    def test_execute_script(self, executor):
        results = executor.execute_script(
            "CREATE TABLE t2 (a INT); INSERT INTO t2 SELECT a FROM r; "
            "SELECT * FROM t2 ORDER BY a"
        )
        assert results[1] == 4
        assert results[2] == [(1,), (1,), (2,), (3,)]

    def test_execute_script_error_carries_position(self, executor):
        with pytest.raises(SqlExecutionError) as excinfo:
            executor.execute_script(
                "CREATE TABLE t3 (a INT); INSERT INTO t3 VALUES (1); "
                "DELETE FROM missing; SELECT * FROM t3"
            )
        message = str(excinfo.value)
        assert "statement 3" in message
        assert "DELETE FROM missing" in message
        # Statements before the failure were applied...
        assert executor.execute("SELECT * FROM t3") == [(1,)]

    def test_execute_script_syntax_error_carries_position(self, executor):
        with pytest.raises(SqlSyntaxError, match="statement 2"):
            executor.execute_script("SELECT * FROM r; FROBNICATE r")

    def test_execute_script_syntax_error_executes_nothing(self, executor):
        before = executor.execute("SELECT * FROM r")
        with pytest.raises(SqlSyntaxError):
            executor.execute_script(
                "DELETE FROM r; FROBNICATE r"
            )
        # The script was rejected wholesale; the DELETE never ran.
        assert executor.execute("SELECT * FROM r") == before


class TestColumnAdapterAccounting:
    def test_materialization_counted(self):
        adapter = ColumnStoreAdapter()
        ex = SqlExecutor(adapter)
        ex.execute("CREATE TABLE r (a INT)")
        ex.execute("INSERT INTO r VALUES (1), (2)")
        before = adapter.rows_materialized
        ex.execute("SELECT * FROM r")
        assert adapter.rows_materialized == before + 2
        assert adapter.rows_recompressed >= 2
