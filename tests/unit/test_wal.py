"""Unit tests for repro.wal: framing, the log, checkpoints, recovery.

The crash-driven end-to-end proofs live in
``tests/integration/test_failure_injection.py`` and
``tests/property/test_wal_properties.py``; this module pins the
building blocks — frame codec, torn-tail repair, group commit, nested
transactions, truncation, atomic sidecar saves, and the Database-level
durability knob.
"""

from __future__ import annotations

import struct

import pytest

from repro.db import Database
from repro.errors import WalCorruptionError, WalError
from repro.storage.filefmt import delta_sidecar_path, save_delta
from repro.wal import (
    CrashPoint,
    WriteAheadLog,
    crash_hook,
    crash_point,
    known_labels,
    log_has_records,
    wal_path,
)
from repro.wal import records as rec
from tests.harness.crashpoint import CrashPlan, run_to_crash


class TestFrames:
    def test_header_roundtrip(self):
        data = rec.encode_header(12345)
        assert len(data) == rec.HEADER_SIZE
        assert rec.decode_header(data) == 12345

    def test_header_rejects_wrong_magic(self):
        with pytest.raises(WalCorruptionError):
            rec.decode_header(b"NOPE" + b"\x00" * 10)

    def test_header_rejects_future_version(self):
        data = rec.MAGIC + struct.pack("<HQ", 99, 0)
        with pytest.raises(WalCorruptionError):
            rec.decode_header(data)

    def test_frame_roundtrip(self):
        payload = {"t": "commit", "txn": 7}
        frames, end, torn = rec.scan_frames(rec.encode_frame(payload), 0)
        assert frames == [(rec.HEADER_SIZE, payload)]
        assert not torn
        assert end == rec.HEADER_SIZE + len(rec.encode_frame(payload))

    def test_torn_tail_is_discarded_not_an_error(self):
        good = rec.encode_frame({"t": "commit", "txn": 1})
        torn_frame = rec.encode_frame({"t": "commit", "txn": 2})[:-3]
        frames, end, torn = rec.scan_frames(good + torn_frame, 0)
        assert [p for _, p in frames] == [{"t": "commit", "txn": 1}]
        assert torn
        assert end == rec.HEADER_SIZE + len(good)

    def test_bad_checksum_mid_log_is_corruption(self):
        first = bytearray(rec.encode_frame({"t": "commit", "txn": 1}))
        first[-1] ^= 0xFF  # flip a payload byte under an intact CRC field
        second = rec.encode_frame({"t": "commit", "txn": 2})
        with pytest.raises(WalCorruptionError, match="checksum"):
            rec.scan_frames(bytes(first) + second, 0)

    def test_bad_checksum_at_tail_reads_as_torn(self):
        first = rec.encode_frame({"t": "commit", "txn": 1})
        last = bytearray(rec.encode_frame({"t": "commit", "txn": 2}))
        last[-1] ^= 0xFF
        frames, _, torn = rec.scan_frames(first + bytes(last), 0)
        assert len(frames) == 1 and torn

    def test_insert_record_roundtrips_values(self):
        record = rec.insert_record("r", [(1, "a"), (2, "b")], 3, 9)
        assert rec.decode_rows(record["rows"]) == [(1, "a"), (2, "b")]

    def test_fast_insert_framing_matches_the_generic_bytes(self):
        rows = [(1, "alice", "x", 7), (-3, 'bob "q" é', "", 10**15)]
        committed = rec.insert_record("r", rows, 5, 42)
        committed["c"] = 1
        assert rec.encode_insert_frame("r", rows, 5, 42, True) == (
            rec.encode_frame(committed)
        )
        in_txn = rec.insert_record("r", rows, 5, 42)
        assert rec.encode_insert_frame("r", rows, 5, 42, False) == (
            rec.encode_frame(in_txn)
        )

    def test_fast_insert_framing_declines_values_needing_the_codec(self):
        import datetime

        for odd in (1.5, True, None, datetime.date(2024, 1, 1)):
            assert rec.encode_insert_frame("r", [(1, odd)], 1, 1, True) is None


class TestWriteAheadLog:
    def test_fresh_log_has_no_records(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        assert wal.scan() == []
        assert not log_has_records(wal.path)
        wal.close()

    def test_autocommit_append_is_one_self_committed_frame(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        wal.append({"t": "insert", "table": "r", "rows": [], "epoch": 1})
        records = [p for _, p in wal.scan()]
        assert [p["t"] for p in records] == ["insert"]
        assert records[0]["c"] == 1  # its own committed transaction
        assert wal.pending_bytes == 0
        wal.close()

    def test_nested_transaction_emits_one_commit(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        outer = wal.begin()
        inner = wal.begin()
        assert inner == outer
        wal.append({"t": "delmain", "table": "r", "pos": 0, "epoch": 1})
        wal.commit()
        assert wal.in_transaction  # inner commit does not end the txn
        wal.append({"t": "delmain", "table": "r", "pos": 1, "epoch": 2})
        wal.commit()
        payloads = [p for _, p in wal.scan()]
        assert [p["t"] for p in payloads] == ["delmain", "delmain", "commit"]
        assert {p["txn"] for p in payloads} == {outer}
        wal.close()

    def test_empty_transaction_emits_nothing(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        wal.begin()
        wal.commit()
        assert wal.scan() == []
        wal.close()

    def test_abort_leaves_no_commit_record(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        wal.begin()
        wal.append({"t": "delmain", "table": "r", "pos": 0, "epoch": 1})
        wal.abort()
        wal.flush()
        assert [p["t"] for _, p in wal.scan()] == ["delmain"]
        wal.close()

    def test_group_commit_defers_the_fsync(self, tmp_path):
        wal = WriteAheadLog(
            wal_path(tmp_path), flush_policy="group", group_size=3
        )
        for epoch in (1, 2):
            wal.append({"t": "delmain", "table": "r", "pos": 0,
                        "epoch": epoch})
            assert wal.pending_bytes > 0  # acked but not yet flushed
        assert wal.scan() == []  # nothing on disk yet
        wal.append({"t": "delmain", "table": "r", "pos": 0, "epoch": 3})
        assert wal.pending_bytes == 0  # third commit filled the group
        assert len(wal.scan()) == 3  # one self-committed frame each
        wal.close()

    def test_close_flushes_buffered_group_commits(self, tmp_path):
        wal = WriteAheadLog(
            wal_path(tmp_path), flush_policy="group", group_size=100
        )
        wal.append({"t": "delmain", "table": "r", "pos": 0, "epoch": 1})
        wal.close()
        assert log_has_records(wal_path(tmp_path))

    def test_txn_ids_stay_unique_across_reopen(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        first = wal.begin()
        wal.append({"t": "delmain", "table": "r", "pos": 0, "epoch": 1})
        wal.commit()
        wal.close()
        reopened = WriteAheadLog(wal_path(tmp_path))
        assert reopened.begin() > first
        reopened.abort()
        reopened.close()

    def test_open_repairs_a_torn_tail(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        wal.append({"t": "delmain", "table": "r", "pos": 0, "epoch": 1})
        wal.close()
        with wal_path(tmp_path).open("ab") as handle:
            handle.write(b"\x99\x00\x00\x00garbage")  # crash debris
        reopened = WriteAheadLog(wal_path(tmp_path))
        assert [p["t"] for _, p in reopened.scan()] == ["delmain"]
        reopened.close()
        # The repair is durable: the debris is gone from the file.
        assert b"garbage" not in wal_path(tmp_path).read_bytes()

    def test_truncate_starts_a_fresh_file_with_carried_base(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        wal.append({"t": "delmain", "table": "r", "pos": 0, "epoch": 1})
        old_end = wal.durable_lsn
        new_base = wal.truncate_all()
        assert new_base == old_end
        assert wal.scan() == []
        # LSNs keep counting from the lifetime offset after reopen.
        wal.close()
        reopened = WriteAheadLog(wal_path(tmp_path))
        assert reopened.base_lsn == new_base
        reopened.close()

    def test_rejects_unknown_policy_and_bad_group_size(self, tmp_path):
        with pytest.raises(WalError):
            WriteAheadLog(wal_path(tmp_path), flush_policy="yolo")
        with pytest.raises(WalError):
            WriteAheadLog(wal_path(tmp_path), group_size=0)

    def test_cannot_close_inside_a_transaction(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        wal.begin()
        with pytest.raises(WalError):
            wal.close()
        wal.abort()
        wal.close()


class TestCrashPoints:
    def test_hook_sees_labels_and_can_crash(self):
        plan = CrashPlan("unit.test.point", hit=2)
        with crash_hook(plan):
            crash_point("unit.test.point")
            with pytest.raises(CrashPoint) as exc:
                crash_point("unit.test.point")
        assert exc.value.label == "unit.test.point"
        assert plan.fired

    def test_labels_register_for_sweeps(self):
        crash_point("unit.test.registered")
        assert "unit.test.registered" in known_labels()

    def test_run_to_crash_reports_unreached_points(self):
        crashed, result = run_to_crash(lambda: 42, "never.announced")
        assert not crashed and result == 42


class TestAtomicSidecarSaves:
    """Satellite 1: sidecar writes go through temp + ``os.replace`` so a
    crash at any point leaves the previous file intact."""

    @pytest.mark.parametrize(
        "label", ["save.delta.temp", "save.delta.replace"]
    )
    def test_crash_mid_save_preserves_the_old_sidecar(self, tmp_path, label):
        from repro.delta import DeltaStore
        from repro.storage import ColumnSchema, DataType, TableSchema

        schema = TableSchema("r", (ColumnSchema("k", DataType.INT),))
        store = DeltaStore(schema)
        store.append((1,))
        sidecar = delta_sidecar_path(tmp_path / "r.cods")
        save_delta(store, sidecar)
        before = sidecar.read_bytes()
        store.append((2,))

        crashed, _ = run_to_crash(
            lambda: save_delta(store, sidecar), label
        )
        assert crashed
        assert sidecar.read_bytes() == before  # old sidecar untouched
        if label == "save.delta.temp":
            # The temp file may linger; it must never shadow the real one.
            save_delta(store, sidecar)
            assert sidecar.read_bytes() != before


class TestDatabaseDurability:
    def test_default_durability_creates_no_log(self, tmp_path):
        with Database(tmp_path / "cat") as db:
            db.execute("CREATE TABLE r (k INT)")
            db.execute("INSERT INTO r VALUES (1)")
        assert not wal_path(tmp_path / "cat").exists()

    def test_unknown_durability_mode_raises(self, tmp_path):
        with pytest.raises(WalError, match="durability"):
            Database(tmp_path / "cat", durability="paranoid")

    def test_durability_needs_a_directory(self):
        with pytest.raises(WalError, match="directory"):
            Database(durability="commit")

    def test_commit_then_crash_then_reopen_recovers(self, tmp_path):
        db = Database(tmp_path / "cat", durability="commit")
        db.execute("CREATE TABLE r (k INT, s STRING)")
        db.execute("INSERT INTO r VALUES (1, 'a')")
        db.execute("INSERT INTO r VALUES (2, 'b')")
        # Crash: abandon the object without close()/save().
        with Database(tmp_path / "cat", durability="commit") as db2:
            assert db2.execute("SELECT * FROM r") == [(1, "a"), (2, "b")]
            assert db2.metrics()["wal.recoveries"] == 1

    def test_update_and_delete_replay(self, tmp_path):
        db = Database(tmp_path / "cat", durability="commit")
        db.execute("CREATE TABLE r (k INT, s STRING)")
        db.execute("INSERT INTO r VALUES (1, 'a')")
        db.execute("INSERT INTO r VALUES (2, 'b')")
        db.execute("UPDATE r SET s = 'z' WHERE k = 1")
        db.execute("DELETE FROM r WHERE k = 2")
        with Database(tmp_path / "cat", durability="commit") as db2:
            assert db2.execute("SELECT * FROM r") == [(1, "z")]

    def test_transaction_is_one_durable_unit(self, tmp_path):
        db = Database(tmp_path / "cat", durability="commit")
        db.execute("CREATE TABLE r (k INT)")
        with db.transaction() as tx:
            tx.execute("INSERT INTO r VALUES (1)")
            tx.execute("INSERT INTO r VALUES (2)")
        with Database(tmp_path / "cat", durability="commit") as db2:
            assert db2.execute("SELECT k FROM r") == [(1,), (2,)]

    def test_rolled_back_transaction_leaves_no_redo(self, tmp_path):
        db = Database(tmp_path / "cat", durability="commit")
        db.execute("CREATE TABLE r (k INT)")
        try:
            with db.transaction() as tx:
                tx.execute("INSERT INTO r VALUES (1)")
                raise RuntimeError("user abort")
        except RuntimeError:
            pass
        with Database(tmp_path / "cat", durability="commit") as db2:
            assert db2.execute("SELECT k FROM r") == []

    def test_opening_without_durability_refuses_unapplied_records(
        self, tmp_path
    ):
        db = Database(tmp_path / "cat", durability="commit")
        db.execute("CREATE TABLE r (k INT)")
        db.execute("INSERT INTO r VALUES (1)")
        # Crash; the log still holds the committed insert.
        with pytest.raises(WalError, match="unapplied"):
            Database(tmp_path / "cat")

    def test_clean_close_checkpoints_and_truncates(self, tmp_path):
        with Database(tmp_path / "cat", durability="commit") as db:
            db.execute("CREATE TABLE r (k INT)")
            db.execute("INSERT INTO r VALUES (1)")
        assert not log_has_records(wal_path(tmp_path / "cat"))
        # ...so a non-durable open succeeds afterwards.
        with Database(tmp_path / "cat") as db2:
            assert db2.execute("SELECT k FROM r") == [(1,)]

    def test_checkpoint_requires_durability(self, tmp_path):
        with Database(tmp_path / "cat") as db:
            with pytest.raises(WalError, match="durability"):
                db.checkpoint()

    def test_explicit_checkpoint_truncates_the_log(self, tmp_path):
        db = Database(tmp_path / "cat", durability="commit")
        db.execute("CREATE TABLE r (k INT)")
        db.execute("INSERT INTO r VALUES (1)")
        db.checkpoint()
        assert not log_has_records(wal_path(tmp_path / "cat"))
        # The insert survives a crash through the sidecar, not the log.
        with Database(tmp_path / "cat", durability="commit") as db2:
            assert db2.execute("SELECT k FROM r") == [(1,)]

    def test_group_commit_bounds_the_loss_window(self, tmp_path):
        db = Database(
            tmp_path / "cat", durability="group", group_size=100
        )
        db.execute("CREATE TABLE r (k INT)")
        db.checkpoint()
        db.execute("INSERT INTO r VALUES (1)")
        # Crash with the commit still in the buffer: it is lost — the
        # documented group-commit window — but recovery still yields a
        # consistent committed prefix (the empty table).
        with Database(tmp_path / "cat", durability="commit") as db2:
            assert db2.execute("SELECT k FROM r") == []

    def test_smo_checkpoints_synchronously(self, tmp_path, fig1_table):
        db = Database(tmp_path / "cat", durability="commit")
        db.load_table(fig1_table)
        db.execute(
            "DECOMPOSE TABLE R INTO S (Employee, Skill), "
            "T (Employee, Address)"
        )
        db.execute("INSERT INTO S VALUES ('Smith', 'Filing')")
        # Crash right after: the decomposition survives via its forced
        # checkpoint, the insert via the log.
        with Database(tmp_path / "cat", durability="commit") as db2:
            assert sorted(db2.tables()) == ["S", "T"]
            assert ("Smith", "Filing") in db2.execute("SELECT * FROM S")

    def test_compaction_survives_a_crash(self, tmp_path):
        db = Database(tmp_path / "cat", durability="commit")
        db.execute("CREATE TABLE r (k INT)")
        for k in range(8):
            db.execute("INSERT INTO r VALUES (?)", (k,))
        db.compact("r")
        db.execute("INSERT INTO r VALUES (99)")
        with Database(tmp_path / "cat", durability="commit") as db2:
            assert db2.execute("SELECT k FROM r") == [
                (k,) for k in list(range(8)) + [99]
            ]


class TestUpdateRecord:
    """One UPDATE statement logs a single ``update`` record instead of
    a delete+insert pair per victim; the pair form of older logs stays
    replayable, and the single record costs roughly half the bytes."""

    def test_one_update_statement_is_one_record(self, tmp_path):
        db = Database(tmp_path / "cat", durability="commit")
        db.execute("CREATE TABLE r (k INT, s STRING)")
        for k in range(4):
            db.execute("INSERT INTO r VALUES (?, ?)", (k, "v"))
        db.checkpoint()  # start the log empty; watch the UPDATE alone
        db.execute("UPDATE r SET s = 'z' WHERE s = 'v'")
        payloads = [payload for _, payload in db._wal.scan()]
        # One ``update`` record for the whole statement (plus its
        # commit) — no per-victim delete+insert pairs.
        assert [payload["t"] for payload in payloads] == ["update", "commit"]
        update = payloads[0]
        assert update["table"] == "r"
        assert len(update["rows"]) == 4
        db.close()

    def test_update_across_main_and_delta_survives_a_crash(self, tmp_path):
        from repro.delta import CompactionPolicy

        db = Database(
            tmp_path / "cat",
            durability="commit",
            policy=CompactionPolicy.never(),
        )
        db.execute("CREATE TABLE r (k INT, s STRING)")
        for k in range(4):
            db.execute("INSERT INTO r VALUES (?, ?)", (k, "old"))
        db.compact("r")  # victims now sit in the main store ...
        db.execute("INSERT INTO r VALUES (8, 'old')")  # ... and the delta
        db.execute("UPDATE r SET s = 'new' WHERE s = 'old'")
        (update,) = [
            payload for _, payload in db._wal.scan()
            if payload["t"] == "update"
        ]
        assert update["mpos"] and update["didx"]  # both stores hit
        # Crash: abandon the object without close().
        with Database(tmp_path / "cat", durability="commit") as db2:
            assert sorted(db2.execute("SELECT * FROM r")) == [
                (k, "new") for k in [0, 1, 2, 3, 8]
            ]

    def test_the_old_pair_form_still_replays(self, tmp_path):
        db = Database(tmp_path / "cat", durability="commit")
        db.execute("CREATE TABLE r (k INT, s STRING)")
        db.execute("INSERT INTO r VALUES (1, 'a')")
        db.execute("INSERT INTO r VALUES (2, 'b')")
        # Hand-log an update the way older logs carried it: a delete
        # plus a re-insert per victim, in one transaction.
        epoch = db.engine.mutable("r").epoch
        wal = db._wal
        wal.begin()
        wal.append(rec.delete_delta_record("r", 0, epoch + 1, 0))
        wal.append(rec.insert_record("r", [(1, "z")], epoch + 2, 0))
        wal.commit()
        # Crash: abandon the object without close().
        with Database(tmp_path / "cat", durability="commit") as db2:
            assert db2.execute("SELECT * FROM r") == [(2, "b"), (1, "z")]

    def test_update_record_roughly_halves_the_pair_form_bytes(self):
        rows = [(k, "value-%02d" % k) for k in range(16)]
        positions = list(range(16))
        single = rec.encode_frame(
            rec.update_record("r", positions, [], rows, 5, 1)
        )
        pair = b"".join(
            rec.encode_frame(rec.delete_main_record("r", pos, 5, 1))
            + rec.encode_frame(rec.insert_record("r", [row], 6, 1))
            for pos, row in zip(positions, rows)
        )
        assert len(single) <= 0.55 * len(pair)


class TestCommitFailureDurability:
    """A transaction whose replay fails mid-commit acks the failure
    only after its applied prefix is durable: the caller is told the
    prefix landed, so the prefix must survive a crash right after the
    ack — while a crash *before* the commit record rolls the whole
    transaction back (the caller never saw the ack, so losing the
    prefix is correct)."""

    def _failing_commit(self, tmp_path):
        # Group policy with a huge window: only the failure path's
        # forced flush can make the prefix durable.
        db = Database(tmp_path / "cat", durability="group", group_size=64)
        db.execute("CREATE TABLE a (k INT)")
        db.execute("CREATE TABLE b (k INT)")
        tx = db.transaction().begin()
        tx.execute("INSERT INTO a VALUES (1)")
        tx.execute("INSERT INTO b VALUES (2)")
        db.execute("DROP TABLE b")  # the second statement now fails
        return db, tx

    def test_applied_prefix_survives_a_crash_after_the_ack(self, tmp_path):
        db, tx = self._failing_commit(tmp_path)
        with pytest.raises(Exception, match="statement 2"):
            tx.commit()
        assert tx.state == "commit-failed"
        # Crash: abandon the object without close().
        with Database(tmp_path / "cat", durability="commit") as db2:
            assert db2.execute("SELECT k FROM a") == [(1,)]

    def test_crash_before_the_commit_record_rolls_back(self, tmp_path):
        db, tx = self._failing_commit(tmp_path)
        crashed, _ = run_to_crash(
            tx.commit, "txn.commit.statement-failed"
        )
        assert crashed
        # Crash: abandon the object without close().  The prefix's
        # records never got their commit record, so recovery drops
        # the whole transaction.
        with Database(tmp_path / "cat", durability="commit") as db2:
            assert db2.execute("SELECT k FROM a") == []
