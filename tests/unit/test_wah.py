"""Unit tests for the WAH codec (repro.bitmap.wah)."""

import numpy as np
import pytest

from repro.bitmap import GROUP_BITS, WAHBitmap
from repro.bitmap.reference import decode_reference, encode_reference
from repro.bitmap.wah import FILL_FLAG, ONE_FILL_FLAG
from repro.errors import BitmapError, SerializationError


def bits_of(*positions, n):
    dense = np.zeros(n, dtype=bool)
    for p in positions:
        dense[p] = True
    return dense


class TestConstruction:
    def test_empty(self):
        bm = WAHBitmap.from_dense([])
        assert bm.nbits == 0
        assert bm.count() == 0
        assert bm.word_count == 0
        assert bm.to_dense().tolist() == []

    def test_zeros(self):
        bm = WAHBitmap.zeros(100)
        assert bm.count() == 0
        assert bm.nbits == 100
        assert not bm.to_dense().any()

    def test_ones(self):
        bm = WAHBitmap.ones(100)
        assert bm.count() == 100
        assert bm.to_dense().all()

    def test_zeros_matches_from_dense(self):
        for n in (0, 1, 30, 31, 32, 61, 62, 63, 93, 255):
            assert WAHBitmap.zeros(n) == WAHBitmap.from_dense(
                np.zeros(n, dtype=bool)
            )

    def test_ones_matches_from_dense(self):
        for n in (0, 1, 30, 31, 32, 61, 62, 63, 93, 255):
            assert WAHBitmap.ones(n) == WAHBitmap.from_dense(
                np.ones(n, dtype=bool)
            )

    def test_single_bit(self):
        bm = WAHBitmap.from_dense(bits_of(5, n=10))
        assert bm.count() == 1
        assert bm.positions().tolist() == [5]

    def test_exactly_one_group(self):
        dense = np.ones(GROUP_BITS, dtype=bool)
        bm = WAHBitmap.from_dense(dense)
        # A single complete all-ones group is one fill word.
        assert bm.word_count == 1
        assert int(bm.words[0]) == int(ONE_FILL_FLAG) | 1

    def test_long_zero_run_is_one_word(self):
        bm = WAHBitmap.zeros(GROUP_BITS * 1000)
        assert bm.word_count == 1
        assert int(bm.words[0]) == int(FILL_FLAG) | 1000

    def test_from_positions_validates_order(self):
        with pytest.raises(BitmapError):
            WAHBitmap.from_positions([3, 1], 10)

    def test_from_positions_validates_duplicates(self):
        with pytest.raises(BitmapError):
            WAHBitmap.from_positions([1, 1], 10)

    def test_from_positions_validates_range(self):
        with pytest.raises(BitmapError):
            WAHBitmap.from_positions([10], 10)
        with pytest.raises(BitmapError):
            WAHBitmap.from_positions([-1], 10)

    def test_from_intervals_validates_overlap(self):
        with pytest.raises(BitmapError):
            WAHBitmap.from_intervals([0, 3], [5, 9], 10)

    def test_from_intervals_merges_touching(self):
        bm = WAHBitmap.from_intervals([0, 5], [5, 9], 10)
        assert bm == WAHBitmap.from_intervals([0], [9], 10)

    def test_from_intervals_empty_intervals_ignored(self):
        bm = WAHBitmap.from_intervals([2, 4], [2, 6], 10)
        assert bm.positions().tolist() == [4, 5]

    def test_from_runs(self):
        bm = WAHBitmap.from_runs([(1, 3), (0, 4), (1, 2)], 12)
        assert bm.positions().tolist() == [0, 1, 2, 7, 8]

    def test_from_runs_validates(self):
        with pytest.raises(BitmapError):
            WAHBitmap.from_runs([(1, 20)], 10)

    def test_negative_nbits_rejected(self):
        with pytest.raises(BitmapError):
            WAHBitmap(np.empty(0, dtype=np.uint32), -1)


class TestCanonicalForm:
    """Equal bit content must yield identical word arrays."""

    @pytest.mark.parametrize("n", [1, 30, 31, 32, 62, 93, 100, 255, 400])
    def test_constructors_agree(self, n):
        rng = np.random.default_rng(n)
        dense = rng.random(n) < 0.4
        positions = np.flatnonzero(dense)
        from_dense = WAHBitmap.from_dense(dense)
        from_positions = WAHBitmap.from_positions(positions, n)
        starts, ends = from_dense.one_intervals()
        from_intervals = WAHBitmap.from_intervals(starts, ends, n)
        assert from_dense == from_positions
        assert from_dense == from_intervals
        assert np.array_equal(from_dense.words, from_positions.words)
        assert np.array_equal(from_dense.words, from_intervals.words)

    @pytest.mark.parametrize("n", [1, 31, 62, 100, 255])
    def test_matches_pure_python_reference(self, n):
        rng = np.random.default_rng(n + 1)
        dense = rng.random(n) < 0.5
        bm = WAHBitmap.from_dense(dense)
        assert [int(w) for w in bm.words] == encode_reference(dense.tolist())
        assert decode_reference(
            encode_reference(dense.tolist()), n
        ) == dense.astype(int).tolist()

    def test_hash_consistency(self):
        a = WAHBitmap.from_dense(bits_of(1, 5, n=40))
        b = WAHBitmap.from_positions([1, 5], 40)
        assert hash(a) == hash(b)
        assert a == b

    def test_not_equal_different_nbits(self):
        assert WAHBitmap.zeros(10) != WAHBitmap.zeros(11)

    def test_eq_other_type(self):
        assert (WAHBitmap.zeros(4) == "nope") is False


class TestQueries:
    def test_count_mixed(self):
        bm = WAHBitmap.from_intervals([10, 100], [50, 200], 300)
        assert bm.count() == 40 + 100

    def test_first_set_in_fill(self):
        bm = WAHBitmap.from_intervals([62], [300], 400)
        assert bm.first_set() == 62

    def test_first_set_in_literal(self):
        bm = WAHBitmap.from_positions([45], 400)
        assert bm.first_set() == 45

    def test_first_set_empty(self):
        assert WAHBitmap.zeros(100).first_set() == -1
        assert WAHBitmap.from_dense([]).first_set() == -1

    def test_get(self):
        bm = WAHBitmap.from_positions([0, 35, 99], 100)
        assert bm.get(0) and bm.get(35) and bm.get(99)
        assert not bm.get(1) and not bm.get(34) and not bm.get(98)

    def test_get_out_of_range(self):
        bm = WAHBitmap.zeros(10)
        with pytest.raises(BitmapError):
            bm.get(10)
        with pytest.raises(BitmapError):
            bm.get(-1)

    def test_positions_order(self):
        rng = np.random.default_rng(9)
        dense = rng.random(500) < 0.3
        bm = WAHBitmap.from_dense(dense)
        positions = bm.positions()
        assert np.array_equal(positions, np.flatnonzero(dense))
        assert np.all(np.diff(positions) > 0)

    def test_one_intervals_maximal(self):
        bm = WAHBitmap.from_dense(
            [1, 1, 0, 1, 1, 1, 0, 0, 1] + [0] * 50 + [1] * 40
        )
        starts, ends = bm.one_intervals()
        assert starts.tolist() == [0, 3, 8, 59]
        assert ends.tolist() == [2, 6, 9, 99]

    def test_runs_cover_all_bits(self):
        bm = WAHBitmap.from_dense([0, 1, 1, 0, 0, 0, 1])
        runs = bm.runs()
        assert runs == [(0, 1), (1, 2), (0, 3), (1, 1)]
        assert sum(length for _value, length in runs) == bm.nbits


class TestStructuralOps:
    def test_select_basic(self):
        bm = WAHBitmap.from_dense([1, 0, 1, 1, 0, 0, 1, 0])
        out = bm.select(np.array([0, 1, 3, 6]))
        assert out.to_dense().tolist() == [True, False, True, True]

    def test_select_empty_positions(self):
        bm = WAHBitmap.ones(100)
        out = bm.select(np.array([], dtype=np.int64))
        assert out.nbits == 0 and out.count() == 0

    def test_select_preserves_rank_order(self):
        rng = np.random.default_rng(4)
        dense = rng.random(400) < 0.5
        bm = WAHBitmap.from_dense(dense)
        picks = np.sort(rng.choice(400, 150, replace=False))
        assert np.array_equal(bm.select(picks).to_dense(), dense[picks])

    def test_concat(self):
        a = WAHBitmap.from_dense([1, 0, 1])
        b = WAHBitmap.from_dense([0, 0, 1, 1])
        combined = a.concat(b)
        assert combined.nbits == 7
        assert combined.to_dense().tolist() == [
            True, False, True, False, False, True, True,
        ]

    def test_concat_with_empty(self):
        a = WAHBitmap.from_dense([1, 0])
        empty = WAHBitmap.from_dense([])
        assert a.concat(empty) == a
        assert empty.concat(a) == a

    def test_concat_keeps_fills_compact(self):
        a = WAHBitmap.ones(31 * 100)
        b = WAHBitmap.ones(31 * 100)
        combined = a.concat(b)
        assert combined.word_count == 1
        assert combined.count() == 31 * 200


class TestLogicalOps:
    @pytest.fixture
    def pair(self):
        rng = np.random.default_rng(11)
        x = rng.random(300) < 0.4
        y = rng.random(300) < 0.6
        return x, y, WAHBitmap.from_dense(x), WAHBitmap.from_dense(y)

    def test_and(self, pair):
        x, y, a, b = pair
        assert np.array_equal((a & b).to_dense(), x & y)

    def test_or(self, pair):
        x, y, a, b = pair
        assert np.array_equal((a | b).to_dense(), x | y)

    def test_xor(self, pair):
        x, y, a, b = pair
        assert np.array_equal((a ^ b).to_dense(), x ^ y)

    def test_invert(self, pair):
        x, _y, a, _b = pair
        assert np.array_equal(a.invert().to_dense(), ~x)

    def test_invert_partial_tail_stays_in_range(self):
        bm = WAHBitmap.zeros(40).invert()
        assert bm.count() == 40
        assert bm.positions().tolist() == list(range(40))

    def test_length_mismatch_raises(self, pair):
        _x, _y, a, _b = pair
        with pytest.raises(BitmapError):
            _ = a & WAHBitmap.zeros(10)


class TestSerialization:
    def test_roundtrip(self):
        rng = np.random.default_rng(13)
        bm = WAHBitmap.from_dense(rng.random(500) < 0.3)
        assert WAHBitmap.from_bytes(bm.to_bytes()) == bm

    def test_roundtrip_empty(self):
        bm = WAHBitmap.from_dense([])
        assert WAHBitmap.from_bytes(bm.to_bytes()) == bm

    def test_bad_magic(self):
        with pytest.raises(SerializationError):
            WAHBitmap.from_bytes(b"XXXX" + b"\0" * 20)

    def test_truncated(self):
        bm = WAHBitmap.ones(1000)
        with pytest.raises(SerializationError):
            WAHBitmap.from_bytes(bm.to_bytes()[:-2])

    def test_repr(self):
        bm = WAHBitmap.ones(10)
        assert "WAHBitmap" in repr(bm)
        assert "count=10" in repr(bm)


class TestScale:
    def test_million_bit_fills(self):
        bm = WAHBitmap.from_intervals([100], [900_000], 1_000_000)
        assert bm.count() == 899_900
        assert bm.word_count < 10  # pure fills stay tiny
        assert bm.first_set() == 100

    def test_compression_ratio_reported(self):
        from repro.bitmap import bitmap_stats

        bm = WAHBitmap.from_intervals([0], [31 * 10_000], 31 * 10_000)
        stats = bitmap_stats(bm)
        assert stats.ratio > 1000
