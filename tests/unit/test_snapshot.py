"""Unit tests for PR 2: MVCC snapshots, incremental compaction, the
delta hash index, O(1) metadata renames, snapshot-scoped SQL and the
versioned ``.delta`` sidecar."""

import struct

import pytest

from repro.core.engine import EvolutionEngine
from repro.delta import (
    CompactionPolicy,
    DeltaStore,
    MutableTable,
    Snapshot,
)
from repro.errors import SerializationError, StorageError
from repro.smo.predicate import And, Comparison, Not, Or
from repro.sql import MutableColumnAdapter, SqlExecutor
from repro.storage import (
    DataType,
    delta_sidecar_path,
    load_delta,
    load_mutable_table,
    save_delta,
    save_mutable_table,
    table_from_python,
)


def small_table(name="R"):
    return table_from_python(
        name,
        {
            "K": (DataType.INT, [1, 2, 3, 4]),
            "S": (DataType.STRING, ["a", "b", "a", "c"]),
        },
    )


def frozen(table=None, **kwargs):
    return MutableTable(
        table if table is not None else small_table(),
        CompactionPolicy.never(),
        **kwargs,
    )


class TestSnapshotPinning:
    def test_snapshot_is_frozen_under_dml(self):
        mutable = frozen()
        snapshot = mutable.snapshot()
        pinned = snapshot.to_rows()
        mutable.insert((5, "d"))
        mutable.delete(Comparison("K", "=", 1))
        mutable.update({"S": "z"}, Comparison("K", "=", 2))
        assert snapshot.to_rows() == pinned
        assert snapshot.nrows == 4
        assert list(snapshot.scan()) == pinned
        assert mutable.nrows == 4  # -1 main, +1 insert (update is in-place)

    def test_snapshot_sees_delta_state_at_pin(self):
        mutable = frozen()
        mutable.insert((5, "d"))
        mutable.delete(Comparison("K", "=", 2))
        snapshot = mutable.snapshot()
        assert snapshot.to_rows() == [(1, "a"), (3, "a"), (4, "c"), (5, "d")]
        mutable.delete()  # delete everything afterwards
        assert snapshot.to_rows() == [(1, "a"), (3, "a"), (4, "c"), (5, "d")]
        assert mutable.nrows == 0

    def test_snapshot_survives_full_compaction(self):
        mutable = frozen()
        snapshot = mutable.snapshot()
        pinned = snapshot.to_rows()
        mutable.insert((5, "d"))
        mutable.delete(Comparison("S", "=", "a"))
        mutable.compact()
        assert snapshot.to_rows() == pinned
        assert snapshot.generation == 0 and mutable.generation == 1

    def test_scan_is_pinned_without_explicit_snapshot(self):
        mutable = frozen()
        rows = mutable.scan()
        mutable.insert((5, "d"))
        mutable.compact()
        assert len(list(rows)) == 4

    def test_context_manager_closes(self):
        mutable = frozen()
        with mutable.snapshot() as snapshot:
            assert mutable.open_snapshots == 1
            assert snapshot.nrows == 4
        assert mutable.open_snapshots == 0
        assert snapshot.closed
        with pytest.raises(StorageError):
            snapshot.to_rows()
        snapshot.close()  # idempotent

    def test_matching_rows_on_snapshot(self):
        mutable = frozen()
        mutable.insert((5, "a"))
        snapshot = mutable.snapshot()
        mutable.delete()  # later deletes must not leak into the pin
        assert sorted(snapshot.matching_rows(Comparison("S", "=", "a"))) == [
            (1, "a"), (3, "a"), (5, "a"),
        ]
        assert snapshot.matching_rows(None) == snapshot.to_rows()

    def test_snapshot_readable_after_handle_invalidation(self):
        engine = EvolutionEngine()
        engine.load_table(small_table())
        mutable = engine.mutable("R", CompactionPolicy.never())
        mutable.insert((5, "d"))
        snapshot = mutable.snapshot()
        pinned = snapshot.to_rows()
        engine.apply_sql_like("DROP COLUMN S FROM R")  # flush + invalidate
        assert not mutable.is_valid
        assert snapshot.to_rows() == pinned
        snapshot.close()


class TestVersionRetention:
    def test_old_generation_retained_until_last_close(self):
        mutable = frozen()
        first = mutable.snapshot()
        second = mutable.snapshot()
        mutable.insert((5, "d"))
        mutable.compact()
        assert mutable.retained_versions == (0,)
        first.close()
        assert mutable.retained_versions == (0,)  # second still pins it
        second.close()
        assert mutable.retained_versions == ()

    def test_unpinned_compaction_retains_nothing(self):
        mutable = frozen()
        mutable.insert((5, "d"))
        mutable.compact()
        assert mutable.retained_versions == ()

    def test_snapshots_across_generations(self):
        mutable = frozen()
        old = mutable.snapshot()
        mutable.insert((5, "d"))
        mutable.compact()
        new = mutable.snapshot()
        mutable.insert((6, "e"))
        mutable.compact()
        assert mutable.retained_versions == (0, 1)
        assert old.to_rows() == [(1, "a"), (2, "b"), (3, "a"), (4, "c")]
        assert new.to_rows()[-1] == (5, "d")
        old.close()
        assert mutable.retained_versions == (1,)
        new.close()
        assert mutable.retained_versions == ()


class TestIncrementalCompaction:
    def test_steps_cover_all_columns(self):
        mutable = frozen()
        mutable.insert((5, "d"))
        progress = mutable.compact_step()
        assert (progress.columns_done, progress.columns_total) == (1, 2)
        assert not progress.done and progress.remaining == 1
        assert mutable.has_pending_changes  # run in flight
        progress = mutable.compact_step()
        assert progress.done
        assert mutable.compactions == 1
        assert mutable.main.to_rows()[-1] == (5, "d")

    def test_step_budget_from_policy(self):
        mutable = MutableTable(
            small_table(), CompactionPolicy(None, None, None, step_columns=2)
        )
        mutable.insert((5, "d"))
        assert mutable.compact_step().done  # both columns in one step

    def test_empty_delta_step_is_noop(self):
        mutable = frozen()
        progress = mutable.compact_step()
        assert progress.done and progress.columns_total == 0
        assert mutable.compactions == 0

    def test_dml_between_steps_is_carried_over(self):
        mutable = frozen()
        mutable.insert((5, "d"))
        mutable.compact_step()                       # cutoff pinned
        mutable.insert((6, "e"))                     # post-cutoff insert
        mutable.delete(Comparison("K", "=", 1))      # post-cutoff, main row
        mutable.delete(Comparison("K", "=", 5))      # post-cutoff, folded row
        assert mutable.compact_step().done
        # The new main holds the cutoff state; the carried delta masks it.
        assert sorted(mutable.main.to_rows()) == [
            (1, "a"), (2, "b"), (3, "a"), (4, "c"), (5, "d"),
        ]
        assert sorted(mutable.to_rows()) == [(2, "b"), (3, "a"), (4, "c"),
                                             (6, "e")]
        mutable.compact()
        assert sorted(mutable.main.to_rows()) == [(2, "b"), (3, "a"),
                                                  (4, "c"), (6, "e")]

    def test_update_between_steps(self):
        mutable = frozen()
        mutable.insert((5, "d"))
        mutable.compact_step()
        mutable.update({"S": "z"}, Comparison("K", ">=", 4))
        while not mutable.compact_step().done:
            pass
        assert sorted(mutable.to_rows()) == [
            (1, "a"), (2, "b"), (3, "a"), (4, "z"), (5, "z"),
        ]

    def test_compact_finishes_inflight_run(self):
        mutable = frozen()
        mutable.insert((5, "d"))
        mutable.compact_step()
        table = mutable.compact("wrap up")
        assert table is mutable.main
        assert not mutable.has_pending_changes
        assert mutable.compactions == 1

    def test_snapshot_pinned_mid_run_is_stable(self):
        mutable = frozen()
        mutable.insert((5, "d"))
        mutable.compact_step()
        snapshot = mutable.snapshot()  # pinned while the run is in flight
        pinned = snapshot.to_rows()
        mutable.insert((6, "e"))
        assert mutable.compact_step().done
        mutable.compact()
        assert snapshot.to_rows() == pinned

    def test_on_compact_fires_once_per_cycle(self):
        seen = []
        mutable = frozen(
            on_compact=lambda table, reason: seen.append(reason)
        )
        mutable.insert((5, "d"))
        mutable.compact_step(reason="bg")
        assert seen == []
        mutable.compact_step(reason="bg")
        assert seen == ["bg"]


class TestDeltaHashIndex:
    def indexed(self, threshold=2):
        return MutableTable(
            small_table(),
            CompactionPolicy(None, None, None, index_threshold=threshold),
        )

    def test_index_builds_past_threshold(self):
        mutable = self.indexed(threshold=3)
        mutable.insert((5, "d"))
        assert mutable.delta.index_matches(Comparison("S", "=", "d")) is None
        mutable.insert_rows([(6, "e"), (7, "d")])
        matched = mutable.delta.index_matches(Comparison("S", "=", "d"))
        assert matched == {0, 2}
        assert mutable.delta.indexed_columns == ("S",)

    def test_index_disabled(self):
        mutable = MutableTable(
            small_table(),
            CompactionPolicy(None, None, None, index_threshold=None),
        )
        mutable.insert_rows([(9, "x")] * 10)
        assert mutable.delta.index_matches(Comparison("S", "=", "x")) is None

    def test_index_matches_row_wise_for_all_operators(self):
        rows = [(k, s) for k in range(6) for s in "abc"]
        indexed = self.indexed(threshold=1)
        plain = MutableTable(small_table(), CompactionPolicy.never())
        indexed.insert_rows(rows)
        plain.insert_rows(rows)
        predicates = [
            Comparison("K", "=", 3),
            Comparison("K", "!=", 2),
            Comparison("K", "<", 2),
            Comparison("K", ">=", 4),
            Comparison("S", "IN", ("a", "c")),
            And(Comparison("K", ">", 1), Comparison("S", "=", "b")),
            Or(Comparison("K", "=", 0), Comparison("S", "=", "c")),
            Not(Comparison("S", "=", "a")),
        ]
        for predicate in predicates:
            assert indexed.delta.index_matches(predicate) is not None
            assert sorted(indexed.matching_rows(predicate)) == sorted(
                plain.matching_rows(predicate)
            ), str(predicate)

    def test_index_respects_deletes_and_epochs(self):
        mutable = self.indexed(threshold=1)
        mutable.insert_rows([(5, "d"), (6, "d")])
        snapshot = mutable.snapshot()
        mutable.delete(Comparison("K", "=", 5))
        assert mutable.matching_rows(Comparison("S", "=", "d")) == [(6, "d")]
        assert snapshot.matching_rows(Comparison("S", "=", "d")) == [
            (5, "d"), (6, "d"),
        ]

    def test_index_survives_rename(self):
        mutable = self.indexed(threshold=1)
        mutable.insert((5, "d"))
        mutable.delta.build_index("S")
        mutable.rewire_metadata(
            mutable.main.with_renamed_column("S", "Skill"), {"S": "Skill"}
        )
        assert mutable.delta.indexed_columns == ("Skill",)
        assert mutable.matching_rows(Comparison("Skill", "=", "d")) == [
            (5, "d")
        ]


class TestMetadataRenames:
    def engine_with_delta(self):
        engine = EvolutionEngine()
        engine.load_table(small_table())
        mutable = engine.mutable("R", CompactionPolicy.never())
        mutable.insert((5, "d"))
        return engine, mutable

    def test_rename_table_smo_preserves_delta(self):
        engine, mutable = self.engine_with_delta()
        status = engine.apply_sql_like("RENAME TABLE R TO R2")
        assert status.delta_rows_flushed == 0
        assert not any(e.step == "delta flush" for e in status.events)
        assert mutable.is_valid and mutable.compactions == 0
        assert engine.pending_delta("R2") is mutable
        assert mutable.name == "R2"
        assert mutable.to_rows()[-1] == (5, "d")
        assert engine.table("R2").nrows == 4  # still buffered

    def test_rename_column_smo_preserves_delta(self):
        engine, mutable = self.engine_with_delta()
        status = engine.apply_sql_like("RENAME COLUMN S TO Skill IN R")
        assert status.delta_rows_flushed == 0
        assert mutable.compactions == 0
        assert mutable.schema.column_names == ("K", "Skill")
        assert mutable.delta.schema.column_names == ("K", "Skill")
        assert mutable.delete(Comparison("Skill", "=", "d")) == 1

    def test_rename_mid_incremental_run(self):
        engine, mutable = self.engine_with_delta()
        mutable.compact_step()
        engine.apply_sql_like("RENAME COLUMN S TO Skill IN R")
        assert mutable.compact_step(columns=2).done
        assert mutable.schema.column_names == ("K", "Skill")
        assert sorted(engine.table("R").to_rows()) == [
            (1, "a"), (2, "b"), (3, "a"), (4, "c"), (5, "d"),
        ]

    def test_rewire_rejects_row_count_changes(self):
        mutable = frozen()
        other = table_from_python(
            "R",
            {"K": (DataType.INT, [1]), "S": (DataType.STRING, ["a"])},
        )
        with pytest.raises(StorageError):
            mutable.rewire_metadata(other)

    def test_adopt_schema_rejects_mismatched_columns(self):
        store = DeltaStore(small_table().schema)
        with pytest.raises(StorageError):
            store.adopt_schema(
                table_from_python("R", {"X": (DataType.INT, [])}).schema
            )

    def test_epoch_and_snapshots_survive_rename(self):
        engine, mutable = self.engine_with_delta()
        snapshot = mutable.snapshot()
        epoch = mutable.epoch
        engine.apply_sql_like("RENAME TABLE R TO R2")
        assert mutable.epoch == epoch
        assert snapshot.to_rows()[-1] == (5, "d")

    def test_pinned_snapshot_follows_column_rename(self):
        # Names are metadata, not data: a pinned view answers predicates
        # under the new names while its rows never change.
        engine, mutable = self.engine_with_delta()
        snapshot = mutable.snapshot()
        pinned = snapshot.to_rows()
        engine.apply_sql_like("RENAME COLUMN S TO Skill IN R")
        mutable.delete()  # later deletes stay invisible to the pin
        assert snapshot.to_rows() == pinned
        assert sorted(
            snapshot.matching_rows(Comparison("Skill", "=", "a"))
        ) == [(1, "a"), (3, "a")]

    def test_retained_generation_follows_rename(self):
        engine, mutable = self.engine_with_delta()
        snapshot = mutable.snapshot()  # pins generation 0
        mutable.compact()              # generation 0 becomes retained
        engine.apply_sql_like("RENAME COLUMN S TO Skill IN R")
        assert snapshot.matching_rows(Comparison("Skill", "=", "d")) == [
            (5, "d")
        ]
        snapshot.close()


class TestSnapshotScopedSql:
    def executor(self):
        adapter = MutableColumnAdapter(policy=CompactionPolicy.never())
        executor = SqlExecutor(adapter)
        executor.execute("CREATE TABLE r (k INT, s STRING)")
        executor.execute("INSERT INTO r VALUES (1, 'a'), (2, 'b')")
        return adapter, executor

    def test_scope_freezes_selects(self):
        adapter, executor = self.executor()
        with adapter.snapshot_scope("r"):
            before = executor.execute("SELECT * FROM r")
            executor.execute("INSERT INTO r VALUES (3, 'c')")
            executor.execute("DELETE FROM r WHERE k = 1")
            assert executor.execute("SELECT * FROM r") == before
            assert executor.execute(
                "SELECT * FROM r WHERE s = 'a'"
            ) == [(1, "a")]
        assert sorted(executor.execute("SELECT * FROM r")) == [
            (2, "b"), (3, "c"),
        ]

    def test_begin_end_snapshot(self):
        adapter, executor = self.executor()
        adapter.begin_snapshot("r")
        executor.execute("DELETE FROM r")
        assert len(executor.execute("SELECT * FROM r")) == 2
        assert adapter.end_snapshot("r")
        assert not adapter.end_snapshot("r")
        assert executor.execute("SELECT * FROM r") == []

    def test_scope_survives_rename(self):
        adapter, executor = self.executor()
        adapter.begin_snapshot("r")
        executor.execute("ALTER TABLE r RENAME TO r2")
        executor.execute("INSERT INTO r2 VALUES (9, 'z')")
        assert len(executor.execute("SELECT * FROM r2")) == 2  # pinned
        adapter.end_snapshot("r2")
        assert len(executor.execute("SELECT * FROM r2")) == 3

    def test_nested_scopes_restore_the_outer_pin(self):
        adapter, executor = self.executor()
        with adapter.snapshot_scope("r"):
            executor.execute("INSERT INTO r VALUES (3, 'c')")
            with adapter.snapshot_scope("r"):
                assert len(executor.execute("SELECT * FROM r")) == 3
            # The outer pin is still in force after the inner one ends.
            assert len(executor.execute("SELECT * FROM r")) == 2
        assert len(executor.execute("SELECT * FROM r")) == 3

    def test_end_snapshot_skips_already_closed_pins(self):
        adapter, executor = self.executor()
        adapter.begin_snapshot("r")               # outer pin
        with adapter.begin_snapshot("r"):         # inner, self-closed
            pass
        # Ending the scope must release the OUTER pin, not count the
        # dead inner entry as the release.
        assert adapter.end_snapshot("r")
        executor.execute("INSERT INTO r VALUES (3, 'c')")
        assert len(executor.execute("SELECT * FROM r")) == 3  # unpinned
        assert not adapter.end_snapshot("r")
        mutable = adapter.evolution_engine.mutable("r")
        assert mutable.open_snapshots == 0

    def test_drop_table_clears_the_scope(self):
        adapter, executor = self.executor()
        with adapter.snapshot_scope("r"):
            executor.execute("DROP TABLE r")
            executor.execute("CREATE TABLE r (k INT, s STRING)")
            executor.execute("INSERT INTO r VALUES (99, 'z')")
            # The re-created table must not be shadowed by the dropped
            # table's pinned rows.
            assert executor.execute("SELECT * FROM r") == [(99, "z")]

    def test_filter_rows_pushdown_matches_scan(self):
        adapter, executor = self.executor()
        executor.execute("INSERT INTO r VALUES (3, 'a'), (4, 'c')")
        adapter.compact("r")  # rows into the compressed main
        executor.execute("INSERT INTO r VALUES (5, 'a')")  # and the delta
        assert sorted(
            executor.execute("SELECT k FROM r WHERE s = 'a'")
        ) == [(1,), (3,), (5,)]
        # Pushdown also serves tables without a mutable handle.
        fresh = MutableColumnAdapter()
        fresh.catalog.create(small_table())
        rows = fresh.filter_rows("R", Comparison("S", "=", "a"))
        assert sorted(rows) == [(1, "a"), (3, "a")]

    def test_create_index_builds_delta_index(self):
        adapter, executor = self.executor()
        executor.execute("CREATE INDEX idx ON r (s)")
        assert "s" in adapter.evolution_engine.mutable("r").delta.indexed_columns


class TestSidecarV2:
    def test_roundtrip_preserves_mvcc_state(self, tmp_path):
        mutable = frozen()
        mutable.insert((5, "d"))
        mutable.delete(Comparison("K", "=", 2))
        mutable.insert((6, "e"))
        mutable.delete(Comparison("K", "=", 6))
        path = tmp_path / "r.cods"
        save_mutable_table(mutable, path)
        restored = load_mutable_table(path, CompactionPolicy.never())
        assert restored.to_rows() == mutable.to_rows()
        assert restored.delta.epoch == mutable.delta.epoch
        assert restored.delta.insert_epochs == mutable.delta.insert_epochs
        assert restored.delta.deleted_main == mutable.delta.deleted_main
        assert restored.delta.deleted_delta == mutable.delta.deleted_delta

    def test_index_metadata_roundtrip(self, tmp_path):
        schema = small_table().schema
        store = DeltaStore(schema, index_threshold=7)
        store.append((5, "d"))
        store.build_index("S")
        path = tmp_path / "r.delta"
        save_delta(store, path)
        loaded = load_delta(path, schema)
        assert loaded.index_threshold == 7
        assert loaded.indexed_columns == ("S",)
        assert loaded.index_matches(Comparison("S", "=", "d")) == {0}

    def test_v1_sidecar_still_loads(self, tmp_path):
        import json

        payload = {
            "table": "R",
            "columns": {"K": [5, 6], "S": ["d", "e"]},
            "deleted_main": [1],
            "deleted_delta": [0],
        }
        path = tmp_path / "r.delta"
        blob = json.dumps(payload).encode()
        path.write_bytes(
            b"CODD" + struct.pack("<H", 1)
            + struct.pack("<I", len(blob)) + blob
        )
        loaded = load_delta(path, small_table().schema)
        assert loaded.live_rows() == [(6, "e")]
        assert loaded.deleted_main == {1: 2}
        assert loaded.epoch == 2

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "r.delta"
        path.write_bytes(b"CODD" + struct.pack("<H", 99) + b"\x00" * 4)
        with pytest.raises(SerializationError):
            load_delta(path, small_table().schema)

    def test_out_of_range_delta_index_rejected(self, tmp_path):
        schema = small_table().schema
        store = DeltaStore(schema)
        store.append((5, "d"))
        store.delete_delta(0)
        path = tmp_path / "r.delta"
        save_delta(store, path)
        blob = path.read_bytes().replace(b'[[0, ', b'[[7, ')
        path.write_bytes(blob)
        with pytest.raises(SerializationError):
            load_delta(path, schema)

    def test_sidecar_removed_after_incremental_cycle(self, tmp_path):
        mutable = frozen()
        mutable.insert((5, "d"))
        path = tmp_path / "r.cods"
        save_mutable_table(mutable, path)
        assert delta_sidecar_path(path).exists()
        while not mutable.compact_step().done:
            pass
        save_mutable_table(mutable, path)
        assert not delta_sidecar_path(path).exists()


class TestSnapshotScanBench:
    def test_bench_script_runs(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        out = tmp_path / "BENCH_snapshot_scan.json"
        result = subprocess.run(
            [
                sys.executable,
                str(repo / "benchmarks" / "bench_snapshot_scan.py"),
                "--rows", "500", "--ops", "60", "--out", str(out),
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        from repro.bench.exporters import load_snapshot_scan_json

        payload = load_snapshot_scan_json(out)
        assert payload["benchmark"] == "snapshot_scan"
        assert payload["pinned_snapshot"]["pinned_rows"] >= 0
        assert payload["scan_under_write"]["speedup"] > 0
        assert (
            payload["delta_index"]["row_wise"]["matched"]
            == payload["delta_index"]["indexed"]["matched"]
        )


class TestDeltaStatsSurface:
    def test_stats_carry_mvcc_fields(self):
        mutable = MutableTable(
            small_table(),
            CompactionPolicy(None, None, None, index_threshold=1),
        )
        mutable.insert((5, "d"))
        mutable.matching_rows(Comparison("S", "=", "d"))  # builds the index
        with mutable.snapshot():
            stats = mutable.delta_stats()
            assert stats.epoch == mutable.epoch > 0
            assert stats.open_snapshots == 1
            assert stats.indexed_columns == 1
            assert stats.as_dict()["open_snapshots"] == 1

    def test_epoch_is_monotonic_across_compactions(self):
        mutable = frozen()
        mutable.insert((5, "d"))
        epoch = mutable.epoch
        mutable.compact()
        assert mutable.epoch == epoch  # counter survives the fold
        mutable.insert((6, "e"))
        assert mutable.epoch == epoch + 1

    def test_snapshot_repr(self):
        mutable = frozen()
        snapshot = mutable.snapshot()
        assert "epoch" in repr(snapshot)
        snapshot.close()
        assert repr(snapshot) == "Snapshot(closed)"
        assert isinstance(snapshot, Snapshot)
