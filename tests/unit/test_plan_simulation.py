"""Exhaustive tests of schema-effect simulation for every operator.

Plan validation must predict the exact schema state the engine
produces; this suite applies each SMO both ways and compares.
"""

import pytest

from repro.core import EvolutionEngine
from repro.smo import (
    AddColumn,
    Comparison,
    CopyTable,
    CreateTable,
    DecomposeTable,
    DropColumn,
    DropTable,
    MergeTables,
    PartitionTable,
    RenameColumn,
    RenameTable,
    UnionTables,
    simulate,
)
from repro.storage import ColumnSchema, DataType, TableSchema
from tests.conftest import make_fd_table


def engine_with_table():
    engine = EvolutionEngine()
    engine.load_table(make_fd_table(40, 5, seed=1))
    return engine


def schemas_of(engine):
    return {
        name: engine.catalog.schema(name)
        for name in engine.catalog.table_names()
    }


OPERATORS = [
    DecomposeTable("R", "S", ("K", "P"), "T", ("K", "D")),
    CreateTable(TableSchema("New", (ColumnSchema("x", DataType.INT),))),
    DropTable("R"),
    RenameTable("R", "R2"),
    CopyTable("R", "Rcopy"),
    PartitionTable("R", "A", "B", Comparison("P", "<", 2)),
    AddColumn("R", ColumnSchema("Extra", DataType.STRING), "?"),
    DropColumn("R", "P"),
    RenameColumn("R", "P", "Payload"),
]


@pytest.mark.parametrize(
    "op", OPERATORS, ids=[type(op).__name__ for op in OPERATORS]
)
def test_simulation_matches_execution(op):
    engine = engine_with_table()
    predicted = simulate(op, schemas_of(engine))
    engine.apply(op)
    actual = schemas_of(engine)
    assert set(predicted) == set(actual)
    for name in actual:
        assert predicted[name].column_names == actual[name].column_names
        assert [c.dtype for c in predicted[name].columns] == [
            c.dtype for c in actual[name].columns
        ]


def test_simulation_merge_matches_execution():
    engine = engine_with_table()
    engine.apply(DecomposeTable("R", "S", ("K", "P"), "T", ("K", "D")))
    op = MergeTables("S", "T", "Back")
    predicted = simulate(op, schemas_of(engine))
    engine.apply(op)
    actual = schemas_of(engine)
    assert predicted["Back"].column_names == actual["Back"].column_names


def test_simulation_union_matches_execution():
    engine = engine_with_table()
    engine.apply(CopyTable("R", "R2"))
    op = UnionTables("R", "R2", "Big")
    predicted = simulate(op, schemas_of(engine))
    engine.apply(op)
    assert predicted["Big"].column_names == engine.catalog.schema(
        "Big"
    ).column_names
