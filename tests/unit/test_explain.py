"""EXPLAIN / EXPLAIN ANALYZE through the Database façade.

The shape contract: both variants return rows in the fixed
``TRACE_COLUMNS`` 6-tuple layout on every backend; plain EXPLAIN
renders the static plan without executing (and charges no counters),
EXPLAIN ANALYZE executes the SELECT through the traced pipeline and
charges exactly what a plain SELECT would."""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.errors import SqlError
from repro.obs import TRACE_COLUMNS, QueryTrace

BACKENDS = ("mutable", "column", "row")
ROWS = [(i % 3, "ab"[i % 2]) for i in range(10)]
SELECT = "SELECT s FROM r WHERE k = 1 ORDER BY s LIMIT 3"


def operators(rows):
    return [row[0].strip() for row in rows]


@pytest.fixture(params=BACKENDS)
def db(request):
    database = Database(backend=request.param)
    database.execute("CREATE TABLE r (k INT, s STRING, KEY(k))")
    database.executemany("INSERT INTO r VALUES (?, ?)", ROWS)
    return database


class TestShape:
    def test_plain_explain_renders_the_static_plan(self, db):
        rows = db.execute("EXPLAIN " + SELECT)
        assert operators(rows) == [
            "select", "scan", "filter", "project", "order_by", "limit",
        ]
        for row in rows:
            assert len(row) == len(TRACE_COLUMNS)
            # Static plan: nothing ran, every counter is zero.
            assert row[2:] == (0, 0, 0, 0.0)
        # Child stages indent two spaces under the select root.
        assert rows[0][0] == "select"
        assert all(row[0].startswith("  ") for row in rows[1:])

    def test_analyze_populates_the_same_tree(self, db):
        expected = db.execute(SELECT)
        rows = db.execute("EXPLAIN ANALYZE " + SELECT)
        assert operators(rows) == operators(db.execute("EXPLAIN " + SELECT))
        by_operator = {row[0].strip(): row for row in rows}
        # The scan produced the whole table, the filter kept k = 1,
        # and the root returned what the SELECT returns.
        assert by_operator["scan"][4] == len(ROWS)
        assert by_operator["scan"][2] >= 1  # at least one batch flowed
        assert by_operator["filter"][3] == len(ROWS)
        assert by_operator["filter"][4] == len(expected)
        assert by_operator["select"][4] == len(expected)

    def test_scan_detail_names_the_backend_path(self, db):
        detail = {
            row[0].strip(): row[1] for row in db.execute("EXPLAIN " + SELECT)
        }["scan"]
        expected_fragment = {
            "mutable": "main: compressed-domain bitmap",
            "column": "decoded column vectors",
            "row": "row heap",
        }[db.backend]
        assert expected_fragment in detail

    def test_explain_requires_a_select(self, db):
        with pytest.raises(SqlError):
            db.execute("EXPLAIN DROP TABLE r")


class TestCounters:
    def test_plain_explain_charges_nothing(self, db):
        before = db.adapter.metrics.snapshot()
        db.execute("EXPLAIN " + SELECT)
        after = db.adapter.metrics.snapshot()
        assert after.get("exec.queries", 0) == before.get("exec.queries", 0)
        assert after.get("exec.rows_decoded", 0) == before.get(
            "exec.rows_decoded", 0
        )

    def test_plain_explain_materializes_no_rows(self):
        # The column backend counts every row it turns into a tuple,
        # so it can witness that planning never touches data.
        db = Database(backend="column")
        db.execute("CREATE TABLE r (k INT, s STRING)")
        db.executemany("INSERT INTO r VALUES (?, ?)", ROWS)
        assert db.adapter.rows_materialized == 0
        db.execute("EXPLAIN " + SELECT)
        assert db.adapter.rows_materialized == 0
        db.execute("EXPLAIN ANALYZE " + SELECT)
        assert db.adapter.rows_materialized == len(ROWS)

    def test_analyze_charges_like_a_plain_select(self, db):
        def deltas(statement):
            before = db.adapter.metrics.snapshot()
            db.execute(statement)
            after = db.adapter.metrics.snapshot()
            return {
                name: after[name] - before.get(name, 0)
                for name in (
                    "exec.queries", "exec.batches",
                    "exec.rows_decoded", "exec.rows_returned",
                )
            }

        assert deltas("EXPLAIN ANALYZE " + SELECT) == deltas(SELECT)


class TestRetention:
    def test_cursor_description_and_trace(self, db):
        cursor = db.cursor()
        cursor.execute("EXPLAIN ANALYZE " + SELECT)
        assert [entry[0] for entry in cursor.description] == list(
            TRACE_COLUMNS
        )
        assert all(len(entry) == 7 for entry in cursor.description)
        rows = cursor.fetchall()
        assert rows and all(len(row) == len(TRACE_COLUMNS) for row in rows)
        assert isinstance(cursor.trace, QueryTrace)
        assert cursor.trace.executed

    def test_plain_explain_trace_is_not_executed(self, db):
        cursor = db.cursor()
        cursor.execute("EXPLAIN " + SELECT)
        assert isinstance(cursor.trace, QueryTrace)
        assert not cursor.trace.executed
        assert not cursor.trace.timed

    def test_session_retains_the_last_trace(self, db):
        db.execute("EXPLAIN ANALYZE " + SELECT)
        trace = db._session.last_trace
        assert trace is not None and trace.executed
        assert trace.rows() == db._session.last_trace.rows()

    def test_trace_queries_retains_traces_for_plain_selects(self, db):
        session = db.session()
        session.execute(SELECT)
        assert session.last_trace is None  # span timing is opt-in
        session.trace_queries = True
        expected = session.execute(SELECT)
        trace = session.last_trace
        assert trace is not None and trace.timed and trace.executed
        assert trace.root.rows_out == len(expected)


class TestTransactions:
    def test_explain_analyze_runs_against_the_pinned_state(self):
        # Transactions read the epoch vector pinned at entry plus their
        # own buffered writes (read-your-writes); EXPLAIN ANALYZE,
        # being a read, observes exactly that view — the scope's own
        # insert, but not the concurrent one outside the pin.
        db = Database()
        db.execute("CREATE TABLE r (k INT, s STRING, KEY(k))")
        db.executemany("INSERT INTO r VALUES (?, ?)", ROWS)
        with db.transaction() as tx:
            tx.execute("INSERT INTO r VALUES (1, 'z')")
            db.execute("INSERT INTO r VALUES (1, 'y')")  # outside the pin
            rows = tx.execute("EXPLAIN ANALYZE SELECT * FROM r WHERE k = 1")
            by_operator = {row[0].strip(): row for row in rows}
            assert by_operator["scan"][4] == len(ROWS) + 1
        # After commit both writes land and ANALYZE sees the live state.
        rows = db.execute("EXPLAIN ANALYZE SELECT * FROM r WHERE k = 1")
        by_operator = {row[0].strip(): row for row in rows}
        assert by_operator["scan"][4] == len(ROWS) + 2

    def test_explain_is_a_read_in_a_read_only_transaction(self):
        db = Database()
        db.execute("CREATE TABLE r (k INT, s STRING)")
        db.executemany("INSERT INTO r VALUES (?, ?)", ROWS)
        with db.transaction(read_only=True) as tx:
            plan = tx.execute("EXPLAIN SELECT * FROM r")
            assert operators(plan)[0] == "select"
            analyzed = tx.execute("EXPLAIN ANALYZE SELECT * FROM r")
            assert {row[0].strip(): row for row in analyzed}["select"][
                4
            ] == len(ROWS)


class TestAggregatePlans:
    """Aggregate, DISTINCT and ORDER BY nodes carry their strategy and
    its reason — the EXPLAIN surface of the statistics-driven choice."""

    AGG = "SELECT k, COUNT(*), SUM(k) FROM r GROUP BY k"

    def detail(self, db, sql, operator):
        return {
            row[0].strip(): row[1] for row in db.execute("EXPLAIN " + sql)
        }[operator]

    def test_aggregate_node_names_strategy_and_reason(self, db):
        detail = self.detail(db, self.AGG, "aggregate")
        assert "out=k,count(*),sum(k)" in detail
        assert "group_by=k" in detail
        if db.backend == "mutable":
            assert detail.startswith("compressed [estimated groups")
            assert "delta share" in detail
        else:
            # Decode-first scans have no compressed batches to fold.
            assert detail.startswith(
                "hash [scan decodes to values (no compressed batches)]"
            )

    def test_high_cardinality_group_explains_the_fallback(self):
        db = Database()
        db.execute("CREATE TABLE wide (k INT, s STRING)")
        db.executemany(
            "INSERT INTO wide VALUES (?, ?)",
            [(i, f"s{i}") for i in range(300)],
        )
        db.compact("wide")
        detail = {
            row[0].strip(): row[1]
            for row in db.execute(
                "EXPLAIN SELECT s, COUNT(*) FROM wide GROUP BY s"
            )
        }["aggregate"]
        assert detail.startswith("hash [estimated groups 300 > ceiling")

    def test_distinct_node_names_the_enumeration(self, db):
        detail = self.detail(db, "SELECT DISTINCT s FROM r", "distinct")
        if db.backend == "mutable":
            assert detail == "live-vid enumeration"
        else:
            assert detail == "streaming dedup"

    def test_order_by_node_names_the_runs(self, db):
        detail = self.detail(
            db, "SELECT s FROM r ORDER BY s DESC", "order_by"
        )
        if db.backend == "mutable":
            assert detail == "s DESC (dictionary-order presorted runs)"
        else:
            assert detail == "s DESC (materialize-and-sort)"

    def test_analyze_aggregate_counts_match_the_select(self, db):
        expected = db.execute(self.AGG)
        rows = db.execute("EXPLAIN ANALYZE " + self.AGG)
        by_operator = {row[0].strip(): row for row in rows}
        assert by_operator["aggregate"][4] == len(expected)
        assert by_operator["select"][4] == len(expected)
