"""Unit tests for the row-store substrate: B+-tree, heap, engine."""

import numpy as np
import pytest

from repro.errors import SchemaError, StorageError
from repro.rowstore import BPlusTree, HeapTable, RowEngine
from repro.storage import ColumnSchema, DataType, TableSchema


def schema_ab(name="R"):
    return TableSchema(
        name,
        (ColumnSchema("a", DataType.INT), ColumnSchema("b", DataType.STRING)),
    )


class TestBPlusTree:
    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        for key in [5, 3, 8, 1, 9, 7, 2, 6, 4, 0]:
            tree.insert(key, key * 10)
        for key in range(10):
            assert tree.search(key) == [key * 10]
        assert tree.search(99) == []
        assert len(tree) == 10

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree(order=4)
        tree.insert("x", 1)
        tree.insert("x", 2)
        assert sorted(tree.search("x")) == [1, 2]
        assert len(tree) == 2

    def test_splits_maintain_order(self):
        tree = BPlusTree(order=4)
        keys = list(range(200))
        rng = np.random.default_rng(0)
        rng.shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        assert tree.keys() == sorted(range(200))
        assert tree.height > 1

    def test_range_search(self):
        tree = BPlusTree(order=8)
        for key in range(100):
            tree.insert(key, key)
        assert sorted(tree.range_search(10, 20)) == list(range(10, 21))
        assert sorted(tree.range_search(None, 5)) == list(range(0, 6))
        assert sorted(tree.range_search(95, None)) == list(range(95, 100))
        assert sorted(tree.range_search(None, None)) == list(range(100))

    def test_bulk_load_equals_incremental(self):
        pairs = [(k % 37, k) for k in range(500)]
        bulk = BPlusTree.bulk_load(pairs, order=16)
        incremental = BPlusTree(order=16)
        for key, row in pairs:
            incremental.insert(key, row)
        assert bulk.keys() == incremental.keys()
        for key in range(37):
            assert sorted(bulk.search(key)) == sorted(
                incremental.search(key)
            )

    def test_bulk_load_empty(self):
        tree = BPlusTree.bulk_load([])
        assert len(tree) == 0
        assert tree.search(1) == []

    def test_order_validation(self):
        with pytest.raises(StorageError):
            BPlusTree(order=2)


class TestHeapTable:
    def test_insert_and_scan(self):
        heap = HeapTable(schema_ab())
        heap.insert((1, "x"))
        heap.insert(("2", "y"))  # coerced
        assert list(heap.scan()) == [(1, "x"), (2, "y")]
        assert heap.nrows == 2

    def test_arity_check(self):
        heap = HeapTable(schema_ab())
        with pytest.raises(StorageError):
            heap.insert((1,))

    def test_index_maintained_on_insert(self):
        heap = HeapTable(schema_ab())
        heap.insert_many([(i % 3, str(i)) for i in range(9)])
        heap.create_index("a")
        heap.insert((0, "ten"))
        assert len(heap.lookup("a", 0)) == 4

    def test_lookup_without_index(self):
        heap = HeapTable(schema_ab())
        heap.insert_many([(1, "x"), (2, "y"), (1, "z")])
        assert heap.lookup("a", 1) == [(1, "x"), (1, "z")]

    def test_create_index_unknown_column(self):
        heap = HeapTable(schema_ab())
        with pytest.raises(SchemaError):
            heap.create_index("zzz")


class TestRowEngine:
    @pytest.fixture
    def engine(self):
        engine = RowEngine()
        engine.create_table(schema_ab())
        engine.insert_rows(
            "R", [(1, "x"), (2, "y"), (1, "z"), (3, "x")]
        )
        return engine

    def test_catalog_ops(self, engine):
        with pytest.raises(SchemaError):
            engine.create_table(schema_ab())
        engine.rename_table("R", "R2")
        assert engine.table_names() == ["R2"]
        engine.drop_table("R2")
        with pytest.raises(SchemaError):
            engine.drop_table("R2")

    def test_scan_with_predicate(self, engine):
        rows = list(
            engine.scan("R", lambda get: get("a") == 1)
        )
        assert rows == [(1, "x"), (1, "z")]

    def test_project_distinct(self, engine):
        values = list(engine.project("R", ["b"], distinct=True))
        assert values == [("x",), ("y",), ("z",)]

    def test_project_plain(self, engine):
        values = list(engine.project("R", ["a"]))
        assert values == [(1,), (2,), (1,), (3,)]

    def test_hash_join(self, engine):
        other = TableSchema(
            "Dim",
            (
                ColumnSchema("a", DataType.INT),
                ColumnSchema("label", DataType.STRING),
            ),
        )
        engine.create_table(other)
        engine.insert_rows("Dim", [(1, "one"), (2, "two"), (3, "three")])
        rows = sorted(
            engine.hash_join("R", "Dim", ["a"], ["a", "b", "label"])
        )
        assert rows == [
            (1, "x", "one"), (1, "z", "one"),
            (2, "y", "two"), (3, "x", "three"),
        ]

    def test_hash_join_builds_on_smaller(self, engine):
        # Just a behavioural check: join is symmetric in content.
        other = TableSchema("Big", (ColumnSchema("a", DataType.INT),))
        engine.create_table(other)
        engine.insert_rows("Big", [(1,)] * 10)
        rows = list(engine.hash_join("R", "Big", ["a"], ["a", "b"]))
        assert len(rows) == 20  # 2 R-rows with a=1 × 10

    def test_join_unknown_output_column(self, engine):
        other = TableSchema("D2", (ColumnSchema("a", DataType.INT),))
        engine.create_table(other)
        with pytest.raises(SchemaError):
            list(engine.hash_join("R", "D2", ["a"], ["nope"]))
