"""Tests for the batched column-level bitmap kernels."""

import numpy as np
import pytest

from repro.bitmap import PlainBitmap, WAHBitmap
from repro.bitmap.batch import (
    batch_count,
    batch_decode_vids,
    batch_first_set,
    batch_positions,
    batch_vids_at,
    unit_bitmap,
)
from repro.errors import StorageError


def column_bitmaps(vids: np.ndarray, cardinality: int, codec=WAHBitmap):
    n = len(vids)
    return [
        codec.from_positions(np.flatnonzero(vids == v), n)
        for v in range(cardinality)
    ]


@pytest.fixture
def random_column():
    rng = np.random.default_rng(5)
    vids = rng.integers(0, 8, 300)
    vids[:8] = np.arange(8)
    return vids, column_bitmaps(vids, 8)


class TestBatchEquivalence:
    """Batched kernels must agree with per-bitmap methods exactly."""

    def test_count(self, random_column):
        _vids, bitmaps = random_column
        assert batch_count(bitmaps).tolist() == [
            bm.count() for bm in bitmaps
        ]

    def test_first_set(self, random_column):
        _vids, bitmaps = random_column
        assert batch_first_set(bitmaps).tolist() == [
            bm.first_set() for bm in bitmaps
        ]

    def test_first_set_with_empty_bitmap(self):
        bitmaps = [WAHBitmap.zeros(50), WAHBitmap.from_positions([7], 50)]
        assert batch_first_set(bitmaps).tolist() == [-1, 7]

    def test_positions(self, random_column):
        _vids, bitmaps = random_column
        flat, boundaries = batch_positions(bitmaps)
        for index, bm in enumerate(bitmaps):
            got = flat[boundaries[index] : boundaries[index + 1]]
            assert np.array_equal(got, bm.positions())

    def test_decode_vids(self, random_column):
        vids, bitmaps = random_column
        assert np.array_equal(batch_decode_vids(bitmaps, len(vids)), vids)

    def test_decode_vids_coverage_check(self):
        bitmaps = [WAHBitmap.from_positions([0], 3)]  # rows 1,2 uncovered
        with pytest.raises(StorageError):
            batch_decode_vids(bitmaps, 3)

    def test_plain_codec_fallback(self):
        rng = np.random.default_rng(6)
        vids = rng.integers(0, 4, 100)
        vids[:4] = np.arange(4)
        bitmaps = column_bitmaps(vids, 4, codec=PlainBitmap)
        assert batch_count(bitmaps).tolist() == [
            bm.count() for bm in bitmaps
        ]
        assert batch_first_set(bitmaps).tolist() == [
            bm.first_set() for bm in bitmaps
        ]
        assert np.array_equal(batch_decode_vids(bitmaps, 100), vids)

    def test_empty_list(self):
        assert batch_count([]).tolist() == []
        assert batch_first_set([]).tolist() == []
        flat, bounds = batch_positions([])
        assert len(flat) == 0 and bounds.tolist() == [0]


class TestBatchVidsAt:
    """Point lookups into a bitmap family: the vid owning each queried
    position, ``-1`` where no bitmap covers it."""

    def test_matches_decoded_vids(self, random_column):
        vids, bitmaps = random_column
        rng = np.random.default_rng(11)
        queries = rng.integers(0, len(vids), 50)
        assert np.array_equal(
            batch_vids_at(bitmaps, queries), vids[queries]
        )

    def test_empty_queries(self):
        _, bitmaps = (None, column_bitmaps(np.zeros(10, np.int64), 1))
        assert batch_vids_at(bitmaps, np.array([], np.int64)).tolist() == []

    def test_fill_heavy_runs(self):
        # Sorted vids → long 0/1 fills, exercising the cumsum +
        # searchsorted word-index path.
        vids = np.repeat(np.arange(5), 200)
        bitmaps = column_bitmaps(vids, 5)
        queries = np.array([0, 199, 200, 500, 731, 999])
        assert np.array_equal(
            batch_vids_at(bitmaps, queries), vids[queries]
        )

    def test_literal_dense_fast_path(self):
        # Alternating vids keep every word literal (one word per
        # group), the direct word_idx = qgroup path.
        vids = np.tile(np.array([0, 1]), 80)
        bitmaps = column_bitmaps(vids, 2)
        queries = np.arange(len(vids))
        assert np.array_equal(batch_vids_at(bitmaps, queries), vids)

    def test_uncovered_positions_are_minus_one(self):
        vids = np.array([0, 1, 2, 3, 0, 1, 2, 3])
        bitmaps = column_bitmaps(vids, 4)[:2]
        got = batch_vids_at(bitmaps, np.arange(8))
        assert got.tolist() == [0, 1, -1, -1, 0, 1, -1, -1]

    def test_plain_codec_fallback(self):
        vids = np.array([2, 0, 1, 1, 2, 0, 0, 2])
        bitmaps = column_bitmaps(vids, 3, codec=PlainBitmap)
        assert np.array_equal(
            batch_vids_at(bitmaps, np.arange(8)), vids
        )


class TestUnitBitmap:
    @pytest.mark.parametrize("n", [1, 31, 32, 62, 63, 100, 1000])
    def test_matches_from_positions(self, n):
        for position in sorted({0, 1, n // 2, n - 1} & set(range(n))):
            assert unit_bitmap(position, n) == WAHBitmap.from_positions(
                [position], n
            )

    def test_count_is_one(self):
        bm = unit_bitmap(500, 10_000)
        assert bm.count() == 1
        assert bm.first_set() == 500
        assert bm.word_count <= 4
