"""Unit tests for the storage layer: types, schema, dictionary, column."""

import datetime

import numpy as np
import pytest

from repro.errors import SchemaError, StorageError
from repro.storage import (
    BitmapColumn,
    ColumnSchema,
    DataType,
    Dictionary,
    TableSchema,
    coerce,
    parse_text,
    parse_type_name,
    render_text,
)


class TestTypes:
    def test_coerce_int(self):
        assert coerce("42", DataType.INT) == 42
        assert coerce(42.0, DataType.INT) == 42
        assert coerce(True, DataType.INT) == 1

    def test_coerce_int_rejects_fraction(self):
        with pytest.raises(SchemaError):
            coerce(1.5, DataType.INT)

    def test_coerce_float(self):
        assert coerce("1.5", DataType.FLOAT) == 1.5
        assert coerce(2, DataType.FLOAT) == 2.0

    def test_coerce_string(self):
        assert coerce(7, DataType.STRING) == "7"
        assert coerce("x", DataType.STRING) == "x"

    def test_coerce_bool(self):
        assert coerce("true", DataType.BOOL) is True
        assert coerce("No", DataType.BOOL) is False
        assert coerce(1, DataType.BOOL) is True
        with pytest.raises(SchemaError):
            coerce("maybe", DataType.BOOL)

    def test_coerce_date(self):
        assert coerce("2010-09-13", DataType.DATE) == datetime.date(
            2010, 9, 13
        )
        with pytest.raises(SchemaError):
            coerce("13/09/2010", DataType.DATE)

    def test_none_passthrough(self):
        for dtype in DataType:
            assert coerce(None, dtype) is None

    def test_parse_and_render_text(self):
        assert parse_text("", DataType.INT) is None
        assert parse_text("5", DataType.INT) == 5
        assert render_text(None) == ""
        assert render_text(datetime.date(2010, 9, 13)) == "2010-09-13"

    def test_parse_type_name(self):
        assert parse_type_name("VARCHAR(30)") == DataType.STRING
        assert parse_type_name("integer") == DataType.INT
        assert parse_type_name("DOUBLE") == DataType.FLOAT
        with pytest.raises(SchemaError):
            parse_type_name("BLOB")


class TestTableSchema:
    @pytest.fixture
    def schema(self):
        return TableSchema(
            "R",
            (
                ColumnSchema("a", DataType.INT),
                ColumnSchema("b", DataType.STRING),
                ColumnSchema("c", DataType.FLOAT),
            ),
            primary_key=("a",),
            candidate_keys=(("b",),),
        )

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "R",
                (
                    ColumnSchema("a", DataType.INT),
                    ColumnSchema("a", DataType.INT),
                ),
            )

    def test_key_must_reference_columns(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "R", (ColumnSchema("a", DataType.INT),), primary_key=("z",)
            )

    def test_lookups(self, schema):
        assert schema.column_names == ("a", "b", "c")
        assert schema.index_of("b") == 1
        assert schema.column("c").dtype == DataType.FLOAT
        with pytest.raises(SchemaError):
            schema.column("zzz")

    def test_is_key(self, schema):
        assert schema.is_key(("a",))
        assert schema.is_key(("a", "c"))
        assert schema.is_key(("b",))
        assert not schema.is_key(("c",))

    def test_all_keys_dedup(self, schema):
        assert schema.all_keys() == (("a",), ("b",))

    def test_with_column(self, schema):
        wider = schema.with_column(ColumnSchema("d", DataType.BOOL))
        assert wider.column_names == ("a", "b", "c", "d")
        with pytest.raises(SchemaError):
            wider.with_column(ColumnSchema("a", DataType.INT))

    def test_without_column(self, schema):
        narrower = schema.without_column("c")
        assert narrower.column_names == ("a", "b")
        with pytest.raises(SchemaError):
            schema.without_column("a")  # primary key column

    def test_without_column_drops_affected_candidate_keys(self, schema):
        narrower = schema.without_column("b")
        assert narrower.candidate_keys == ()

    def test_rename_column_fixes_keys(self, schema):
        renamed = schema.with_renamed_column("a", "id")
        assert renamed.primary_key == ("id",)
        assert renamed.column_names == ("id", "b", "c")
        with pytest.raises(SchemaError):
            schema.with_renamed_column("a", "b")

    def test_project(self, schema):
        projected = schema.project(["b", "a"], "P")
        assert projected.column_names == ("b", "a")
        assert projected.candidate_keys == (("b",),)
        with pytest.raises(SchemaError):
            schema.project(["nope"], "P")

    def test_compatible_with(self, schema):
        same = TableSchema("Other", schema.columns)
        assert schema.compatible_with(same)
        different = TableSchema("X", (ColumnSchema("a", DataType.INT),))
        assert not schema.compatible_with(different)

    def test_invalid_names(self):
        with pytest.raises(SchemaError):
            ColumnSchema("bad name", DataType.INT)
        with pytest.raises(SchemaError):
            TableSchema("", ())


class TestDictionary:
    def test_insertion_order_ids(self):
        dictionary = Dictionary()
        assert dictionary.add("x") == 0
        assert dictionary.add("y") == 1
        assert dictionary.add("x") == 0
        assert len(dictionary) == 2

    def test_encode_bulk_matches_sequential(self):
        values = ["b", "a", "b", "c", "a", "b"]
        bulk = Dictionary()
        vids_bulk = bulk.encode(values)
        sequential = Dictionary()
        vids_seq = [sequential.add(v) for v in values]
        assert vids_bulk.tolist() == vids_seq
        assert bulk.values() == sequential.values()

    def test_encode_numpy_ints(self):
        dictionary = Dictionary()
        vids = dictionary.encode(np.array([5, 3, 5, 9]))
        assert vids.tolist() == [0, 1, 0, 2]
        assert dictionary.values() == [5, 3, 9]

    def test_encode_incremental(self):
        dictionary = Dictionary()
        dictionary.encode(["a", "b"])
        vids = dictionary.encode(["b", "c"])
        assert vids.tolist() == [1, 2]

    def test_encode_with_none(self):
        dictionary = Dictionary()
        vids = dictionary.encode(["a", None, "a"])
        assert vids.tolist() == [0, 1, 0]
        assert dictionary.value(1) is None

    def test_lookup_errors(self):
        dictionary = Dictionary(["x"])
        with pytest.raises(StorageError):
            dictionary.vid("missing")
        with pytest.raises(StorageError):
            dictionary.value(5)
        assert dictionary.vid_or_none("missing") is None

    def test_decode(self):
        dictionary = Dictionary(["a", "b"])
        assert dictionary.decode(np.array([1, 0, 1])) == ["b", "a", "b"]


class TestBitmapColumn:
    def test_from_values_roundtrip(self):
        column = BitmapColumn.from_values(
            "c", DataType.STRING, ["x", "y", "x", "z", "x"]
        )
        assert column.nrows == 5
        assert column.distinct_count == 3
        assert column.to_values() == ["x", "y", "x", "z", "x"]

    def test_positions_for_value(self):
        column = BitmapColumn.from_values("c", DataType.INT, [7, 8, 7, 7])
        assert column.positions_for_value(7).tolist() == [0, 2, 3]
        assert column.positions_for_value(99).tolist() == []

    def test_value_counts(self):
        column = BitmapColumn.from_values("c", DataType.INT, [1, 2, 1, 1, 2])
        assert column.value_counts().tolist() == [3, 2]

    def test_get(self):
        column = BitmapColumn.from_values("c", DataType.INT, [4, 5, 6])
        assert [column.get(i) for i in range(3)] == [4, 5, 6]
        with pytest.raises(StorageError):
            column.get(3)

    def test_select_compacts_dictionary(self):
        column = BitmapColumn.from_values(
            "c", DataType.STRING, ["a", "b", "c", "a"]
        )
        out = column.select(np.array([0, 3]))
        assert out.to_values() == ["a", "a"]
        assert out.distinct_count == 1

    def test_select_no_compact_keeps_dictionary(self):
        column = BitmapColumn.from_values("c", DataType.INT, [1, 2, 3])
        out = column.select(np.array([0]), compact=False)
        assert out.distinct_count == 3
        assert out.to_values() == [1]

    def test_concat_shared_and_new_values(self):
        a = BitmapColumn.from_values("c", DataType.STRING, ["x", "y"])
        b = BitmapColumn.from_values("c", DataType.STRING, ["y", "z"])
        combined = a.concat(b)
        assert combined.to_values() == ["x", "y", "y", "z"]
        assert combined.distinct_count == 3

    def test_concat_type_mismatch(self):
        a = BitmapColumn.from_values("c", DataType.STRING, ["x"])
        b = BitmapColumn.from_values("c", DataType.INT, [1])
        with pytest.raises(StorageError):
            a.concat(b)

    def test_decode_vids_detects_corruption(self):
        column = BitmapColumn.from_values("c", DataType.INT, [1, 2])
        column.bitmaps[0] = type(column.bitmaps[0]).zeros(2)
        with pytest.raises(StorageError):
            column.decode_vids()

    def test_nulls_roundtrip(self):
        column = BitmapColumn.from_values(
            "c", DataType.INT, [1, None, 1, None]
        )
        assert column.to_values() == [1, None, 1, None]

    def test_compression_stats(self):
        column = BitmapColumn.from_values("c", DataType.INT, [0] * 10_000)
        stats = column.compression_stats()
        assert stats.logical_bits == 10_000
        assert stats.ratio > 100

    def test_plain_codec_column(self):
        column = BitmapColumn.from_values(
            "c", DataType.INT, [1, 2, 1], codec_name="plain"
        )
        assert column.to_values() == [1, 2, 1]
        assert column.codec_name == "plain"

    def test_renamed_shares_bitmaps(self):
        column = BitmapColumn.from_values("c", DataType.INT, [1, 2])
        renamed = column.renamed("d")
        assert renamed.name == "d"
        assert renamed.bitmaps is column.bitmaps
