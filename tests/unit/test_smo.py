"""Unit tests for SMO operators, predicates, parser, plans and history."""

import pytest

from repro.errors import SmoValidationError
from repro.smo import (
    AddColumn,
    And,
    Comparison,
    CopyTable,
    CreateTable,
    DecomposeTable,
    DropColumn,
    DropTable,
    EvolutionHistory,
    EvolutionPlan,
    MergeTables,
    Not,
    Or,
    PartitionTable,
    RenameColumn,
    RenameTable,
    UnionTables,
    parse_predicate,
    parse_script,
    parse_smo,
    simulate,
)
from repro.smo.parser import TokenStream
from repro.storage import (
    Catalog,
    ColumnSchema,
    DataType,
    TableSchema,
    table_from_python,
)


@pytest.fixture
def catalog(fig1_table):
    catalog = Catalog()
    catalog.create(fig1_table)
    return catalog


class TestValidation:
    def test_decompose_valid(self, catalog):
        op = DecomposeTable(
            "R", "S", ("Employee", "Skill"), "T", ("Employee", "Address")
        )
        op.validate(catalog)  # no raise

    def test_decompose_missing_table(self, catalog):
        op = DecomposeTable("ZZZ", "S", ("a",), "T", ("a",))
        with pytest.raises(SmoValidationError):
            op.validate(catalog)

    def test_decompose_unknown_column(self, catalog):
        op = DecomposeTable(
            "R", "S", ("Employee", "Nope"), "T", ("Employee", "Address")
        )
        with pytest.raises(SmoValidationError):
            op.validate(catalog)

    def test_decompose_not_covering(self, catalog):
        op = DecomposeTable(
            "R", "S", ("Employee",), "T", ("Employee", "Address")
        )
        with pytest.raises(SmoValidationError):
            op.validate(catalog)

    def test_decompose_no_common(self, catalog):
        op = DecomposeTable(
            "R", "S", ("Employee", "Skill"), "T", ("Address",)
        )
        with pytest.raises(SmoValidationError):
            op.validate(catalog)

    def test_decompose_same_output_names(self, catalog):
        op = DecomposeTable(
            "R", "S", ("Employee", "Skill"), "S", ("Employee", "Address")
        )
        with pytest.raises(SmoValidationError):
            op.validate(catalog)

    def test_merge_requires_common_attrs(self, catalog):
        catalog.create(
            table_from_python("X", {"q": (DataType.INT, [1])})
        )
        op = MergeTables("R", "X", "Out")
        with pytest.raises(SmoValidationError):
            op.validate(catalog)

    def test_merge_non_join_overlap(self, catalog):
        catalog.create(
            table_from_python(
                "X",
                {
                    "Employee": (DataType.STRING, ["Jones"]),
                    "Skill": (DataType.STRING, ["Singing"]),
                },
            )
        )
        op = MergeTables("R", "X", "Out", ("Employee",))
        with pytest.raises(SmoValidationError):
            op.validate(catalog)

    def test_merge_type_mismatch(self, catalog):
        catalog.create(
            table_from_python("X", {"Employee": (DataType.INT, [1])})
        )
        with pytest.raises(SmoValidationError):
            MergeTables("R", "X", "Out", ("Employee",)).validate(catalog)

    def test_union_compat(self, catalog):
        catalog.create(table_from_python("X", {"q": (DataType.INT, [1])}))
        with pytest.raises(SmoValidationError):
            UnionTables("R", "X", "U").validate(catalog)

    def test_partition_validates_predicate_column(self, catalog):
        op = PartitionTable("R", "A1", "A2", Comparison("Nope", "=", 1))
        with pytest.raises(SmoValidationError):
            op.validate(catalog)

    def test_add_column_duplicate(self, catalog):
        op = AddColumn("R", ColumnSchema("Skill", DataType.STRING), "x")
        with pytest.raises(SmoValidationError):
            op.validate(catalog)

    def test_add_column_values_length(self, catalog):
        op = AddColumn(
            "R", ColumnSchema("Extra", DataType.INT), values=(1, 2)
        )
        with pytest.raises(SmoValidationError):
            op.validate(catalog)

    def test_drop_key_column_rejected(self):
        catalog = Catalog()
        catalog.create(
            table_from_python(
                "K", {"a": (DataType.INT, [1]), "b": (DataType.INT, [2])},
                primary_key=("a",),
            )
        )
        with pytest.raises(SmoValidationError):
            DropColumn("K", "a").validate(catalog)

    def test_drop_only_column_rejected(self):
        catalog = Catalog()
        catalog.create(table_from_python("O", {"a": (DataType.INT, [1])}))
        with pytest.raises(SmoValidationError):
            DropColumn("O", "a").validate(catalog)

    def test_rename_collision(self, catalog):
        with pytest.raises(SmoValidationError):
            RenameColumn("R", "Skill", "Address").validate(catalog)

    def test_create_existing(self, catalog):
        schema = TableSchema("R", (ColumnSchema("a", DataType.INT),))
        with pytest.raises(SmoValidationError):
            CreateTable(schema).validate(catalog)


class TestPredicates:
    @pytest.fixture
    def table(self):
        return table_from_python(
            "P",
            {
                "a": (DataType.INT, [1, 2, 3, 4, 5]),
                "b": (DataType.STRING, ["x", "y", "x", "z", "x"]),
            },
        )

    def test_comparison_bitmap(self, table):
        assert Comparison("a", ">", 3).bitmap(table).positions().tolist() == [3, 4]
        assert Comparison("b", "=", "x").bitmap(table).positions().tolist() == [0, 2, 4]
        assert Comparison("a", "!=", 1).bitmap(table).count() == 4
        assert Comparison("a", "<=", 2).bitmap(table).count() == 2

    def test_in_bitmap(self, table):
        predicate = Comparison("a", "IN", (1, 4, 99))
        assert predicate.bitmap(table).positions().tolist() == [0, 3]

    def test_combinators(self, table):
        predicate = And(Comparison("a", ">", 1), Comparison("b", "=", "x"))
        assert predicate.bitmap(table).positions().tolist() == [2, 4]
        predicate = Or(Comparison("a", "=", 1), Comparison("a", "=", 5))
        assert predicate.bitmap(table).positions().tolist() == [0, 4]
        predicate = Not(Comparison("b", "=", "x"))
        assert predicate.bitmap(table).positions().tolist() == [1, 3]

    def test_matches_row_level(self, table):
        predicate = And(Comparison("a", ">=", 2), Not(Comparison("b", "=", "z")))
        rows = table.to_rows()
        names = table.schema.column_names
        kept = [
            row
            for row in rows
            if predicate.matches(lambda attr, r=row: r[names.index(attr)])
        ]
        assert kept == [(2, "y"), (3, "x"), (5, "x")]

    def test_bitmap_matches_row_level_agree(self, table):
        predicate = Or(
            And(Comparison("a", "<", 3), Comparison("b", "=", "x")),
            Comparison("a", "=", 4),
        )
        names = table.schema.column_names
        rows = table.to_rows()
        row_level = [
            i
            for i, row in enumerate(rows)
            if predicate.matches(lambda attr, r=row: r[names.index(attr)])
        ]
        assert predicate.bitmap(table).positions().tolist() == row_level

    def test_unknown_operator(self):
        with pytest.raises(Exception):
            Comparison("a", "~~", 1)

    def test_str_rendering(self):
        predicate = And(
            Comparison("a", "=", 5), Comparison("b", "IN", ("x", "it's")),
        )
        text = str(predicate)
        assert "a = 5" in text
        assert "b IN ('x', 'it''s')" in text


class TestParser:
    def test_decompose(self):
        op = parse_smo(
            "DECOMPOSE TABLE R INTO S (A, B), T (A, C)"
        )
        assert op == DecomposeTable("R", "S", ("A", "B"), "T", ("A", "C"))

    def test_merge_with_on(self):
        op = parse_smo("MERGE TABLES S, T INTO R ON (A, B)")
        assert op == MergeTables("S", "T", "R", ("A", "B"))

    def test_merge_without_on(self):
        op = parse_smo("merge tables S, T into R")
        assert op == MergeTables("S", "T", "R", ())

    def test_create(self):
        op = parse_smo("CREATE TABLE R (A INT, B VARCHAR, KEY (A))")
        assert isinstance(op, CreateTable)
        assert op.schema.primary_key == ("A",)
        assert op.schema.column("B").dtype == DataType.STRING

    def test_simple_ops(self):
        assert parse_smo("DROP TABLE R") == DropTable("R")
        assert parse_smo("RENAME TABLE R TO R2") == RenameTable("R", "R2")
        assert parse_smo("COPY TABLE R TO R2") == CopyTable("R", "R2")
        assert parse_smo("UNION TABLES A, B INTO C") == UnionTables(
            "A", "B", "C"
        )
        assert parse_smo("DROP COLUMN c FROM R") == DropColumn("R", "c")
        assert parse_smo("RENAME COLUMN c TO d IN R") == RenameColumn(
            "R", "c", "d"
        )

    def test_add_column_with_default(self):
        op = parse_smo("ADD COLUMN c INT TO R DEFAULT 5")
        assert op.default == 5
        assert op.column.dtype == DataType.INT

    def test_partition_with_predicate(self):
        op = parse_smo(
            "PARTITION TABLE R INTO A, B WHERE x > 3 AND y = 'hi'"
        )
        assert isinstance(op, PartitionTable)
        assert "x > 3" in str(op.predicate)

    def test_predicate_precedence(self):
        tokens = TokenStream("a = 1 OR b = 2 AND c = 3")
        predicate = parse_predicate(tokens)
        # AND binds tighter: Or(a=1, And(b=2, c=3))
        assert isinstance(predicate, Or)
        assert isinstance(predicate.right, And)

    def test_predicate_not_and_parens(self):
        tokens = TokenStream("NOT (a = 1 OR a = 2)")
        predicate = parse_predicate(tokens)
        assert isinstance(predicate, Not)
        assert isinstance(predicate.inner, Or)

    def test_literals(self):
        op = parse_smo("PARTITION TABLE R INTO A, B WHERE x = -1.5")
        assert op.predicate.value == -1.5
        op = parse_smo("PARTITION TABLE R INTO A, B WHERE x = TRUE")
        assert op.predicate.value is True
        op = parse_smo("PARTITION TABLE R INTO A, B WHERE x IN (1, 2, 3)")
        assert op.predicate.value == (1, 2, 3)

    def test_string_escapes(self):
        op = parse_smo("PARTITION TABLE R INTO A, B WHERE x = 'O''Brien'")
        assert op.predicate.value == "O'Brien"

    def test_errors(self):
        with pytest.raises(SmoValidationError):
            parse_smo("FROBNICATE TABLE R")
        with pytest.raises(SmoValidationError):
            parse_smo("DECOMPOSE TABLE R INTO S (A), T (B) EXTRA")
        with pytest.raises(SmoValidationError):
            parse_smo("MERGE TABLES S INTO R")
        with pytest.raises(SmoValidationError):
            parse_smo("")

    def test_script(self):
        script = """
        CREATE TABLE R (A INT, B INT);
        -- a comment line
        RENAME TABLE R TO R2
        DROP TABLE R2
        """
        ops = parse_script(script)
        assert [type(op) for op in ops] == [
            CreateTable, RenameTable, DropTable,
        ]

    def test_describe_roundtrip(self):
        texts = [
            "DECOMPOSE TABLE R INTO S (A, B), T (A, C)",
            "MERGE TABLES S, T INTO R ON (A)",
            "DROP TABLE R",
            "RENAME TABLE R TO R2",
            "COPY TABLE R TO R2",
            "UNION TABLES A, B INTO C",
            "DROP COLUMN c FROM R",
            "RENAME COLUMN c TO d IN R",
        ]
        for text in texts:
            op = parse_smo(text)
            assert parse_smo(op.describe()) == op


class TestPlanAndSimulate:
    def test_simulate_decompose(self, catalog):
        op = DecomposeTable(
            "R", "S", ("Employee", "Skill"), "T", ("Employee", "Address")
        )
        schemas = simulate(op, {"R": catalog.schema("R")})
        assert set(schemas) == {"S", "T"}
        assert schemas["S"].column_names == ("Employee", "Skill")

    def test_simulate_merge(self, catalog):
        schemas = {"R": catalog.schema("R")}
        schemas = simulate(
            DecomposeTable(
                "R", "S", ("Employee", "Skill"), "T", ("Employee", "Address")
            ),
            schemas,
        )
        schemas = simulate(MergeTables("S", "T", "R2"), schemas)
        assert schemas["R2"].column_names == (
            "Employee", "Skill", "Address",
        )

    def test_plan_validates_chain(self, catalog):
        plan = EvolutionPlan(
            [
                DecomposeTable(
                    "R", "S", ("Employee", "Skill"),
                    "T", ("Employee", "Address"),
                ),
                MergeTables("S", "T", "R2"),
                RenameTable("R2", "Final"),
            ]
        )
        final = plan.validate(catalog)
        assert set(final) == {"Final"}

    def test_plan_rejects_bad_step_with_context(self, catalog):
        plan = EvolutionPlan(
            [DropTable("R"), DropTable("R")]  # second drop fails
        )
        with pytest.raises(SmoValidationError, match="step 2"):
            plan.validate(catalog)

    def test_plan_describe(self):
        plan = EvolutionPlan([DropTable("R")])
        assert plan.describe() == "1. DROP TABLE R"
        assert len(plan) == 1


class TestHistory:
    def test_record_and_describe(self):
        history = EvolutionHistory()
        history.record(DropTable("R"), ["A", "B"])
        history.record(RenameTable("A", "C"), ["B", "C"])
        assert len(history) == 2
        text = history.describe()
        assert "v1: DROP TABLE R" in text
        assert "v2: RENAME TABLE A TO C" in text
        assert history.entries[0].tables_after == ("A", "B")

    def test_operators(self):
        history = EvolutionHistory()
        op = DropTable("R")
        history.record(op, [])
        assert history.operators() == [op]
