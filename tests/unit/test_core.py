"""Unit tests for the CODS core algorithms."""

import numpy as np
import pytest

from repro.core import (
    EvolutionEngine,
    EvolutionStatus,
    decompose,
    distinction,
    distinction_bitmap,
    distinction_scan,
    filter_column,
    merge_general,
    merge_key_fk,
    plan_decomposition,
)
from repro.core.distinction import distinction_with_ranks
from repro.errors import EvolutionError, LosslessJoinError
from repro.fd import FunctionalDependency
from repro.smo import DecomposeTable, MergeTables
from repro.storage import DataType, table_from_python
from tests.conftest import make_fd_table, make_join_pair, nested_loop_join


class TestDistinction:
    def test_bitmap_path_positions(self):
        table = table_from_python(
            "R", {"k": (DataType.INT, [5, 5, 7, 5, 9, 7])}
        )
        status = EvolutionStatus()
        positions = distinction_bitmap(table.column("k"), status)
        assert positions.tolist() == [0, 2, 4]
        assert any(e.step == "distinction" for e in status.events)

    def test_with_ranks_inverse(self):
        table = table_from_python(
            "R", {"k": (DataType.INT, [9, 5, 9, 7])}
        )
        column = table.column("k")
        positions, ranks = distinction_with_ranks(column, EvolutionStatus())
        assert positions.tolist() == [0, 1, 3]
        # vid 0 = value 9 (first at row 0 -> rank 0), vid 1 = 5 (row 1 ->
        # rank 1), vid 2 = 7 (row 3 -> rank 2)
        assert ranks.tolist() == [0, 1, 2]

    def test_scan_path_composite(self):
        table = table_from_python(
            "R",
            {
                "a": (DataType.INT, [1, 1, 2, 1]),
                "b": (DataType.INT, [1, 2, 1, 1]),
            },
        )
        status = EvolutionStatus()
        positions = distinction_scan(table, ["a", "b"], status)
        assert positions.tolist() == [0, 1, 2]
        assert status.columns_decompressed == 2

    def test_dispatch(self):
        table = table_from_python(
            "R", {"a": (DataType.INT, [1, 2]), "b": (DataType.INT, [3, 3])}
        )
        assert distinction(table, ["a"], EvolutionStatus()).tolist() == [0, 1]
        assert distinction(
            table, ["a", "b"], EvolutionStatus()
        ).tolist() == [0, 1]
        with pytest.raises(EvolutionError):
            distinction(table, [], EvolutionStatus())


class TestFiltering:
    def test_filter_column_values(self):
        table = table_from_python(
            "R", {"x": (DataType.STRING, list("abcabc"))}
        )
        status = EvolutionStatus()
        out = filter_column(
            table.column("x"), np.array([0, 2, 4]), status
        )
        assert out.to_values() == ["a", "c", "b"]
        assert status.bitmaps_filtered == 3

    def test_filter_column_compaction(self):
        table = table_from_python(
            "R", {"x": (DataType.STRING, list("aabb"))}
        )
        out = filter_column(
            table.column("x"), np.array([0, 1]), EvolutionStatus()
        )
        assert out.distinct_count == 1


class TestPlanDecomposition:
    def test_uses_declared_keys(self):
        table = table_from_python(
            "R",
            {
                "k": (DataType.INT, [1, 2]),
                "p": (DataType.INT, [1, 1]),
                "d": (DataType.INT, [4, 4]),
            },
        )
        op = DecomposeTable("R", "S", ("k", "p"), "T", ("k", "d"))
        plan = plan_decomposition(
            table, op,
            extra_fds=[FunctionalDependency.of("k", "d")],
            verify_with_data=False,
        )
        assert plan.changed_side == "right"

    def test_falls_back_to_data(self):
        table = make_fd_table(50, 10)  # K -> D in the data, no declared keys
        op = DecomposeTable("R", "S", ("K", "P"), "T", ("K", "D"))
        plan = plan_decomposition(table, op)
        assert plan.changed_side == "right"

    def test_lossy_rejected(self):
        table = table_from_python(
            "R",
            {
                "K": (DataType.INT, [1, 1]),
                "P": (DataType.INT, [1, 2]),
                "D": (DataType.INT, [3, 4]),  # K does NOT determine D
            },
        )
        op = DecomposeTable("R", "S", ("K", "P"), "T", ("K", "D"))
        with pytest.raises(LosslessJoinError):
            plan_decomposition(table, op)

    def test_no_data_check_when_disabled(self):
        table = make_fd_table(50, 10)
        op = DecomposeTable("R", "S", ("K", "P"), "T", ("K", "D"))
        with pytest.raises(LosslessJoinError):
            plan_decomposition(table, op, verify_with_data=False)


class TestDecompose:
    def test_property1_zero_work_on_unchanged_side(self):
        table = make_fd_table(200, 20)
        op = DecomposeTable("R", "S", ("K", "P"), "T", ("K", "D"))
        status = EvolutionStatus()
        left, right = decompose(table, op, status)
        # Unchanged side S shares column objects with R (no copies).
        assert left.column("P") is table.column("P")
        assert left.column("K") is table.column("K")
        assert status.columns_reused == 2
        # Only the changed side's columns were touched.
        assert status.rows_materialized == 0

    def test_changed_side_content(self):
        table = make_fd_table(300, 30, seed=3)
        op = DecomposeTable("R", "S", ("K", "P"), "T", ("K", "D"))
        _left, right = decompose(table, op, EvolutionStatus())
        assert right.nrows == 30
        expected = sorted(set(zip(
            table.column("K").to_values(), table.column("D").to_values()
        )))
        assert right.sorted_rows() == expected
        assert right.schema.primary_key == ("K",)

    def test_composite_key_changed_side(self):
        table = table_from_python(
            "R",
            {
                "a": (DataType.INT, [1, 1, 2, 1]),
                "b": (DataType.INT, [1, 1, 2, 2]),
                "c": (DataType.INT, [9, 8, 7, 6]),
                "d": (DataType.INT, [5, 5, 4, 3]),
            },
        )
        # (a, b) -> d holds in the data.
        op = DecomposeTable("R", "S", ("a", "b", "c"), "T", ("a", "b", "d"))
        _left, right = decompose(table, op, EvolutionStatus())
        assert right.sorted_rows() == [(1, 1, 5), (1, 2, 3), (2, 2, 4)]


class TestMergeKfk:
    def test_reuses_left_columns(self):
        left, right = make_join_pair(100, 0, 12, right_keyed=True)
        op = MergeTables("S", "T", "R", ("J",))
        status = EvolutionStatus()
        merged = merge_key_fk(left, right, op, ("J",), status)
        assert merged.column("J") is left.column("J")
        assert merged.column("A") is left.column("A")
        assert merged.nrows == left.nrows
        assert status.columns_reused == 2

    def test_content_matches_reference(self):
        left, right = make_join_pair(80, 0, 9, seed=5, right_keyed=True)
        op = MergeTables("S", "T", "R", ("J",))
        merged = merge_key_fk(left, right, op, ("J",), EvolutionStatus())
        expected = nested_loop_join(
            left.to_rows(), right.to_rows(), 0, 0
        )
        assert merged.sorted_rows() == expected

    def test_rejects_non_key_right(self):
        left, right = make_join_pair(30, 30, 5, seed=2)  # duplicates in T
        op = MergeTables("S", "T", "R", ("J",))
        with pytest.raises(EvolutionError):
            merge_key_fk(left, right, op, ("J",), EvolutionStatus())

    def test_rejects_dangling_keys(self):
        left = table_from_python(
            "S", {"J": (DataType.INT, [1, 5]), "A": (DataType.INT, [0, 0])}
        )
        right = table_from_python(
            "T", {"J": (DataType.INT, [1]), "B": (DataType.INT, [9])}
        )
        op = MergeTables("S", "T", "R", ("J",))
        with pytest.raises(EvolutionError):
            merge_key_fk(left, right, op, ("J",), EvolutionStatus())

    def test_composite_key_merge(self):
        left = table_from_python(
            "S",
            {
                "j1": (DataType.INT, [1, 1, 2]),
                "j2": (DataType.INT, [1, 2, 1]),
                "a": (DataType.INT, [10, 20, 30]),
            },
        )
        right = table_from_python(
            "T",
            {
                "j1": (DataType.INT, [1, 1, 2]),
                "j2": (DataType.INT, [1, 2, 1]),
                "b": (DataType.INT, [7, 8, 9]),
            },
        )
        op = MergeTables("S", "T", "R", ("j1", "j2"))
        merged = merge_key_fk(left, right, op, ("j1", "j2"), EvolutionStatus())
        assert merged.sorted_rows() == [
            (1, 1, 10, 7), (1, 2, 20, 8), (2, 1, 30, 9),
        ]


class TestMergeGeneral:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_nested_loop(self, seed):
        left, right = make_join_pair(40, 35, 6, seed=seed)
        op = MergeTables("S", "T", "R", ("J",))
        merged = merge_general(left, right, op, ("J",), EvolutionStatus())
        expected = nested_loop_join(left.to_rows(), right.to_rows(), 0, 0)
        assert merged.sorted_rows() == expected

    def test_clustered_layout(self):
        left = table_from_python(
            "S",
            {"J": (DataType.INT, [1, 2, 1]), "A": (DataType.STRING, ["x", "y", "z"])},
        )
        right = table_from_python(
            "T",
            {"J": (DataType.INT, [1, 1, 2]), "B": (DataType.STRING, ["p", "q", "r"])},
        )
        op = MergeTables("S", "T", "R", ("J",))
        merged = merge_general(left, right, op, ("J",), EvolutionStatus())
        # Block of J=1 first (n1=2 × n2=2), S-values consecutive,
        # T-values strided — the exact Section 2.5.2 layout.
        assert merged.to_rows() == [
            (1, "x", "p"), (1, "x", "q"),
            (1, "z", "p"), (1, "z", "q"),
            (2, "y", "r"),
        ]

    def test_no_common_values(self):
        left = table_from_python(
            "S", {"J": (DataType.INT, [1]), "A": (DataType.INT, [1])}
        )
        right = table_from_python(
            "T", {"J": (DataType.INT, [2]), "B": (DataType.INT, [2])}
        )
        op = MergeTables("S", "T", "R", ("J",))
        merged = merge_general(left, right, op, ("J",), EvolutionStatus())
        assert merged.nrows == 0

    def test_blowup_counts(self):
        # n1=3 occurrences × n2=4 occurrences -> 12 output rows.
        left = table_from_python(
            "S", {"J": (DataType.INT, [7] * 3), "A": (DataType.INT, [1, 2, 3])}
        )
        right = table_from_python(
            "T", {"J": (DataType.INT, [7] * 4), "B": (DataType.INT, [4, 5, 6, 7])}
        )
        op = MergeTables("S", "T", "R", ("J",))
        merged = merge_general(left, right, op, ("J",), EvolutionStatus())
        assert merged.nrows == 12

    def test_composite_join(self):
        rng = np.random.default_rng(8)
        left = table_from_python(
            "S",
            {
                "j1": (DataType.INT, rng.integers(0, 3, 25).tolist()),
                "j2": (DataType.INT, rng.integers(0, 3, 25).tolist()),
                "a": (DataType.INT, rng.integers(0, 5, 25).tolist()),
            },
        )
        right = table_from_python(
            "T",
            {
                "j1": (DataType.INT, rng.integers(0, 3, 20).tolist()),
                "j2": (DataType.INT, rng.integers(0, 3, 20).tolist()),
                "b": (DataType.INT, rng.integers(0, 5, 20).tolist()),
            },
        )
        op = MergeTables("S", "T", "R", ("j1", "j2"))
        merged = merge_general(left, right, op, ("j1", "j2"), EvolutionStatus())
        expected = sorted(
            lr + (rr[2],)
            for lr in left.to_rows()
            for rr in right.to_rows()
            if lr[0] == rr[0] and lr[1] == rr[1]
        )
        assert merged.sorted_rows() == expected
