"""Unit tests for the query-level baselines and the systems registry."""

import pytest

from repro.baselines import (
    SERIES,
    CodsSystem,
    QueryLevelEvolution,
    SqliteEvolution,
    make_system,
    render_create_table,
)
from repro.smo import (
    AddColumn,
    Comparison,
    CopyTable,
    DropColumn,
    MergeTables,
    PartitionTable,
    RenameColumn,
    RenameTable,
    UnionTables,
    parse_smo,
)
from repro.sql.adapter import RowEngineAdapter
from repro.storage import (
    ColumnSchema,
    DataType,
    TableSchema,
    table_from_python,
)


def decompose_op():
    return parse_smo(
        "DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)"
    )


class TestRenderSql:
    def test_create_table(self):
        schema = TableSchema(
            "T",
            (
                ColumnSchema("a", DataType.INT),
                ColumnSchema("b", DataType.STRING),
            ),
            primary_key=("a",),
        )
        text = render_create_table(schema)
        assert text == "CREATE TABLE T (a INT, b STRING, KEY (a))"


ALL_LABELS = ["D", "C", "C+I", "S", "M"]


class TestSystemsRegistry:
    def test_labels(self):
        assert sorted(SERIES) == sorted(ALL_LABELS)

    def test_make_system(self):
        assert isinstance(make_system("D"), CodsSystem)
        assert isinstance(make_system("S"), SqliteEvolution)
        assert isinstance(make_system("C"), QueryLevelEvolution)
        assert make_system("C+I").with_indexes
        assert not make_system("C").with_indexes


@pytest.fixture(params=ALL_LABELS)
def system(request, fig1_table):
    system = make_system(request.param)
    system.load(fig1_table)
    return system


class TestAllSystemsAgree:
    """Every comparator must produce identical logical results."""

    def test_decompose(self, system, fig1_decomposed):
        system.apply(decompose_op())
        s_rows, t_rows = fig1_decomposed
        assert sorted(system.extract("S").to_rows()) == sorted(s_rows)
        assert system.extract("T").sorted_rows() == t_rows

    def test_decompose_then_merge(self, system, fig1_table):
        system.apply(decompose_op())
        system.apply(MergeTables("S", "T", "R2"))
        merged = system.extract("R2")
        assert sorted(merged.to_rows()) == sorted(fig1_table.to_rows())

    def test_copy_union(self, system):
        system.apply(CopyTable("R", "R2"))
        system.apply(UnionTables("R", "R2", "Big"))
        assert system.extract("Big").nrows == 14

    def test_partition(self, system):
        system.apply(
            PartitionTable(
                "R", "Grant", "Other",
                Comparison("Address", "=", "425 Grant Ave"),
            )
        )
        grant = system.extract("Grant")
        other = system.extract("Other")
        assert grant.nrows == 4
        assert other.nrows == 3

    def test_add_drop_rename_column(self, system):
        system.apply(
            AddColumn("R", ColumnSchema("Country", DataType.STRING), "US")
        )
        assert system.extract("R").column("Country").to_values() == [
            "US"
        ] * 7
        system.apply(DropColumn("R", "Country"))
        system.apply(RenameColumn("R", "Skill", "Expertise"))
        extracted = system.extract("R")
        assert extracted.schema.column_names == (
            "Employee", "Expertise", "Address",
        )

    def test_rename_table(self, system):
        system.apply(RenameTable("R", "Staff"))
        assert system.extract("Staff").nrows == 7
        assert "R" not in system.table_names()


class TestQueryLevelInternals:
    def test_changed_side_uses_data_fallback(self):
        system = QueryLevelEvolution(RowEngineAdapter())
        system.load(
            table_from_python(
                "R",
                {
                    "K": (DataType.INT, [1, 1, 2]),
                    "P": (DataType.INT, [5, 6, 7]),
                    "D": (DataType.INT, [9, 9, 8]),
                },
            )
        )
        op = parse_smo("DECOMPOSE TABLE R INTO S (K, P), T (K, D)")
        assert system._changed_side(op) == "right"

    def test_with_indexes_builds_them(self, fig1_table):
        system = QueryLevelEvolution(RowEngineAdapter(), with_indexes=True)
        table = table_from_python(
            "Keyed",
            {
                "a": (DataType.INT, [1, 2, 3]),
                "b": (DataType.INT, [4, 5, 6]),
            },
            primary_key=("a",),
        )
        system.load(table)
        heap = system.adapter.engine.table("Keyed")
        assert "a" in heap.indexes

    def test_sqlite_types_roundtrip(self):
        import datetime

        system = SqliteEvolution()
        table = table_from_python(
            "Mixed",
            {
                "i": (DataType.INT, [1, None]),
                "f": (DataType.FLOAT, [1.5, 2.5]),
                "s": (DataType.STRING, ["a", "b"]),
                "bl": (DataType.BOOL, [True, False]),
                "d": (
                    DataType.DATE,
                    [datetime.date(2010, 9, 13), datetime.date(2020, 1, 1)],
                ),
            },
        )
        system.load(table)
        extracted = system.extract("Mixed")
        assert extracted.to_rows() == table.to_rows()
        system.close()

    def test_sqlite_simple_smos(self, fig1_table):
        system = SqliteEvolution()
        system.load(fig1_table)
        system.apply(
            AddColumn("R", ColumnSchema("Country", DataType.STRING), "US")
        )
        system.apply(RenameColumn("R", "Country", "Nation"))
        system.apply(DropColumn("R", "Nation"))
        assert system.extract("R").schema.column_names == (
            "Employee", "Skill", "Address",
        )
        system.close()
