"""Unit tests for repro.obs: registry semantics (get-or-create handles,
counter/histogram propagation, callback gauges, reset, NullRegistry),
histogram bucketing, the span tree, and the JSON/Prometheus exporters."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    TRACE_COLUMNS,
    Counter,
    ExecStats,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    QueryTrace,
    Span,
    TimedIter,
    global_registry,
    prometheus_name,
    reset_global_registry,
    to_json_lines,
    to_prometheus,
)


class TestRegistry:
    def test_handles_are_get_or_create_and_stable(self):
        registry = MetricsRegistry(parent=None)
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.names() == ["a", "g", "h"]

    def test_counters_propagate_to_the_parent(self):
        parent = MetricsRegistry(parent=None)
        child = MetricsRegistry(parent=parent)
        child.counter("exec.queries").inc()
        child.counter("exec.queries").inc(4)
        assert child.counter("exec.queries").value == 5
        assert parent.counter("exec.queries").value == 5

    def test_two_children_aggregate_in_one_parent(self):
        parent = MetricsRegistry(parent=None)
        left = MetricsRegistry(parent=parent)
        right = MetricsRegistry(parent=parent)
        left.counter("n").inc(2)
        right.counter("n").inc(3)
        assert left.counter("n").value == 2
        assert right.counter("n").value == 3
        assert parent.counter("n").value == 5

    def test_histograms_propagate_to_the_parent(self):
        parent = MetricsRegistry(parent=None)
        child = MetricsRegistry(parent=parent)
        child.histogram("t").observe(0.25)
        assert parent.histogram("t").count == 1
        assert parent.histogram("t").total == pytest.approx(0.25)

    def test_default_parent_is_the_global_registry(self):
        reset_global_registry()
        registry = MetricsRegistry()
        registry.counter("k").inc(7)
        assert global_registry().counter("k").value == 7
        reset_global_registry()
        assert global_registry().names() == []

    def test_callback_gauges_read_live_state(self):
        state = {"rows": 0}
        registry = MetricsRegistry(parent=None)
        gauge = registry.gauge("delta.buffered_rows", fn=lambda: state["rows"])
        assert gauge.value == 0
        state["rows"] = 42
        assert registry.snapshot()["delta.buffered_rows"] == 42

    def test_setting_a_callback_gauge_raises(self):
        registry = MetricsRegistry(parent=None)
        gauge = registry.gauge("g", fn=lambda: 1)
        with pytest.raises(ObservabilityError):
            gauge.set(9)

    def test_gauge_reregistration_rebinds_the_callback(self):
        registry = MetricsRegistry(parent=None)
        registry.gauge("g", fn=lambda: 1)
        registry.gauge("g", fn=lambda: 2)
        assert registry.gauge("g").value == 2

    def test_plain_gauges_are_settable(self):
        gauge = MetricsRegistry(parent=None).gauge("depth")
        gauge.set(3)
        assert gauge.value == 3

    def test_snapshot_shapes(self):
        registry = MetricsRegistry(parent=None)
        registry.counter("c").inc(2)
        registry.gauge("g").set(1)
        registry.histogram("h").observe(0.002)
        snapshot = registry.snapshot()
        assert snapshot["c"] == 2
        assert snapshot["g"] == 1
        assert snapshot["h"]["count"] == 1
        assert list(snapshot) == sorted(snapshot)

    def test_reset_zeroes_counters_and_histograms_not_parents(self):
        parent = MetricsRegistry(parent=None)
        child = MetricsRegistry(parent=parent)
        child.counter("c").inc(5)
        child.histogram("h").observe(1.0)
        child.reset()
        assert child.counter("c").value == 0
        assert child.histogram("h").count == 0
        assert child.histogram("h").min is None
        # The parent keeps its aggregate: reset is per-registry.
        assert parent.counter("c").value == 5
        assert parent.histogram("h").count == 1

    def test_standalone_counter_without_parent(self):
        counter = Counter("lonely")
        counter.inc(3)
        assert counter.value == 3


class TestHistogram:
    def test_bucketing_is_upper_bound_inclusive(self):
        histogram = Histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 2.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [2, 1, 1]  # <=0.1, <=1.0, +Inf
        assert histogram.count == 4
        assert histogram.min == pytest.approx(0.05)
        assert histogram.max == pytest.approx(2.0)
        assert histogram.mean == pytest.approx((0.05 + 0.1 + 0.5 + 2.0) / 4)

    def test_as_dict_carries_buckets_and_inf(self):
        histogram = Histogram("h", buckets=(0.1,))
        histogram.observe(5.0)
        stats = histogram.as_dict()
        assert stats["buckets"] == {"0.1": 0, "+Inf": 1}
        assert stats["sum"] == pytest.approx(5.0)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_timer_records_one_observation(self):
        histogram = Histogram("h")
        with histogram.time():
            pass
        assert histogram.count == 1
        assert histogram.total >= 0.0


class TestNullRegistry:
    def test_every_operation_is_a_noop(self):
        registry = NullRegistry()
        registry.counter("c").inc(10)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        with registry.histogram("h").time():
            pass
        assert registry.counter("c").value == 0
        assert registry.names() == []
        assert registry.snapshot() == {}
        registry.reset()

    def test_flush_to_null_registry_is_silent(self):
        stats = ExecStats()
        stats.queries = 1
        stats.batches = 3
        stats.rows_decoded = 12
        stats.rows_returned = 4
        stats.flush_to(NullRegistry())  # must not raise


class TestSpans:
    def test_trace_rows_have_the_fixed_shape(self):
        trace = QueryTrace("SELECT 1", timed=True)
        root = trace.span("select", "table=r")
        scan = root.child("scan", "table=r")
        scan.batches = 2
        scan.rows_out = 10
        root.rows_out = 10
        rows = trace.finalize().rows()
        assert [len(row) for row in rows] == [len(TRACE_COLUMNS)] * 2
        assert rows[0][0] == "select"
        assert rows[1][0] == "  scan"  # two-space depth indent

    def test_finalize_chains_rows_in_from_the_predecessor(self):
        trace = QueryTrace()
        root = trace.span("select")
        scan = root.child("scan")
        scan.rows_out = 8
        filter_span = root.child("filter")
        filter_span.rows_out = 3
        trace.finalize()
        assert filter_span.rows_in == 8   # consumes what the scan produced
        assert root.rows_in == 3          # parent consumes its last stage

    def test_as_dict_nests_children(self):
        trace = QueryTrace("SELECT 1")
        trace.span("select").child("scan")
        plan = trace.as_dict()["plan"]
        assert plan["operator"] == "select"
        assert plan["children"][0]["operator"] == "scan"

    def test_empty_trace_renders_no_rows(self):
        assert QueryTrace().rows() == []
        assert QueryTrace().as_dict()["plan"] is None

    def test_timed_iter_counts_rows_and_accumulates_time(self):
        span = Span("scan")
        assert list(TimedIter(iter([1, 2, 3]), span)) == [1, 2, 3]
        assert span.rows_out == 3
        assert span.seconds >= 0.0

    def test_timed_iter_can_skip_row_counting(self):
        span = Span("scan")
        list(TimedIter(iter([object(), object()]), span, count_rows=False))
        assert span.rows_out == 0


class TestExporters:
    def test_prometheus_name_flattens_punctuation(self):
        assert prometheus_name("exec.rows_decoded") == "exec_rows_decoded"
        assert prometheus_name("a.b-c d") == "a_b_c_d"

    def test_json_lines_round_trip(self):
        registry = MetricsRegistry(parent=None)
        registry.counter("exec.queries").inc(2)
        registry.gauge("delta.tables").set(1)
        registry.histogram("exec.select_seconds").observe(0.002)
        lines = to_json_lines(registry.snapshot()).splitlines()
        records = {
            record["metric"]: record
            for record in map(json.loads, lines)
        }
        assert records["exec.queries"]["value"] == 2
        assert records["delta.tables"]["value"] == 1
        assert records["exec.select_seconds"]["type"] == "histogram"
        assert records["exec.select_seconds"]["count"] == 1

    def test_json_lines_empty_snapshot(self):
        assert to_json_lines({}) == ""

    def test_prometheus_buckets_are_cumulative(self):
        histogram = Histogram("exec.select_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(3.0)
        text = to_prometheus({"exec.select_seconds": histogram.as_dict()})
        assert "# TYPE exec_select_seconds histogram" in text
        assert 'exec_select_seconds_bucket{le="0.1"} 1' in text
        assert 'exec_select_seconds_bucket{le="1.0"} 2' in text
        assert 'exec_select_seconds_bucket{le="+Inf"} 3' in text
        assert "exec_select_seconds_count 3" in text

    def test_prometheus_plain_samples(self):
        text = to_prometheus({"txn.commits": 4})
        assert text == "txn_commits 4\n"
