"""Unit tests for the write path: delta store, mutable tables,
compaction policies, SQL DML, engine flush-before-evolve, persistence,
demo commands and the mixed workload."""

import io

import pytest

from repro.core.engine import EvolutionEngine
from repro.delta import CompactionPolicy, DeltaStore, MutableTable
from repro.demo.cli import DemoSession
from repro.errors import (
    SchemaError,
    SerializationError,
    SqlExecutionError,
    SqlSyntaxError,
    StorageError,
)
from repro.smo.predicate import And, Comparison
from repro.sql import (
    ColumnStoreAdapter,
    MutableColumnAdapter,
    RowEngineAdapter,
    SqlExecutor,
    parse_sql,
)
from repro.sql.ast import Delete, Update
from repro.storage import (
    DataType,
    Table,
    delta_sidecar_path,
    load_delta,
    load_engine,
    load_mutable_table,
    save_delta,
    save_engine,
    save_mutable_table,
    table_from_python,
)
from repro.workload import MixedReadWriteWorkload


def small_table(name="R"):
    return table_from_python(
        name,
        {
            "K": (DataType.INT, [1, 2, 3, 4]),
            "S": (DataType.STRING, ["a", "b", "a", "c"]),
        },
    )


def frozen(table=None, **kwargs):
    """A MutableTable that never auto-compacts."""
    return MutableTable(
        table if table is not None else small_table(),
        CompactionPolicy.never(),
        **kwargs,
    )


class TestDeltaStore:
    def test_append_and_live_rows(self):
        store = DeltaStore(small_table().schema)
        store.append((5, "d"))
        store.append((6, "e"))
        assert store.n_appended == 2
        assert store.live_rows() == [(5, "d"), (6, "e")]

    def test_append_coerces(self):
        store = DeltaStore(small_table().schema)
        store.append(("7", 8))
        assert store.live_rows() == [(7, "8")]

    def test_append_arity_checked(self):
        store = DeltaStore(small_table().schema)
        with pytest.raises(StorageError):
            store.append((1,))

    def test_delete_delta_and_main(self):
        store = DeltaStore(small_table().schema)
        store.append((5, "d"))
        assert store.delete_delta(0)
        assert not store.delete_delta(0)  # already gone
        assert store.n_live == 0
        assert store.delete_main(2)
        assert not store.delete_main(2)
        with pytest.raises(StorageError):
            store.delete_delta(99)

    def test_surviving_positions(self):
        store = DeltaStore(small_table().schema)
        store.delete_main(0)
        store.delete_main(3)
        assert store.surviving_main_positions(4).tolist() == [1, 2]

    def test_clear_resets(self):
        store = DeltaStore(small_table().schema)
        store.append((5, "d"))
        store.delete_main(0)
        store.clear()
        assert store.is_empty


class TestMutableTable:
    def test_merged_read_order(self):
        mutable = frozen()
        mutable.insert((5, "d"))
        assert mutable.to_rows() == [
            (1, "a"), (2, "b"), (3, "a"), (4, "c"), (5, "d"),
        ]
        assert mutable.nrows == 5

    def test_insert_rows_is_atomic(self):
        mutable = frozen()
        with pytest.raises(StorageError):
            mutable.insert_rows([(5, "d"), (6,)])  # second row malformed
        assert mutable.nrows == 4  # nothing from the batch was admitted
        assert not mutable.has_pending_changes

    def test_scan_is_snapshot(self):
        mutable = frozen()
        scan = mutable.scan()
        mutable.insert((5, "d"))
        assert len(list(scan)) == 4

    def test_delete_spans_main_and_delta(self):
        mutable = frozen()
        mutable.insert((5, "a"))
        assert mutable.delete(Comparison("S", "=", "a")) == 3
        assert mutable.to_rows() == [(2, "b"), (4, "c")]

    def test_delete_all(self):
        mutable = frozen()
        assert mutable.delete() == 4
        assert mutable.to_rows() == []
        assert mutable.compact().nrows == 0

    def test_delete_is_idempotent_per_row(self):
        mutable = frozen()
        assert mutable.delete(Comparison("K", "=", 1)) == 1
        assert mutable.delete(Comparison("K", "=", 1)) == 0

    def test_update_moves_rows_to_delta(self):
        mutable = frozen()
        count = mutable.update({"S": "z"}, Comparison("K", ">=", 3))
        assert count == 2
        assert sorted(mutable.to_rows()) == [
            (1, "a"), (2, "b"), (3, "z"), (4, "z"),
        ]

    def test_update_compound_predicate_and_delta_rows(self):
        mutable = frozen()
        mutable.insert((10, "a"))
        predicate = And(
            Comparison("S", "=", "a"), Comparison("K", ">", 2)
        )
        assert mutable.update({"S": "y"}, predicate) == 2
        assert sorted(mutable.to_rows()) == [
            (1, "a"), (2, "b"), (3, "y"), (4, "c"), (10, "y"),
        ]

    def test_update_validates_column(self):
        with pytest.raises(SchemaError):
            frozen().update({"Nope": 1})

    def test_update_empty_assignments(self):
        assert frozen().update({}) == 0

    def test_compact_preserves_content_and_codec(self):
        mutable = frozen()
        mutable.insert((5, "d"))
        mutable.delete(Comparison("K", "=", 2))
        expected = mutable.to_rows()
        table = mutable.compact()
        assert table.to_rows() == expected
        assert not mutable.has_pending_changes
        assert all(
            table.column(name).codec_name == "wah"
            for name in table.column_names
        )
        oracle = Table.from_rows(table.schema, expected)
        assert table.same_content(oracle)

    def test_compact_empty_delta_is_noop(self):
        mutable = frozen()
        assert mutable.compact() is mutable.main

    def test_compact_callback(self):
        seen = []
        mutable = frozen(
            on_compact=lambda table, reason: seen.append((table.nrows, reason))
        )
        mutable.insert((5, "d"))
        mutable.compact("test")
        assert seen == [(5, "test")]

    def test_autocompact_on_row_threshold(self):
        mutable = MutableTable(
            small_table(), CompactionPolicy(2, None, None)
        )
        mutable.insert((5, "d"))
        assert mutable.compactions == 0
        mutable.insert((6, "e"))
        assert mutable.compactions == 1
        assert mutable.main.nrows == 6

    def test_autocompact_on_deleted_ratio(self):
        mutable = MutableTable(
            small_table(), CompactionPolicy(None, None, 0.5)
        )
        mutable.delete(Comparison("S", "=", "a"))
        assert mutable.compactions == 1
        assert mutable.main.nrows == 2

    def test_restore_delta_guards(self):
        mutable = frozen()
        mutable.insert((5, "d"))
        with pytest.raises(SchemaError):
            mutable.restore_delta(DeltaStore(small_table().schema))
        other = DeltaStore(small_table("Other").schema)
        frozen().restore_delta(other)  # same columns is fine

    def test_same_content_against_mutable(self):
        left, right = frozen(), frozen()
        left.insert((5, "d"))
        right.insert((5, "d"))
        assert left.same_content(right)
        right.insert((6, "e"))
        assert not left.same_content(right)


class TestSqlDml:
    def test_parse_update(self):
        statement = parse_sql(
            "UPDATE r SET s = 'z', k = 3 WHERE k > 1"
        )
        assert isinstance(statement, Update)
        assert statement.assignments == (("s", "z"), ("k", 3))
        assert statement.where is not None

    def test_parse_update_without_where(self):
        statement = parse_sql("UPDATE r SET s = 'z'")
        assert statement.where is None

    def test_parse_delete(self):
        statement = parse_sql("DELETE FROM r WHERE s = 'a'")
        assert isinstance(statement, Delete)
        assert statement.where is not None

    def test_parse_delete_all(self):
        assert parse_sql("DELETE FROM r").where is None

    def test_parse_update_requires_equals(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("UPDATE r SET s > 'z'")

    def test_parse_delete_requires_from(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("DELETE r WHERE s = 'a'")

    @pytest.mark.parametrize(
        "make_adapter",
        [MutableColumnAdapter, RowEngineAdapter, ColumnStoreAdapter],
        ids=["delta", "rowstore", "query-level"],
    )
    def test_dml_end_to_end(self, make_adapter):
        executor = SqlExecutor(make_adapter())
        executor.execute("CREATE TABLE r (k INT, s STRING)")
        assert executor.execute(
            "INSERT INTO r VALUES (1, 'a'), (2, 'b'), (3, 'a')"
        ) == 3
        assert executor.execute("UPDATE r SET s = 'z' WHERE k >= 2") == 2
        assert executor.execute("DELETE FROM r WHERE s = 'a'") == 1
        assert sorted(executor.execute("SELECT * FROM r")) == [
            (2, "z"), (3, "z"),
        ]
        assert executor.execute("DELETE FROM r") == 2
        assert executor.execute("SELECT * FROM r") == []

    def test_update_unknown_column_rejected(self):
        executor = SqlExecutor(MutableColumnAdapter())
        executor.execute("CREATE TABLE r (k INT)")
        with pytest.raises(SqlExecutionError):
            executor.execute("UPDATE r SET nope = 1")

    def test_update_coerces_literals_everywhere(self):
        for make_adapter in (
            MutableColumnAdapter, RowEngineAdapter, ColumnStoreAdapter,
        ):
            executor = SqlExecutor(make_adapter())
            executor.execute("CREATE TABLE r (k INT, f FLOAT)")
            executor.execute("INSERT INTO r VALUES (1, 0.5)")
            executor.execute("UPDATE r SET f = 2")
            (row,) = executor.execute("SELECT * FROM r")
            assert row == (1, 2.0) and isinstance(row[1], float)

    def test_rowstore_update_rebuilds_indexes(self):
        adapter = RowEngineAdapter()
        executor = SqlExecutor(adapter)
        executor.execute("CREATE TABLE r (k INT, s STRING)")
        executor.execute("INSERT INTO r VALUES (1, 'a'), (2, 'b')")
        executor.execute("CREATE INDEX idx ON r (s)")
        executor.execute("UPDATE r SET s = 'z' WHERE k = 1")
        assert adapter.engine.table("r").lookup("s", "z") == [(1, "z")]
        executor.execute("DELETE FROM r WHERE k = 2")
        assert adapter.engine.table("r").lookup("s", "b") == []

    def test_delta_adapter_scan_merges_pending(self):
        adapter = MutableColumnAdapter(policy=CompactionPolicy.never())
        executor = SqlExecutor(adapter)
        executor.execute("CREATE TABLE r (k INT, s STRING)")
        executor.execute("INSERT INTO r VALUES (1, 'a')")
        assert adapter.catalog.table("r").nrows == 0  # still buffered
        assert executor.execute("SELECT * FROM r") == [(1, "a")]
        adapter.compact("r")
        assert adapter.catalog.table("r").nrows == 1

    def test_delta_adapter_rename_preserves_delta(self):
        # RENAME is metadata-only: the buffered row survives under the
        # new name without a compaction (the ROADMAP's O(1) rename).
        adapter = MutableColumnAdapter(policy=CompactionPolicy.never())
        executor = SqlExecutor(adapter)
        executor.execute("CREATE TABLE r (k INT)")
        executor.execute("INSERT INTO r VALUES (1)")
        executor.execute("ALTER TABLE r RENAME TO r2")
        assert adapter.catalog.table("r2").nrows == 0  # still buffered
        pending = adapter.evolution_engine.pending_delta("r2")
        assert pending is not None and pending.compactions == 0
        assert executor.execute("SELECT * FROM r2") == [(1,)]
        adapter.compact("r2")
        assert adapter.catalog.table("r2").nrows == 1


class TestEngineFlushBeforeEvolve:
    def employee_engine(self):
        engine = EvolutionEngine()
        engine.load_table(table_from_python(
            "R",
            {
                "Employee": (DataType.STRING, ["Jones", "Ellis", "Jones"]),
                "Skill": (DataType.STRING, ["Typing", "Alchemy", "Filing"]),
                "Address": (DataType.STRING, ["425 G", "747 I", "425 G"]),
            },
        ))
        return engine

    def test_smo_on_pending_delta_flushes(self):
        engine = self.employee_engine()
        mutable = engine.mutable("R", CompactionPolicy.never())
        mutable.insert(("Harrison", "Cleaning", "425 G"))
        mutable.delete(Comparison("Skill", "=", "Filing"))
        status = engine.apply_sql_like(
            "DECOMPOSE TABLE R INTO S (Employee, Skill), "
            "T (Employee, Address)"
        )
        assert status.delta_rows_flushed == 2  # 1 buffered + 1 deleted
        assert any(e.step == "delta flush" for e in status.events)
        assert sorted(engine.table("S").to_rows()) == [
            ("Ellis", "Alchemy"), ("Harrison", "Cleaning"),
            ("Jones", "Typing"),
        ]
        # the handle was invalidated
        assert engine.pending_delta("R") is None

    def test_smo_without_delta_has_no_flush_event(self):
        engine = self.employee_engine()
        status = engine.apply_sql_like("RENAME TABLE R TO R2")
        assert status.delta_rows_flushed == 0
        assert not any(e.step == "delta flush" for e in status.events)

    def test_flush_applies_to_both_merge_inputs(self):
        engine = self.employee_engine()
        engine.apply_sql_like(
            "DECOMPOSE TABLE R INTO S (Employee, Skill), "
            "T (Employee, Address)"
        )
        engine.mutable("S", CompactionPolicy.never()).insert(
            ("Nguyen", "Poetry")
        )
        engine.mutable("T", CompactionPolicy.never()).insert(
            ("Nguyen", "1 Verse Blvd")
        )
        status = engine.apply_sql_like("MERGE TABLES S, T INTO R")
        assert status.delta_rows_flushed == 2
        assert ("Nguyen", "Poetry", "1 Verse Blvd") in set(
            engine.table("R").to_rows()
        )

    def test_compaction_republishes_into_catalog(self):
        engine = self.employee_engine()
        mutable = engine.mutable("R", CompactionPolicy.never())
        mutable.insert(("Harrison", "Cleaning", "425 G"))
        mutable.compact()
        assert engine.table("R").nrows == 4
        assert any(
            "COMPACT R" in entry.operation
            for entry in engine.catalog.history
        )

    def test_mutable_handle_is_cached(self):
        engine = self.employee_engine()
        assert engine.mutable("R") is engine.mutable("R")

    def test_stale_handle_cannot_revert_an_smo(self):
        engine = self.employee_engine()
        mutable = engine.mutable("R", CompactionPolicy.never())
        engine.apply_sql_like("DROP COLUMN Address FROM R")
        assert not mutable.is_valid
        with pytest.raises(StorageError):
            mutable.insert(("Ghost", "Haunting", "13 Elm"))
        with pytest.raises(StorageError):
            mutable.compact()
        # The evolved schema stands and a fresh handle sees it.
        assert engine.mutable("R").schema.column_names == (
            "Employee", "Skill",
        )

    def test_invalid_smo_never_loses_writes(self):
        engine = self.employee_engine()
        mutable = engine.mutable("R", CompactionPolicy.never())
        mutable.insert(("Smith", "Welding", "12 Elm"))
        with pytest.raises(SchemaError):
            engine.apply_sql_like("DROP COLUMN Nope FROM R")
        # The flush may have run, but the merged content survives and a
        # fresh handle picks it up.
        assert ("Smith", "Welding", "12 Elm") in set(
            engine.mutable("R").to_rows()
        )

    def test_add_column_values_sized_to_flushed_table(self):
        engine = self.employee_engine()
        engine.mutable("R", CompactionPolicy.never()).insert(
            ("Smith", "Welding", "12 Elm")
        )
        from repro.smo.ops import AddColumn
        from repro.storage import ColumnSchema

        # 3 main rows + 1 buffered: the values list must match the
        # post-flush count of 4.
        status = engine.apply(AddColumn(
            "R", ColumnSchema("Grade", DataType.INT), values=(1, 2, 3, 4),
        ))
        assert status.delta_rows_flushed == 1
        assert engine.table("R").column("Grade").to_values() == [1, 2, 3, 4]

    def test_drop_table_discards_delta_without_compacting(self):
        engine = self.employee_engine()
        mutable = engine.mutable("R", CompactionPolicy.never())
        mutable.insert(("Smith", "Welding", "12 Elm"))
        engine.apply_sql_like("DROP TABLE R")
        assert not mutable.is_valid
        assert mutable.compactions == 0
        assert "R" not in engine.catalog

    def test_delta_stats_listing(self):
        engine = self.employee_engine()
        engine.mutable("R", CompactionPolicy.never()).insert(
            ("Smith", "Welding", "12 Elm")
        )
        (stats,) = engine.delta_stats()
        assert stats.table == "R" and stats.delta_live == 1


class TestDeltaPersistence:
    def test_delta_roundtrip(self, tmp_path):
        store = DeltaStore(small_table().schema)
        store.append((5, "d"))
        store.append((6, "e"))
        store.delete_delta(0)
        store.delete_main(1)
        path = tmp_path / "r.delta"
        save_delta(store, path)
        loaded = load_delta(path, small_table().schema)
        assert loaded.live_rows() == [(6, "e")]
        assert loaded.deleted_main == store.deleted_main
        assert loaded.deleted_delta == store.deleted_delta
        assert loaded.insert_epochs == store.insert_epochs
        assert loaded.epoch == store.epoch

    def test_mutable_roundtrip(self, tmp_path):
        mutable = frozen()
        mutable.insert((5, "d"))
        mutable.delete(Comparison("K", "=", 1))
        path = tmp_path / "r.cods"
        save_mutable_table(mutable, path)
        assert delta_sidecar_path(path).exists()
        restored = load_mutable_table(path, CompactionPolicy.never())
        assert restored.to_rows() == mutable.to_rows()

    def test_clean_table_removes_stale_sidecar(self, tmp_path):
        mutable = frozen()
        mutable.insert((5, "d"))
        path = tmp_path / "r.cods"
        save_mutable_table(mutable, path)
        mutable.compact()
        save_mutable_table(mutable, path)
        assert not delta_sidecar_path(path).exists()
        restored = load_mutable_table(path)
        assert not restored.has_pending_changes
        assert restored.main.nrows == 5

    def test_delta_schema_mismatch_rejected(self, tmp_path):
        store = DeltaStore(small_table().schema)
        path = tmp_path / "r.delta"
        save_delta(store, path)
        other = table_from_python(
            "R", {"X": (DataType.INT, [1])}
        ).schema
        with pytest.raises(SerializationError):
            load_delta(path, other)

    def test_corrupt_magic_rejected(self, tmp_path):
        path = tmp_path / "r.delta"
        path.write_bytes(b"NOPE....")
        with pytest.raises(SerializationError):
            load_delta(path, small_table().schema)

    def test_engine_roundtrip(self, tmp_path):
        engine = EvolutionEngine()
        engine.load_table(small_table())
        engine.mutable("R", CompactionPolicy.never()).insert((9, "z"))
        save_engine(engine, tmp_path)
        restored = load_engine(tmp_path, CompactionPolicy.never())
        pending = restored.pending_delta("R")
        assert pending is not None
        assert pending.to_rows()[-1] == (9, "z")

    def test_out_of_range_sidecar_rejected_on_both_load_paths(self, tmp_path):
        from repro.storage import save_table

        path = tmp_path / "R.cods"
        save_table(small_table(), path)
        store = DeltaStore(small_table().schema)
        store.delete_main(999)  # beyond the 4-row main store
        save_delta(store, delta_sidecar_path(path))
        with pytest.raises(SerializationError):
            load_mutable_table(path)
        (tmp_path / "catalog.json").write_text(
            '{"tables": ["R"], "version": 1}'
        )
        with pytest.raises(SerializationError):
            load_engine(tmp_path)


class TestDemoDeltaCommands:
    def session(self):
        out = io.StringIO()
        return DemoSession(out=out), out

    def test_insert_delete_compact_deltastat(self):
        session, out = self.session()
        session.handle("example")
        session.handle("insert R ('Smith', 'Welding', '12 Elm St')")
        session.handle("deltastat")
        session.handle("delete R WHERE Employee = 'Jones'")
        session.handle("display R")
        session.handle("compact R")
        session.handle("deltastat R")
        text = out.getvalue()
        assert "buffered 1 row(s)" in text
        assert "deleted 3 row(s)" in text
        assert "merged view" in text
        assert "compacted R" in text
        assert "compactions=1" in text

    def test_insert_multiple_rows(self):
        session, out = self.session()
        session.handle("create CREATE TABLE Z (A INT, B STRING)")
        session.handle("execute")
        session.handle("insert Z (1, 'x'), (2, 'y')")
        session.handle("display Z")
        assert "buffered 2 row(s)" in out.getvalue()

    def test_compact_with_empty_delta(self):
        session, out = self.session()
        session.handle("example")
        session.handle("compact R")
        assert "nothing to compact" in out.getvalue()

    def test_deltastat_empty(self):
        session, out = self.session()
        session.handle("deltastat")
        assert "no tables with delta state" in out.getvalue()

    def test_bad_insert_reports_error(self):
        session, out = self.session()
        session.handle("example")
        session.handle("insert R (1")
        assert "error:" in out.getvalue()


class TestMixedWorkload:
    def test_deterministic(self):
        workload = MixedReadWriteWorkload(100, 50, n_employees=10)
        first = workload.operations()
        second = workload.operations()
        assert first == second

    def test_fraction_counts(self):
        workload = MixedReadWriteWorkload(
            100, 40, insert_fraction=0.5, update_fraction=0.25,
            delete_fraction=0.25,
        )
        kinds = [op.kind for op in workload.operations()]
        assert kinds.count("insert") == 20
        assert kinds.count("update") == 10
        assert kinds.count("delete") == 10

    def test_fractions_validated(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            MixedReadWriteWorkload(
                100, 10, insert_fraction=0.9, update_fraction=0.9,
            )

    def test_apply_matches_manual_replay(self):
        workload = MixedReadWriteWorkload(200, 60, n_employees=10, seed=7)
        mutable = MutableTable(workload.build(), CompactionPolicy.never())
        counters = workload.apply_to(mutable)
        assert counters["insert"] + counters["update"] + \
            counters["delete"] + counters["scan"] == 60

        # Replaying the same stream on a fresh copy gives the same rows.
        replay = MutableTable(workload.build(), CompactionPolicy(256))
        workload.apply_to(replay)
        assert sorted(mutable.to_rows()) == sorted(replay.to_rows())

    def test_aggregate_scan_mix_cycles_the_group_by_queries(self):
        from repro.workload import AGGREGATE_SCAN_QUERIES

        workload = MixedReadWriteWorkload(
            100, 40, n_employees=10, scan_mix="aggregate"
        )
        scans = [
            op for op in workload.operations() if op.kind == "scan"
        ]
        assert scans, "stream produced no reads"
        rendered = [op.sql("R") for op in scans]
        assert rendered[: len(AGGREGATE_SCAN_QUERIES)] == [
            query.format(table="R") for query in AGGREGATE_SCAN_QUERIES
        ][: len(rendered)]
        assert all("GROUP BY" in sql or "COUNT" in sql for sql in rendered)

    def test_mixed_scan_mix_interleaves_full_and_aggregate(self):
        workload = MixedReadWriteWorkload(
            100, 60, n_employees=10, scan_mix="mixed"
        )
        scans = [
            op for op in workload.operations() if op.kind == "scan"
        ]
        kinds = {op.query is None for op in scans}
        assert kinds == {True, False}

    def test_scan_mix_validated(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError, match="scan mix"):
            MixedReadWriteWorkload(100, 10, scan_mix="sideways")


class TestWritePathExport:
    def test_json_roundtrip(self, tmp_path):
        from repro.bench.exporters import (
            load_write_path_json,
            write_path_json,
        )

        payload = {"benchmark": "write_path", "rows": 10}
        path = tmp_path / "BENCH_write_path.json"
        write_path_json(payload, path)
        assert load_write_path_json(path) == payload

    def test_bench_script_runs(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        out = tmp_path / "BENCH_write_path.json"
        result = subprocess.run(
            [
                sys.executable,
                str(repo / "benchmarks" / "bench_write_path.py"),
                "--rows", "500", "--ops", "60", "--out", str(out),
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        from repro.bench.exporters import load_write_path_json

        payload = load_write_path_json(out)
        assert payload["benchmark"] == "write_path"
        assert payload["compaction"]["final_rows"] >= 0


class TestRangeProbeGuard:
    """Range predicates probe the hash index only while the column's
    distinct count is a small share of the appended rows; past the
    share they fall back to row-wise evaluation."""

    def make_store(self, n_rows=32, distinct=None):
        store = DeltaStore(small_table().schema, index_threshold=1)
        distinct = distinct if distinct is not None else n_rows
        for i in range(n_rows):
            store.append((i % distinct, f"s{i % distinct}"))
        store.build_index("K")
        return store

    def test_equality_unaffected_by_the_guard(self):
        # Every value distinct (100% share): equality stays a hash hit.
        store = self.make_store(n_rows=32)
        assert store.index_matches(Comparison("K", "=", 3)) == {3}
        assert store.index_matches(
            Comparison("K", "IN", (0, 1))
        ) == {0, 1}

    def test_range_probes_on_low_distinct_share(self):
        # 8 distinct over 64 rows (12.5%): probing 8 values beats
        # walking 64 rows, so the index answers.
        store = self.make_store(n_rows=64, distinct=8)
        assert store.index_matches(Comparison("K", "<", 2)) == {
            i for i in range(64) if i % 8 < 2
        }

    def test_range_declines_on_high_distinct_share(self):
        # All 32 values distinct (100% share): probing every value
        # costs as much as the scan, so the index declines ...
        store = self.make_store(n_rows=32)
        assert store.index_matches(Comparison("K", "<", 2)) is None
        # ... and the public entry point still answers, row-wise.
        assert store.matching_live_indices(
            Comparison("K", "<", 2)
        ) == [0, 1]

    def test_guard_applies_inside_conjunctions(self):
        store = self.make_store(n_rows=32)
        predicate = And(
            Comparison("K", "=", 1), Comparison("K", "<", 10)
        )
        assert store.index_matches(predicate) is None
        assert store.matching_live_indices(predicate) == [1]

    def test_share_threshold_is_the_module_constant(self):
        from repro.delta import RANGE_PROBE_MAX_DISTINCT_SHARE

        # Just at the share: probes.  One distinct value past: declines.
        at_share = self.make_store(
            n_rows=32, distinct=int(32 * RANGE_PROBE_MAX_DISTINCT_SHARE)
        )
        assert at_share.index_matches(
            Comparison("K", "<", 2)
        ) is not None
        past_share = self.make_store(
            n_rows=32,
            distinct=int(32 * RANGE_PROBE_MAX_DISTINCT_SHARE) + 2,
        )
        assert past_share.index_matches(Comparison("K", "<", 2)) is None

    def test_row_wise_and_probed_results_agree(self):
        probed = self.make_store(n_rows=64, distinct=16)
        row_wise = self.make_store(n_rows=64, distinct=16)
        row_wise._indexes.clear()
        row_wise.index_threshold = None
        for predicate in (
            Comparison("K", ">", 7),
            Comparison("K", "<=", 3),
            Comparison("K", "!=", 5),
        ):
            assert probed.matching_live_indices(predicate) == (
                row_wise.matching_live_indices(predicate)
            )
