"""The vectorized read path: batches, operators, and the planner.

Covers the three batch kinds' predicate strategies (compressed-domain
bitmaps, delta hash indexes, compiled columnar evaluators), selection
algebra, LIMIT's batch-level early exit, and SELECT execution through
the pipeline on all three registered backends.
"""

import numpy as np
import pytest

from repro.db import Database
from repro.delta import CompactionPolicy, DeltaStore, MutableTable
from repro.exec import (
    DeltaBatch,
    TableBatch,
    ValuesBatch,
    batches_from_rows,
    compile_predicate,
    filter_batches,
    iter_rows,
    limit_rows,
    mask_from_positions,
)
from repro.smo.predicate import And, Comparison, Not, Or
from repro.sql import (
    ColumnStoreAdapter,
    MutableColumnAdapter,
    RowEngineAdapter,
    SqlExecutor,
)
from repro.storage.table import table_from_python
from repro.storage.types import DataType


def small_table(name="r"):
    return table_from_python(
        name,
        {
            "k": (DataType.INT, [1, 2, 3, 4, 5]),
            "s": (DataType.STRING, ["a", "b", "a", "c", "b"]),
        },
    )


def reference_filter(rows, names, predicate):
    """Seed row-at-a-time semantics, the oracle for every strategy."""
    positions = {n: i for i, n in enumerate(names)}
    return [
        row
        for row in rows
        if predicate.matches(lambda a, r=row: r[positions[a]])
    ]


class TestValuesBatch:
    def test_filter_matches_row_wise(self):
        rows = [(1, "a"), (2, "b"), (3, "a"), (4, "c")]
        batch = ValuesBatch.from_rows(("k", "s"), rows)
        predicate = Or(
            And(Comparison("k", ">", 1), Comparison("s", "=", "a")),
            Not(Comparison("s", "!=", "c")),
        )
        got = batch.filter(predicate).rows()
        assert got == reference_filter(rows, ("k", "s"), predicate)

    def test_identity_full_selection_returns_source(self):
        rows = [(1, "a"), (2, "b")]
        batch = ValuesBatch.from_rows(("k", "s"), rows)
        assert batch.rows() is rows

    def test_projection_and_selection(self):
        rows = [(1, "a"), (2, "b"), (3, "c")]
        batch = ValuesBatch.from_rows(("k", "s"), rows).filter(
            Comparison("k", ">=", 2)
        )
        assert batch.rows([1]) == [("b",), ("c",)]
        assert batch.rows([1, 0]) == [("b", 2), ("c", 3)]

    def test_empty_positions(self):
        batch = ValuesBatch.from_rows(("k", "s"), []).filter(
            Comparison("k", "=", 1)
        )
        assert batch.selected_count == 0
        assert batch.rows() == []


class TestCompiledPredicates:
    @pytest.mark.parametrize("op,literal", [
        ("=", 2), ("!=", 2), ("<", 3), ("<=", 3), (">", 2), (">=", 2),
        ("IN", (1, 4)),
    ])
    def test_each_operator_matches_row_semantics(self, op, literal):
        rows = [(1,), (2,), (3,), (4,), (None,)]
        predicate = Comparison("k", op, literal)
        evaluate = compile_predicate(predicate)
        got = evaluate({"k": [r[0] for r in rows]}, np.arange(5))
        expected = [
            predicate.matches(lambda a, r=row: r[0]) for row in rows
        ]
        assert list(got) == expected

    def test_and_short_circuits_but_agrees(self):
        rows = [(1, "a"), (2, "b"), (3, "a")]
        predicate = And(Comparison("k", ">", 1), Comparison("s", "=", "a"))
        evaluate = compile_predicate(predicate)
        columns = {"k": [1, 2, 3], "s": ["a", "b", "a"]}
        assert list(evaluate(columns, np.arange(3))) == [
            False, False, True,
        ]
        assert reference_filter(rows, ("k", "s"), predicate) == [(3, "a")]


class TestTableBatch:
    def test_compressed_domain_filter(self):
        table = small_table()
        batch = TableBatch(table)
        predicate = Or(Comparison("s", "=", "a"), Comparison("k", ">", 4))
        got = batch.filter(predicate).rows()
        assert got == reference_filter(
            table.to_rows(), ("k", "s"), predicate
        )

    def test_validity_selection_masks_rows(self):
        table = small_table()
        validity = mask_from_positions([0, 2, 4], table.nrows)
        assert TableBatch(table, validity).rows() == [
            (1, "a"), (3, "a"), (5, "b"),
        ]

    def test_filter_composes_with_validity(self):
        table = small_table()
        validity = mask_from_positions([0, 2, 4], table.nrows)
        batch = TableBatch(table, validity).filter(
            Comparison("s", "=", "b")
        )
        assert batch.rows() == [(5, "b")]

    def test_rows_hint_serves_unfiltered_reads_only(self):
        table = small_table()
        validity = mask_from_positions([0, 1], table.nrows)
        sentinel = [("hint", "rows")]
        batch = TableBatch(table, validity, rows_hint=lambda: sentinel)
        assert batch.rows() is sentinel
        # Tightening the selection must drop the hint.
        filtered = batch.filter(Comparison("s", "=", "a"))
        assert filtered.rows() == [(1, "a")]


class TestDeltaBatch:
    def delta(self, threshold):
        schema = small_table().schema
        store = DeltaStore(schema, index_threshold=threshold)
        store.append_rows([(10, "x"), (11, "y"), (12, "x"), (13, "z")])
        store.delete_delta(1)
        return store

    @pytest.mark.parametrize("threshold", [1, None])
    def test_filter_matches_row_wise_with_and_without_index(
        self, threshold
    ):
        store = self.delta(threshold)
        if threshold is not None:
            store.build_index("s")
            assert store.indexed_columns == ("s",)
        predicate = Or(Comparison("s", "=", "x"), Comparison("k", ">", 12))
        batch = DeltaBatch(store)
        got = batch.filter(predicate).rows()
        live = store.live_rows()
        assert got == reference_filter(live, ("k", "s"), predicate)

    def test_epoch_pinned_visibility(self):
        store = self.delta(None)
        pinned = store.epoch
        store.append((14, "w"))
        store.delete_delta(0)
        batch = DeltaBatch(store, pinned)
        assert batch.rows() == [(10, "x"), (12, "x"), (13, "z")]

    def test_projection(self):
        store = self.delta(None)
        assert DeltaBatch(store).rows([1]) == [("x",), ("x",), ("z",)]


class TestOperatorsAndLimit:
    def test_limit_early_exits_the_scan(self):
        pulled = []

        def source():
            for i in range(100):
                pulled.append(i)
                yield (i, "x")

        batches = batches_from_rows(("k", "s"), source(), batch_rows=10)
        got = list(limit_rows(iter_rows(batches), 3))
        assert got == [(0, "x"), (1, "x"), (2, "x")]
        # Only the first chunk (plus one row of lookahead) was pulled;
        # the remaining ~90 rows were never materialized.
        assert len(pulled) <= 12

    def test_filter_drops_emptied_batches(self):
        batches = batches_from_rows(
            ("k",), [(i,) for i in range(20)], batch_rows=5
        )
        survivors = list(
            filter_batches(batches, Comparison("k", ">=", 15))
        )
        assert len(survivors) == 1
        assert survivors[0].rows() == [(15,), (16,), (17,), (18,), (19,)]


def seeded_executor(adapter):
    executor = SqlExecutor(adapter)
    executor.execute("CREATE TABLE t (k INT, s STRING)")
    executor.execute(
        "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'a'), (4, 'c')"
    )
    return executor


class TestSelectThroughPipeline:
    @pytest.mark.parametrize("adapter_factory", [
        MutableColumnAdapter, ColumnStoreAdapter, RowEngineAdapter,
    ])
    def test_same_answers_on_every_backend(self, adapter_factory):
        executor = seeded_executor(adapter_factory())
        assert executor.execute("SELECT * FROM t WHERE s = 'a'") == [
            (1, "a"), (3, "a"),
        ]
        assert executor.execute(
            "SELECT s FROM t WHERE k > 1 ORDER BY s DESC LIMIT 2"
        ) == [("c",), ("b",)]
        assert executor.execute("SELECT DISTINCT s FROM t") == [
            ("a",), ("b",), ("c",),
        ]

    def test_mutable_backend_merges_main_and_delta_in_order(self):
        adapter = MutableColumnAdapter(policy=CompactionPolicy.never())
        executor = seeded_executor(adapter)
        adapter.compact("t")  # push the seed rows into the main store
        executor.execute("INSERT INTO t VALUES (5, 'a')")
        executor.execute("DELETE FROM t WHERE k = 2")
        # Main survivors in row order, then live delta appends.
        assert executor.execute("SELECT * FROM t") == [
            (1, "a"), (3, "a"), (4, "c"), (5, "a"),
        ]
        assert executor.execute("SELECT k FROM t WHERE s = 'a'") == [
            (1,), (3,), (5,),
        ]
        assert executor.execute("SELECT * FROM t LIMIT 3") == [
            (1, "a"), (3, "a"), (4, "c"),
        ]

    def test_limit_matches_row_path_semantics(self):
        executor = seeded_executor(RowEngineAdapter())
        assert executor.execute("SELECT * FROM t LIMIT 0") == []
        assert executor.execute("SELECT * FROM t LIMIT 99") == [
            (1, "a"), (2, "b"), (3, "a"), (4, "c"),
        ]
        assert executor.execute(
            "SELECT DISTINCT s FROM t WHERE k >= 2 LIMIT 1"
        ) == [("b",)]

    def test_join_through_batches_without_native_hash_join(self):
        adapter = ColumnStoreAdapter()
        executor = SqlExecutor(adapter)
        executor.execute("CREATE TABLE l (a INT, b INT)")
        executor.execute("CREATE TABLE r2 (a INT, c STRING)")
        executor.execute("INSERT INTO l VALUES (1, 10), (2, 20)")
        executor.execute(
            "INSERT INTO r2 VALUES (1, 'x'), (1, 'y'), (3, 'z')"
        )
        assert executor.execute("SELECT * FROM l JOIN r2 ON (a)") == [
            (1, 10, "x"), (1, 10, "y"),
        ]
        assert executor.execute(
            "SELECT b, c FROM l JOIN r2 ON (a) WHERE c != 'x'"
        ) == [(10, "y")]

    def test_snapshot_scope_reads_through_batches(self):
        adapter = MutableColumnAdapter(policy=CompactionPolicy.never())
        executor = seeded_executor(adapter)
        with adapter.snapshot_scope("t"):
            before = executor.execute("SELECT * FROM t WHERE s = 'a'")
            executor.execute("INSERT INTO t VALUES (9, 'a')")
            assert executor.execute(
                "SELECT * FROM t WHERE s = 'a'"
            ) == before
        assert (9, "a") in executor.execute("SELECT * FROM t WHERE s = 'a'")


class TestScanBatchesSurface:
    def test_mutable_table_batches_match_scan(self):
        mutable = MutableTable(small_table(), CompactionPolicy.never())
        mutable.insert((6, "d"))
        mutable.delete(Comparison("k", "=", 2))
        assert list(iter_rows(mutable.scan_batches())) == list(
            mutable.scan()
        )

    def test_batches_keep_their_captured_selection_under_later_dml(self):
        """A batch handed out by scan_batches describes one instant;
        deletes (or compaction) landing before it is consumed must not
        leak into its materialization."""
        mutable = MutableTable(small_table(), CompactionPolicy.never())
        mutable.delete(Comparison("k", "=", 2))  # validity is non-None
        batches = mutable.scan_batches()
        captured = [b.selected_count for b in batches]
        mutable.delete(Comparison("k", "=", 4))
        assert [b.selected_count for b in batches] == captured
        assert list(iter_rows(batches)) == [
            (1, "a"), (3, "a"), (4, "c"), (5, "b"),
        ]
        batches = mutable.scan_batches()
        mutable.compact("test")
        assert list(iter_rows(batches)) == [(1, "a"), (3, "a"), (5, "b")]

    def test_failed_validation_charges_no_materialization(self):
        from repro.errors import SchemaError

        adapter = ColumnStoreAdapter()
        executor = seeded_executor(adapter)
        before = adapter.rows_materialized
        with pytest.raises(SchemaError):
            executor.execute("SELECT * FROM t WHERE nosuch = 1")
        with pytest.raises(SchemaError):
            executor.execute("SELECT nosuch FROM t WHERE k = 1")
        assert adapter.rows_materialized == before

    def test_snapshot_batches_stay_pinned(self):
        mutable = MutableTable(small_table(), CompactionPolicy.never())
        with mutable.snapshot() as snapshot:
            frozen = list(iter_rows(snapshot.scan_batches()))
            mutable.insert((7, "e"))
            mutable.delete(Comparison("k", "=", 1))
            assert list(iter_rows(snapshot.scan_batches())) == frozen
            assert frozen == snapshot.to_rows()

    def test_generic_wrap_for_foreign_adapters(self):
        """An adapter that only implements scan_rows joins the pipeline
        through the EngineAdapter default."""
        adapter = RowEngineAdapter()
        seeded_executor(adapter)
        batches = list(adapter.scan_batches("t"))
        assert [b.column_names for b in batches] == [("k", "s")]
        assert list(iter_rows(batches)) == list(adapter.scan_rows("t"))

    def test_column_adapter_still_charges_materialization(self):
        adapter = ColumnStoreAdapter()
        executor = seeded_executor(adapter)
        before = adapter.rows_materialized
        executor.execute("SELECT * FROM t WHERE k = 1")
        assert adapter.rows_materialized == before + 4


class TestWorkloadBatchStrategy:
    def test_batch_strategy_agrees_with_the_others(self):
        from repro.workload.readwrite import MixedReadWriteWorkload

        workload = MixedReadWriteWorkload(200, 40, n_employees=10)
        results = {}
        for strategy in ("batch", "snapshot", "copy"):
            db = Database(policy=CompactionPolicy(max_delta_rows=64))
            db.load_table(workload.build())
            mutable = db.engine.mutable("R")
            results[strategy] = workload.apply_to(
                mutable, scan_strategy=strategy
            )
        scanned = {r["rows_scanned"] for r in results.values()}
        affected = {r["rows_affected"] for r in results.values()}
        assert len(scanned) == 1 and len(affected) == 1
