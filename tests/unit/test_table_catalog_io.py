"""Unit tests for tables, the catalog and both IO formats."""

import numpy as np
import pytest

from repro.errors import SchemaError, SerializationError, StorageError
from repro.storage import (
    Catalog,
    ColumnSchema,
    DataType,
    Table,
    TableSchema,
    infer_type,
    load_catalog,
    load_csv,
    load_table,
    save_catalog,
    save_csv,
    save_table,
    table_from_python,
)


@pytest.fixture
def small_table():
    return table_from_python(
        "R",
        {
            "a": (DataType.INT, [1, 2, 1, 3]),
            "b": (DataType.STRING, ["x", "y", "x", "z"]),
        },
        primary_key=(),
    )


class TestTable:
    def test_from_rows(self):
        schema = TableSchema(
            "R",
            (ColumnSchema("a", DataType.INT), ColumnSchema("b", DataType.STRING)),
        )
        table = Table.from_rows(schema, [(1, "x"), (2, "y")])
        assert table.to_rows() == [(1, "x"), (2, "y")]

    def test_ragged_columns_rejected(self):
        schema = TableSchema(
            "R",
            (ColumnSchema("a", DataType.INT), ColumnSchema("b", DataType.INT)),
        )
        with pytest.raises(StorageError):
            Table.from_columns(schema, {"a": [1], "b": [1, 2]})

    def test_missing_column_data_rejected(self):
        schema = TableSchema("R", (ColumnSchema("a", DataType.INT),))
        with pytest.raises(SchemaError):
            Table.from_columns(schema, {})

    def test_empty_table(self):
        schema = TableSchema("R", (ColumnSchema("a", DataType.INT),))
        table = Table.empty(schema)
        assert table.nrows == 0
        assert table.to_rows() == []

    def test_project_shares_columns(self, small_table):
        projected = small_table.project(["b"], "P")
        assert projected.column("b") is small_table.column("b")
        assert projected.nrows == small_table.nrows

    def test_select_rows(self, small_table):
        out = small_table.select_rows(np.array([1, 3]), "Sub")
        assert out.to_rows() == [(2, "y"), (3, "z")]

    def test_with_without_rename_column(self, small_table):
        from repro.storage import BitmapColumn

        extra = BitmapColumn.from_values("c", DataType.BOOL, [True] * 4)
        wider = small_table.with_column(
            ColumnSchema("c", DataType.BOOL), extra
        )
        assert wider.column_names == ("a", "b", "c")
        narrower = wider.without_column("a")
        assert narrower.column_names == ("b", "c")
        renamed = narrower.with_renamed_column("b", "bb")
        assert renamed.column_names == ("bb", "c")

    def test_with_column_length_check(self, small_table):
        from repro.storage import BitmapColumn

        bad = BitmapColumn.from_values("c", DataType.INT, [1])
        with pytest.raises(StorageError):
            small_table.with_column(ColumnSchema("c", DataType.INT), bad)

    def test_concat_requires_compatibility(self, small_table):
        other = table_from_python("X", {"a": (DataType.INT, [5])})
        with pytest.raises(SchemaError):
            small_table.concat(other)

    def test_same_content_unordered(self, small_table):
        shuffled = table_from_python(
            "R",
            {
                "a": (DataType.INT, [3, 1, 2, 1]),
                "b": (DataType.STRING, ["z", "x", "y", "x"]),
            },
        )
        assert small_table.same_content(shuffled)
        assert not small_table.same_content(shuffled, ordered=True)

    def test_head(self, small_table):
        assert small_table.head(2) == [(1, "x"), (2, "y")]


class TestCatalog:
    def test_create_drop_rename(self, small_table):
        catalog = Catalog()
        catalog.create(small_table)
        assert "R" in catalog
        with pytest.raises(SchemaError):
            catalog.create(small_table)
        catalog.rename("R", "R2")
        assert catalog.table("R2").nrows == 4
        with pytest.raises(SchemaError):
            catalog.table("R")
        dropped = catalog.drop("R2")
        assert dropped.nrows == 4
        assert catalog.table_names() == []

    def test_history_versions(self, small_table):
        catalog = Catalog()
        catalog.create(small_table)
        catalog.rename("R", "R2")
        assert catalog.version == 2
        assert [entry.version for entry in catalog.history] == [1, 2]
        assert catalog.history[-1].tables == ("R2",)

    def test_describe(self, small_table):
        catalog = Catalog()
        assert "empty" in catalog.describe()
        catalog.create(small_table)
        text = catalog.describe()
        assert "R(" in text and "4 rows" in text


class TestCsvIO:
    def test_roundtrip(self, small_table, tmp_path):
        path = tmp_path / "r.csv"
        save_csv(small_table, path)
        loaded = load_csv(path, "R")
        assert loaded.same_content(small_table, ordered=True)
        assert loaded.schema.column("a").dtype == DataType.INT

    def test_type_inference(self):
        assert infer_type(["1", "2"]) == DataType.INT
        assert infer_type(["1.5", "2"]) == DataType.FLOAT
        assert infer_type(["true", "false"]) == DataType.BOOL
        assert infer_type(["2020-01-01"]) == DataType.DATE
        assert infer_type(["hello", "1"]) == DataType.STRING
        assert infer_type([""]) == DataType.STRING

    def test_nulls(self, tmp_path):
        table = table_from_python(
            "N", {"a": (DataType.INT, [1, None, 3])}
        )
        path = tmp_path / "n.csv"
        save_csv(table, path)
        loaded = load_csv(path, "N")
        assert loaded.to_rows() == [(1,), (None,), (3,)]

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(StorageError):
            load_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(StorageError):
            load_csv(path)

    def test_explicit_schema_header_check(self, small_table, tmp_path):
        path = tmp_path / "r.csv"
        save_csv(small_table, path)
        wrong = TableSchema("R", (ColumnSchema("zzz", DataType.INT),))
        with pytest.raises(StorageError):
            load_csv(path, schema=wrong)


class TestBinaryIO:
    def test_roundtrip(self, small_table, tmp_path):
        path = tmp_path / "r.cods"
        save_table(small_table, path)
        loaded = load_table(path)
        assert loaded.same_content(small_table, ordered=True)
        assert loaded.schema.column_names == small_table.schema.column_names

    def test_roundtrip_with_nulls_and_dates(self, tmp_path):
        import datetime

        table = table_from_python(
            "D",
            {
                "when": (
                    DataType.DATE,
                    [datetime.date(2010, 9, 13), None],
                ),
                "ok": (DataType.BOOL, [True, False]),
            },
        )
        path = tmp_path / "d.cods"
        save_table(table, path)
        assert load_table(path).to_rows() == table.to_rows()

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "x.cods"
        path.write_bytes(b"JUNKJUNKJUNK")
        with pytest.raises(SerializationError):
            load_table(path)

    def test_truncated(self, small_table, tmp_path):
        path = tmp_path / "r.cods"
        save_table(small_table, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SerializationError):
            load_table(path)

    def test_catalog_roundtrip(self, small_table, tmp_path):
        catalog = Catalog()
        catalog.create(small_table)
        catalog.create(small_table.renamed("R2"))
        save_catalog(catalog, tmp_path / "db")
        loaded = load_catalog(tmp_path / "db")
        assert loaded.table_names() == ["R", "R2"]
        assert loaded.table("R").same_content(small_table, ordered=True)

    def test_catalog_missing_manifest(self, tmp_path):
        with pytest.raises(SerializationError):
            load_catalog(tmp_path)

    def test_compressed_on_disk(self, tmp_path):
        # A highly compressible table must stay small on disk.
        table = table_from_python(
            "Z", {"a": (DataType.INT, [7] * 100_000)}
        )
        path = tmp_path / "z.cods"
        save_table(table, path)
        assert path.stat().st_size < 2_000
