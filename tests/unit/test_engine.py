"""Unit tests for the EvolutionEngine (dispatch, catalog effects, status)."""

import pytest

from repro.core import EvolutionEngine
from repro.errors import SmoValidationError
from repro.smo import (
    AddColumn,
    Comparison,
    CopyTable,
    CreateTable,
    DropColumn,
    DropTable,
    EvolutionPlan,
    MergeTables,
    PartitionTable,
    RenameColumn,
    RenameTable,
    UnionTables,
    parse_smo,
)
from repro.storage import ColumnSchema, DataType, TableSchema, table_from_python


@pytest.fixture
def engine(fig1_table):
    engine = EvolutionEngine()
    engine.load_table(fig1_table)
    return engine


class TestSimpleOps:
    def test_create_and_drop(self, engine):
        schema = TableSchema("New", (ColumnSchema("x", DataType.INT),))
        engine.apply(CreateTable(schema))
        assert engine.table("New").nrows == 0
        engine.apply(DropTable("New"))
        assert "New" not in engine.catalog

    def test_rename(self, engine):
        engine.apply(RenameTable("R", "Renamed"))
        assert engine.table("Renamed").nrows == 7
        assert "R" not in engine.catalog

    def test_copy_shares_columns(self, engine):
        status = engine.apply(CopyTable("R", "R2"))
        assert engine.table("R2").column("Skill") is engine.table(
            "R"
        ).column("Skill")
        assert status.columns_reused == 3

    def test_union(self, engine):
        engine.apply(CopyTable("R", "R2"))
        engine.apply(UnionTables("R", "R2", "Big"))
        big = engine.table("Big")
        assert big.nrows == 14
        assert "R" not in engine.catalog and "R2" not in engine.catalog

    def test_partition_and_complement(self, engine):
        engine.apply(
            PartitionTable(
                "R", "Grant", "Industrial",
                Comparison("Address", "=", "425 Grant Ave"),
            )
        )
        grant = engine.table("Grant")
        industrial = engine.table("Industrial")
        assert grant.nrows + industrial.nrows == 7
        assert all(r[2] == "425 Grant Ave" for r in grant.to_rows())
        assert all(r[2] != "425 Grant Ave" for r in industrial.to_rows())

    def test_add_column_default_is_o1(self, engine):
        status = engine.apply(
            AddColumn("R", ColumnSchema("Country", DataType.STRING), "US")
        )
        table = engine.table("R")
        assert table.column("Country").to_values() == ["US"] * 7
        assert status.bitmaps_created == 1  # one fill bitmap, O(1)

    def test_add_column_with_values(self, engine):
        values = tuple(range(7))
        engine.apply(
            AddColumn(
                "R", ColumnSchema("Num", DataType.INT), values=values
            )
        )
        assert engine.table("R").column("Num").to_values() == list(values)

    def test_drop_column(self, engine):
        engine.apply(DropColumn("R", "Address"))
        assert engine.table("R").column_names == ("Employee", "Skill")

    def test_rename_column(self, engine):
        engine.apply(RenameColumn("R", "Skill", "Expertise"))
        assert engine.table("R").column_names == (
            "Employee", "Expertise", "Address",
        )

    def test_validation_happens_before_dispatch(self, engine):
        with pytest.raises(SmoValidationError):
            engine.apply(DropTable("Nope"))
        assert len(engine.history) == 0


class TestDecomposeMergePaths:
    def test_sql_like_roundtrip(self, engine, fig1_decomposed):
        engine.apply_sql_like(
            "DECOMPOSE TABLE R INTO S (Employee, Skill), "
            "T (Employee, Address)"
        )
        s_rows, t_rows = fig1_decomposed
        assert engine.table("S").to_rows() == s_rows
        assert engine.table("T").sorted_rows() == t_rows
        assert "R" not in engine.catalog

    def test_merge_strategy_detection(self, engine):
        engine.apply_sql_like(
            "DECOMPOSE TABLE R INTO S (Employee, Skill), "
            "T (Employee, Address)"
        )
        op = MergeTables("S", "T", "R")
        assert engine.choose_merge_strategy(op) == "kfk-right"

    def test_merge_strategy_left_keyed(self):
        engine = EvolutionEngine()
        engine.load_table(
            table_from_python(
                "S",
                {"J": (DataType.INT, [1, 2]), "A": (DataType.INT, [5, 6])},
                primary_key=("J",),
            )
        )
        engine.load_table(
            table_from_python(
                "T",
                {"J": (DataType.INT, [1, 1, 2]), "B": (DataType.INT, [7, 8, 9])},
            )
        )
        op = MergeTables("S", "T", "R")
        assert engine.choose_merge_strategy(op) == "kfk-left"
        engine.apply(op)
        assert engine.table("R").schema.column_names == ("J", "A", "B")
        assert engine.table("R").nrows == 3

    def test_merge_strategy_general(self):
        engine = EvolutionEngine()
        engine.load_table(
            table_from_python(
                "S", {"J": (DataType.INT, [1, 1]), "A": (DataType.INT, [5, 6])}
            )
        )
        engine.load_table(
            table_from_python(
                "T", {"J": (DataType.INT, [1, 1]), "B": (DataType.INT, [7, 8])}
            )
        )
        op = MergeTables("S", "T", "R")
        assert engine.choose_merge_strategy(op) == "general"
        engine.apply(op)
        assert engine.table("R").nrows == 4

    def test_kfk_integrity_fallback_to_general(self):
        # T is keyed by J but S has a dangling key -> general algorithm.
        engine = EvolutionEngine()
        engine.load_table(
            table_from_python(
                "S", {"J": (DataType.INT, [1, 9]), "A": (DataType.INT, [5, 6])}
            )
        )
        engine.load_table(
            table_from_python(
                "T",
                {"J": (DataType.INT, [1, 2]), "B": (DataType.INT, [7, 8])},
                primary_key=("J",),
            )
        )
        engine.apply(MergeTables("S", "T", "R"))
        assert engine.table("R").to_rows() == [(1, 5, 7)]


class TestPlansAndScripts:
    def test_apply_plan_validates_first(self, engine):
        plan = EvolutionPlan([DropTable("R"), DropTable("R")])
        with pytest.raises(SmoValidationError):
            engine.apply_plan(plan)
        # Nothing executed: R still present.
        assert "R" in engine.catalog

    def test_apply_script(self, engine):
        statuses = engine.apply_script(
            """
            COPY TABLE R TO R2;
            DROP COLUMN Address FROM R2;
            RENAME TABLE R2 TO Slim
            """
        )
        assert len(statuses) == 3
        assert engine.table("Slim").column_names == ("Employee", "Skill")

    def test_history_records_everything(self, engine):
        engine.apply_script("COPY TABLE R TO A; DROP TABLE A")
        statements = [entry.statement for entry in engine.history]
        assert statements == ["COPY TABLE R TO A", "DROP TABLE A"]

    def test_history_replay_reproduces_state(self, engine, fig1_table):
        engine.apply_script(
            """
            DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address);
            MERGE TABLES S, T INTO R2;
            RENAME TABLE R2 TO Final
            """
        )
        fresh = EvolutionEngine()
        fresh.load_table(fig1_table)
        engine.history.replay(fresh)
        assert fresh.catalog.table_names() == engine.catalog.table_names()
        assert fresh.table("Final").same_content(engine.table("Final"))

    def test_status_listener(self, engine):
        seen = []
        engine.subscribe(lambda event: seen.append(event.step))
        engine.apply(CopyTable("R", "R9"))
        assert "column reuse" in seen
