"""Tests for compressed-domain querying and integrity verification."""

import numpy as np
import pytest

from repro.core.query import (
    count_where,
    group_count,
    positions_where,
    select_where,
    value_exists,
)
from repro.smo import And, Comparison, Not, Or
from repro.storage import DataType, table_from_python
from repro.storage.verify import (
    VerificationReport,
    verify_catalog,
    verify_column,
    verify_table,
)


@pytest.fixture
def table():
    return table_from_python(
        "Q",
        {
            "city": (DataType.STRING, ["SF", "NY", "SF", "LA", "NY", "SF"]),
            "pop": (DataType.INT, [8, 19, 8, 12, 19, 9]),
        },
    )


class TestQuery:
    def test_count_where(self, table):
        assert count_where(table, Comparison("city", "=", "SF")) == 3
        assert count_where(table, Comparison("pop", ">", 10)) == 3
        assert count_where(
            table,
            And(Comparison("city", "=", "NY"), Comparison("pop", "=", 19)),
        ) == 2

    def test_select_where(self, table):
        rows = select_where(table, Comparison("city", "=", "SF"))
        assert rows == [("SF", 8), ("SF", 8), ("SF", 9)]

    def test_select_where_projection(self, table):
        rows = select_where(
            table, Comparison("pop", ">=", 12), attrs=["city"]
        )
        assert sorted(rows) == [("LA",), ("NY",), ("NY",)]

    def test_select_where_empty(self, table):
        assert select_where(table, Comparison("city", "=", "ZZ")) == []

    def test_positions_where(self, table):
        positions = positions_where(
            table, Or(Comparison("city", "=", "LA"), Comparison("pop", "=", 9))
        )
        assert positions.tolist() == [3, 5]

    def test_group_count(self, table):
        assert group_count(table, "city") == {"SF": 3, "NY": 2, "LA": 1}

    def test_value_exists(self, table):
        assert value_exists(table, "city", "SF")
        assert not value_exists(table, "city", "Boston")

    def test_query_survives_evolution(self, table):
        """Bitmaps stay queryable after a data-level evolution."""
        from repro.core import EvolutionEngine
        from repro.smo import parse_smo

        engine = EvolutionEngine()
        engine.load_table(table)
        engine.apply(
            parse_smo("PARTITION TABLE Q INTO West, East WHERE city = 'SF'")
        )
        west = engine.table("West")
        assert count_where(west, Comparison("pop", "=", 8)) == 2
        assert group_count(west, "city") == {"SF": 3}

    def test_predicate_validation(self, table):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            count_where(table, Comparison("nope", "=", 1))


class TestVerify:
    def test_clean_table_passes(self, table):
        report = verify_table(table)
        assert report.ok
        assert str(report) == "ok"

    def test_overlapping_bitmaps_detected(self, table):
        column = table.column("city")
        codec = type(column.bitmaps[0])
        column.bitmaps[0] = codec.from_positions([0, 1], table.nrows)
        report = verify_column(column)
        assert not report.ok
        assert any("multiple values" in v for v in report.violations)

    def test_uncovered_rows_detected(self, table):
        column = table.column("city")
        codec = type(column.bitmaps[0])
        column.bitmaps[0] = codec.zeros(table.nrows)
        report = verify_column(column)
        assert any("no value" in v for v in report.violations)

    def test_wrong_length_detected(self, table):
        column = table.column("pop")
        codec = type(column.bitmaps[0])
        column.bitmaps[0] = codec.zeros(3)
        report = verify_column(column)
        assert any("bits" in v for v in report.violations)

    def test_key_violation_detected(self):
        bad = table_from_python(
            "K",
            {"a": (DataType.INT, [1, 1]), "b": (DataType.INT, [2, 3])},
            primary_key=("a",),
        )
        report = verify_table(bad)
        assert any("duplicate" in v for v in report.violations)

    def test_catalog_verification(self, table):
        from repro.storage import Catalog

        catalog = Catalog()
        catalog.create(table)
        assert verify_catalog(catalog).ok

    def test_all_evolution_outputs_verify(self, fig1_table):
        """Every SMO output satisfies the structural invariants."""
        from repro.core import EvolutionEngine

        engine = EvolutionEngine()
        engine.load_table(fig1_table)
        engine.apply_script(
            """
            DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address);
            MERGE TABLES S, T INTO R;
            COPY TABLE R TO R2;
            ADD COLUMN Country STRING TO R2 DEFAULT 'US';
            PARTITION TABLE R2 INTO A, B WHERE Employee = 'Jones';
            UNION TABLES A, B INTO R3
            """
        )
        report = verify_catalog(engine.catalog)
        assert report.ok, str(report)
