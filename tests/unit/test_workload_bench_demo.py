"""Unit tests for workload generators, the bench harness and the demo."""

import io

import numpy as np
import pytest

from repro.bench.harness import (
    run_decomposition_point,
    run_mergence_point,
    run_table1,
    scaled_distinct_sweep,
    table1_operator_stream,
)
from repro.bench.report import (
    ascii_chart,
    series_table,
    speedup_summary,
    table1_report,
)
from repro.demo.cli import DemoSession, figure1_table
from repro.errors import WorkloadError
from repro.fd import holds, is_key_in_data
from repro.workload import (
    EmployeeWorkload,
    GeneralMergeWorkload,
    SalesStarWorkload,
    make_indices,
    uniform_indices,
    zipf_indices,
)


class TestDistributions:
    def test_uniform_exact_cardinality(self):
        rng = np.random.default_rng(0)
        draws = uniform_indices(1000, 50, rng)
        assert len(np.unique(draws)) == 50
        assert draws.min() == 0 and draws.max() == 49

    def test_zipf_skew(self):
        rng = np.random.default_rng(0)
        draws = zipf_indices(20_000, 100, rng, s=1.3)
        counts = np.bincount(draws, minlength=100)
        assert len(np.unique(draws)) == 100
        assert counts[0] > counts[50] > 0  # rank 1 dominates

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(WorkloadError):
            uniform_indices(5, 10, rng)
        with pytest.raises(WorkloadError):
            zipf_indices(5, 0, rng)
        with pytest.raises(WorkloadError):
            make_indices(10, 5, rng, skew="triangular")


class TestEmployeeWorkload:
    def test_fd_built_in(self):
        table = EmployeeWorkload(500, 40, seed=1).build()
        assert table.nrows == 500
        assert table.column("Employee").distinct_count == 40
        assert holds(table, ["Employee"], ["Address"])

    def test_deterministic(self):
        a = EmployeeWorkload(200, 20).build()
        b = EmployeeWorkload(200, 20).build()
        assert a.same_content(b, ordered=True)

    def test_decomposed_pair(self):
        workload = EmployeeWorkload(300, 25, seed=2)
        left, right = workload.build_decomposed()
        assert left.nrows == 300
        assert right.nrows == 25
        assert is_key_in_data(right, ["Employee"])

    def test_rejects_impossible_cardinality(self):
        with pytest.raises(WorkloadError):
            EmployeeWorkload(10, 100)


class TestGeneralMergeWorkload:
    def test_duplicates_on_both_sides(self):
        left, right = GeneralMergeWorkload(500, 400, 20).build()
        assert not is_key_in_data(left, ["J"])
        assert not is_key_in_data(right, ["J"])
        assert left.column("J").distinct_count == 20


class TestSalesStarWorkload:
    def test_star_to_snowflake_roundtrip(self):
        from repro.core import EvolutionEngine

        workload = SalesStarWorkload(1000, n_products=50, n_categories=8)
        sales, products = workload.build()
        assert sales.nrows == 1000
        assert products.nrows == 50
        engine = EvolutionEngine()
        engine.load_table(sales)
        engine.load_table(products)
        engine.apply(workload.snowflake_op())
        assert engine.table("Category").nrows == 8
        engine.apply(workload.star_op())
        assert engine.table("Product").same_content(
            products.renamed("Product")
        )


class TestHarness:
    def test_scaled_sweep_keeps_ratios(self):
        sweep = scaled_distinct_sweep(10_000_000)
        assert sweep == [100, 1_000, 10_000, 100_000, 1_000_000]
        small = scaled_distinct_sweep(100_000)
        assert small[0] == 2  # 100 * 1e5/1e7, floored at 2
        assert all(s <= 100_000 for s in small)

    def test_decomposition_point_verifies(self):
        result = run_decomposition_point("D", 2_000, 50)
        assert result.figure == "3a"
        assert result.seconds > 0
        assert result.distinct == 50

    def test_mergence_point_verifies(self):
        result = run_mergence_point("D", 2_000, 50)
        assert result.figure == "3b"
        assert result.seconds > 0

    def test_table1_stream_covers_all_operators(self):
        stream = table1_operator_stream(500)
        names = [name for name, _setup, _op in stream]
        assert len(names) == 11
        assert "DECOMPOSE TABLE" in names and "MERGE TABLES" in names

    def test_run_table1_small(self):
        rows = run_table1(nrows=500, series=("D",))
        assert len(rows) == 11
        assert all("D" in row for row in rows)


class TestReport:
    @pytest.fixture
    def results(self):
        from repro.bench.harness import BenchResult

        return [
            BenchResult("3a", "D", "CODS", 1000, 10, 0.001),
            BenchResult("3a", "D", "CODS", 1000, 100, 0.002),
            BenchResult("3a", "C", "Row", 1000, 10, 0.5),
            BenchResult("3a", "C", "Row", 1000, 100, 0.6),
        ]

    def test_series_table(self, results):
        text = series_table(results, "Title")
        assert "Title" in text
        assert "D" in text and "C" in text
        assert "10" in text and "100" in text

    def test_speedup_summary(self, results):
        text = speedup_summary(results)
        assert "D vs C" in text
        assert "500x" in text or "300x" in text

    def test_ascii_chart(self, results):
        chart = ascii_chart(results)
        assert "D=D" in chart or "C=C" in chart

    def test_table1_report(self):
        rows = [{"operator": "DROP TABLE", "rows": 10, "D": 0.001, "C+I": 0.1,
                 "M": 0.05}]
        text = table1_report(rows)
        assert "DROP TABLE" in text


class TestDemo:
    def make_session(self):
        out = io.StringIO()
        return DemoSession(out=out), out

    def test_figure1_table(self):
        table = figure1_table()
        assert table.nrows == 7
        assert table.column("Employee").distinct_count == 4

    def test_full_walkthrough(self):
        session, out = self.make_session()
        session.run_example_walkthrough()
        text = out.getvalue()
        assert "distinction" in text
        assert "filtering" in text
        assert "column reuse" in text
        assert "Jones" in text
        assert "v1: DECOMPOSE TABLE R" in text

    def test_unknown_command(self):
        session, out = self.make_session()
        assert session.handle("frobnicate") is True
        assert "unknown command" in out.getvalue()

    def test_quit(self):
        session, _out = self.make_session()
        assert session.handle("quit") is False

    def test_error_reported_not_raised(self):
        session, out = self.make_session()
        session.handle("display Nope")
        assert "error:" in out.getvalue()

    def test_queue_and_execute(self):
        session, out = self.make_session()
        session.handle("example")
        session.handle("queue")
        assert "no queued operators" in out.getvalue()
        session.handle(
            "add DECOMPOSE TABLE R INTO S (Employee, Skill), "
            "T (Employee, Address)"
        )
        session.handle("queue")
        session.handle("execute")
        session.handle("tables")
        text = out.getvalue()
        assert "S(" in text and "T(" in text

    def test_load_csv_command(self, tmp_path, fig1_table):
        from repro.storage import save_csv

        path = tmp_path / "r.csv"
        save_csv(fig1_table, path)
        session, out = self.make_session()
        session.handle(f"load {path} Imported")
        assert "loaded 7 rows into Imported" in out.getvalue()

    def test_script_mode(self, tmp_path):
        from repro.demo.cli import main

        script = tmp_path / "evolve.smo"
        script.write_text(
            "CREATE TABLE W (a INT, b STRING)\n"
            "ADD COLUMN c INT TO W DEFAULT 1\n"
        )
        assert main(["--script", str(script)]) == 0

    def test_example_mode(self):
        from repro.demo.cli import main

        assert main(["--example"]) == 0
