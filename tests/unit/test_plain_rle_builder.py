"""Tests for the plain codec, the RLE vector and the streaming builder."""

import numpy as np
import pytest

from repro.bitmap import PlainBitmap, RLEVector, WAHBitmap, WAHBuilder
from repro.bitmap.codecs import codec_names, get_codec, register_codec
from repro.errors import BitmapError, SerializationError


class TestPlainBitmap:
    def test_interface_parity_with_wah(self):
        rng = np.random.default_rng(0)
        dense = rng.random(200) < 0.4
        plain = PlainBitmap.from_dense(dense)
        wah = WAHBitmap.from_dense(dense)
        assert plain.count() == wah.count()
        assert plain.first_set() == wah.first_set()
        assert np.array_equal(plain.positions(), wah.positions())
        ps, pe = plain.one_intervals()
        ws, we = wah.one_intervals()
        assert np.array_equal(ps, ws) and np.array_equal(pe, we)
        picks = np.sort(rng.choice(200, 50, replace=False))
        assert np.array_equal(
            plain.select(picks).to_dense(), wah.select(picks).to_dense()
        )

    def test_logical_ops(self):
        a = PlainBitmap.from_dense([1, 0, 1, 0])
        b = PlainBitmap.from_dense([1, 1, 0, 0])
        assert (a & b).to_dense().tolist() == [True, False, False, False]
        assert (a | b).to_dense().tolist() == [True, True, True, False]
        assert (a ^ b).to_dense().tolist() == [False, True, True, False]
        assert a.invert().to_dense().tolist() == [False, True, False, True]

    def test_serialization(self):
        bm = PlainBitmap.from_dense([1, 0, 1, 1, 0])
        assert PlainBitmap.from_bytes(bm.to_bytes()) == bm
        with pytest.raises(SerializationError):
            PlainBitmap.from_bytes(b"NOPE" + b"\0" * 10)

    def test_from_positions_range_check(self):
        with pytest.raises(BitmapError):
            PlainBitmap.from_positions([7], 7)

    def test_concat(self):
        a = PlainBitmap.from_dense([1, 0])
        b = PlainBitmap.from_dense([0, 1])
        assert a.concat(b).to_dense().tolist() == [True, False, False, True]


class TestCodecRegistry:
    def test_lookup(self):
        assert get_codec("wah") is WAHBitmap
        assert get_codec("plain") is PlainBitmap

    def test_unknown(self):
        with pytest.raises(BitmapError):
            get_codec("lz4")

    def test_names(self):
        assert set(codec_names()) >= {"wah", "plain"}

    def test_register_custom(self):
        class Fake:
            pass

        register_codec("fake-test", Fake)
        try:
            assert get_codec("fake-test") is Fake
        finally:
            from repro.bitmap import codecs

            codecs._CODECS.pop("fake-test")


class TestRLEVector:
    def test_roundtrip(self):
        values = [3, 3, 3, 1, 1, 2, 3, 3]
        vector = RLEVector.from_values(values)
        assert vector.decode().tolist() == values
        assert vector.run_count == 4
        assert vector.nrows == 8

    def test_empty(self):
        vector = RLEVector.from_values([])
        assert vector.nrows == 0
        assert vector.run_count == 0
        assert vector.decode().tolist() == []

    def test_positions_of(self):
        vector = RLEVector.from_values([5, 5, 2, 5, 2, 2])
        assert vector.positions_of(5).tolist() == [0, 1, 3]
        assert vector.positions_of(2).tolist() == [2, 4, 5]
        assert vector.positions_of(99).tolist() == []

    def test_get(self):
        vector = RLEVector.from_values([4, 4, 7, 9])
        assert [vector.get(i) for i in range(4)] == [4, 4, 7, 9]
        with pytest.raises(BitmapError):
            vector.get(4)

    def test_distinct_first_positions(self):
        vector = RLEVector.from_values([7, 7, 3, 7, 3, 9])
        values, firsts = vector.distinct_first_positions()
        assert values.tolist() == [3, 7, 9]
        assert firsts.tolist() == [2, 0, 5]

    def test_select(self):
        vector = RLEVector.from_values([1, 1, 2, 2, 3, 3])
        out = vector.select(np.array([0, 2, 3, 5]))
        assert out.decode().tolist() == [1, 2, 2, 3]

    def test_concat_merges_boundary_run(self):
        a = RLEVector.from_values([1, 1, 2])
        b = RLEVector.from_values([2, 2, 3])
        combined = a.concat(b)
        assert combined.decode().tolist() == [1, 1, 2, 2, 2, 3]
        assert combined.run_count == 3

    def test_serialization(self):
        vector = RLEVector.from_values([1, 1, 5, 5, 5, 2])
        assert RLEVector.from_bytes(vector.to_bytes()) == vector

    def test_sorted_column_compresses_well(self):
        sorted_vals = np.repeat(np.arange(100), 1000)
        vector = RLEVector.from_values(sorted_vals)
        assert vector.run_count == 100
        assert vector.nbytes < sorted_vals.nbytes / 50

    def test_invalid_runs_rejected(self):
        with pytest.raises(BitmapError):
            RLEVector(np.array([1]), np.array([0]))
        with pytest.raises(BitmapError):
            RLEVector(np.array([1, 2]), np.array([1]))


class TestWAHBuilder:
    def test_append_bits(self):
        builder = WAHBuilder()
        for bit in [1, 0, 1, 1, 0]:
            builder.append_bit(bit)
        assert builder.build().to_dense().tolist() == [
            True, False, True, True, False,
        ]

    def test_append_runs(self):
        builder = WAHBuilder()
        builder.append_run(0, 100)
        builder.append_run(1, 50)
        builder.append_run(0, 10)
        bm = builder.build()
        assert bm.nbits == 160
        assert bm.count() == 50
        assert bm.first_set() == 100

    def test_append_dense_chunks(self):
        rng = np.random.default_rng(1)
        chunks = [rng.random(37) < 0.5 for _ in range(5)]
        builder = WAHBuilder()
        for chunk in chunks:
            builder.append_dense(chunk)
        expected = np.concatenate(chunks)
        assert np.array_equal(builder.build().to_dense(), expected)
        assert builder.build() == WAHBitmap.from_dense(expected)

    def test_append_positions(self):
        builder = WAHBuilder()
        builder.append_positions([1, 3], 5)
        builder.append_positions([0], 5)
        bm = builder.build()
        assert bm.positions().tolist() == [1, 3, 5]
        assert bm.nbits == 10

    def test_adjacent_runs_merge(self):
        builder = WAHBuilder()
        builder.append_run(1, 10)
        builder.append_run(1, 10)
        bm = builder.build()
        starts, ends = bm.one_intervals()
        assert starts.tolist() == [0] and ends.tolist() == [20]

    def test_negative_run_rejected(self):
        with pytest.raises(BitmapError):
            WAHBuilder().append_run(1, -1)

    def test_position_out_of_chunk(self):
        with pytest.raises(BitmapError):
            WAHBuilder().append_positions([5], 5)
