"""Tests for benchmark result exporters."""

from repro.bench.exporters import load_series_csv, series_csv, table1_csv
from repro.bench.harness import BenchResult


def test_series_csv_roundtrip(tmp_path):
    results = [
        BenchResult("3a", "D", "CODS", 1000, 10, 0.001),
        BenchResult("3a", "C", "Row", 1000, 10, 0.5),
    ]
    path = tmp_path / "series.csv"
    series_csv(results, path)
    loaded = load_series_csv(path)
    assert len(loaded) == 2
    assert loaded[0]["series"] == "D"
    assert loaded[0]["seconds"] == 0.001
    assert loaded[1]["rows"] == 1000


def test_table1_csv(tmp_path):
    rows = [
        {"operator": "DROP TABLE", "rows": 100, "D": 0.001, "C+I": 0.1,
         "M": 0.05},
    ]
    path = tmp_path / "tab1.csv"
    table1_csv(rows, path)
    text = path.read_text()
    assert "DROP TABLE" in text
    assert "0.001" in text
    assert text.splitlines()[0] == "operator,rows,D,C+I,M"


def test_aggregate_json_roundtrip(tmp_path):
    from repro.bench.exporters import aggregate_json, load_aggregate_json

    payload = {
        "benchmark": "aggregate",
        "rows": 1000,
        "min_speedup": 3.0,
        "mutable": {"grouped_count": {"speedup": 4.5, "groups": 32}},
    }
    path = tmp_path / "BENCH_aggregate.json"
    aggregate_json(payload, path)
    assert load_aggregate_json(path) == payload
