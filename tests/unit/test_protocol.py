"""Unit tests for the wire protocol layer (`repro.server.protocol`):
framing, checksums, size limits, the shared value codec and the typed
error mapping — all off-socket, over in-memory readers."""

from __future__ import annotations

import datetime
import io
import struct
import zlib

import pytest

from repro.errors import (
    CodsError,
    NetworkError,
    ProtocolError,
    SqlSyntaxError,
    TransactionError,
)
from repro.server.protocol import (
    FRAME_PREFIX,
    MAGIC,
    PREAMBLE,
    PREAMBLE_SIZE,
    VERSION,
    check_preamble,
    decode_row,
    decode_rows,
    encode_frame,
    encode_row,
    encode_rows,
    error_class,
    error_payload,
    raise_remote,
    read_frame,
    recv_exactly,
)


class TestPreamble:
    def test_own_preamble_passes(self):
        check_preamble(PREAMBLE)

    def test_size_is_magic_plus_version(self):
        assert len(PREAMBLE) == PREAMBLE_SIZE == 6
        assert PREAMBLE[:4] == MAGIC

    def test_wrong_magic_is_refused(self):
        with pytest.raises(ProtocolError, match="not a CODS wire"):
            check_preamble(b"CODW" + struct.pack("<H", VERSION))

    def test_future_version_is_refused(self):
        with pytest.raises(ProtocolError, match="version 99"):
            check_preamble(MAGIC + struct.pack("<H", 99))

    def test_short_preamble_is_refused(self):
        with pytest.raises(ProtocolError):
            check_preamble(b"CO")


class TestFrames:
    def test_round_trip(self):
        payload = {"cmd": "execute", "sql": "SELECT 1", "params": None}
        frame = encode_frame(payload)
        decoded, nbytes = read_frame(io.BytesIO(frame))
        assert decoded == payload
        assert nbytes == len(frame)

    def test_corrupt_byte_fails_the_checksum(self):
        frame = bytearray(encode_frame({"cmd": "hello"}))
        frame[-1] ^= 0xFF
        with pytest.raises(ProtocolError, match="checksum"):
            read_frame(io.BytesIO(bytes(frame)))

    def test_oversized_frame_refused_before_payload_read(self):
        # A huge declared length must be rejected from the prefix alone
        # — the reader never tries to allocate or consume the payload.
        prefix = struct.pack("<II", 2**30, 0)
        with pytest.raises(ProtocolError, match="exceeds"):
            read_frame(io.BytesIO(prefix), max_frame=1024)

    def test_sender_enforces_the_same_limit(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * 2048}, max_frame=1024)

    def test_non_object_payload_is_refused(self):
        body = b"[1, 2, 3]"
        frame = struct.pack("<II", len(body), zlib.crc32(body))
        with pytest.raises(ProtocolError, match="not an object"):
            read_frame(io.BytesIO(frame + body))

    def test_eof_mid_frame_is_a_network_error(self):
        frame = encode_frame({"cmd": "hello"})
        with pytest.raises(NetworkError, match="closed by peer"):
            read_frame(io.BytesIO(frame[: FRAME_PREFIX + 2]))

    def test_recv_exactly_reports_partial_count(self):
        with pytest.raises(NetworkError, match="2/4"):
            recv_exactly(io.BytesIO(b"ab"), 4)


class TestValueCodec:
    def test_json_native_values_pass_through(self):
        row = (1, "a", None, 2.5)
        assert decode_row(encode_row(row)) == row

    def test_dates_survive_the_wire(self):
        row = (datetime.date(2010, 9, 13), "vldb")
        encoded = encode_row(row)
        assert encoded[0] == {"__date__": "2010-09-13"}
        assert decode_row(encoded) == row

    def test_rows_round_trip_as_tuples(self):
        rows = [(1, "a"), (2, "b")]
        assert decode_rows(encode_rows(rows)) == rows


class TestErrorMapping:
    def test_payload_carries_class_name_and_message(self):
        payload = error_payload(SqlSyntaxError("bad token"))
        assert payload == {
            "ok": False, "error": "SqlSyntaxError", "message": "bad token",
        }

    def test_known_classes_round_trip(self):
        for cls in (SqlSyntaxError, TransactionError, NetworkError):
            assert error_class(cls.__name__) is cls

    def test_unknown_names_degrade_to_the_base_class(self):
        assert error_class("ValueError") is CodsError
        assert error_class("no_such_thing") is CodsError
        # Module attributes that are not CodsError subclasses must not
        # leak out either — the name lookup is class-restricted.
        assert error_class("annotations") is CodsError

    def test_raise_remote_rebuilds_the_original(self):
        with pytest.raises(TransactionError, match="no transaction"):
            raise_remote(error_payload(TransactionError("no transaction")))
