"""Docs freshness: the prose must not drift from the repository.

Fails when a Markdown link in ``README.md``/``docs/*.md`` points at a
missing file, when a documented command references a script or module
that no longer exists, or when the format documentation falls behind
the code's format version.
"""

from __future__ import annotations

import importlib.util
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
DOC_FILES = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md")],
    key=lambda path: path.name,
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")
_FENCE = re.compile(r"```(?:sh|bash|console)?\n(.*?)```", re.DOTALL)
_SCRIPT = re.compile(r"python\s+(\S+\.py)")
_MODULE = re.compile(r"python\s+-m\s+([\w.]+)")


def doc_ids():
    return [path.relative_to(REPO).as_posix() for path in DOC_FILES]


@pytest.fixture(params=DOC_FILES, ids=doc_ids())
def doc(request):
    path = request.param
    assert path.exists(), f"missing doc file {path}"
    return path


class TestLinks:
    def test_relative_links_resolve(self, doc):
        text = doc.read_text()
        broken = []
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if not (doc.parent / target).resolve().exists():
                broken.append(target)
        assert not broken, f"{doc.name}: broken links {broken}"

    def test_readme_and_architecture_link_each_other(self):
        readme = (REPO / "README.md").read_text()
        architecture = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        assert "docs/ARCHITECTURE.md" in readme
        assert "README.md" in architecture


class TestCommands:
    def test_referenced_scripts_exist(self, doc):
        missing = []
        for block in _FENCE.findall(doc.read_text()):
            for script in _SCRIPT.findall(block):
                if not (REPO / script).exists():
                    missing.append(script)
        assert not missing, f"{doc.name}: missing scripts {missing}"

    def test_referenced_modules_importable(self, doc, monkeypatch):
        monkeypatch.syspath_prepend(str(REPO / "src"))
        missing = []
        for block in _FENCE.findall(doc.read_text()):
            for module in _MODULE.findall(block):
                if module == "pytest":
                    continue
                if importlib.util.find_spec(module) is None:
                    missing.append(module)
        assert not missing, f"{doc.name}: unimportable modules {missing}"

    def test_readme_quotes_the_tier1_command(self):
        # ROADMAP.md is the source of truth for the tier-1 invocation.
        readme = (REPO / "README.md").read_text()
        assert "python -m pytest -x -q" in readme

    def test_readme_mentions_console_script(self):
        # The cods-demo entry point comes from pyproject.toml.
        pyproject = (REPO / "pyproject.toml").read_text()
        assert "cods-demo" in pyproject
        assert "cods-demo" in (REPO / "README.md").read_text()


class TestFormatDocs:
    def test_delta_format_version_is_current(self):
        import repro.storage.filefmt as filefmt

        text = (REPO / "docs" / "delta-format.md").read_text()
        assert f"format version {filefmt._DELTA_VERSION}" in text, (
            "docs/delta-format.md does not document the current .delta "
            f"format version ({filefmt._DELTA_VERSION})"
        )
        assert f"format version {filefmt._VERSION}" in text

    def test_delta_format_documents_payload_fields(self):
        text = (REPO / "docs" / "delta-format.md").read_text()
        for field in (
            "epoch", "columns", "insert_epochs", "deleted_main",
            "deleted_delta", "index",
        ):
            assert f"`{field}`" in text, f"payload field {field} undocumented"

    def test_architecture_names_the_real_modules(self):
        text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        for module in (
            "repro.bitmap", "repro.storage", "repro.delta", "repro.core",
            "repro.smo", "repro.sql", "repro.exec", "repro.db",
            "repro.demo", "repro.workload", "repro.bench", "repro.wal",
            "repro.server", "repro.client",
        ):
            spec_dir = REPO / "src" / module.replace(".", "/")
            assert spec_dir.is_dir(), f"{module} vanished from src/"
            assert module in text, f"ARCHITECTURE.md does not map {module}"

    def test_architecture_documents_the_rename_invariant(self):
        text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        assert "RENAME TABLE" in text and "RENAME COLUMN" in text
        assert "metadata-only" in text


class TestApiDocs:
    def test_readme_quickstarts_on_the_facade(self):
        readme = (REPO / "README.md").read_text()
        assert "from repro.db import Database" in readme
        assert "db.transaction" in readme

    def test_migration_doc_maps_the_old_entry_points(self):
        text = (REPO / "docs" / "migration.md").read_text()
        for old in (
            "EvolutionEngine", "SqlExecutor", "MutableColumnAdapter",
            "save_engine", "snapshot_scope",
        ):
            assert old in text, f"migration.md does not map {old}"
        assert "Database" in text

    def test_architecture_documents_the_api_layer(self):
        text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        assert "## The API layer: `repro.db`" in text
        assert "epoch vector" in text
        assert "register_backend" in text

    def test_registry_backends_are_documented(self):
        import repro.db as db

        architecture = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        for backend in db.available_backends():
            assert f"`{backend}`" in architecture, (
                f"ARCHITECTURE.md does not document backend {backend!r}"
            )


class TestObservabilityDocs:
    def test_architecture_documents_the_obs_layer(self):
        text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        assert "## Observability: `repro.obs`" in text
        assert "EXPLAIN" in text
        assert "observability.md" in text

    def test_metric_catalog_covers_the_exported_names(self):
        # Every metric a fresh database exports after a tiny workload
        # must appear in the observability doc's catalog.
        from repro.db import Database

        text = (REPO / "docs" / "observability.md").read_text()
        db = Database()
        db.execute("CREATE TABLE d (k INT, KEY(k))")
        db.execute("INSERT INTO d VALUES (1)")
        db.execute("SELECT * FROM d")
        # An aggregate query so the exec.agg_* counters appear too.
        db.execute("SELECT k, COUNT(*) FROM d GROUP BY k")
        with db.transaction() as tx:
            tx.execute("SELECT * FROM d")
        undocumented = [
            name for name in db.metrics() if f"`{name}`" not in text
        ]
        assert not undocumented, (
            f"observability.md catalog is missing {undocumented}"
        )

    def test_span_schema_names_the_real_columns(self):
        from repro.obs import TRACE_COLUMNS

        text = (REPO / "docs" / "observability.md").read_text()
        for column in TRACE_COLUMNS:
            assert column in text, (
                f"observability.md does not mention trace column "
                f"{column!r}"
            )

    def test_obs_overhead_bench_is_wired(self):
        assert (REPO / "benchmarks" / "bench_obs_overhead.py").exists()
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "bench_obs_overhead.py" in ci


class TestDurabilityDocs:
    def test_wal_format_doc_covers_the_frame_layout(self):
        text = (REPO / "docs" / "wal-format.md").read_text()
        for term in ("CODW", "CRC-32", "base LSN", "fsync"):
            assert term in text, f"wal-format.md does not explain {term!r}"
        assert "torn" in text.lower(), "torn-tail handling undocumented"

    def test_wal_format_doc_names_every_record_type(self):
        # The table of record payloads must keep up with what recovery
        # actually dispatches on (see repro.wal.recovery).
        text = (REPO / "docs" / "wal-format.md").read_text()
        for kind in (
            "insert", "delmain", "deldelta", "update", "compact", "commit",
        ):
            assert f"`{kind}`" in text, f"record type {kind} undocumented"
        assert '"c": 1' in text, "single-frame autocommit undocumented"

    def test_architecture_documents_the_durability_layer(self):
        text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        assert "## Durability: `repro.wal`" in text
        assert "wal-format.md" in text
        assert "crash_point" in text

    def test_wal_metric_catalog_covers_a_durable_catalog(self, tmp_path):
        # Every metric a durable catalog exports after logging,
        # checkpointing and recovering must appear in the catalog.
        from repro.db import Database

        text = (REPO / "docs" / "observability.md").read_text()
        db = Database(tmp_path / "cat", durability="group")
        db.execute("CREATE TABLE d (k INT)")
        db.execute("INSERT INTO d VALUES (1)")
        db.checkpoint()
        try:
            undocumented = [
                name for name in db.metrics() if f"`{name}`" not in text
            ]
        finally:
            db.close(save=False)
        assert not undocumented, (
            f"observability.md catalog is missing {undocumented}"
        )

    def test_wal_commit_bench_is_wired(self):
        assert (REPO / "benchmarks" / "bench_wal_commit.py").exists()
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "bench_wal_commit.py" in ci

    def test_delta_format_documents_the_checkpoint_fields(self):
        text = (REPO / "docs" / "delta-format.md").read_text()
        assert "`wal_lsn`" in text and "`main_file`" in text
        assert "wal-format.md" in text


class TestServerDocs:
    def test_server_doc_covers_the_wire_protocol(self):
        text = (REPO / "docs" / "server.md").read_text()
        for term in ("CODN", "CRC-32", "u32 payload length", "preamble"):
            assert term in text, f"server.md does not explain {term!r}"

    def test_server_doc_names_every_command(self):
        # The command table must keep up with what the server actually
        # dispatches on (see CodsServer._commands).
        text = (REPO / "docs" / "server.md").read_text()
        for cmd in (
            "hello", "execute", "executemany", "fetch", "close_cursor",
            "begin", "commit", "rollback", "metrics", "goodbye",
        ):
            assert f"`{cmd}`" in text, f"command {cmd} undocumented"

    def test_server_doc_explains_errors_and_lifecycle(self):
        text = (REPO / "docs" / "server.md").read_text()
        for term in (
            "SqlSyntaxError", "NetworkError", "AuthenticationError",
            "read-your-writes", "reaper", "Graceful shutdown",
        ):
            assert term in text, f"server.md does not explain {term!r}"

    def test_architecture_documents_the_network_layer(self):
        text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        assert "## The network front end: `repro.server`" in text
        assert "repro.client" in text
        assert "server.md" in text

    def test_readme_quickstarts_the_server(self):
        readme = (REPO / "README.md").read_text()
        assert "python -m repro.server" in readme
        assert "from repro.client import connect" in readme

    def test_server_metric_catalog_covers_a_served_database(self):
        # Every metric a database behind a live server exports must
        # appear in the observability catalog.
        from repro.client import connect
        from repro.db import Database
        from repro.server import CodsServer

        text = (REPO / "docs" / "observability.md").read_text()
        db = Database(backend="mutable")
        server = CodsServer(db, "127.0.0.1", 0)
        server.start()
        try:
            with connect(*server.address) as conn:
                conn.execute("CREATE TABLE d (k INT)")
                conn.execute("INSERT INTO d VALUES (1)")
                undocumented = [
                    name for name in conn.metrics()
                    if f"`{name}`" not in text
                ]
        finally:
            server.stop()
        assert not undocumented, (
            f"observability.md catalog is missing {undocumented}"
        )

    def test_server_bench_and_stress_are_wired(self):
        assert (REPO / "benchmarks" / "bench_server.py").exists()
        assert (REPO / "tests" / "integration" / "test_server.py").exists()
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "bench_server.py" in ci
        assert "test_server.py" in ci


class TestExecutionPipelineDocs:
    def test_architecture_documents_the_batch_pipeline(self):
        text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        assert "## The execution pipeline: `repro.exec`" in text
        for term in (
            "ColumnBatch", "TableBatch", "DeltaBatch", "ValuesBatch",
            "selection bitmap", "scan_batches",
        ):
            assert term in text, (
                f"ARCHITECTURE.md does not explain {term!r}"
            )

    def test_architecture_names_the_batch_kinds_that_exist(self):
        import repro.exec as exec_module

        text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        for name in ("TableBatch", "DeltaBatch", "ValuesBatch"):
            assert hasattr(exec_module, name), f"repro.exec lost {name}"
            assert name in text

    def test_migration_doc_covers_adapter_authors(self):
        text = (REPO / "docs" / "migration.md").read_text()
        assert "scan_batches" in text and "scan_rows" in text
        assert "ValuesBatch" in text
        assert "filter_rows" in text

    def test_vectorized_scan_bench_is_wired(self):
        # The benchmark the execution-pipeline section points at must
        # exist and CI must smoke it alongside the other benches.
        assert (REPO / "benchmarks" / "bench_vectorized_scan.py").exists()
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "bench_vectorized_scan.py" in ci


class TestConcurrencyDocs:
    def test_architecture_documents_the_lock_order(self):
        text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        assert "## Concurrency" in text
        assert "_commit_lock" in text, "lock-order head undocumented"
        assert "writer lock" in text
        assert "read-your-writes" in text
        assert "start_compactor" in text

    def test_migration_doc_covers_the_new_read_semantics(self):
        text = (REPO / "docs" / "migration.md").read_text()
        assert "read-your-writes" in text
        assert "first touch" in text

    def test_wal_format_doc_names_the_update_record(self):
        text = (REPO / "docs" / "wal-format.md").read_text()
        assert "`update`" in text
        assert "`mpos`" in text and "`didx`" in text

    def test_compactor_metrics_are_documented(self):
        # The catalog must cover what a database that actually ran the
        # background compactor exports.
        from repro.db import Database

        text = (REPO / "docs" / "observability.md").read_text()
        db = Database()
        db.execute("CREATE TABLE d (k INT)")
        db.execute("INSERT INTO d VALUES (1)")
        db.start_compactor(interval=0.001)
        db.stop_compactor()
        undocumented = [
            name for name in db.metrics() if f"`{name}`" not in text
        ]
        assert not undocumented, (
            f"observability.md catalog is missing {undocumented}"
        )

    def test_stress_suite_is_wired_into_ci(self):
        assert (
            REPO / "tests" / "integration" / "test_concurrency.py"
        ).exists()
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "pytest-timeout" in ci, "CI lacks the deadlock guard"
        assert "test_concurrency.py" in ci


class TestAggregationDocs:
    def test_architecture_documents_compressed_aggregation(self):
        text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        assert "### Compressed-domain aggregation and statistics" in text
        for term in (
            "choose_aggregate_strategy", "TableStats", "mixed-radix",
            "GroupAccumulator", "table_stats", "live-vid",
            "presorted runs", "bench_aggregate.py",
        ):
            assert term in text, (
                f"ARCHITECTURE.md does not explain {term!r}"
            )

    def test_architecture_names_the_live_probe_guard(self):
        # The fixed range_probe_limit knob was replaced by the
        # statistics-driven distinct-share guard; the doc must describe
        # the rule that exists.
        from repro.delta import RANGE_PROBE_MAX_DISTINCT_SHARE

        text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        assert "range_probe_limit" not in text
        assert "RANGE_PROBE_MAX_DISTINCT_SHARE" in text
        assert str(RANGE_PROBE_MAX_DISTINCT_SHARE) in text

    def test_migration_doc_covers_the_table_stats_hint(self):
        text = (REPO / "docs" / "migration.md").read_text()
        assert "table_stats" in text
        assert "TableStats" in text

    def test_observability_documents_the_strategy_spans(self):
        text = (REPO / "docs" / "observability.md").read_text()
        for term in (
            "`aggregate`", "live-vid enumeration", "streaming dedup",
            "dictionary-order presorted runs", "materialize-and-sort",
        ):
            assert term in text, (
                f"observability.md does not explain {term!r}"
            )

    def test_aggregate_bench_is_wired(self):
        assert (REPO / "benchmarks" / "bench_aggregate.py").exists()
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "bench_aggregate.py" in ci
