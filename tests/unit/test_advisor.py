"""Tests for the evolution cost advisor."""

import pytest

from repro.core.advisor import (
    CostModel,
    Estimate,
    TableStats,
    advise,
    calibrate,
    estimate,
)
from repro.smo import (
    AddColumn,
    CopyTable,
    DecomposeTable,
    DropColumn,
    MergeTables,
    PartitionTable,
    RenameTable,
    UnionTables,
)
from repro.smo.predicate import Comparison
from repro.storage import ColumnSchema, DataType


@pytest.fixture
def stats():
    return {
        "R": TableStats(
            1_000_000,
            {"Employee": 10_000, "Skill": 100, "Address": 50},
        )
    }


DECOMPOSE = DecomposeTable(
    "R", "S", ("Employee", "Skill"), "T", ("Employee", "Address")
)


class TestEstimates:
    def test_decompose_prefers_data_level(self, stats):
        result = estimate(DECOMPOSE, stats)
        assert result.data_level_seconds < result.query_level_seconds
        assert result.speedup > 10

    def test_data_level_scales_with_distinct_not_rows(self):
        small_keys = {
            "R": TableStats(1_000_000, {"K": 100, "P": 10, "D": 10})
        }
        many_keys = {
            "R": TableStats(1_000_000, {"K": 500_000, "P": 10, "D": 10})
        }
        op = DecomposeTable("R", "S", ("K", "P"), "T", ("K", "D"))
        cheap = estimate(op, small_keys)
        costly = estimate(op, many_keys)
        assert cheap.data_level_seconds < costly.data_level_seconds
        # Query level barely changes: it scans rows either way.
        ratio = (
            costly.query_level_seconds / cheap.query_level_seconds
        )
        assert ratio < 2

    def test_metadata_ops_are_free_everywhere(self, stats):
        result = estimate(RenameTable("R", "R2"), stats)
        assert result.data_level_seconds < 1e-3
        assert result.query_level_seconds < 1e-3

    def test_copy_is_free_only_at_data_level(self, stats):
        result = estimate(CopyTable("R", "R2"), stats)
        assert result.data_level_seconds < 1e-3
        assert result.query_level_seconds > 0.1

    def test_add_column_default_is_o1_at_data_level(self, stats):
        op = AddColumn("R", ColumnSchema("c", DataType.INT), 0)
        result = estimate(op, stats)
        assert result.data_level_seconds < 1e-3
        assert result.speedup > 100

    def test_indexes_increase_query_cost(self, stats):
        with_idx = estimate(DECOMPOSE, stats, with_indexes=True)
        without = estimate(DECOMPOSE, stats, with_indexes=False)
        assert with_idx.query_level_seconds > without.query_level_seconds


class TestAdvise:
    def test_stream_propagates_stats(self, stats):
        ops = [
            DECOMPOSE,
            MergeTables("S", "T", "R2", ("Employee",)),
            PartitionTable("R2", "A", "B", Comparison("Skill", "=", "x")),
            UnionTables("A", "B", "R3"),
            DropColumn("R3", "Address"),
        ]
        recommendation = advise(ops, stats)
        assert len(recommendation.estimates) == 5
        assert recommendation.total_data_level > 0
        assert recommendation.total_query_level > (
            recommendation.total_data_level
        )
        assert "column store" in recommendation.verdict
        text = recommendation.describe()
        assert "DecomposeTable" in text and "verdict" in text

    def test_metadata_only_stream_is_neutral(self, stats):
        recommendation = advise([RenameTable("R", "R2")], stats)
        assert "similar" in recommendation.verdict

    def test_table_stats_of_live_table(self, fig1_table):
        extracted = TableStats.of(fig1_table)
        assert extracted.nrows == 7
        assert extracted.distinct["Employee"] == 4

    def test_estimate_speedup_handles_zero(self):
        item = Estimate("X", 0.0, 1.0)
        assert item.speedup == float("inf")


class TestCalibration:
    def test_calibrate_returns_positive_model(self):
        model = calibrate(sample_rows=3_000)
        assert isinstance(model, CostModel)
        assert model.per_bitmap_op > 0
        assert model.per_row_scan > 0

    def test_calibrated_model_orders_correctly(self, stats):
        model = calibrate(sample_rows=3_000)
        result = estimate(DECOMPOSE, stats, model)
        assert result.data_level_seconds < result.query_level_seconds
