"""Shared fixtures: the paper's running example and random-table factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import DataType, Table, table_from_python


@pytest.fixture
def fig1_table() -> Table:
    """The exact table R of the paper's Figure 1 (7 rows)."""
    return table_from_python(
        "R",
        {
            "Employee": (
                DataType.STRING,
                ["Jones", "Jones", "Roberts", "Ellis", "Jones", "Ellis",
                 "Harrison"],
            ),
            "Skill": (
                DataType.STRING,
                ["Typing", "Shorthand", "Light Cleaning", "Alchemy",
                 "Whittling", "Juggling", "Light Cleaning"],
            ),
            "Address": (
                DataType.STRING,
                ["425 Grant Ave", "425 Grant Ave", "747 Industrial Way",
                 "747 Industrial Way", "425 Grant Ave",
                 "747 Industrial Way", "425 Grant Ave"],
            ),
        },
    )


@pytest.fixture
def fig1_decomposed() -> tuple[list[tuple], list[tuple]]:
    """Expected S and T contents after the Figure 1 decomposition."""
    s_rows = [
        ("Jones", "Typing"),
        ("Jones", "Shorthand"),
        ("Roberts", "Light Cleaning"),
        ("Ellis", "Alchemy"),
        ("Jones", "Whittling"),
        ("Ellis", "Juggling"),
        ("Harrison", "Light Cleaning"),
    ]
    t_rows = sorted(
        [
            ("Jones", "425 Grant Ave"),
            ("Roberts", "747 Industrial Way"),
            ("Ellis", "747 Industrial Way"),
            ("Harrison", "425 Grant Ave"),
        ]
    )
    return s_rows, t_rows


def make_fd_table(
    nrows: int,
    n_keys: int,
    n_payload: int = 5,
    n_dependent: int = 3,
    seed: int = 0,
    name: str = "R",
) -> Table:
    """Random R(K, P, D) with the FD K -> D built in.

    ``K`` has ``n_keys`` distinct values, ``P`` is free payload, ``D`` is
    functionally determined by ``K`` — the generic shape of the paper's
    decomposition input.
    """
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, n_keys, nrows)
    if nrows >= n_keys:  # guarantee the cardinality
        keys[:n_keys] = np.arange(n_keys)
    payload = rng.integers(0, n_payload, nrows)
    dependent_of_key = rng.integers(0, n_dependent, n_keys)
    return table_from_python(
        name,
        {
            "K": (DataType.INT, keys.tolist()),
            "P": (DataType.INT, payload.tolist()),
            "D": (DataType.INT, dependent_of_key[keys].tolist()),
        },
    )


def make_join_pair(
    left_rows: int,
    right_rows: int,
    n_join: int,
    seed: int = 0,
    right_keyed: bool = False,
):
    """Random S(J, A), T(J, B) pair for merge tests.

    With ``right_keyed`` the right table has exactly one row per join
    value (the key–foreign-key scenario); otherwise duplicates appear on
    both sides (the general scenario).
    """
    rng = np.random.default_rng(seed)
    left_join = rng.integers(0, n_join, left_rows)
    left_payload = rng.integers(0, 4, left_rows)
    if right_keyed:
        right_join = np.arange(n_join)
        right_rows = n_join
    else:
        right_join = rng.integers(0, n_join, right_rows)
    right_payload = rng.integers(0, 4, right_rows)
    left = table_from_python(
        "S",
        {
            "J": (DataType.INT, left_join.tolist()),
            "A": (DataType.INT, left_payload.tolist()),
        },
    )
    right = table_from_python(
        "T",
        {
            "J": (DataType.INT, right_join.tolist()),
            "B": (DataType.INT, right_payload.tolist()),
        },
        primary_key=("J",) if right_keyed else (),
    )
    return left, right


def nested_loop_join(left_rows, right_rows, left_join_pos, right_join_pos):
    """Reference equi-join for verification (sorted output)."""
    result = []
    for left_row in left_rows:
        for right_row in right_rows:
            if left_row[left_join_pos] == right_row[right_join_pos]:
                combined = left_row + tuple(
                    v for i, v in enumerate(right_row) if i != right_join_pos
                )
                result.append(combined)
    return sorted(result)
