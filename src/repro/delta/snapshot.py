"""MVCC snapshots: pinned, consistent views over a main/delta split.

A :class:`Snapshot` captures the three coordinates that define a
:class:`~repro.delta.MutableTable`'s visible state — the main-store
*generation* (which compressed table), the delta store, and the *epoch*
(how much of the delta's write history applies) — and keeps reading that
exact state while inserts, deletes, updates and compaction proceed on
the owner.  Long scans therefore never block writers and writers never
perturb long scans; see ``docs/ARCHITECTURE.md``, "The MVCC read path".

Old main/delta generations are retained only while a pinned snapshot
still needs them: :meth:`Snapshot.close` (or exiting the context
manager) releases the pin, and the owner drops its reference to any
generation no longer pinned (``MutableTable.retained_versions``).
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.errors import StorageError

#: Decoded row lists, weakly keyed by main-store generation.  A
#: generation's compressed columns never change, so its decoded rows can
#: be shared by every scan/snapshot that pins it — and the entry dies
#: with the generation (when the last pinning snapshot closes).  The
#: cache is deliberately *not* wired into ``Table.to_rows`` itself: the
#: query-level baselines must keep paying the full decompression cost
#: the paper charges them.
_DECODED_ROWS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def decoded_main_rows(table) -> list:
    """Memoized ``table.to_rows()`` for the delta read path."""
    rows = _DECODED_ROWS.get(table)
    if rows is None:
        rows = table.to_rows()
        _DECODED_ROWS[table] = rows
    return rows


class Snapshot:
    """A read-only view of one table, frozen at pin time.

    Created by :meth:`repro.delta.MutableTable.snapshot`; use as a
    context manager (or call :meth:`close`) so the owner can reclaim
    superseded main-store generations.
    """

    __slots__ = ("_owner", "_main", "_delta", "epoch", "generation",
                 "_closed", "_rows", "_main_rows")

    def __init__(self, owner, main, delta, epoch: int, generation: int):
        self._owner = owner
        self._main = main
        self._delta = delta
        self.epoch = epoch
        self.generation = generation
        self._closed = False
        self._rows = None  # visible rows, materialized on first read
        self._main_rows = None  # surviving main rows, same laziness

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the pin (idempotent).  After closing, reads raise."""
        if self._closed:
            return
        self._closed = True
        owner, self._owner = self._owner, None
        self._main = None
        self._delta = None
        self._rows = None
        self._main_rows = None
        if owner is not None:
            owner._release_snapshot(self)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("snapshot is closed")

    def _rewire(self, relabeled_main) -> None:
        """Follow a metadata-only rename of the pinned generation (the
        owner relabels the table/column names in place; the rows this
        snapshot sees never change)."""
        if not self._closed:
            self._main = relabeled_main

    # ------------------------------------------------------------------
    # Reads (all pinned at ``self.epoch`` over the pinned generation)
    # ------------------------------------------------------------------

    @property
    def schema(self):
        self._check_open()
        return self._main.schema

    @property
    def nrows(self) -> int:
        """Visible rows across both sides, as of the pinned epoch."""
        self._check_open()
        # The delta's lock is the owning table's writer lock, so the
        # two counts below read one consistent buffer state.
        with self._delta._lock:
            return len(self._surviving()) + len(
                self._delta.live_indices(self.epoch)
            )

    def _surviving(self) -> np.ndarray:
        return self._delta.surviving_main_positions(
            self._main.nrows, self.epoch
        )

    def _visible_rows(self) -> list[tuple]:
        """Materialize the pinned view once: surviving main rows in row
        order, then delta rows visible at the pinned epoch, in insertion
        order.

        The main side comes from the per-generation decoded-rows cache
        (shared by every reader of the same generation) and is reused
        as-is when nothing masks it — later deletions carry higher
        epochs, so the pinned view is immutable and can be resolved up
        front.  Repeated reads of one snapshot are free.
        """
        if self._rows is not None:
            return self._rows
        if self._owner is not None:
            rows = self._owner._serve_pinned_rows(self.generation, self.epoch)
            if rows is not None:
                self._rows = rows
                return rows
        with self._delta._lock:
            rows = self._surviving_rows()
            live = self._delta.live_rows(self.epoch)
            # `rows + live` builds a fresh list, so the shared
            # decoded-rows cache is never aliased into a list we might
            # hand out.
            self._rows = rows + live if live else rows
            return self._rows

    def _surviving_rows(self) -> list[tuple] | None:
        """Surviving main rows at the pinned epoch, materialized once
        per snapshot — also the materialization hint for the batch read
        path's main-side :class:`~repro.exec.batch.TableBatch`.
        Declines (``None``) once the snapshot is closed; a batch handed
        out earlier then gathers from its own pinned selection."""
        if self._main_rows is not None:
            return self._main_rows
        if self._closed:
            return None
        with self._delta._lock:
            rows = decoded_main_rows(self._main)
            if self._delta.deleted_main:
                dead = {
                    position
                    for position, at in self._delta.deleted_main.items()
                    if at <= self.epoch
                }
                if dead:
                    rows = [
                        row
                        for position, row in enumerate(rows)
                        if position not in dead
                    ]
            self._main_rows = rows
            return rows

    def scan(self):
        """Iterate the pinned view lazily-materialized: the row list is
        built at most once per snapshot and shared with the
        per-generation cache when nothing masks the main store."""
        self._check_open()
        return iter(self._visible_rows())

    def scan_batches(self) -> list:
        """The pinned view as column batches (see ``repro.exec``): one
        :class:`~repro.exec.batch.TableBatch` over the pinned main
        generation, selected by the validity bitmap at the pinned
        epoch, then one :class:`~repro.exec.batch.DeltaBatch` of the
        buffered rows live at that epoch.  Batch order reproduces
        :meth:`scan`'s row order exactly."""
        self._check_open()
        from repro.exec import DeltaBatch, TableBatch

        main, delta, epoch = self._main, self._delta, self.epoch
        validity = delta.main_validity(main.nrows, epoch)
        batches = [
            TableBatch(
                main,
                validity,
                rows_hint=(
                    self._surviving_rows if validity is not None else None
                ),
            )
        ]
        delta_batch = DeltaBatch(delta, epoch)
        if delta_batch.selected_count:
            batches.append(delta_batch)
        return batches

    def statistics(self):
        """Planner statistics for the pinned view: live row counts at
        the pinned epoch plus the shared per-generation column stats
        (see :mod:`repro.storage.statistics`)."""
        self._check_open()
        from repro.storage.statistics import (
            TableStats,
            cached_table_column_stats,
        )

        with self._delta._lock:
            main_live = len(self._surviving())
            delta_live = len(self._delta.live_indices(self.epoch))
        return TableStats(
            self._main.schema.name,
            main_live,
            delta_live,
            cached_table_column_stats(self._main),
        )

    def to_rows(self) -> list[tuple]:
        """The pinned view as an eager row list (a defensive copy — the
        internal list may be shared with the generation cache)."""
        self._check_open()
        return list(self._visible_rows())

    def head(self, limit: int = 10) -> list[tuple]:
        self._check_open()
        out = []
        for row in self.scan():
            out.append(row)
            if len(out) >= limit:
                break
        return out

    def matching_rows(self, predicate) -> list[tuple]:
        """Rows of the pinned view satisfying ``predicate``.

        The main side is evaluated in the compressed domain
        (``predicate.bitmap``) and only the matching rows are
        materialized; the delta side goes through the buffer's hash
        indexes when built (row-wise below the threshold).
        """
        self._check_open()
        if predicate is None:
            return self.to_rows()
        predicate.validate(self._main.schema)
        surviving = self._surviving()
        matching = predicate.bitmap(self._main).positions()
        positions = np.intersect1d(matching, surviving, assume_unique=True)
        rows = (
            self._main.select_rows(positions, compact=True).to_rows()
            if len(positions)
            else []
        )
        indices = self._delta.matching_live_indices(predicate, self.epoch)
        return rows + [self._delta.row(index) for index in indices]

    def __repr__(self) -> str:
        if self._closed:
            return "Snapshot(closed)"
        return (
            f"Snapshot({self._main.schema.name!r}, epoch={self.epoch}, "
            f"generation={self.generation}, rows={self.nrows})"
        )
