"""Compaction policies: when — and how much at a time — to fold the
delta back into the main.

The write buffer trades read speed for write speed — merged scans touch
the uncompressed delta row by row, and deleted main rows still occupy
their bitmap positions.  A :class:`CompactionPolicy` bounds that debt by
size (absolute buffered rows) and by ratio (buffered or deleted rows
relative to the main store), the knobs of Krueger et al.'s merge
scheduler.  It also carries the *incremental* knobs: ``step_columns``
budgets how many columns one :meth:`repro.delta.MutableTable.
compact_step` call merges, and ``index_threshold`` sets the buffer size
past which per-column hash indexes take over predicate evaluation (see
``docs/ARCHITECTURE.md``, "The compaction lifecycle").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeltaStats:
    """A snapshot of one table's main/delta split."""

    table: str
    main_rows: int
    delta_rows: int       # buffered rows ever appended
    delta_live: int       # buffered rows still visible
    deleted_main: int     # main rows masked by the validity bitmap
    deleted_delta: int    # buffered rows deleted before compaction
    compactions: int      # compactions performed so far
    epoch: int = 0        # write-versioning counter (monotonic)
    open_snapshots: int = 0   # pinned MVCC snapshots
    indexed_columns: int = 0  # delta columns with a built hash index
    compaction_steps: int = 0  # incremental compact_step() calls

    @property
    def live_rows(self) -> int:
        """Rows a merged scan returns."""
        return self.main_rows - self.deleted_main + self.delta_live

    @property
    def delta_ratio(self) -> float:
        """Buffered rows relative to the main store."""
        return self.delta_rows / max(self.main_rows, 1)

    @property
    def deleted_ratio(self) -> float:
        """Masked main rows relative to the main store."""
        return self.deleted_main / max(self.main_rows, 1)

    def as_dict(self) -> dict:
        return {
            "table": self.table,
            "main_rows": self.main_rows,
            "delta_rows": self.delta_rows,
            "delta_live": self.delta_live,
            "deleted_main": self.deleted_main,
            "deleted_delta": self.deleted_delta,
            "live_rows": self.live_rows,
            "delta_ratio": round(self.delta_ratio, 6),
            "deleted_ratio": round(self.deleted_ratio, 6),
            "compactions": self.compactions,
            "epoch": self.epoch,
            "open_snapshots": self.open_snapshots,
            "indexed_columns": self.indexed_columns,
            "compaction_steps": self.compaction_steps,
        }

    def as_gauges(self) -> dict:
        """This table's contribution to the registry's delta gauges
        (the exported names of ``docs/observability.md``).  The
        :class:`~repro.sql.adapter.MutableColumnAdapter` registers
        callback gauges that aggregate these across
        ``engine.delta_stats()`` — one source of truth for the
        compaction policy, the exporters and the demo's ``deltastat``
        command."""
        return {
            "delta.tables": 1,
            "delta.buffered_rows": self.delta_live,
            "delta.live_rows": self.live_rows,
            "delta.deleted_main": self.deleted_main,
            "delta.indexed_columns": self.indexed_columns,
            "snapshot.pins_active": self.open_snapshots,
            "compaction.runs": self.compactions,
            "compaction.steps": self.compaction_steps,
        }


def aggregate_gauges(stats_list) -> dict:
    """Sum :meth:`DeltaStats.as_gauges` across tables — the values the
    adapter's callback gauges expose process-wide."""
    totals = {
        "delta.tables": 0,
        "delta.buffered_rows": 0,
        "delta.live_rows": 0,
        "delta.deleted_main": 0,
        "delta.indexed_columns": 0,
        "snapshot.pins_active": 0,
        "compaction.runs": 0,
        "compaction.steps": 0,
    }
    for stats in stats_list:
        for key, value in stats.as_gauges().items():
            totals[key] += value
    return totals


@dataclass(frozen=True)
class CompactionProgress:
    """What one :meth:`~repro.delta.MutableTable.compact_step` call did.

    ``done`` flips when the last column was merged and the new main was
    published; until then the table keeps serving merged reads from the
    old generation while writes continue to land in the delta.
    """

    columns_done: int
    columns_total: int
    done: bool

    @property
    def remaining(self) -> int:
        return self.columns_total - self.columns_done


@dataclass(frozen=True)
class CompactionPolicy:
    """Threshold-based auto-compaction.  ``None`` disables a trigger.

    ``step_columns`` is the incremental-compaction budget: how many
    columns one ``compact_step()`` call merges (a full ``compact()``
    ignores it).  ``index_threshold`` is the appended-row count past
    which the delta buffer builds per-column hash indexes for predicate
    evaluation (``None`` disables indexing).
    """

    max_delta_rows: int | None = 4096
    max_delta_ratio: float | None = 0.25
    max_deleted_ratio: float | None = 0.25
    step_columns: int = 1
    index_threshold: int | None = 256

    @classmethod
    def never(cls) -> "CompactionPolicy":
        """Manual compaction only."""
        return cls(None, None, None)

    def should_compact(self, stats: DeltaStats) -> str | None:
        """The trigger that fired, or ``None`` to keep buffering."""
        if (
            self.max_delta_rows is not None
            and stats.delta_rows >= self.max_delta_rows
        ):
            return f"delta rows {stats.delta_rows} >= {self.max_delta_rows}"
        if (
            self.max_delta_ratio is not None
            and stats.main_rows > 0
            and stats.delta_ratio >= self.max_delta_ratio
        ):
            return (
                f"delta ratio {stats.delta_ratio:.3f} >= "
                f"{self.max_delta_ratio}"
            )
        if (
            self.max_deleted_ratio is not None
            and stats.main_rows > 0
            and stats.deleted_ratio >= self.max_deleted_ratio
        ):
            return (
                f"deleted ratio {stats.deleted_ratio:.3f} >= "
                f"{self.max_deleted_ratio}"
            )
        return None
