"""Write-optimized delta stores over the read-optimized main store.

The CODS storage of :mod:`repro.storage` is read-optimized: every column
is a set of WAH-compressed per-value bitmaps, rebuilt wholesale on any
change.  Following the main/delta architecture of read-optimized stores
(Krueger et al., "Fast Updates on Read-Optimized Databases Using
Multi-Core CPUs") with the versioned visibility argued for columnar
MVCC in Li et al., "Mainlining Databases", this package pairs each
table with an uncompressed write buffer:

* :class:`DeltaStore` — appended rows in plain column vectors plus
  epoch-versioned deletion maps (the validity bitmaps) over the main
  store and the buffer itself, and per-column hash indexes once the
  buffer grows;
* :class:`MutableTable` — the DML facade: ``insert``/``update``/
  ``delete`` land in the delta, reads merge delta + main at query time;
* :class:`Snapshot` — an MVCC handle pinning one (generation, epoch)
  view so long scans never block writers or compaction;
* :class:`CompactionPolicy` / :class:`DeltaStats` /
  :class:`CompactionProgress` — when to fold the delta back into
  freshly WAH-encoded columns, all at once (``compact()``) or one
  budgeted column batch at a time (``compact_step()``).

The architecture (layer map, read path, compaction lifecycle) is
documented in ``docs/ARCHITECTURE.md``; the persisted ``.delta`` sidecar
format in ``docs/delta-format.md``.
"""

from repro.delta.mutable import MutableTable
from repro.delta.policy import (
    CompactionPolicy,
    CompactionProgress,
    DeltaStats,
)
from repro.delta.snapshot import Snapshot
from repro.delta.store import (
    DEFAULT_INDEX_THRESHOLD,
    RANGE_PROBE_MAX_DISTINCT_SHARE,
    DeltaStore,
)

__all__ = [
    "CompactionPolicy",
    "CompactionProgress",
    "DEFAULT_INDEX_THRESHOLD",
    "RANGE_PROBE_MAX_DISTINCT_SHARE",
    "DeltaStats",
    "DeltaStore",
    "MutableTable",
    "Snapshot",
]
