"""Write-optimized delta stores over the read-optimized main store.

The CODS storage of :mod:`repro.storage` is read-optimized: every column
is a set of WAH-compressed per-value bitmaps, rebuilt wholesale on any
change.  Following the main/delta architecture of read-optimized stores
(Krueger et al., "Fast Updates on Read-Optimized Databases Using
Multi-Core CPUs"), this package pairs each table with an uncompressed
write buffer:

* :class:`DeltaStore` — appended rows in plain column vectors plus a
  deletion set ("validity bitmap") over the main store;
* :class:`MutableTable` — the DML facade: ``insert``/``update``/
  ``delete`` land in the delta, reads merge delta + main at query time;
* :class:`CompactionPolicy` / :class:`DeltaStats` — when to fold the
  delta back into freshly WAH-encoded columns (``compact()``).
"""

from repro.delta.mutable import MutableTable
from repro.delta.policy import CompactionPolicy, DeltaStats
from repro.delta.store import DeltaStore

__all__ = [
    "CompactionPolicy",
    "DeltaStats",
    "DeltaStore",
    "MutableTable",
]
