"""The per-table write buffer, with epoch-versioned visibility.

A :class:`DeltaStore` is the uncompressed side of the main/delta split:
appended rows live in plain row-ordered column vectors (no dictionaries,
no bitmaps), and deletions — both of main-store rows and of buffered
rows — are recorded positionally.  All operations are ``O(1)`` per row;
the compressed-domain work is deferred to compaction.

Every write is tagged with a monotonically increasing *epoch*, so any
reader can ask for the buffer's state "as of epoch E" — the versioned
validity bitmaps behind :class:`repro.delta.Snapshot` (see
``docs/ARCHITECTURE.md``, "The MVCC read path").  Once the buffer grows
past ``index_threshold`` appended rows, per-column hash indexes map
values to posting lists of delta indices so predicates stop evaluating
row-wise (``docs/ARCHITECTURE.md``, "Indexed delta predicates").

The on-disk serialization of this state is the ``.delta`` sidecar
documented in ``docs/delta-format.md``.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import StorageError
from repro.storage.schema import TableSchema
from repro.storage.types import coerce

#: Appended rows after which per-column hash indexes are built on demand.
DEFAULT_INDEX_THRESHOLD = 256

#: Highest distinct-to-appended-rows share at which a range predicate
#: (<, >, <=, >=, !=) still probes the hash index value by value.  A
#: hash index answers equality in O(1) but a range only by testing
#: every distinct value; the probe beats the row-wise scan only while
#: the distinct count stays well below the row count, so the decision
#: follows the buffer's own statistics rather than a fixed cap.
RANGE_PROBE_MAX_DISTINCT_SHARE = 0.5


class DeltaStore:
    """Uncompressed, epoch-versioned write buffer for one table.

    ``columns`` maps each column name to a plain Python list in append
    order and ``insert_epochs[i]`` records the epoch at which delta row
    ``i`` was appended.  ``deleted_main`` maps deleted row positions of
    the main store (the inverse of its validity bitmap) to the epoch of
    the deletion, and ``deleted_delta`` does the same for deleted
    indices of the buffer itself (a row inserted and then deleted before
    compaction).  A row is *visible at epoch E* when it was inserted at
    or before E and not deleted at or before E; passing ``epoch=None``
    to any read means "as of now" (``self.epoch``).
    """

    __slots__ = (
        "schema",
        "columns",
        "insert_epochs",
        "deleted_main",
        "deleted_delta",
        "epoch",
        "index_threshold",
        "_indexes",
        "_live_cache",
        "_wal",
        "_lock",
    )

    def __init__(
        self,
        schema: TableSchema,
        start_epoch: int = 0,
        index_threshold: int | None = DEFAULT_INDEX_THRESHOLD,
    ):
        self.schema = schema
        self.columns: dict[str, list] = {
            name: [] for name in schema.column_names
        }
        self.insert_epochs: list[int] = []
        self.deleted_main: dict[int, int] = {}
        self.deleted_delta: dict[int, int] = {}
        self.epoch = start_epoch
        self.index_threshold = index_threshold
        self._indexes: dict[str, dict] = {}
        # Single-entry memo of (epoch, live indices, live rows|None).
        # What is visible *at* an epoch never changes once later writes
        # carry higher epochs, so an entry only needs replacing when a
        # different epoch is asked for — scans repeating against an
        # unchanged buffer pay the liveness loop once.
        self._live_cache: tuple | None = None
        # Redo emission: a repro.wal.TableWal once durability is on.
        self._wal = None
        # The writer lock.  A standalone store owns its own; a store
        # inside a MutableTable shares the table's lock (the table
        # assigns it), so DML, compaction and the dict-iterating reads
        # below serialize per table — see docs/ARCHITECTURE.md,
        # "Concurrency".  Reentrant: table methods call store methods
        # while already holding it.
        self._lock = threading.RLock()

    @classmethod
    def restore(
        cls,
        schema: TableSchema,
        columns: dict[str, list],
        insert_epochs: list[int],
        deleted_main: dict[int, int],
        deleted_delta: dict[int, int],
        epoch: int,
        index_threshold: int | None = DEFAULT_INDEX_THRESHOLD,
    ) -> "DeltaStore":
        """Rebuild a buffer from already-coerced state (the persistence
        path of ``storage.filefmt`` and the post-compaction carry-over of
        :meth:`repro.delta.MutableTable.compact_step`)."""
        store = cls(schema, epoch, index_threshold)
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise StorageError(f"ragged delta columns: {sorted(lengths)}")
        store.columns = {
            name: list(columns[name]) for name in schema.column_names
        }
        if len(insert_epochs) != store.n_appended:
            raise StorageError(
                f"{len(insert_epochs)} insert epochs for "
                f"{store.n_appended} buffered rows"
            )
        store.insert_epochs = list(insert_epochs)
        store.deleted_main = dict(deleted_main)
        store.deleted_delta = dict(deleted_delta)
        return store

    # ------------------------------------------------------------------
    # Writes (each bumps the epoch counter)
    # ------------------------------------------------------------------

    def _coerce_row(self, row) -> tuple:
        row = tuple(row)
        if len(row) != len(self.schema.columns):
            raise StorageError(
                f"row arity {len(row)} != {len(self.schema.columns)} for "
                f"table {self.schema.name!r}"
            )
        return tuple(
            coerce(value, column.dtype)
            for value, column in zip(row, self.schema.columns)
        )

    def _admit(self, coerced: tuple, epoch: int) -> int:
        index = self.n_appended
        for value, name in zip(coerced, self.schema.column_names):
            self.columns[name].append(value)
            posting = self._indexes.get(name)
            if posting is not None:
                posting.setdefault(value, []).append(index)
        self.insert_epochs.append(epoch)
        return index

    def append(self, row) -> int:
        """Buffer one row tuple (schema column order); returns its
        delta index."""
        with self._lock:
            coerced = self._coerce_row(row)
            self.epoch += 1
            if self._wal is not None:
                self._wal.log_insert([coerced], self.epoch)
            return self._admit(coerced, self.epoch)

    def append_rows(self, rows) -> int:
        """Buffer many rows atomically: every row is coerced before any
        is admitted, so a malformed row leaves no partial batch behind.
        The whole batch shares one epoch.  Returns the count."""
        with self._lock:
            coerced = [self._coerce_row(row) for row in rows]
            if not coerced:
                return 0
            self.epoch += 1
            if self._wal is not None:
                self._wal.log_insert(coerced, self.epoch)
            for row in coerced:
                self._admit(row, self.epoch)
            return len(coerced)

    def delete_main(self, position: int) -> bool:
        """Mark one main-store row deleted; True if newly deleted."""
        with self._lock:
            if position in self.deleted_main:
                return False
            self.epoch += 1
            if self._wal is not None:
                self._wal.log_delete_main(position, self.epoch)
            self.deleted_main[position] = self.epoch
            return True

    def delete_delta(self, index: int) -> bool:
        """Delete one buffered row by delta index; True if newly deleted."""
        with self._lock:
            if index < 0 or index >= self.n_appended:
                raise StorageError(f"delta index {index} out of range")
            if index in self.deleted_delta:
                return False
            self.epoch += 1
            if self._wal is not None:
                self._wal.log_delete_delta(index, self.epoch)
            self.deleted_delta[index] = self.epoch
            return True

    def apply_update(self, positions, indices, rows) -> int:
        """One UPDATE statement — delete the old versions (main
        positions and delta indices), append the patched ``rows`` — as
        a single call emitting *one* ``update`` redo record instead of
        a delete+insert record pair per victim (roughly half the log
        bytes).  Epoch numbering is identical to issuing the individual
        calls: each sub-operation bumps the counter once, in the order
        deletes-from-main, deletes-from-delta, appends.  Returns the
        number of rows appended."""
        with self._lock:
            coerced = [self._coerce_row(row) for row in rows]
            if not positions and not indices and not coerced:
                return 0
            for index in indices:
                if index < 0 or index >= self.n_appended:
                    raise StorageError(f"delta index {index} out of range")
            if self._wal is not None:
                self._wal.log_update(
                    positions, indices, coerced, self.epoch + 1
                )
            for position in positions:
                self.epoch += 1
                self.deleted_main[position] = self.epoch
            for index in indices:
                self.epoch += 1
                self.deleted_delta[index] = self.epoch
            for row in coerced:
                self.epoch += 1
                self._admit(row, self.epoch)
            return len(coerced)

    # ------------------------------------------------------------------
    # Redo replay (recovery-only: re-apply a logged write at its
    # original epoch, emitting nothing — the records already exist)
    # ------------------------------------------------------------------

    def replay_insert(self, rows, epoch: int) -> None:
        """Re-admit logged rows at their logged (shared) epoch."""
        with self._lock:
            coerced = [self._coerce_row(row) for row in rows]
            self.epoch = epoch
            for row in coerced:
                self._admit(row, epoch)

    def replay_delete_main(self, position: int, epoch: int) -> None:
        with self._lock:
            self.epoch = epoch
            self.deleted_main[position] = epoch

    def replay_delete_delta(self, index: int, epoch: int) -> None:
        with self._lock:
            if index < 0 or index >= self.n_appended:
                raise StorageError(f"delta index {index} out of range")
            self.epoch = epoch
            self.deleted_delta[index] = epoch

    def replay_update(self, positions, indices, rows, epoch: int) -> None:
        """Re-apply a logged ``update`` record at its logged first
        epoch, reproducing :meth:`apply_update`'s per-operation epoch
        sequence exactly (so later records — and ``compact`` cutoffs —
        land on the same positions they were logged against)."""
        with self._lock:
            coerced = [self._coerce_row(row) for row in rows]
            current = epoch
            for position in positions:
                self.deleted_main[position] = current
                self.epoch = current
                current += 1
            for index in indices:
                if index < 0 or index >= self.n_appended:
                    raise StorageError(f"delta index {index} out of range")
                self.deleted_delta[index] = current
                self.epoch = current
                current += 1
            for row in coerced:
                self._admit(row, current)
                self.epoch = current
                current += 1

    def clear(self) -> None:
        """Reset to empty (after the delta is folded into the main).
        The epoch counter survives — it is monotonic for the table's
        whole lifetime, across compactions."""
        with self._lock:
            for values in self.columns.values():
                values.clear()
            self.insert_epochs.clear()
            self.deleted_main.clear()
            self.deleted_delta.clear()
            self._indexes.clear()
            self._live_cache = None

    def adopt_schema(
        self, schema: TableSchema, renames: dict[str, str] | None = None
    ) -> None:
        """Metadata-only rewire to a renamed table/column schema.

        ``renames`` maps old column names to new ones; unmapped names
        must match.  Data, epochs and indexes are untouched — this is
        the O(1) half of the delta-preserving rename (see
        ``docs/ARCHITECTURE.md``, "Renames are metadata-only")."""
        renames = renames or {}
        with self._lock:
            expected = tuple(
                renames.get(name, name) for name in self.schema.column_names
            )
            if expected != schema.column_names:
                raise StorageError(
                    f"cannot adopt schema {list(schema.column_names)} over "
                    f"delta columns {list(expected)}"
                )
            self.columns = {
                renames.get(name, name): values
                for name, values in self.columns.items()
            }
            self._indexes = {
                renames.get(name, name): index
                for name, index in self._indexes.items()
            }
            self.schema = schema

    # ------------------------------------------------------------------
    # Reads (versioned: ``epoch=None`` means "as of now")
    # ------------------------------------------------------------------

    @property
    def n_appended(self) -> int:
        """Rows ever buffered (including since-deleted ones)."""
        return len(next(iter(self.columns.values())))

    @property
    def n_live(self) -> int:
        """Buffered rows still visible as of now."""
        return self.n_appended - len(self.deleted_delta)

    @property
    def is_empty(self) -> bool:
        """True when compaction would be a no-op."""
        return self.n_appended == 0 and not self.deleted_main

    def live_indices(self, epoch: int | None = None) -> list[int]:
        """Delta indices visible at ``epoch``, in insertion order
        (treat the returned list as read-only — it may be memoized)."""
        with self._lock:
            if epoch is None:
                epoch = self.epoch
            cached = self._live_cache
            if cached is not None and cached[0] == epoch:
                return cached[1]
            deleted = self.deleted_delta
            indices = [
                index
                for index, inserted in enumerate(self.insert_epochs)
                if inserted <= epoch
                and (index not in deleted or deleted[index] > epoch)
            ]
            self._live_cache = (epoch, indices, None)
            return indices

    def row(self, index: int) -> tuple:
        """One buffered row by delta index (live or not)."""
        if index < 0 or index >= self.n_appended:
            raise StorageError(f"delta index {index} out of range")
        return tuple(
            self.columns[name][index] for name in self.schema.column_names
        )

    def live_rows(self, epoch: int | None = None) -> list[tuple]:
        """Buffered rows visible at ``epoch``, in insertion order
        (treat the returned list as read-only — it may be memoized)."""
        with self._lock:
            if epoch is None:
                epoch = self.epoch
            indices = self.live_indices(epoch)
            cached = self._live_cache
            if (
                cached is not None
                and cached[0] == epoch
                and cached[2] is not None
            ):
                return cached[2]
            names = self.schema.column_names
            rows = [
                tuple(self.columns[name][index] for name in names)
                for index in indices
            ]
            self._live_cache = (epoch, indices, rows)
            return rows

    def main_validity(self, main_nrows: int, epoch: int | None = None):
        """The main store's validity at ``epoch`` as a dense selection
        bitmap (:class:`~repro.bitmap.plain.PlainBitmap`), or ``None``
        when no main row is deleted — the main-side selection vector of
        the batch read path (``repro.exec``)."""
        with self._lock:
            if epoch is None:
                epoch = self.epoch
            dead = [
                position
                for position, deleted in self.deleted_main.items()
                if deleted <= epoch and position < main_nrows
            ]
        if not dead:
            return None
        from repro.bitmap.plain import PlainBitmap

        bits = np.ones(main_nrows, dtype=bool)
        bits[np.asarray(dead, dtype=np.int64)] = False
        return PlainBitmap(bits)

    def surviving_main_positions(
        self, main_nrows: int, epoch: int | None = None
    ) -> np.ndarray:
        """Sorted main-store positions visible at ``epoch`` (the
        versioned validity bitmap as a position array, ready for bitmap
        filtering)."""
        with self._lock:
            if epoch is None:
                epoch = self.epoch
            dead = [
                position
                for position, deleted in self.deleted_main.items()
                if deleted <= epoch and position < main_nrows
            ]
        if not dead:
            return np.arange(main_nrows, dtype=np.int64)
        mask = np.ones(main_nrows, dtype=bool)
        mask[np.asarray(dead, dtype=np.int64)] = False
        return np.flatnonzero(mask).astype(np.int64)

    # ------------------------------------------------------------------
    # Per-column hash indexes (value -> posting list of delta indices)
    # ------------------------------------------------------------------

    @property
    def indexed_columns(self) -> tuple[str, ...]:
        """Columns whose hash index has been built."""
        return tuple(sorted(self._indexes))

    def build_index(self, column: str) -> dict:
        """Build (or return) the hash index of one column, regardless of
        the size threshold."""
        with self._lock:
            if column not in self.columns:
                raise StorageError(
                    f"no column {column!r} in table {self.schema.name!r}"
                )
            index = self._indexes.get(column)
            if index is None:
                index = {}
                for position, value in enumerate(self.columns[column]):
                    index.setdefault(value, []).append(position)
                self._indexes[column] = index
            return index

    def _index_for(self, column: str) -> dict | None:
        """The column's hash index, building it once the buffer passes
        ``index_threshold``; ``None`` while below the threshold."""
        index = self._indexes.get(column)
        if index is not None:
            return index
        if (
            self.index_threshold is None
            or self.n_appended < self.index_threshold
        ):
            return None
        return self.build_index(column)

    def matching_live_indices(
        self, predicate, epoch: int | None = None
    ) -> list[int]:
        """Delta indices visible at ``epoch`` that satisfy ``predicate``
        (all of them when ``None``) — through the per-column hash
        indexes once the buffer has passed ``index_threshold``, row at a
        time below it.  The predicate must already be validated against
        the schema."""
        with self._lock:
            indices = self.live_indices(epoch)
            if predicate is None:
                return indices
            matched = self.index_matches(predicate)
            if matched is not None:
                return [index for index in indices if index in matched]
            columns = self.columns
            return [
                index
                for index in indices
                if predicate.matches(lambda attr, i=index: columns[attr][i])
            ]

    def index_matches(self, predicate) -> set[int] | None:
        """Delta indices (liveness-agnostic) satisfying ``predicate``,
        resolved through the hash indexes — or ``None`` when the buffer
        is below the index threshold, in which case the caller should
        fall back to row-wise evaluation.

        Equality and IN are hash lookups; other comparisons probe each
        distinct value once (``O(distinct)`` instead of ``O(rows)``) —
        but only while the column's distinct count stays at or below
        :data:`RANGE_PROBE_MAX_DISTINCT_SHARE` of the appended rows;
        past it the probe loop would cost as much as the scan, so the
        method declines and the caller goes row-wise.  Conjunctions
        intersect, disjunctions union, and negations complement against
        the appended universe.
        """
        from repro.smo.predicate import And, Comparison, Not, Or

        # Reentrant lock: the And/Or/Not arms recurse through the
        # public method while already holding it.
        with self._lock:
            if isinstance(predicate, Comparison):
                index = self._index_for(predicate.attr)
                if index is None:
                    return None
                if predicate.op not in ("=", "IN") and (
                    len(index)
                    > self.n_appended * RANGE_PROBE_MAX_DISTINCT_SHARE
                ):
                    return None
                matched: set[int] = set()
                for value, postings in index.items():
                    if predicate.matches(lambda attr, v=value: v):
                        matched.update(postings)
                return matched
            if isinstance(predicate, (And, Or)):
                left = self.index_matches(predicate.left)
                right = self.index_matches(predicate.right)
                if left is None or right is None:
                    return None
                if isinstance(predicate, And):
                    return left & right
                return left | right
            if isinstance(predicate, Not):
                inner = self.index_matches(predicate.inner)
                if inner is None:
                    return None
                return set(range(self.n_appended)) - inner
            return None

    def __repr__(self) -> str:
        return (
            f"DeltaStore({self.schema.name!r}, appended={self.n_appended}, "
            f"deleted_delta={len(self.deleted_delta)}, "
            f"deleted_main={len(self.deleted_main)}, epoch={self.epoch})"
        )
