"""The per-table write buffer.

A :class:`DeltaStore` is the uncompressed side of the main/delta split:
appended rows live in plain row-ordered column vectors (no dictionaries,
no bitmaps), and deletions — both of main-store rows and of buffered
rows — are recorded positionally.  All operations are ``O(1)`` per row;
the compressed-domain work is deferred to compaction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError
from repro.storage.schema import TableSchema
from repro.storage.types import coerce


class DeltaStore:
    """Uncompressed write buffer for one table.

    ``columns`` maps each column name to a plain Python list in append
    order; ``deleted_main`` holds deleted row positions of the main
    store (the inverse of its validity bitmap) and ``deleted_delta``
    holds deleted indices of the buffer itself (a row inserted and then
    deleted before compaction).
    """

    __slots__ = ("schema", "columns", "deleted_main", "deleted_delta")

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.columns: dict[str, list] = {
            name: [] for name in schema.column_names
        }
        self.deleted_main: set[int] = set()
        self.deleted_delta: set[int] = set()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def _coerce_row(self, row) -> tuple:
        row = tuple(row)
        if len(row) != len(self.schema.columns):
            raise StorageError(
                f"row arity {len(row)} != {len(self.schema.columns)} for "
                f"table {self.schema.name!r}"
            )
        return tuple(
            coerce(value, column.dtype)
            for value, column in zip(row, self.schema.columns)
        )

    def append(self, row) -> int:
        """Buffer one row tuple (schema column order); returns its
        delta index."""
        coerced = self._coerce_row(row)
        index = self.n_appended
        for value, name in zip(coerced, self.schema.column_names):
            self.columns[name].append(value)
        return index

    def append_rows(self, rows) -> int:
        """Buffer many rows atomically: every row is coerced before any
        is admitted, so a malformed row leaves no partial batch behind.
        Returns the count."""
        coerced = [self._coerce_row(row) for row in rows]
        for row in coerced:
            for value, name in zip(row, self.schema.column_names):
                self.columns[name].append(value)
        return len(coerced)

    def delete_main(self, position: int) -> bool:
        """Mark one main-store row deleted; True if newly deleted."""
        if position in self.deleted_main:
            return False
        self.deleted_main.add(position)
        return True

    def delete_delta(self, index: int) -> bool:
        """Delete one buffered row by delta index; True if newly deleted."""
        if index < 0 or index >= self.n_appended:
            raise StorageError(f"delta index {index} out of range")
        if index in self.deleted_delta:
            return False
        self.deleted_delta.add(index)
        return True

    def clear(self) -> None:
        """Reset to empty (after the delta is folded into the main)."""
        for values in self.columns.values():
            values.clear()
        self.deleted_main.clear()
        self.deleted_delta.clear()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    @property
    def n_appended(self) -> int:
        """Rows ever buffered (including since-deleted ones)."""
        return len(next(iter(self.columns.values())))

    @property
    def n_live(self) -> int:
        """Buffered rows still visible."""
        return self.n_appended - len(self.deleted_delta)

    @property
    def is_empty(self) -> bool:
        """True when compaction would be a no-op."""
        return self.n_appended == 0 and not self.deleted_main

    def live_indices(self) -> list[int]:
        """Delta indices of visible buffered rows, in insertion order."""
        return [
            index
            for index in range(self.n_appended)
            if index not in self.deleted_delta
        ]

    def row(self, index: int) -> tuple:
        """One buffered row by delta index (live or not)."""
        if index < 0 or index >= self.n_appended:
            raise StorageError(f"delta index {index} out of range")
        return tuple(
            self.columns[name][index] for name in self.schema.column_names
        )

    def live_rows(self) -> list[tuple]:
        """Visible buffered rows as tuples, in insertion order."""
        names = self.schema.column_names
        return [
            tuple(self.columns[name][index] for name in names)
            for index in self.live_indices()
        ]

    def live_values(self, column: str) -> list:
        """Visible buffered values of one column, in insertion order."""
        values = self.columns[column]
        return [values[index] for index in self.live_indices()]

    def surviving_main_positions(self, main_nrows: int) -> np.ndarray:
        """Sorted main-store positions still visible (the validity
        bitmap as a position array, ready for bitmap filtering)."""
        if not self.deleted_main:
            return np.arange(main_nrows, dtype=np.int64)
        mask = np.ones(main_nrows, dtype=bool)
        deleted = np.fromiter(
            self.deleted_main, dtype=np.int64, count=len(self.deleted_main)
        )
        mask[deleted[deleted < main_nrows]] = False
        return np.flatnonzero(mask).astype(np.int64)

    def __repr__(self) -> str:
        return (
            f"DeltaStore({self.schema.name!r}, appended={self.n_appended}, "
            f"deleted_delta={len(self.deleted_delta)}, "
            f"deleted_main={len(self.deleted_main)})"
        )
