"""The DML facade: a read-optimized main plus a write-optimized delta.

A :class:`MutableTable` wraps an immutable :class:`~repro.storage.table.
Table` (the compressed main store) and a :class:`~repro.delta.store.
DeltaStore` (the uncompressed write buffer).  Writes never touch the
compressed columns; reads merge both sides at query time; compaction
folds the buffer into freshly WAH-encoded columns, re-using the
streaming :class:`~repro.bitmap.builder.WAHBuilder` so the dense row
vectors are never turned into dense bit arrays.

Reads are MVCC: :meth:`MutableTable.snapshot` pins a consistent view
(main-store generation + delta epoch) that stays frozen while writes and
compaction proceed, and :meth:`MutableTable.scan` iterates such a pinned
view lazily instead of copying the merged rows.  Compaction can run
*incrementally* — :meth:`MutableTable.compact_step` merges a budgeted
number of columns per call and is safe to interleave with DML and pinned
snapshots; superseded generations are retained until the last pinning
snapshot closes.  The whole lifecycle is documented in
``docs/ARCHITECTURE.md`` and the persisted form in
``docs/delta-format.md``.

Deletes and updates locate main-store victims in the *compressed*
domain (``Predicate.bitmap``), so a DML statement only materializes the
rows it actually touches.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from contextlib import contextmanager

import numpy as np

from repro.bitmap.builder import WAHBuilder
from repro.bitmap.codecs import WAH
from repro.delta.policy import (
    CompactionPolicy,
    CompactionProgress,
    DeltaStats,
)
from repro.delta.snapshot import Snapshot, decoded_main_rows
from repro.delta.store import DeltaStore
from repro.errors import SchemaError, StorageError
from repro.storage.column import BitmapColumn
from repro.storage.dictionary import Dictionary
from repro.storage.table import Table, canonical_sort_key
from repro.storage.types import coerce


def _delta_column(name, dtype, values, codec_name) -> BitmapColumn:
    """Encode plain row-ordered values into per-value bitmaps.

    The WAH path streams each value's positions through a
    :class:`WAHBuilder`; other codecs fall back to the generic
    constructor.
    """
    if codec_name != WAH:
        return BitmapColumn.from_values(name, dtype, values, codec_name)
    dictionary = Dictionary()
    positions: list[list[int]] = []
    for row, value in enumerate(values):
        vid = dictionary.add(value)
        if vid == len(positions):
            positions.append([])
        positions[vid].append(row)
    nrows = len(values)
    bitmaps = []
    for vid_positions in positions:
        builder = WAHBuilder()
        builder.append_positions(
            np.asarray(vid_positions, dtype=np.int64), nrows
        )
        bitmaps.append(builder.build())
    return BitmapColumn(name, dtype, dictionary, bitmaps, nrows, codec_name)


def _relabeled_table(table: Table, name: str, renames: dict) -> Table:
    """O(1) relabeling of a table: renamed columns and/or table name,
    sharing every compressed column."""
    for old, new in renames.items():
        table = table.with_renamed_column(old, new)
    if table.schema.name != name:
        table = table.renamed(name)
    return table


class _CompactionRun:
    """Resumable state of one incremental compaction.

    Pinned at ``begin``: the cutoff epoch, the surviving main positions
    and live delta indices *as of that epoch*.  Writes that arrive while
    the run is in flight get higher epochs and are carried over into the
    fresh delta when the run finishes.
    """

    __slots__ = (
        "cutoff_epoch",
        "keep",
        "cutoff_appended",
        "live_cutoff",
        "column_names",
        "merged",
        "next_index",
    )

    def __init__(
        self, main: Table, delta: DeltaStore,
        cutoff_epoch: int | None = None,
    ):
        # Recovery pins the fold at the *logged* cutoff epoch so the
        # rebuilt main reproduces the crashed fold's row positions
        # exactly; live operation pins at "now".
        self.cutoff_epoch = (
            delta.epoch if cutoff_epoch is None else cutoff_epoch
        )
        self.keep = delta.surviving_main_positions(
            main.nrows, self.cutoff_epoch
        )
        self.cutoff_appended = (
            delta.n_appended
            if cutoff_epoch is None
            else bisect_right(delta.insert_epochs, cutoff_epoch)
        )
        self.live_cutoff = delta.live_indices(self.cutoff_epoch)
        self.column_names = list(main.schema.column_names)
        self.merged: dict[str, BitmapColumn] = {}
        self.next_index = 0

    @property
    def done(self) -> bool:
        return self.next_index >= len(self.column_names)

    def rename_columns(self, renames: dict[str, str]) -> None:
        """Keep an in-flight run consistent with a metadata-only column
        rename (see :meth:`MutableTable.rewire_metadata`)."""
        if not renames:
            return
        self.column_names = [
            renames.get(name, name) for name in self.column_names
        ]
        self.merged = {
            renames.get(name, name): (
                column.renamed(renames[name]) if name in renames else column
            )
            for name, column in self.merged.items()
        }


class MutableTable:
    """A table that accepts DML, backed by a main/delta split.

    ``on_compact(table, reason)`` is invoked whenever the delta is
    folded into a fresh main table (the engine uses it to republish the
    table in its catalog).  A handle released by the engine — because
    an SMO consumed or dropped the table — is *invalidated*: further
    writes raise, so a stale handle can never republish a pre-evolution
    table.  Snapshots pinned before the invalidation stay readable —
    they hold their own references to the pinned generation.
    """

    def __init__(
        self,
        table: Table,
        policy: CompactionPolicy | None = None,
        on_compact=None,
    ):
        self._main = table
        self.policy = policy if policy is not None else CompactionPolicy()
        # The per-table writer lock: DML, compaction, snapshot pin and
        # release, and the checkpoint's per-table save all serialize on
        # it.  Shared with every DeltaStore this table ever owns (the
        # store's methods take the same lock), and reentrant so locked
        # table methods can call locked store methods.  Lock order when
        # combined with others: Database._commit_lock -> table locks
        # (sorted by name) -> WriteAheadLog's internal lock.
        self._lock = threading.RLock()
        self._delta = DeltaStore(
            table.schema, index_threshold=self.policy.index_threshold
        )
        self._delta._lock = self._lock
        self.on_compact = on_compact
        self.compactions = 0
        self.compaction_steps = 0
        self._invalidated = False
        self._generation = 0
        self._snapshots: list[Snapshot] = []
        self._retained: dict[int, tuple[Table, DeltaStore]] = {}
        self._compaction_run: _CompactionRun | None = None
        # Redo logging: a repro.wal.TableWal once durability is on
        # (shared with the delta store; see attach_wal).
        self._wal = None
        # Single-entry merged-view cache: (generation, epoch) -> rows.
        # Visibility is fully determined by that pair, so the entry is
        # valid until the next write (epoch bump) or compaction
        # (generation bump).
        self._merged_cache: tuple[tuple[int, int], list] | None = None
        # Single-entry surviving-main cache: (generation, deletions) ->
        # filtered main rows; inserts bump the epoch but not this key.
        self._main_rows_cache: tuple[tuple[int, int], list] | None = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def schema(self):
        return self._main.schema

    @property
    def name(self) -> str:
        return self._main.schema.name

    @property
    def main(self) -> Table:
        """The current compressed main store."""
        return self._main

    @property
    def delta(self) -> DeltaStore:
        """The current write buffer."""
        return self._delta

    @property
    def epoch(self) -> int:
        """The write-versioning counter (monotonic across compactions)."""
        return self._delta.epoch

    @property
    def generation(self) -> int:
        """How many times the main store has been replaced."""
        return self._generation

    @property
    def nrows(self) -> int:
        """Visible rows across both sides."""
        return (
            self._main.nrows
            - len(self._delta.deleted_main)
            + self._delta.n_live
        )

    @property
    def has_pending_changes(self) -> bool:
        return (
            not self._delta.is_empty or self._compaction_run is not None
        )

    @property
    def is_valid(self) -> bool:
        return not self._invalidated

    @property
    def open_snapshots(self) -> int:
        """Snapshots currently pinning a view of this table."""
        return len(self._snapshots)

    @property
    def retained_versions(self) -> tuple[int, ...]:
        """Superseded generations kept alive for pinned snapshots."""
        return tuple(sorted(self._retained))

    def invalidate(self) -> None:
        """Detach the handle from its table (writes will raise)."""
        self._invalidated = True
        self.on_compact = None

    def _check_valid(self) -> None:
        if self._invalidated:
            raise StorageError(
                f"mutable handle for {self.name!r} was invalidated by a "
                "schema change; request a fresh one from the engine"
            )

    def delta_stats(self) -> DeltaStats:
        with self._lock:
            return DeltaStats(
                table=self.name,
                main_rows=self._main.nrows,
                delta_rows=self._delta.n_appended,
                delta_live=self._delta.n_live,
                deleted_main=len(self._delta.deleted_main),
                deleted_delta=len(self._delta.deleted_delta),
                compactions=self.compactions,
                epoch=self._delta.epoch,
                open_snapshots=len(self._snapshots),
                indexed_columns=len(self._delta.indexed_columns),
                compaction_steps=self.compaction_steps,
            )

    def statistics(self):
        """Planner statistics for the current view — live main/delta row
        counts plus per-column distinct/min/max over the compressed main
        store (cached per generation; see
        :mod:`repro.storage.statistics`)."""
        from repro.storage.statistics import (
            TableStats,
            cached_table_column_stats,
        )

        with self._lock:
            return TableStats(
                self.name,
                self._main.nrows - len(self._delta.deleted_main),
                self._delta.n_live,
                cached_table_column_stats(self._main),
            )

    # ------------------------------------------------------------------
    # MVCC reads (snapshots pin a generation + epoch; no copy-on-read)
    # ------------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Pin the currently visible state.

        The returned :class:`~repro.delta.Snapshot` keeps seeing exactly
        today's rows while inserts, deletes, updates and compaction
        proceed on this handle.  Close it (or use it as a context
        manager) so superseded generations can be reclaimed.
        """
        with self._lock:
            snapshot = Snapshot(
                self, self._main, self._delta, self._delta.epoch,
                self._generation,
            )
            self._snapshots.append(snapshot)
            return snapshot

    def _serve_pinned_rows(self, generation: int, epoch: int):
        """The cached merged view, when (generation, epoch) is still the
        current visible state — lets a fresh snapshot share it instead
        of rebuilding.  ``None`` when the state has moved on."""
        with self._lock:
            if (
                generation == self._generation
                and epoch == self._delta.epoch
            ):
                return self._merged_rows()
            return None

    def _release_snapshot(self, snapshot: Snapshot) -> None:
        with self._lock:
            try:
                self._snapshots.remove(snapshot)
            except ValueError:  # already released
                return
            pinned = {s.generation for s in self._snapshots}
            self._retained = {
                generation: version
                for generation, version in self._retained.items()
                if generation in pinned
            }

    def _surviving_rows(self) -> list[tuple]:
        """The main store's surviving rows, cached per (generation,
        deletion count) — within a generation ``deleted_main`` only
        grows, so the pair identifies the filtered list exactly.  The
        cache outlives epoch bumps from inserts, and it doubles as the
        materialization hint of the batch read path's main-side
        :class:`~repro.exec.batch.TableBatch`."""
        with self._lock:
            deleted = self._delta.deleted_main
            if not deleted:
                return decoded_main_rows(self._main)
            key = (self._generation, len(deleted))
            cached = self._main_rows_cache
            if cached is not None and cached[0] == key:
                return cached[1]
            rows = [
                row
                for position, row in enumerate(
                    decoded_main_rows(self._main)
                )
                if position not in deleted
            ]
            self._main_rows_cache = (key, rows)
            return rows

    def _merged_rows(self) -> list[tuple]:
        """The currently visible merged rows, cached per (generation,
        epoch).  The list is immutable by contract — writes never touch
        it, they bump the epoch and a later read rebuilds."""
        with self._lock:
            key = (self._generation, self._delta.epoch)
            cached = self._merged_cache
            if cached is not None and cached[0] == key:
                return cached[1]
            main_rows = self._surviving_rows()
            live = self._delta.live_rows()
            rows = main_rows + live if live else main_rows
            self._merged_cache = (key, rows)
            return rows

    def scan(self):
        """Iterate the rows visible right now as a pinned MVCC view:
        the merged row list of the current (generation, epoch) — built
        at most once per visible state — so later writes and compactions
        never change what this iterator yields, and no per-scan copy is
        made."""
        return iter(self._merged_rows())

    def scan_batches(self) -> list:
        """The currently visible rows as column batches (see
        ``repro.exec``): the main store as a
        :class:`~repro.exec.batch.TableBatch` selected by the current
        validity bitmap, then the live buffered rows as a
        :class:`~repro.exec.batch.DeltaBatch` pinned at the current
        epoch.  This is the epoch-wise main+delta merge of the
        vectorized read path; row order matches :meth:`scan`."""
        from repro.exec import DeltaBatch, TableBatch

        with self._lock:
            validity = self._delta.main_validity(self._main.nrows)
            hint = None
            if validity is not None:
                # The hint serves the surviving-rows cache only while
                # the table is still in the state this batch captured;
                # after a later delete or compaction it declines
                # (returns None) and the batch gathers from its own
                # pinned selection instead.
                key = (self._generation, len(self._delta.deleted_main))

                def hint(key=key):
                    if key == (
                        self._generation, len(self._delta.deleted_main)
                    ):
                        return self._surviving_rows()
                    return None

            batches = [TableBatch(self._main, validity, rows_hint=hint)]
            delta_batch = DeltaBatch(self._delta)
            if delta_batch.selected_count:
                batches.append(delta_batch)
            return batches

    def to_rows(self) -> list[tuple]:
        """All visible rows as an eager merged copy: surviving main rows
        in row order, then live delta rows in insertion order.  The
        returned list is the caller's (defensive copy of the cached
        merged view) — this is the pre-MVCC copy-on-read entry point;
        ``scan()``/``snapshot()`` avoid the copy."""
        return list(self._merged_rows())

    def copy_on_read_rows(self) -> list[tuple]:
        """The pre-MVCC merged read, bypassing every read-path cache:
        decode the main store and rebuild the merged list from scratch.
        Benchmarks use this as the copy-on-read baseline; everything
        else should call :meth:`to_rows` or :meth:`scan`."""
        main_rows = self._main.to_rows()
        deleted = self._delta.deleted_main
        if deleted:
            main_rows = [
                row
                for position, row in enumerate(main_rows)
                if position not in deleted
            ]
        return main_rows + self._delta.live_rows()

    def head(self, limit: int = 10) -> list[tuple]:
        out = []
        for row in self.scan():
            out.append(row)
            if len(out) >= limit:
                break
        return out

    def sorted_rows(self) -> list[tuple]:
        return sorted(self.to_rows(), key=canonical_sort_key)

    def matching_rows(self, predicate=None) -> list[tuple]:
        """Visible rows satisfying ``predicate`` (all when ``None``).

        The main side is evaluated in the compressed domain and only the
        matching rows are materialized; the delta side uses the buffer's
        hash indexes once built (row-wise below the threshold)."""
        if predicate is None:
            return self.to_rows()
        with self._lock:
            positions = self._matching_main_positions(predicate)
            rows = (
                self._main.select_rows(positions, compact=True).to_rows()
                if len(positions)
                else []
            )
            return rows + [
                self._delta.row(index)
                for index in self._matching_delta_indices(predicate)
            ]

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def attach_wal(self, table_wal) -> None:
        """Start emitting redo records (a :class:`repro.wal.TableWal`)
        for every write on this handle and its delta store."""
        self._wal = table_wal
        self._delta._wal = table_wal

    @contextmanager
    def _wal_txn(self):
        """One DML statement as one redo transaction: every record the
        statement emits (including an auto-compaction it triggers)
        commits or vanishes together.  Inside an outer transaction
        (``db.transaction()`` replay) the log just nests."""
        if self._wal is None:
            yield
            return
        self._wal.begin()
        try:
            yield
        except BaseException:
            self._wal.abort()
            raise
        else:
            self._wal.commit()

    def insert(self, row) -> None:
        """Append one row tuple (schema column order).

        No ``_wal_txn`` here: an insert emits exactly one redo record,
        which auto-commits as a single self-committed frame — the hot
        write path skips the begin/commit-record machinery.  A
        triggered auto-compaction's ``compact`` record rides its own
        frame, which is safe: the fold is structural and idempotent.
        """
        with self._lock:
            self._check_valid()
            self._delta.append(row)
            self._maybe_autocompact()

    def insert_rows(self, rows) -> int:
        """Append an iterable of row tuples atomically (a malformed row
        rejects the whole batch); returns the count.  Like
        :meth:`insert`, the batch is one redo record, so it needs no
        surrounding WAL transaction."""
        with self._lock:
            self._check_valid()
            count = self._delta.append_rows(rows)
            self._maybe_autocompact()
            return count

    def delete(self, predicate=None) -> int:
        """Delete visible rows matching ``predicate`` (all when None);
        returns the number deleted.

        Main-store victims are found in the compressed domain — the
        predicate's bitmap, AND-ed with the validity bitmap — without
        materializing any row.
        """
        with self._lock:
            self._check_valid()
            count = 0
            with self._wal_txn():
                for position in self._matching_main_positions(predicate):
                    if self._delta.delete_main(int(position)):
                        count += 1
                for index in self._matching_delta_indices(predicate):
                    if self._delta.delete_delta(index):
                        count += 1
                self._maybe_autocompact()
            return count

    def update(self, assignments: dict, predicate=None) -> int:
        """Set ``assignments`` (column -> new value) on rows matching
        ``predicate``; returns the number updated.

        An update is a delete of the old version plus an append of the
        new one — the standard out-of-place write of a main/delta store,
        so the compressed main is never patched.  The whole statement is
        one ``update`` redo record (see
        :meth:`~repro.delta.store.DeltaStore.apply_update`), not a
        delete+insert record pair per victim.
        """
        with self._lock:
            self._check_valid()
            if not assignments:
                return 0
            names = self.schema.column_names
            for column in assignments:
                if column not in names:
                    raise SchemaError(
                        f"no column {column!r} in table {self.name!r}"
                    )
            coerced = {
                column: coerce(value, self.schema.column(column).dtype)
                for column, value in assignments.items()
            }

            main_positions = self._matching_main_positions(predicate)
            old_main = (
                self._main.select_rows(
                    main_positions, compact=True
                ).to_rows()
                if len(main_positions)
                else []
            )
            delta_indices = self._matching_delta_indices(predicate)
            old_delta = [self._delta.row(index) for index in delta_indices]

            updated = [
                tuple(
                    coerced.get(name, value)
                    for name, value in zip(names, row)
                )
                for row in old_main + old_delta
            ]
            with self._wal_txn():
                count = self._delta.apply_update(
                    [int(position) for position in main_positions],
                    list(delta_indices),
                    updated,
                )
                self._maybe_autocompact()
            return count

    def _matching_main_positions(self, predicate) -> np.ndarray:
        """Sorted visible main positions satisfying ``predicate``."""
        surviving = self._delta.surviving_main_positions(self._main.nrows)
        if predicate is None:
            return surviving
        predicate.validate(self.schema)
        matching = predicate.bitmap(self._main).positions()
        return np.intersect1d(matching, surviving, assume_unique=True)

    def _matching_delta_indices(self, predicate) -> list[int]:
        """Live delta indices satisfying ``predicate`` — through the
        buffer's per-column hash indexes once it has grown past the
        policy's ``index_threshold``, row at a time below it."""
        if predicate is None:
            return self._delta.live_indices()
        predicate.validate(self.schema)
        return self._delta.matching_live_indices(predicate)

    # ------------------------------------------------------------------
    # Compaction (full or incremental; safe under pinned snapshots)
    # ------------------------------------------------------------------

    def compact(self, reason: str = "manual") -> Table:
        """Fold the delta into a fresh all-WAH main table.

        Surviving main rows are kept by bitmap filtering (never
        decompressed), buffered rows are WAH-encoded via the streaming
        builder, and the two parts are concatenated per column.
        Afterwards the buffer holds only writes that raced the fold (in
        the single-threaded case: none) and the returned table *is* the
        new main.  An in-flight incremental run is driven to completion
        first.
        """
        with self._lock:
            self._check_valid()
            if self._compaction_run is None and self._delta.is_empty:
                return self._main
            full_budget = max(1, len(self.schema.columns))
            while (
                self._compaction_run is not None
                or not self._delta.is_empty
            ):
                self.compact_step(columns=full_budget, reason=reason)
            return self._main

    def compact_step(
        self, columns: int | None = None, reason: str = "incremental"
    ) -> CompactionProgress:
        """Advance (or begin) an incremental compaction by merging up to
        ``columns`` columns (default: the policy's ``step_columns``).

        The first call pins the fold at the current epoch; DML may keep
        landing between steps (it carries over into the fresh buffer
        when the run finishes), and snapshots pinned at any point keep
        their frozen view throughout.  Returns the run's progress; when
        ``done``, the new main has been published.
        """
        with self._lock:
            self._check_valid()
            if self._compaction_run is None:
                if self._delta.is_empty:
                    return CompactionProgress(0, 0, True)
                self._compaction_run = _CompactionRun(
                    self._main, self._delta
                )
            run = self._compaction_run
            self.compaction_steps += 1
            budget = (
                columns
                if columns is not None
                else max(1, self.policy.step_columns)
            )
            for _ in range(budget):
                if run.done:
                    break
                name = run.column_names[run.next_index]
                run.merged[name] = self._merge_column(name, run)
                run.next_index += 1
            total = len(run.column_names)
            if run.done:
                self._finish_compaction(run, reason)
                return CompactionProgress(total, total, True)
            return CompactionProgress(run.next_index, total, False)

    def _merge_column(self, name: str, run: _CompactionRun) -> BitmapColumn:
        """Merge one column: surviving main rows (bitmap-filtered, never
        decompressed) concatenated with the WAH-encoded cutoff-live
        buffered values."""
        column_schema = self.schema.column(name)
        main_part = self._main.column(name)
        if len(run.keep) != self._main.nrows:
            main_part = main_part.select(run.keep, compact=True)
        values = [self._delta.columns[name][i] for i in run.live_cutoff]
        delta_part = _delta_column(
            name, column_schema.dtype, values, main_part.codec_name
        )
        if delta_part.nrows:
            return main_part.concat(delta_part)
        return main_part

    def replay_compact(self, cutoff_epoch: int) -> None:
        """Recovery-only: re-run a logged fold at its logged cutoff.

        The fold is a pure function of (main, delta state at cutoff), so
        replaying it reproduces the crashed compaction's row positions
        exactly — later redo records that name post-fold positions and
        indices land where they were logged.  Emits nothing."""
        with self._lock:
            run = _CompactionRun(self._main, self._delta, cutoff_epoch)
            while not run.done:
                name = run.column_names[run.next_index]
                run.merged[name] = self._merge_column(name, run)
                run.next_index += 1
            self._finish_compaction(run, "wal replay", log=False)

    def _finish_compaction(
        self, run: _CompactionRun, reason: str, log: bool = True
    ) -> None:
        """Publish the merged table, carry post-cutoff writes into a
        fresh buffer (remapping deletions of folded rows onto the new
        main's positions), and retain the old generation if snapshots
        still pin it."""
        if log and self._wal is not None:
            # Write-ahead: the structural record lands before the state
            # changes, inside the statement's transaction when the fold
            # was triggered by DML (auto-compaction), auto-committed
            # when requested directly.
            self._wal.log_compact(run.cutoff_epoch)
        old_main, old_delta = self._main, self._delta
        nrows = len(run.keep) + len(run.live_cutoff)
        new_main = Table(self.schema, run.merged, nrows)

        main_remap = {int(p): i for i, p in enumerate(run.keep)}
        delta_remap = {
            d: len(run.keep) + k for k, d in enumerate(run.live_cutoff)
        }
        deleted_main: dict[int, int] = {}
        for position, at in old_delta.deleted_main.items():
            if at > run.cutoff_epoch:
                deleted_main[main_remap[position]] = at
        new_deleted_delta: dict[int, int] = {}
        for index, at in old_delta.deleted_delta.items():
            if index >= run.cutoff_appended:
                new_deleted_delta[index - run.cutoff_appended] = at
            elif at > run.cutoff_epoch:
                # A pre-cutoff buffered row deleted mid-run: it was folded
                # into the new main, so the deletion masks its new position.
                deleted_main[delta_remap[index]] = at
        carried = {
            name: old_delta.columns[name][run.cutoff_appended:]
            for name in self.schema.column_names
        }
        new_delta = DeltaStore.restore(
            self.schema,
            carried,
            old_delta.insert_epochs[run.cutoff_appended:],
            deleted_main,
            new_deleted_delta,
            old_delta.epoch,
            index_threshold=old_delta.index_threshold,
        )
        new_delta._wal = old_delta._wal
        new_delta._lock = self._lock

        if any(s.generation == self._generation for s in self._snapshots):
            self._retained[self._generation] = (old_main, old_delta)
        self._main = new_main
        self._delta = new_delta
        self._generation += 1
        self._compaction_run = None
        self.compactions += 1
        if self.on_compact is not None:
            self.on_compact(self._main, reason)

    def restore_delta(self, store: DeltaStore) -> None:
        """Adopt a persisted write buffer (see ``storage.filefmt``).

        Only valid while the current buffer is empty — a delta belongs
        to exactly one main-store generation.
        """
        with self._lock:
            self._check_valid()
            if self.has_pending_changes:
                raise SchemaError(
                    f"table {self.name!r} already has pending changes"
                )
            if store.schema.column_names != self.schema.column_names:
                raise SchemaError(
                    f"delta schema does not match table {self.name!r}"
                )
            store._wal = self._wal
            store._lock = self._lock
            self._delta = store
            # Epochs (and deletion state) restart with the new buffer.
            self._merged_cache = None
            self._main_rows_cache = None

    def rewire_metadata(
        self, new_main: Table, renames: dict[str, str] | None = None
    ) -> None:
        """Adopt a renamed main store *without* flushing the delta.

        ``new_main`` must hold the same rows as the current main — only
        the table name and/or column names (per ``renames``) may differ.
        The buffer, its epochs, its indexes and any in-flight
        incremental compaction are rewired in place, making RENAME
        TABLE / RENAME COLUMN O(1) metadata operations even with pending
        writes (the invariant documented in ``docs/ARCHITECTURE.md``).
        Pinned snapshots follow the rename — names are metadata, not
        data, so every retained generation is relabeled in place (their
        rows never change).
        """
        with self._lock:
            self._rewire_metadata_locked(new_main, renames)

    def _rewire_metadata_locked(
        self, new_main: Table, renames: dict[str, str] | None = None
    ) -> None:
        self._check_valid()
        if new_main.nrows != self._main.nrows:
            raise StorageError(
                f"rewire_metadata: {new_main.nrows} rows != "
                f"{self._main.nrows} (renames are metadata-only)"
            )
        renames = renames or {}
        self._delta.adopt_schema(new_main.schema, renames)
        if self._compaction_run is not None:
            self._compaction_run.rename_columns(renames)
        self._main = new_main
        for generation, (main, delta) in list(self._retained.items()):
            relabeled = _relabeled_table(
                main, new_main.schema.name, renames
            )
            delta.adopt_schema(relabeled.schema, renames)
            self._retained[generation] = (relabeled, delta)
        for snapshot in self._snapshots:
            if snapshot.generation == self._generation:
                snapshot._rewire(new_main)
            else:
                snapshot._rewire(self._retained[snapshot.generation][0])

    def _maybe_autocompact(self) -> None:
        reason = self.policy.should_compact(self.delta_stats())
        if reason is not None:
            self.compact(f"auto: {reason}")

    # ------------------------------------------------------------------
    # Comparison helpers (tests, verification)
    # ------------------------------------------------------------------

    def same_content(self, other, ordered: bool = False) -> bool:
        """Logical equality against a :class:`Table` or another
        :class:`MutableTable` (merged view on both sides)."""
        if self.schema.column_names != other.schema.column_names:
            return False
        if self.nrows != other.nrows:
            return False
        if ordered:
            return self.to_rows() == other.to_rows()
        return self.sorted_rows() == other.sorted_rows()

    def __repr__(self) -> str:
        return (
            f"MutableTable({self.name!r}, main={self._main.nrows}, "
            f"delta=+{self._delta.n_live}/-{len(self._delta.deleted_main)}, "
            f"epoch={self._delta.epoch}, "
            f"compactions={self.compactions})"
        )
