"""The DML facade: a read-optimized main plus a write-optimized delta.

A :class:`MutableTable` wraps an immutable :class:`~repro.storage.table.
Table` (the compressed main store) and a :class:`~repro.delta.store.
DeltaStore` (the uncompressed write buffer).  Writes never touch the
compressed columns; reads merge both sides at query time; ``compact()``
folds the buffer into freshly WAH-encoded columns, re-using the
streaming :class:`~repro.bitmap.builder.WAHBuilder` so the dense row
vectors are never turned into dense bit arrays.

Deletes and updates locate main-store victims in the *compressed*
domain (``Predicate.bitmap``), so a DML statement only materializes the
rows it actually touches.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap.builder import WAHBuilder
from repro.bitmap.codecs import WAH
from repro.delta.policy import CompactionPolicy, DeltaStats
from repro.delta.store import DeltaStore
from repro.errors import SchemaError, StorageError
from repro.storage.column import BitmapColumn
from repro.storage.dictionary import Dictionary
from repro.storage.table import Table, canonical_sort_key
from repro.storage.types import coerce


def _delta_column(name, dtype, values, codec_name) -> BitmapColumn:
    """Encode plain row-ordered values into per-value bitmaps.

    The WAH path streams each value's positions through a
    :class:`WAHBuilder`; other codecs fall back to the generic
    constructor.
    """
    if codec_name != WAH:
        return BitmapColumn.from_values(name, dtype, values, codec_name)
    dictionary = Dictionary()
    positions: list[list[int]] = []
    for row, value in enumerate(values):
        vid = dictionary.add(value)
        if vid == len(positions):
            positions.append([])
        positions[vid].append(row)
    nrows = len(values)
    bitmaps = []
    for vid_positions in positions:
        builder = WAHBuilder()
        builder.append_positions(
            np.asarray(vid_positions, dtype=np.int64), nrows
        )
        bitmaps.append(builder.build())
    return BitmapColumn(name, dtype, dictionary, bitmaps, nrows, codec_name)


class MutableTable:
    """A table that accepts DML, backed by a main/delta split.

    ``on_compact(table, reason)`` is invoked whenever the delta is
    folded into a fresh main table (the engine uses it to republish the
    table in its catalog).  A handle released by the engine — because
    an SMO consumed or dropped the table — is *invalidated*: further
    writes raise, so a stale handle can never republish a pre-evolution
    table.
    """

    def __init__(
        self,
        table: Table,
        policy: CompactionPolicy | None = None,
        on_compact=None,
    ):
        self._main = table
        self._delta = DeltaStore(table.schema)
        self.policy = policy if policy is not None else CompactionPolicy()
        self.on_compact = on_compact
        self.compactions = 0
        self._invalidated = False

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def schema(self):
        return self._main.schema

    @property
    def name(self) -> str:
        return self._main.schema.name

    @property
    def main(self) -> Table:
        """The current compressed main store."""
        return self._main

    @property
    def delta(self) -> DeltaStore:
        """The current write buffer."""
        return self._delta

    @property
    def nrows(self) -> int:
        """Visible rows across both sides."""
        return (
            self._main.nrows
            - len(self._delta.deleted_main)
            + self._delta.n_live
        )

    @property
    def has_pending_changes(self) -> bool:
        return not self._delta.is_empty

    @property
    def is_valid(self) -> bool:
        return not self._invalidated

    def invalidate(self) -> None:
        """Detach the handle from its table (writes will raise)."""
        self._invalidated = True
        self.on_compact = None

    def _check_valid(self) -> None:
        if self._invalidated:
            raise StorageError(
                f"mutable handle for {self.name!r} was invalidated by a "
                "schema change; request a fresh one from the engine"
            )

    def delta_stats(self) -> DeltaStats:
        return DeltaStats(
            table=self.name,
            main_rows=self._main.nrows,
            delta_rows=self._delta.n_appended,
            delta_live=self._delta.n_live,
            deleted_main=len(self._delta.deleted_main),
            deleted_delta=len(self._delta.deleted_delta),
            compactions=self.compactions,
        )

    # ------------------------------------------------------------------
    # Merged reads (query-time merge, snapshot per call)
    # ------------------------------------------------------------------

    def to_rows(self) -> list[tuple]:
        """All visible rows: surviving main rows in row order, then live
        delta rows in insertion order.  The returned list is a snapshot —
        later writes do not mutate it."""
        if self._delta.deleted_main:
            deleted = self._delta.deleted_main
            main_rows = [
                row
                for position, row in enumerate(self._main.to_rows())
                if position not in deleted
            ]
        else:
            main_rows = self._main.to_rows()
        return main_rows + self._delta.live_rows()

    def scan(self):
        """Iterate a snapshot of the visible rows."""
        return iter(self.to_rows())

    def head(self, limit: int = 10) -> list[tuple]:
        return self.to_rows()[:limit]

    def sorted_rows(self) -> list[tuple]:
        return sorted(self.to_rows(), key=canonical_sort_key)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def insert(self, row) -> None:
        """Append one row tuple (schema column order)."""
        self._check_valid()
        self._delta.append(row)
        self._maybe_autocompact()

    def insert_rows(self, rows) -> int:
        """Append an iterable of row tuples atomically (a malformed row
        rejects the whole batch); returns the count."""
        self._check_valid()
        count = self._delta.append_rows(rows)
        self._maybe_autocompact()
        return count

    def delete(self, predicate=None) -> int:
        """Delete visible rows matching ``predicate`` (all when None);
        returns the number deleted.

        Main-store victims are found in the compressed domain — the
        predicate's bitmap, AND-ed with the validity bitmap — without
        materializing any row.
        """
        self._check_valid()
        count = 0
        for position in self._matching_main_positions(predicate):
            if self._delta.delete_main(int(position)):
                count += 1
        for index in self._matching_delta_indices(predicate):
            if self._delta.delete_delta(index):
                count += 1
        self._maybe_autocompact()
        return count

    def update(self, assignments: dict, predicate=None) -> int:
        """Set ``assignments`` (column -> new value) on rows matching
        ``predicate``; returns the number updated.

        An update is a delete of the old version plus an append of the
        new one — the standard out-of-place write of a main/delta store,
        so the compressed main is never patched.
        """
        self._check_valid()
        if not assignments:
            return 0
        names = self.schema.column_names
        for column in assignments:
            if column not in names:
                raise SchemaError(
                    f"no column {column!r} in table {self.name!r}"
                )
        coerced = {
            column: coerce(value, self.schema.column(column).dtype)
            for column, value in assignments.items()
        }

        main_positions = self._matching_main_positions(predicate)
        old_main = (
            self._main.select_rows(main_positions, compact=True).to_rows()
            if len(main_positions)
            else []
        )
        delta_indices = self._matching_delta_indices(predicate)
        old_delta = [self._delta.row(index) for index in delta_indices]

        for position in main_positions:
            self._delta.delete_main(int(position))
        for index in delta_indices:
            self._delta.delete_delta(index)
        count = 0
        for row in old_main + old_delta:
            updated = tuple(
                coerced.get(name, value) for name, value in zip(names, row)
            )
            self._delta.append(updated)
            count += 1
        self._maybe_autocompact()
        return count

    def _matching_main_positions(self, predicate) -> np.ndarray:
        """Sorted visible main positions satisfying ``predicate``."""
        surviving = self._delta.surviving_main_positions(self._main.nrows)
        if predicate is None:
            return surviving
        predicate.validate(self.schema)
        matching = predicate.bitmap(self._main).positions()
        return np.intersect1d(matching, surviving, assume_unique=True)

    def _matching_delta_indices(self, predicate) -> list[int]:
        """Live delta indices satisfying ``predicate`` (row at a time —
        the buffer is uncompressed)."""
        indices = self._delta.live_indices()
        if predicate is None:
            return indices
        predicate.validate(self.schema)
        columns = self._delta.columns
        return [
            index
            for index in indices
            if predicate.matches(lambda attr, i=index: columns[attr][i])
        ]

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self, reason: str = "manual") -> Table:
        """Fold the delta into a fresh all-WAH main table.

        Surviving main rows are kept by bitmap filtering (never
        decompressed), buffered rows are WAH-encoded via the streaming
        builder, and the two parts are concatenated per column.
        Afterwards the buffer is empty and the returned table *is* the
        new main.
        """
        self._check_valid()
        if self._delta.is_empty:
            return self._main
        keep = self._delta.surviving_main_positions(self._main.nrows)
        columns = {}
        for column_schema in self.schema.columns:
            main_part = self._main.column(column_schema.name)
            if len(keep) != self._main.nrows:
                main_part = main_part.select(keep, compact=True)
            delta_part = _delta_column(
                column_schema.name,
                column_schema.dtype,
                self._delta.live_values(column_schema.name),
                main_part.codec_name,
            )
            if delta_part.nrows:
                merged = main_part.concat(delta_part)
            else:
                merged = main_part
            columns[column_schema.name] = merged
        nrows = len(keep) + self._delta.n_live
        self._main = Table(self.schema, columns, nrows)
        self._delta = DeltaStore(self.schema)
        self.compactions += 1
        if self.on_compact is not None:
            self.on_compact(self._main, reason)
        return self._main

    def restore_delta(self, store: DeltaStore) -> None:
        """Adopt a persisted write buffer (see ``storage.filefmt``).

        Only valid while the current buffer is empty — a delta belongs
        to exactly one main-store generation.
        """
        self._check_valid()
        if self.has_pending_changes:
            raise SchemaError(
                f"table {self.name!r} already has pending changes"
            )
        if store.schema.column_names != self.schema.column_names:
            raise SchemaError(
                f"delta schema does not match table {self.name!r}"
            )
        self._delta = store

    def _maybe_autocompact(self) -> None:
        reason = self.policy.should_compact(self.delta_stats())
        if reason is not None:
            self.compact(f"auto: {reason}")

    # ------------------------------------------------------------------
    # Comparison helpers (tests, verification)
    # ------------------------------------------------------------------

    def same_content(self, other, ordered: bool = False) -> bool:
        """Logical equality against a :class:`Table` or another
        :class:`MutableTable` (merged view on both sides)."""
        if self.schema.column_names != other.schema.column_names:
            return False
        if self.nrows != other.nrows:
            return False
        if ordered:
            return self.to_rows() == other.to_rows()
        return self.sorted_rows() == other.sorted_rows()

    def __repr__(self) -> str:
        return (
            f"MutableTable({self.name!r}, main={self._main.nrows}, "
            f"delta=+{self._delta.n_live}/-{len(self._delta.deleted_main)}, "
            f"compactions={self.compactions})"
        )
