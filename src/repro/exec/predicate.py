"""Predicate compilation: SQL/SMO predicate trees as batch evaluators.

:func:`compile_predicate` turns a :class:`~repro.smo.predicate.
Predicate` tree into a closure evaluated *column-wise*: each
:class:`~repro.smo.predicate.Comparison` becomes one pass over the
referenced column's value vector at the selected positions, and the
boolean combinators (AND/OR/NOT) reduce to NumPy mask algebra instead
of per-row short-circuiting.  This is the evaluation strategy for
batches whose values are plain vectors (:class:`~repro.exec.batch.
ValuesBatch`, and :class:`~repro.exec.batch.DeltaBatch` below the
index threshold); the compressed main store never uses it — its
predicates resolve to bitmaps without decoding (``Predicate.bitmap``).

Semantics are exactly those of ``Predicate.matches``: the per-value
tests are the comparison's own (:meth:`Comparison.value_test`), so the
row path and the batch path cannot disagree on an edge case like NULL
ordering.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SqlExecutionError
from repro.smo.predicate import And, Comparison, Not, Or

#: An evaluator takes (columns, positions) — a name->vector mapping and
#: the physical positions under evaluation — and returns a boolean mask
#: aligned with ``positions``.


def compile_predicate(predicate):
    """Compile a predicate tree into a columnar evaluator."""
    if isinstance(predicate, Comparison):
        attr = predicate.attr
        test = predicate.value_test()

        def evaluate(columns, positions):
            values = columns[attr]
            return np.fromiter(
                (test(values[index]) for index in positions),
                dtype=bool,
                count=len(positions),
            )

        return evaluate
    if isinstance(predicate, (And, Or)):
        left = compile_predicate(predicate.left)
        right = compile_predicate(predicate.right)
        if isinstance(predicate, And):
            # Evaluate the right side only where the left still holds.
            def evaluate(columns, positions):
                mask = left(columns, positions)
                alive = np.flatnonzero(mask)
                if len(alive):
                    mask[alive] &= right(columns, positions[alive])
                return mask

            return evaluate

        def evaluate(columns, positions):
            mask = left(columns, positions)
            dead = np.flatnonzero(~mask)
            if len(dead):
                mask[dead] |= right(columns, positions[dead])
            return mask

        return evaluate
    if isinstance(predicate, Not):
        inner = compile_predicate(predicate.inner)

        def evaluate(columns, positions):
            return ~inner(columns, positions)

        return evaluate
    raise SqlExecutionError(
        f"cannot compile predicate {predicate!r}"
    )  # pragma: no cover - all Predicate kinds handled above
