"""Batch iterators: the operators of the vectorized pipeline.

Every operator consumes and produces an iterator of
:class:`~repro.exec.batch.ColumnBatch`, so a plan is a lazy chain
``scan → filter → project → [hash_join] → limit`` that materializes
tuples only at the very end (:func:`iter_rows`).  Laziness is what
gives LIMIT its early exit for free: a truncated consumer simply stops
pulling, and upstream batches — whole storage chunks — are never
decoded.
"""

from __future__ import annotations

from itertools import chain

from repro.errors import SqlExecutionError
from repro.exec.batch import ValuesBatch

#: Rows per batch when wrapping a tuple stream (the generic fallback
#: for adapters without a native ``scan_batches``).
DEFAULT_BATCH_ROWS = 4096


def batches_from_rows(column_names, rows, batch_rows: int = DEFAULT_BATCH_ROWS):
    """Chunk a row-tuple stream into :class:`ValuesBatch` windows.

    This is the storage-to-pipeline shim for row-oriented sources: rows
    are transposed into column vectors one window at a time, lazily, so
    an early-exiting consumer never pays for the tail of the scan.
    """
    column_names = tuple(column_names)
    chunk: list = []
    for row in rows:
        chunk.append(row)
        if len(chunk) >= batch_rows:
            yield ValuesBatch.from_rows(column_names, chunk)
            chunk = []
    if chunk:
        yield ValuesBatch.from_rows(column_names, chunk)


def filter_batches(batches, predicate):
    """Apply ``predicate`` to every batch; emptied batches are dropped
    so downstream operators never see them."""
    for batch in batches:
        filtered = batch.filter(predicate)
        if filtered.selected_count:
            yield filtered


def iter_rows(batches, out_positions=None, stats=None):
    """Materialize batches into projected row tuples — the pipeline's
    boundary, and the only place values become tuples.  Batches are
    pulled (and materialized) one at a time, but their rows flow
    through a C-level chain, so a full scan costs a list splice rather
    than a per-row generator hop.

    ``stats`` (an :class:`repro.obs.ExecStats`) counts batches and
    decoded rows *here*, per materialized batch — one ``len()`` per
    4096-row window, which is what keeps the always-on accounting
    inside the observability overhead gate."""
    if stats is None:
        return chain.from_iterable(
            batch.rows(out_positions) for batch in batches
        )

    def counted(batch):
        rows = batch.rows(out_positions)
        stats.batches += 1
        stats.rows_decoded += len(rows)
        return rows

    return chain.from_iterable(counted(batch) for batch in batches)


def dedup_rows(rows):
    """Streaming DISTINCT (first occurrence wins, order preserved)."""
    seen = set()
    for row in rows:
        if row not in seen:
            seen.add(row)
            yield row


def limit_rows(rows, limit: int):
    """Stop after ``limit`` rows.  Because the whole pipeline is lazy,
    stopping here stops the scan itself — unread batches are never
    decoded."""
    for index, row in enumerate(rows):
        if index >= limit:
            return
        yield row


def hash_join_rows(left_batches, right_batches, left_names, right_names,
                   join_attrs, out_columns):
    """Generic equi-join over two batch pipelines (build on the right).

    The build side is drained batch-wise into hash buckets keyed by the
    join attributes; the probe side streams, so output order follows
    the left pipeline's row order (main store first, then delta — the
    same order the row-wise join produced).
    """
    left_names = tuple(left_names)
    right_names = tuple(right_names)
    left_index = {name: i for i, name in enumerate(left_names)}
    right_index = {name: i for i, name in enumerate(right_names)}
    left_pos = [left_index[a] for a in join_attrs]
    right_pos = [right_index[a] for a in join_attrs]
    resolution = []
    for attr in out_columns:
        if attr in left_index:
            resolution.append(("L", left_index[attr]))
        elif attr in right_index:
            resolution.append(("R", right_index[attr]))
        else:
            raise SqlExecutionError(f"unknown join column {attr!r}")
    buckets: dict = {}
    for row in iter_rows(right_batches):
        key = tuple(row[p] for p in right_pos)
        buckets.setdefault(key, []).append(row)
    for left_row in iter_rows(left_batches):
        key = tuple(left_row[p] for p in left_pos)
        for right_row in buckets.get(key, ()):
            yield tuple(
                left_row[p] if side == "L" else right_row[p]
                for side, p in resolution
            )
