"""Planning SELECTs onto the batch pipeline.

:func:`execute_select` is the one SELECT entry point of the
reproduction: :class:`~repro.sql.executor.SqlExecutor` delegates every
query — on every registered backend — here.  The plan is always the
same lazy chain::

    adapter.scan_batches ── filter (selection bitmaps) ── project
        ── [hash_join] ── DISTINCT/ORDER BY ── LIMIT ── tuples

with each stage choosing its strategy from the batch kind the adapter
emitted (compressed-domain bitmaps, delta hash indexes, or compiled
columnar evaluators).  Semantics — row order, duplicate handling,
error messages — match the historical row-at-a-time executor exactly;
tier-1 equivalence is pinned by
``tests/property/test_exec_properties.py``.
"""

from __future__ import annotations

from repro.errors import SqlExecutionError
from repro.exec.operators import (
    batches_from_rows,
    dedup_rows,
    filter_batches,
    hash_join_rows,
    iter_rows,
    limit_rows,
)


def execute_select(adapter, select):
    """Run a parsed SELECT on ``adapter`` via the batch pipeline;
    returns a lazy iterator of result tuples."""
    from repro.sql.adapter import require_table

    require_table(adapter, select.table)
    left_schema = adapter.schema(select.table)

    if select.join is not None:
        require_table(adapter, select.join.table)
        right_schema = adapter.schema(select.join.table)
        out_columns = select.columns or (
            left_schema.column_names
            + tuple(
                name
                for name in right_schema.column_names
                if name not in select.join.join_attrs
            )
        )
        column_names = tuple(out_columns)
        if adapter.capabilities.hash_join:
            rows = adapter.hash_join(
                select.table, select.join.table,
                select.join.join_attrs, out_columns,
            )
        else:
            rows = hash_join_rows(
                adapter.scan_batches(select.table),
                adapter.scan_batches(select.join.table),
                left_schema.column_names,
                right_schema.column_names,
                select.join.join_attrs,
                out_columns,
            )
        if select.where is not None:
            # Joined rows re-enter the pipeline as value batches so the
            # residual predicate runs columnar like any other filter.
            rows = iter_rows(
                filter_batches(
                    batches_from_rows(column_names, rows), select.where
                )
            )
    else:
        column_names = select.columns or left_schema.column_names
        # Validate before any scan work: a bad predicate or projection
        # must not cost a decode (or skew the baselines' materialization
        # accounting).
        if select.where is not None:
            select.where.validate(left_schema)
        if tuple(column_names) == left_schema.column_names:
            out_positions = None  # identity projection
        else:
            out_positions = [
                left_schema.index_of(name) for name in column_names
            ]
        batches = adapter.scan_batches(select.table)
        if select.where is not None:
            batches = filter_batches(batches, select.where)
        rows = iter_rows(batches, out_positions)

    if select.distinct:
        rows = dedup_rows(rows)
    if select.order_by is not None:
        column, ascending = select.order_by
        if column not in column_names:
            raise SqlExecutionError(
                f"ORDER BY column {column!r} not in the select list"
            )
        index = column_names.index(column)
        rows = iter(
            sorted(
                rows,
                key=lambda r: (r[index] is None, r[index]),
                reverse=not ascending,
            )
        )
    if select.limit is not None:
        rows = limit_rows(rows, select.limit)
    return rows
