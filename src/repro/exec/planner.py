"""Planning SELECTs onto the batch pipeline.

:func:`execute_select` is the one SELECT entry point of the
reproduction: :class:`~repro.sql.executor.SqlExecutor` delegates every
query — on every registered backend — here.  The plan is always the
same lazy chain::

    adapter.scan_batches ── filter (selection bitmaps) ── project
        ── [hash_join] ── DISTINCT/ORDER BY ── LIMIT ── tuples

with each stage choosing its strategy from the batch kind the adapter
emitted (compressed-domain bitmaps, delta hash indexes, or compiled
columnar evaluators).  Semantics — row order, duplicate handling,
error messages — match the historical row-at-a-time executor exactly;
tier-1 equivalence is pinned by
``tests/property/test_exec_properties.py``.

Observability hooks (see ``docs/observability.md``):

* ``stats`` — an :class:`repro.obs.ExecStats`; batch and decoded-row
  counts accumulate per *batch* at the materialization boundary, so
  the always-on accounting adds no per-row work;
* ``trace`` — a timed :class:`repro.obs.QueryTrace`; every stage is
  wrapped in a timing iterator and emits a :class:`repro.obs.Span`
  with inclusive wall time (this is the EXPLAIN ANALYZE path and is
  never active by default);
* :func:`plan_select` — the static span tree for plain EXPLAIN,
  built without executing (and therefore without charging any
  backend's materialization counters).
"""

from __future__ import annotations

import time

from repro.errors import SqlExecutionError
from repro.exec.aggregate import (
    GroupAccumulator,
    accumulate_batch,
    aggregate_output_names,
    choose_aggregate_strategy,
    distinct_values,
    ordered_rows,
    validate_aggregate_select,
)
from repro.exec.operators import (
    batches_from_rows,
    dedup_rows,
    filter_batches,
    hash_join_rows,
    iter_rows,
    limit_rows,
)


def _use_vid_distinct(adapter, select) -> bool:
    """DISTINCT reroutes to live-vid enumeration when it is a single
    projected column on a pushdown backend (no join) — the conditions
    are static so plain EXPLAIN renders the same choice."""
    return (
        select.distinct
        and select.join is None
        and adapter.capabilities.pushdown
        and select.columns is not None
        and len(select.columns) == 1
        and isinstance(select.columns[0], str)
    )


def _use_presorted_order(adapter, select, column_names) -> bool:
    """ORDER BY reroutes to dictionary-order presorted runs on a
    pushdown backend when no join/DISTINCT/aggregation intervenes and
    the sort column is projected (also static)."""
    return (
        select.order_by is not None
        and select.join is None
        and not select.distinct
        and not select.is_aggregate
        and adapter.capabilities.pushdown
        and select.order_by[0] in column_names
    )


def _scan_detail(adapter, table: str) -> str:
    """The backend path a scan of ``table`` takes, from the adapter's
    declared capabilities (static — safe for plan-only EXPLAIN)."""
    capabilities = adapter.capabilities
    if capabilities.pushdown:
        path = "main: compressed-domain bitmap, delta: hash index"
    elif capabilities.hash_join:
        path = "row heap via compiled evaluator batches"
    else:
        path = "decoded column vectors via compiled evaluator"
    return f"table={table} ({path})"


def _observed_batches(batches, span):
    """Pass batches through, timing the pull (inclusive of upstream)
    and recording batch count, selected rows, and the batch kinds
    actually seen (TableBatch / DeltaBatch / ValuesBatch — the
    compressed-domain, hash-index and compiled-evaluator paths)."""
    base_detail = span.detail
    kinds: list[str] = []
    iterator = iter(batches)
    while True:
        started = time.perf_counter()
        try:
            batch = next(iterator)
        except StopIteration:
            span.seconds += time.perf_counter() - started
            return
        span.seconds += time.perf_counter() - started
        span.batches += 1
        span.rows_out += batch.selected_count
        kind = type(batch).__name__
        if kind not in kinds:
            kinds.append(kind)
            joined = "+".join(kinds)
            span.detail = (
                f"{base_detail} [{joined}]" if base_detail else joined
            )
        yield batch


def _plan_spans(adapter, select, trace, sql_detail=True):
    """Build the span skeleton for ``select`` on ``trace`` and return
    the spans keyed by stage name (stages absent from the query are
    omitted).  Shared by the static plan and the analyzed run so both
    render the same tree."""
    root = trace.span("select", f"table={select.table}")
    spans = {"select": root}
    if select.is_aggregate and select.join is None:
        spans["scan"] = root.child(
            "scan", _scan_detail(adapter, select.table)
        )
        if select.where is not None:
            spans["filter"] = root.child("filter", f"where {select.where}")
        strategy, reason = choose_aggregate_strategy(
            select,
            adapter.table_stats(select.table),
            pushdown=adapter.capabilities.pushdown,
        )
        output = ",".join(aggregate_output_names(select))
        grouped = (
            f" group_by={','.join(select.group_by)}"
            if select.group_by
            else ""
        )
        spans["aggregate"] = root.child(
            "aggregate", f"{strategy} [{reason}] out={output}{grouped}"
        )
        if select.order_by is not None:
            column, ascending = select.order_by
            spans["order_by"] = root.child(
                "order_by", f"{column} {'ASC' if ascending else 'DESC'}"
            )
        if select.limit is not None:
            spans["limit"] = root.child("limit", f"limit={select.limit}")
        return spans
    if select.join is not None:
        spans["scan"] = root.child(
            "scan", _scan_detail(adapter, select.table)
        )
        spans["scan_right"] = root.child(
            "scan", _scan_detail(adapter, select.join.table)
        )
        native = adapter.capabilities.hash_join
        spans["join"] = root.child(
            "hash_join",
            f"on={','.join(select.join.join_attrs)} "
            + ("(engine-native)" if native else "(batch pipeline)"),
        )
        if select.where is not None:
            spans["filter"] = root.child(
                "filter", f"residual where {select.where}"
            )
        spans["project"] = root.child("project", "joined columns")
    else:
        spans["scan"] = root.child(
            "scan", _scan_detail(adapter, select.table)
        )
        if select.where is not None:
            spans["filter"] = root.child("filter", f"where {select.where}")
        columns = select.columns or adapter.schema(select.table).column_names
        spans["project"] = root.child(
            "project", f"columns={','.join(columns)}"
        )
    if select.distinct:
        spans["distinct"] = root.child(
            "distinct",
            "live-vid enumeration"
            if _use_vid_distinct(adapter, select)
            else "streaming dedup",
        )
    if select.order_by is not None:
        column, ascending = select.order_by
        names = (
            select.columns
            if select.columns is not None
            else adapter.schema(select.table).column_names
        )
        how = (
            "dictionary-order presorted runs"
            if _use_presorted_order(adapter, select, names)
            else "materialize-and-sort"
        )
        spans["order_by"] = root.child(
            "order_by", f"{column} {'ASC' if ascending else 'DESC'} ({how})"
        )
    if select.limit is not None:
        spans["limit"] = root.child("limit", f"limit={select.limit}")
    return spans


def plan_select(adapter, select, trace):
    """Fill ``trace`` with the *static* plan of ``select`` — the span
    tree EXPLAIN renders — validating references like execution would
    but running nothing (no scan, no materialization counters)."""
    from repro.sql.adapter import require_table

    require_table(adapter, select.table)
    schema = adapter.schema(select.table)
    if select.is_aggregate:
        validate_aggregate_select(select, schema)
    if select.join is not None:
        require_table(adapter, select.join.table)
    elif select.where is not None:
        select.where.validate(schema)
    _plan_spans(adapter, select, trace)
    trace.executed = False
    return trace


def execute_select(adapter, select, stats=None, trace=None):
    """Run a parsed SELECT on ``adapter`` via the batch pipeline;
    returns a lazy iterator of result tuples.

    ``stats`` accumulates always-on batch/row counters; ``trace`` (a
    timed :class:`~repro.obs.QueryTrace`) additionally wraps each
    stage in timing iterators for EXPLAIN ANALYZE.
    """
    from repro.obs.trace import TimedIter
    from repro.sql.adapter import require_table

    require_table(adapter, select.table)
    left_schema = adapter.schema(select.table)
    if select.is_aggregate:
        # Validate (and reject aggregates over JOIN) before any span or
        # scan work — an invalid query must not cost a decode.
        group_names, aggs = validate_aggregate_select(select, left_schema)
        if select.where is not None:
            select.where.validate(left_schema)
    spans = (
        _plan_spans(adapter, select, trace) if trace is not None else None
    )
    if trace is not None:
        trace.executed = True
    vid_distinct = presorted = False

    if select.is_aggregate:
        # Statistics-driven strategy: compressed-domain (vids/popcounts)
        # when the estimated group count stays small, row-wise hash
        # aggregation otherwise.  Delta/values batches always hash;
        # both merge into one partial store, keyed by decoded group
        # values, so main+delta results are epoch-consistent.
        strategy, _reason = choose_aggregate_strategy(
            select,
            adapter.table_stats(select.table),
            pushdown=adapter.capabilities.pushdown,
        )
        batches = adapter.scan_batches(select.table)
        if spans is not None:
            batches = _observed_batches(batches, spans["scan"])
        if select.where is not None:
            batches = filter_batches(batches, select.where)
            if spans is not None:
                batches = _observed_batches(batches, spans["filter"])
        started = time.perf_counter()
        accumulator = GroupAccumulator(aggs)
        for batch in batches:
            accumulate_batch(batch, group_names, accumulator, strategy)
        result = accumulator.finalized_rows(select, group_names)
        if stats is not None:
            stats.agg_batches_compressed += accumulator.batches_compressed
            stats.agg_batches_hash += accumulator.batches_hash
            stats.agg_groups += len(accumulator.groups)
        rows = iter(result)
        if spans is not None:
            span = spans["aggregate"]
            span.seconds += time.perf_counter() - started
            span.batches = (
                accumulator.batches_compressed + accumulator.batches_hash
            )
            rows = TimedIter(rows, span)
        column_names = aggregate_output_names(select)
    elif select.join is not None:
        require_table(adapter, select.join.table)
        right_schema = adapter.schema(select.join.table)
        out_columns = select.columns or (
            left_schema.column_names
            + tuple(
                name
                for name in right_schema.column_names
                if name not in select.join.join_attrs
            )
        )
        column_names = tuple(out_columns)
        if adapter.capabilities.hash_join:
            rows = adapter.hash_join(
                select.table, select.join.table,
                select.join.join_attrs, out_columns,
            )
        else:
            left_batches = adapter.scan_batches(select.table)
            right_batches = adapter.scan_batches(select.join.table)
            if spans is not None:
                left_batches = _observed_batches(
                    left_batches, spans["scan"]
                )
                right_batches = _observed_batches(
                    right_batches, spans["scan_right"]
                )
            rows = hash_join_rows(
                left_batches,
                right_batches,
                left_schema.column_names,
                right_schema.column_names,
                select.join.join_attrs,
                out_columns,
            )
        if spans is not None:
            rows = TimedIter(rows, spans["join"])
        if select.where is not None:
            # Joined rows re-enter the pipeline as value batches so the
            # residual predicate runs columnar like any other filter.
            batches = filter_batches(
                batches_from_rows(column_names, rows), select.where
            )
            if spans is not None:
                batches = _observed_batches(batches, spans["filter"])
            rows = iter_rows(batches, stats=stats)
        if spans is not None:
            rows = TimedIter(rows, spans["project"])
    else:
        column_names = select.columns or left_schema.column_names
        # Validate before any scan work: a bad predicate or projection
        # must not cost a decode (or skew the baselines' materialization
        # accounting).
        if select.where is not None:
            select.where.validate(left_schema)
        if tuple(column_names) == left_schema.column_names:
            out_positions = None  # identity projection
        else:
            out_positions = [
                left_schema.index_of(name) for name in column_names
            ]
        batches = adapter.scan_batches(select.table)
        if spans is not None:
            batches = _observed_batches(batches, spans["scan"])
        if select.where is not None:
            batches = filter_batches(batches, select.where)
            if spans is not None:
                batches = _observed_batches(batches, spans["filter"])
        vid_distinct = _use_vid_distinct(adapter, select)
        presorted = _use_presorted_order(adapter, select, column_names)
        if vid_distinct:
            # DISTINCT on one dictionary-backed column: enumerate live
            # vids instead of decoding and hashing every row.
            rows = distinct_values(batches, column_names[0])
        elif presorted:
            # ORDER BY from dictionary-order presorted runs (main
            # store) merged with the sorted delta — no global sort.
            column, ascending = select.order_by
            rows = ordered_rows(
                batches, column, ascending, out_positions,
                column_names.index(column),
            )
        else:
            rows = iter_rows(batches, out_positions, stats=stats)
        if spans is not None:
            rows = TimedIter(rows, spans["project"])

    if select.distinct:
        if not vid_distinct:
            rows = dedup_rows(rows)
        if spans is not None:
            rows = TimedIter(rows, spans["distinct"])
    if select.order_by is not None:
        column, ascending = select.order_by
        if column not in column_names:
            raise SqlExecutionError(
                f"ORDER BY column {column!r} not in the select list"
            )
        if not presorted:
            index = column_names.index(column)
            started = time.perf_counter() if spans is not None else 0.0
            rows = iter(
                sorted(
                    rows,
                    key=lambda r: (r[index] is None, r[index]),
                    reverse=not ascending,
                )
            )
            if spans is not None:
                spans["order_by"].seconds += time.perf_counter() - started
        if spans is not None:
            rows = TimedIter(rows, spans["order_by"])
    if select.limit is not None:
        rows = limit_rows(rows, select.limit)
        if spans is not None:
            rows = TimedIter(rows, spans["limit"])
    return rows
