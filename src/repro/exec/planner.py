"""Planning SELECTs onto the batch pipeline.

:func:`execute_select` is the one SELECT entry point of the
reproduction: :class:`~repro.sql.executor.SqlExecutor` delegates every
query — on every registered backend — here.  The plan is always the
same lazy chain::

    adapter.scan_batches ── filter (selection bitmaps) ── project
        ── [hash_join] ── DISTINCT/ORDER BY ── LIMIT ── tuples

with each stage choosing its strategy from the batch kind the adapter
emitted (compressed-domain bitmaps, delta hash indexes, or compiled
columnar evaluators).  Semantics — row order, duplicate handling,
error messages — match the historical row-at-a-time executor exactly;
tier-1 equivalence is pinned by
``tests/property/test_exec_properties.py``.

Observability hooks (see ``docs/observability.md``):

* ``stats`` — an :class:`repro.obs.ExecStats`; batch and decoded-row
  counts accumulate per *batch* at the materialization boundary, so
  the always-on accounting adds no per-row work;
* ``trace`` — a timed :class:`repro.obs.QueryTrace`; every stage is
  wrapped in a timing iterator and emits a :class:`repro.obs.Span`
  with inclusive wall time (this is the EXPLAIN ANALYZE path and is
  never active by default);
* :func:`plan_select` — the static span tree for plain EXPLAIN,
  built without executing (and therefore without charging any
  backend's materialization counters).
"""

from __future__ import annotations

import time

from repro.errors import SqlExecutionError
from repro.exec.operators import (
    batches_from_rows,
    dedup_rows,
    filter_batches,
    hash_join_rows,
    iter_rows,
    limit_rows,
)


def _scan_detail(adapter, table: str) -> str:
    """The backend path a scan of ``table`` takes, from the adapter's
    declared capabilities (static — safe for plan-only EXPLAIN)."""
    capabilities = adapter.capabilities
    if capabilities.pushdown:
        path = "main: compressed-domain bitmap, delta: hash index"
    elif capabilities.hash_join:
        path = "row heap via compiled evaluator batches"
    else:
        path = "decoded column vectors via compiled evaluator"
    return f"table={table} ({path})"


def _observed_batches(batches, span):
    """Pass batches through, timing the pull (inclusive of upstream)
    and recording batch count, selected rows, and the batch kinds
    actually seen (TableBatch / DeltaBatch / ValuesBatch — the
    compressed-domain, hash-index and compiled-evaluator paths)."""
    base_detail = span.detail
    kinds: list[str] = []
    iterator = iter(batches)
    while True:
        started = time.perf_counter()
        try:
            batch = next(iterator)
        except StopIteration:
            span.seconds += time.perf_counter() - started
            return
        span.seconds += time.perf_counter() - started
        span.batches += 1
        span.rows_out += batch.selected_count
        kind = type(batch).__name__
        if kind not in kinds:
            kinds.append(kind)
            joined = "+".join(kinds)
            span.detail = (
                f"{base_detail} [{joined}]" if base_detail else joined
            )
        yield batch


def _plan_spans(adapter, select, trace, sql_detail=True):
    """Build the span skeleton for ``select`` on ``trace`` and return
    the spans keyed by stage name (stages absent from the query are
    omitted).  Shared by the static plan and the analyzed run so both
    render the same tree."""
    root = trace.span("select", f"table={select.table}")
    spans = {"select": root}
    if select.join is not None:
        spans["scan"] = root.child(
            "scan", _scan_detail(adapter, select.table)
        )
        spans["scan_right"] = root.child(
            "scan", _scan_detail(adapter, select.join.table)
        )
        native = adapter.capabilities.hash_join
        spans["join"] = root.child(
            "hash_join",
            f"on={','.join(select.join.join_attrs)} "
            + ("(engine-native)" if native else "(batch pipeline)"),
        )
        if select.where is not None:
            spans["filter"] = root.child(
                "filter", f"residual where {select.where}"
            )
        spans["project"] = root.child("project", "joined columns")
    else:
        spans["scan"] = root.child(
            "scan", _scan_detail(adapter, select.table)
        )
        if select.where is not None:
            spans["filter"] = root.child("filter", f"where {select.where}")
        columns = select.columns or adapter.schema(select.table).column_names
        spans["project"] = root.child(
            "project", f"columns={','.join(columns)}"
        )
    if select.distinct:
        spans["distinct"] = root.child("distinct", "streaming dedup")
    if select.order_by is not None:
        column, ascending = select.order_by
        spans["order_by"] = root.child(
            "order_by", f"{column} {'ASC' if ascending else 'DESC'}"
        )
    if select.limit is not None:
        spans["limit"] = root.child("limit", f"limit={select.limit}")
    return spans


def plan_select(adapter, select, trace):
    """Fill ``trace`` with the *static* plan of ``select`` — the span
    tree EXPLAIN renders — validating references like execution would
    but running nothing (no scan, no materialization counters)."""
    from repro.sql.adapter import require_table

    require_table(adapter, select.table)
    schema = adapter.schema(select.table)
    if select.join is not None:
        require_table(adapter, select.join.table)
    elif select.where is not None:
        select.where.validate(schema)
    _plan_spans(adapter, select, trace)
    trace.executed = False
    return trace


def execute_select(adapter, select, stats=None, trace=None):
    """Run a parsed SELECT on ``adapter`` via the batch pipeline;
    returns a lazy iterator of result tuples.

    ``stats`` accumulates always-on batch/row counters; ``trace`` (a
    timed :class:`~repro.obs.QueryTrace`) additionally wraps each
    stage in timing iterators for EXPLAIN ANALYZE.
    """
    from repro.obs.trace import TimedIter
    from repro.sql.adapter import require_table

    require_table(adapter, select.table)
    left_schema = adapter.schema(select.table)
    spans = (
        _plan_spans(adapter, select, trace) if trace is not None else None
    )
    if trace is not None:
        trace.executed = True

    if select.join is not None:
        require_table(adapter, select.join.table)
        right_schema = adapter.schema(select.join.table)
        out_columns = select.columns or (
            left_schema.column_names
            + tuple(
                name
                for name in right_schema.column_names
                if name not in select.join.join_attrs
            )
        )
        column_names = tuple(out_columns)
        if adapter.capabilities.hash_join:
            rows = adapter.hash_join(
                select.table, select.join.table,
                select.join.join_attrs, out_columns,
            )
        else:
            left_batches = adapter.scan_batches(select.table)
            right_batches = adapter.scan_batches(select.join.table)
            if spans is not None:
                left_batches = _observed_batches(
                    left_batches, spans["scan"]
                )
                right_batches = _observed_batches(
                    right_batches, spans["scan_right"]
                )
            rows = hash_join_rows(
                left_batches,
                right_batches,
                left_schema.column_names,
                right_schema.column_names,
                select.join.join_attrs,
                out_columns,
            )
        if spans is not None:
            rows = TimedIter(rows, spans["join"])
        if select.where is not None:
            # Joined rows re-enter the pipeline as value batches so the
            # residual predicate runs columnar like any other filter.
            batches = filter_batches(
                batches_from_rows(column_names, rows), select.where
            )
            if spans is not None:
                batches = _observed_batches(batches, spans["filter"])
            rows = iter_rows(batches, stats=stats)
        if spans is not None:
            rows = TimedIter(rows, spans["project"])
    else:
        column_names = select.columns or left_schema.column_names
        # Validate before any scan work: a bad predicate or projection
        # must not cost a decode (or skew the baselines' materialization
        # accounting).
        if select.where is not None:
            select.where.validate(left_schema)
        if tuple(column_names) == left_schema.column_names:
            out_positions = None  # identity projection
        else:
            out_positions = [
                left_schema.index_of(name) for name in column_names
            ]
        batches = adapter.scan_batches(select.table)
        if spans is not None:
            batches = _observed_batches(batches, spans["scan"])
        if select.where is not None:
            batches = filter_batches(batches, select.where)
            if spans is not None:
                batches = _observed_batches(batches, spans["filter"])
        rows = iter_rows(batches, out_positions, stats=stats)
        if spans is not None:
            rows = TimedIter(rows, spans["project"])

    if select.distinct:
        rows = dedup_rows(rows)
        if spans is not None:
            rows = TimedIter(rows, spans["distinct"])
    if select.order_by is not None:
        column, ascending = select.order_by
        if column not in column_names:
            raise SqlExecutionError(
                f"ORDER BY column {column!r} not in the select list"
            )
        index = column_names.index(column)
        started = time.perf_counter() if spans is not None else 0.0
        rows = iter(
            sorted(
                rows,
                key=lambda r: (r[index] is None, r[index]),
                reverse=not ascending,
            )
        )
        if spans is not None:
            span = spans["order_by"]
            span.seconds += time.perf_counter() - started
            rows = TimedIter(rows, span)
    if select.limit is not None:
        rows = limit_rows(rows, select.limit)
        if spans is not None:
            rows = TimedIter(rows, spans["limit"])
    return rows
