"""Compressed-domain aggregation and the vid-level DISTINCT/ORDER BY.

The dictionary-plus-bitmaps layout makes three classic read-path
operations cheap *without decoding rows*:

* **GROUP BY / aggregates** — a :class:`~repro.exec.batch.TableBatch`
  groups by dictionary *vids*: ``COUNT`` is a bitmap population count
  (``repro.bitmap.batch.batch_count``) intersected with the selection,
  SUM/MIN/MAX/AVG fold per-vid counts against the dictionary's O(
  distinct) value list, and multi-column / mixed aggregates run over
  vectorized vid arrays.  Delta and values batches fall back to a
  row-wise hash aggregator; both sides produce *partials* keyed by
  decoded group values that merge epoch-consistently, so a query sees
  exactly the main+delta state its scan pinned.
* **DISTINCT** — on a single dictionary-backed column, distinct values
  are the live vids; enumeration orders them by first selected
  position, reproducing the streaming-dedup row order exactly.
* **ORDER BY** — each value bitmap's positions are an already-sorted
  run, so the main store emits dictionary-order presorted runs that
  merge (``heapq.merge``) with the sorted delta rows instead of
  materializing and sorting the whole table.

Strategy choice is statistics-driven: :func:`choose_aggregate_strategy`
consults :class:`~repro.storage.statistics.TableStats` (distinct
counts, delta share) and falls back to the hash aggregator when the
estimated group count approaches the row count — the reason string it
returns is what EXPLAIN renders.
"""

from __future__ import annotations

import heapq
import weakref
from collections import Counter

import numpy as np

from repro.bitmap.batch import batch_first_set, batch_positions, batch_vids_at
from repro.errors import SqlExecutionError
from repro.exec.batch import TableBatch, gather, project_rows
from repro.sql.ast import AGGREGATE_FUNCTIONS, Aggregate

__all__ = [
    "GroupAccumulator",
    "accumulate_batch",
    "aggregate_rows",
    "choose_aggregate_strategy",
    "distinct_values",
    "ordered_rows",
    "validate_aggregate_select",
]

#: Sentinel for "no value seen yet" in MIN/MAX partials (``None`` is a
#: legal SQL value that aggregates must *skip*, so it cannot stand in).
_MISSING = object()

#: Estimated-groups floor below which compressed-domain aggregation is
#: always preferred (grouping cost is bounded by the dictionary size).
_COMPRESSED_MIN_GROUPS = 64


def validate_aggregate_select(select, schema) -> tuple:
    """Validate an aggregating SELECT against ``schema``; returns the
    ``(group_names, aggregates)`` pair execution uses.

    Rules match the usual SQL semantics for the supported subset: no
    aggregates over JOIN, ``SELECT *`` cannot be grouped, every bare
    select-list column must appear in GROUP BY, and every referenced
    column must exist.
    """
    if select.join is not None:
        raise SqlExecutionError("aggregates over JOIN are not supported")
    if select.distinct:
        raise SqlExecutionError(
            "DISTINCT cannot be combined with GROUP BY or aggregates"
        )
    if select.columns is None:
        raise SqlExecutionError(
            "SELECT * cannot be combined with GROUP BY or aggregates"
        )
    for name in select.group_by:
        if not schema.has_column(name):
            raise SqlExecutionError(
                f"no column {name!r} in table {select.table!r}"
            )
    aggregates = []
    for item in select.columns:
        if isinstance(item, Aggregate):
            if item.func not in AGGREGATE_FUNCTIONS:
                raise SqlExecutionError(
                    f"unknown aggregate function {item.func!r}"
                )
            if item.column is None and item.func != "count":
                raise SqlExecutionError(
                    f"{item.func.upper()}(*) is not supported"
                )
            if item.column is not None and not schema.has_column(item.column):
                raise SqlExecutionError(
                    f"no column {item.column!r} in table {select.table!r}"
                )
            aggregates.append(item)
        elif item not in select.group_by:
            raise SqlExecutionError(
                f"column {item!r} must appear in GROUP BY to be selected "
                "alongside aggregates"
            )
    return tuple(select.group_by), tuple(aggregates)


def aggregate_output_names(select) -> tuple[str, ...]:
    """Result column names in select-list order (aggregates labeled
    ``func(column)``)."""
    return tuple(
        item.label if isinstance(item, Aggregate) else item
        for item in select.columns
    )


def choose_aggregate_strategy(select, stats, pushdown=True) -> tuple[str, str]:
    """Pick ``compressed`` vs ``hash`` aggregation and say why.

    The compressed path's grouping cost is bounded by the number of
    distinct group-key combinations (dictionary sizes), so it wins
    whenever that estimate stays well below the main-store row count;
    a high-cardinality GROUP BY degenerates to per-group bookkeeping
    and the row-wise hash aggregator is no worse.  Without statistics
    (a row-oriented backend) or compressed batches (an adapter whose
    scans decode to values, ``pushdown=False``) only the hash path
    exists.
    """
    if not pushdown:
        return "hash", "scan decodes to values (no compressed batches)"
    if stats is None:
        return "hash", "no table statistics (row-wise backend)"
    estimated = 1
    for name in select.group_by:
        column = stats.column(name)
        if column is None:
            return "hash", f"no statistics for group column {name!r}"
        estimated *= max(1, column.distinct)
    ceiling = max(_COMPRESSED_MIN_GROUPS, stats.main_rows // 8)
    if estimated > ceiling:
        return (
            "hash",
            f"estimated groups {estimated} > ceiling {ceiling} "
            f"(main_rows/8)",
        )
    return (
        "compressed",
        f"estimated groups {estimated} <= ceiling {ceiling}, "
        f"delta share {stats.delta_share:.1%}",
    )


# ----------------------------------------------------------------------
# Partial state
# ----------------------------------------------------------------------


class GroupAccumulator:
    """Running aggregate partials keyed by decoded group-value tuples.

    Per aggregate the partial state is: ``count`` → running count;
    ``sum``/``avg`` → ``[total, nonnull]``; ``min``/``max`` → the best
    value seen or :data:`_MISSING`.  Compressed and hash batches both
    merge into the same structure, which is what makes main-store
    partials and delta partials composable at any epoch.
    """

    __slots__ = ("aggs", "groups", "batches_compressed", "batches_hash")

    def __init__(self, aggs):
        self.aggs = tuple(aggs)
        self.groups: dict[tuple, list] = {}
        self.batches_compressed = 0
        self.batches_hash = 0

    def _new_state(self) -> list:
        state: list = []
        for agg in self.aggs:
            if agg.func == "count":
                state.append(0)
            elif agg.func in ("sum", "avg"):
                state.append([0, 0])
            else:
                state.append(_MISSING)
        return state

    def state(self, key: tuple) -> list:
        found = self.groups.get(key)
        if found is None:
            found = self._new_state()
            self.groups[key] = found
        return found

    def merge_minmax(self, state: list, index: int, func: str, value):
        current = state[index]
        if current is _MISSING:
            state[index] = value
        elif func == "min":
            if value < current:
                state[index] = value
        elif value > current:
            state[index] = value

    def finalized_rows(self, select, group_names) -> list[tuple]:
        """Decode partials into result rows in select-list order.

        An ungrouped aggregate over zero rows still yields one row
        (COUNT = 0, the others NULL).  Output is sorted by group key
        (NULLs last) so results are deterministic across strategies
        and backends.
        """
        groups = self.groups
        if not groups and not group_names:
            groups = {(): self._new_state()}
        layout = []
        for item in select.columns:
            if isinstance(item, Aggregate):
                layout.append(("agg", self.aggs.index(item)))
            else:
                layout.append(("key", group_names.index(item)))
        rows = []
        for key, state in groups.items():
            out = []
            for kind, index in layout:
                if kind == "key":
                    out.append(key[index])
                else:
                    out.append(_finalize_one(self.aggs[index], state[index]))
            rows.append((key, tuple(out)))
        try:
            rows.sort(key=lambda pair: tuple(
                (value is None, value) for value in pair[0]
            ))
        except TypeError:
            pass  # incomparable mixed keys: keep accumulation order
        return [out for _key, out in rows]


def _finalize_one(agg, state):
    func = agg.func
    if func == "count":
        return state
    if func == "sum":
        return state[0] if state[1] else None
    if func == "avg":
        return state[0] / state[1] if state[1] else None
    return None if state is _MISSING else state


def _require_numeric(agg, value):
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SqlExecutionError(
            f"{agg.func.upper()}({agg.column}) requires a numeric column, "
            f"got {type(value).__name__}"
        )


# ----------------------------------------------------------------------
# Compressed-domain path (TableBatch)
# ----------------------------------------------------------------------


def _selected_value_counts(column, selection) -> np.ndarray:
    """Per-vid selected-row counts — population counts intersected with
    the selection bitmap; no row decode.

    When one side of the selection is small (a validity mask deleting a
    few rows, or a highly selective predicate) the counts come from the
    cached full popcounts plus point lookups (:func:`batch_vids_at`) on
    the small side alone, skipping the full position decode."""
    nvids = column.distinct_count
    if selection is None:
        return column.value_counts()
    dense = selection.to_dense()
    selected = int(selection.count())
    smaller = min(selected, column.nrows - selected)
    if nvids * (64 + smaller) <= 8 * max(1, column.nrows):
        if selected <= column.nrows - selected:
            vids = batch_vids_at(column.bitmaps, np.flatnonzero(dense))
            return np.bincount(vids[vids >= 0], minlength=nvids)
        vids = batch_vids_at(column.bitmaps, np.flatnonzero(~dense))
        counts = np.array(
            [bm.count() for bm in column.bitmaps], dtype=np.int64
        )
        return counts - np.bincount(vids[vids >= 0], minlength=nvids)
    flat, bounds = batch_positions(column.bitmaps)
    if not len(flat):
        return np.zeros(nvids, dtype=np.int64)
    keep = dense[flat]
    vid_per_position = np.repeat(
        np.arange(nvids, dtype=np.int64), np.diff(bounds)
    )
    return np.bincount(vid_per_position[keep], minlength=nvids)


#: Row-order vid arrays per (main-store table, column name).  Tables
#: are immutable — mutation swaps in a fresh ``Table`` object — so the
#: weak keying doubles as invalidation, exactly like the decoded-row
#: cache in :mod:`repro.delta.snapshot`.
_VID_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _decode_vids(table, name: str) -> np.ndarray:
    per_table = _VID_CACHE.get(table)
    if per_table is None:
        per_table = {}
        _VID_CACHE[table] = per_table
    vids = per_table.get(name)
    if vids is None:
        vids = table.column(name).decode_vids()
        vids.flags.writeable = False
        per_table[name] = vids
    return vids


def _nonzero_counts(codes, space: int):
    """``(unique values, counts)`` of an int code array.  When the code
    space is small relative to the data a ``bincount`` histogram beats
    ``np.unique``'s sort by a wide margin."""
    if space <= 4 * len(codes) + 1024:
        histogram = np.bincount(codes, minlength=space)
        present = np.flatnonzero(histogram)
        return present, histogram[present]
    return np.unique(codes, return_counts=True)


def _accumulate_table_global(batch: TableBatch, acc: GroupAccumulator):
    """Ungrouped aggregates over one main-store batch: O(distinct) per
    aggregate column, O(1)/popcount for COUNT(*)."""
    state = acc.state(())
    table = batch.table
    counts_cache: dict = {}
    for index, agg in enumerate(acc.aggs):
        if agg.func == "count" and agg.column is None:
            state[index] += batch.selected_count
            continue
        cached = counts_cache.get(agg.column)
        if cached is None:
            column = table.column(agg.column)
            cached = (
                column.dictionary.values(),
                _selected_value_counts(column, batch.selection),
            )
            counts_cache[agg.column] = cached
        values, counts = cached
        if agg.func == "count":
            total = int(counts.sum())
            for vid, value in enumerate(values):
                if value is None:
                    total -= int(counts[vid])
            state[index] += total
        elif agg.func in ("sum", "avg"):
            total, nonnull = 0, 0
            for vid in np.flatnonzero(counts):
                value = values[vid]
                if value is None:
                    continue
                _require_numeric(agg, value)
                n = int(counts[vid])
                total += value * n
                nonnull += n
            state[index][0] += total
            state[index][1] += nonnull
        else:
            for vid in np.flatnonzero(counts):
                value = values[vid]
                if value is not None:
                    acc.merge_minmax(state, index, agg.func, value)


def _group_codes(table, group_names):
    """Mixed-radix per-row codes combining the group columns' vids."""
    columns = [table.column(name) for name in group_names]
    sizes = [max(1, column.distinct_count) for column in columns]
    codes = _decode_vids(table, group_names[0])
    for name, size in zip(group_names[1:], sizes[1:]):
        codes = codes * size + _decode_vids(table, name)
    return codes, sizes


def _keys_for_codes(codes, columns, sizes) -> list[tuple]:
    """Decode mixed-radix group codes back to value tuples — the only
    place group keys are decoded, once per distinct combination."""
    values_per = [column.dictionary.values() for column in columns]
    keys = []
    for code in codes.tolist():
        parts = []
        for size, values in zip(reversed(sizes[1:]), reversed(values_per[1:])):
            code, vid = divmod(code, size)
            parts.append(values[vid])
        parts.append(values_per[0][code])
        keys.append(tuple(reversed(parts)))
    return keys


def _accumulate_table_grouped(
    batch: TableBatch, group_names, acc: GroupAccumulator
):
    table = batch.table
    nrows = batch.physical_rows
    if nrows == 0:
        return
    group_columns = [table.column(name) for name in group_names]
    count_star_only = all(
        agg.func == "count" and agg.column is None for agg in acc.aggs
    )
    if len(group_columns) == 1 and count_star_only:
        # The popcount fast path: per-group COUNT(*) is exactly the
        # group column's per-vid selected counts.  Nothing is decoded
        # but the ≤distinct group keys themselves.
        column = group_columns[0]
        counts = _selected_value_counts(column, batch.selection)
        values = column.dictionary.values()
        width = len(acc.aggs)
        for vid in np.flatnonzero(counts):
            state = acc.state((values[vid],))
            n = int(counts[vid])
            for index in range(width):
                state[index] += n
        return

    codes, sizes = _group_codes(table, group_names)
    positions = batch.selected_positions()
    if not len(positions):
        return
    selected_codes = codes[positions]
    code_space = 1
    for size in sizes:
        code_space *= size
    unique_codes, star_counts = _nonzero_counts(selected_codes, code_space)
    states = {}
    for code, key in zip(
        unique_codes.tolist(),
        _keys_for_codes(unique_codes, group_columns, sizes),
    ):
        states[code] = acc.state(key)

    vids_cache: dict = {}
    for index, agg in enumerate(acc.aggs):
        if agg.func == "count" and agg.column is None:
            for code, n in zip(unique_codes.tolist(), star_counts.tolist()):
                states[code][index] += n
            continue
        cached = vids_cache.get(agg.column)
        if cached is None:
            column = table.column(agg.column)
            cached = (
                column.dictionary.values(),
                _decode_vids(table, agg.column)[positions],
            )
            vids_cache[agg.column] = cached
        values, agg_vids = cached
        # Joint (group, value) distribution: every per-group partial
        # below is a function of these pair counts alone.
        joint = selected_codes * len(values) + agg_vids
        unique_joint, joint_counts = _nonzero_counts(
            joint, code_space * max(1, len(values))
        )
        group_part = (unique_joint // len(values)).tolist()
        vid_part = (unique_joint % len(values)).tolist()
        func = agg.func
        for code, vid, n in zip(group_part, vid_part, joint_counts.tolist()):
            value = values[vid]
            if value is None:
                continue
            state = states[code]
            if func == "count":
                state[index] += int(n)
            elif func in ("sum", "avg"):
                _require_numeric(agg, value)
                state[index][0] += value * int(n)
                state[index][1] += int(n)
            else:
                acc.merge_minmax(state, index, func, value)


def _accumulate_rows(batch, group_names, acc: GroupAccumulator):
    """The hash fallback: row-wise accumulation over any batch kind."""
    names = batch.column_names
    count_star_only = all(
        agg.func == "count" and agg.column is None for agg in acc.aggs
    )
    if count_star_only and len(group_names) == 1:
        # Single-column COUNT(*): project just the group column and
        # fold a Counter — no full-row tuples.  An unfiltered values
        # batch hands its vector to Counter directly (C speed).
        from repro.exec.batch import ValuesBatch

        if isinstance(batch, ValuesBatch) and batch.selection is None:
            counts = Counter(batch.columns[group_names[0]])
        else:
            index = names.index(group_names[0])
            counts = Counter(row[0] for row in batch.rows([index]))
        width = len(acc.aggs)
        for value, n in counts.items():
            state = acc.state((value,))
            for position in range(width):
                state[position] += n
        return
    group_idx = [names.index(name) for name in group_names]
    agg_idx = [
        None if agg.column is None else names.index(agg.column)
        for agg in acc.aggs
    ]
    aggs = acc.aggs
    for row in batch.rows():
        key = tuple(row[i] for i in group_idx)
        state = acc.state(key)
        for index, agg in enumerate(aggs):
            source = agg_idx[index]
            if source is None:
                state[index] += 1
                continue
            value = row[source]
            if value is None:
                continue
            func = agg.func
            if func == "count":
                state[index] += 1
            elif func in ("sum", "avg"):
                _require_numeric(agg, value)
                partial = state[index]
                partial[0] += value
                partial[1] += 1
            else:
                acc.merge_minmax(state, index, func, value)


def accumulate_batch(
    batch, group_names, acc: GroupAccumulator, strategy: str = "compressed"
):
    """Fold one batch into the accumulator, in the cheapest domain the
    batch (and the chosen ``strategy``) supports."""
    if strategy == "compressed" and isinstance(batch, TableBatch):
        if group_names:
            _accumulate_table_grouped(batch, group_names, acc)
        else:
            _accumulate_table_global(batch, acc)
        acc.batches_compressed += 1
    else:
        _accumulate_rows(batch, group_names, acc)
        acc.batches_hash += 1


def aggregate_rows(
    batches, select, schema, strategy: str = "compressed", stats=None
) -> list[tuple]:
    """Drain ``batches`` through the aggregation pipeline and return the
    finalized result rows (select-list order, sorted by group key)."""
    group_names, aggs = validate_aggregate_select(select, schema)
    acc = GroupAccumulator(aggs)
    for batch in batches:
        accumulate_batch(batch, group_names, acc, strategy)
    if stats is not None:
        stats.agg_batches_compressed += acc.batches_compressed
        stats.agg_batches_hash += acc.batches_hash
        stats.agg_groups += len(acc.groups)
    return acc.finalized_rows(select, group_names)


# ----------------------------------------------------------------------
# DISTINCT as live-vid enumeration
# ----------------------------------------------------------------------


def _table_batch_distinct(batch: TableBatch, name: str):
    """Distinct values of one main-store column ordered by first
    *selected* position — the order streaming dedup would produce."""
    column = batch.table.column(name)
    nvids = column.distinct_count
    if nvids == 0:
        return
    if batch.selection is None:
        first = batch_first_set(column.bitmaps)
    else:
        flat, bounds = batch_positions(column.bitmaps)
        keep = batch.selection.to_dense()[flat]
        vid_per_position = np.repeat(
            np.arange(nvids, dtype=np.int64), np.diff(bounds)
        )
        selected_vids = vid_per_position[keep]
        selected_positions = flat[keep]
        first = np.full(nvids, -1, dtype=np.int64)
        # Positions within a vid run ascend, so writing them reversed
        # leaves each vid's smallest selected position in place.
        first[selected_vids[::-1]] = selected_positions[::-1]
    live = np.flatnonzero(first >= 0)
    values = column.dictionary.values()
    for vid in live[np.argsort(first[live], kind="stable")]:
        yield values[vid]


def distinct_values(batches, name: str):
    """DISTINCT on a single column: live-vid enumeration on main-store
    batches, value hashing on delta/values batches.  Yields 1-tuples in
    global first-occurrence order (main first, then delta), matching
    :func:`repro.exec.operators.dedup_rows` over the projected rows."""
    seen = set()
    for batch in batches:
        if isinstance(batch, TableBatch):
            iterator = _table_batch_distinct(batch, name)
        else:
            index = batch.column_names.index(name)
            iterator = (row[0] for row in batch.rows([index]))
        for value in iterator:
            if value not in seen:
                seen.add(value)
                yield (value,)


# ----------------------------------------------------------------------
# ORDER BY as dictionary-order presorted runs
# ----------------------------------------------------------------------


def _table_batch_ordered(
    batch: TableBatch, name: str, ascending: bool, out_positions
):
    """Selected main-store rows in ``name`` order, emitted as one
    presorted run per dictionary value (positions within a value bitmap
    already ascend, preserving the stable-sort tie order).  Rows decode
    lazily, one value run at a time — a LIMIT stops the scan early."""
    from repro.delta.snapshot import decoded_main_rows

    column = batch.table.column(name)
    values = column.dictionary.values()
    vids = sorted(
        range(len(values)),
        key=lambda vid: (values[vid] is None, values[vid]),
        reverse=not ascending,
    )
    dense = (
        batch.selection.to_dense() if batch.selection is not None else None
    )
    decoded = None
    for vid in vids:
        positions = column.bitmaps[vid].positions()
        if dense is not None:
            positions = positions[dense[positions]]
        if not len(positions):
            continue
        if decoded is None:
            decoded = decoded_main_rows(batch.table)
        yield from project_rows(gather(decoded, positions), out_positions)


def ordered_rows(batches, name: str, ascending: bool, out_positions,
                 out_index: int):
    """ORDER BY without a global sort: dictionary-order presorted runs
    from main-store batches merged with (small) sorted delta/values
    batches.  Tie order matches the row path's stable sort — within a
    run rows keep scan order, and earlier batches win ties."""
    def sort_key(row):
        value = row[out_index]
        return (value is None, value)

    streams = []
    for batch in batches:
        if isinstance(batch, TableBatch):
            streams.append(
                _table_batch_ordered(batch, name, ascending, out_positions)
            )
        else:
            streams.append(iter(sorted(
                batch.rows(out_positions),
                key=sort_key,
                reverse=not ascending,
            )))
    if not streams:
        return iter(())
    if len(streams) == 1:
        return streams[0]
    return heapq.merge(*streams, key=sort_key, reverse=not ascending)
