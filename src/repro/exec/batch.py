"""Column batches: the unit of work of the vectorized read path.

A batch is a window of physical rows from one source (a compressed
main-store table, a delta write buffer, or plain decoded vectors) plus
a *selection* — which of those rows are still in play.  The selection
is a dense :class:`~repro.bitmap.plain.PlainBitmap` (``None`` meaning
"every row"), so filters compose with bitmap ANDs instead of copying
data: a predicate never moves values, it only tightens the selection.
Values are materialized once, at the cursor/adapter boundary
(:meth:`ColumnBatch.rows`), and only for selected rows.

Each batch kind knows the cheapest way to evaluate a predicate against
its own representation — see :meth:`TableBatch._matches` (compressed
domain), :meth:`DeltaBatch._matches` (hash indexes) and
:meth:`ValuesBatch._matches` (compiled per-column evaluators).
"""

from __future__ import annotations

from operator import itemgetter

import numpy as np

from repro.bitmap.plain import PlainBitmap
from repro.delta.snapshot import decoded_main_rows
from repro.exec.predicate import compile_predicate


def mask_from_positions(positions, nbits: int) -> PlainBitmap:
    """A dense selection bitmap with exactly ``positions`` set."""
    bits = np.zeros(nbits, dtype=bool)
    if len(positions):
        bits[np.asarray(list(positions), dtype=np.int64)] = True
    return PlainBitmap(bits)


def gather(vector, positions) -> list:
    """``[vector[p] for p in positions]`` as one C-level gather."""
    count = len(positions)
    if count == 0:
        return []
    if count == 1:
        return [vector[int(positions[0])]]
    positions = (
        positions.tolist()
        if isinstance(positions, np.ndarray)
        else positions
    )
    return list(itemgetter(*positions)(vector))


def project_rows(rows, out_positions) -> list:
    """Project row tuples onto ``out_positions`` (``None`` = identity,
    returning ``rows`` unchanged)."""
    if out_positions is None:
        return rows
    if len(out_positions) == 1:
        index = out_positions[0]
        return [(row[index],) for row in rows]
    project = itemgetter(*out_positions)
    return [project(row) for row in rows]


def _and_selection(selection, other: PlainBitmap) -> PlainBitmap:
    """AND a selection (``None`` = all rows) with a dense bitmap."""
    return other if selection is None else selection & other


class ColumnBatch:
    """One window of rows, column-wise, with a selection bitmap.

    Subclasses provide ``column_names``, ``physical_rows``, the
    predicate hook :meth:`_matches` and the materialization hook
    :meth:`rows`; this base class owns the selection algebra shared by
    every batch kind.
    """

    __slots__ = ("selection",)

    column_names: tuple[str, ...]
    physical_rows: int

    def __init__(self, selection: PlainBitmap | None = None):
        self.selection = selection

    # -- selection algebra ---------------------------------------------

    @property
    def selected_count(self) -> int:
        if self.selection is None:
            return self.physical_rows
        return self.selection.count()

    def selected_positions(self) -> np.ndarray:
        """Sorted physical positions still selected."""
        if self.selection is None:
            return np.arange(self.physical_rows, dtype=np.int64)
        return self.selection.positions()

    def with_selection(self, selection: PlainBitmap | None) -> "ColumnBatch":
        """The same source under a different selection."""
        raise NotImplementedError  # pragma: no cover - interface

    def filter(self, predicate) -> "ColumnBatch":
        """Tighten the selection to rows satisfying ``predicate``.

        No value ever moves: the predicate is resolved to a bitmap in
        whatever domain the batch's source supports and ANDed in.
        """
        return self.with_selection(
            _and_selection(self.selection, self._matches(predicate))
        )

    def _matches(self, predicate) -> PlainBitmap:
        """Bitmap of physical rows satisfying ``predicate``.  May
        over-approximate outside the current selection (the caller ANDs
        it back in)."""
        raise NotImplementedError  # pragma: no cover - interface

    # -- materialization (the boundary) --------------------------------

    def rows(self, out_positions=None) -> list[tuple]:
        """Selected rows as tuples, projected onto ``out_positions``
        (schema-order column indices; ``None`` = all columns).  The
        returned list may be shared with a read cache — treat it as
        read-only."""
        raise NotImplementedError  # pragma: no cover - interface


class ValuesBatch(ColumnBatch):
    """A batch over plain, already-decoded column value vectors.

    This is the generic representation: the row-store baseline, the
    query-level column baseline (which must pay decompression — the
    cost the paper charges it), chunked wraps of ``scan_rows``, and
    join outputs re-entering the pipeline all land here.  Predicates
    run as compiled per-column evaluators over the selected positions.
    """

    __slots__ = ("column_names", "columns", "physical_rows", "_source_rows")

    def __init__(self, column_names, columns: dict, selection=None,
                 source_rows=None):
        super().__init__(selection)
        self.column_names = tuple(column_names)
        self.columns = columns
        self.physical_rows = (
            len(columns[self.column_names[0]]) if self.column_names else 0
        )
        # When built from tuples, keep them: an unfiltered identity
        # materialization can hand the originals back without re-zipping.
        self._source_rows = source_rows

    @classmethod
    def from_rows(cls, column_names, rows, selection=None) -> "ValuesBatch":
        """Transpose row tuples into column vectors."""
        rows = rows if isinstance(rows, list) else list(rows)
        column_names = tuple(column_names)
        columns = {
            name: [row[index] for row in rows]
            for index, name in enumerate(column_names)
        }
        return cls(column_names, columns, selection, source_rows=rows)

    def with_selection(self, selection) -> "ValuesBatch":
        return ValuesBatch(
            self.column_names, self.columns, selection, self._source_rows
        )

    def _matches(self, predicate) -> PlainBitmap:
        positions = self.selected_positions()
        hits = compile_predicate(predicate)(self.columns, positions)
        return mask_from_positions(positions[hits], self.physical_rows)

    def rows(self, out_positions=None) -> list[tuple]:
        if out_positions is None and self.selection is None:
            if self._source_rows is not None:
                return self._source_rows
            names = self.column_names
            return list(zip(*(self.columns[name] for name in names)))
        positions = self.selected_positions()
        names = (
            self.column_names
            if out_positions is None
            else [self.column_names[p] for p in out_positions]
        )
        return list(
            zip(*(gather(self.columns[name], positions) for name in names))
        )


class TableBatch(ColumnBatch):
    """A batch over a compressed main-store :class:`~repro.storage.
    table.Table`.

    The initial selection is the table's validity at the reader's epoch
    (main rows masked by delta deletions).  Predicates are evaluated in
    the *compressed domain* — ``Predicate.bitmap`` ORs the dictionary
    values' bitmaps, so no row is decoded to be *rejected*.  Selected
    rows are gathered from the per-generation decoded-rows cache (a
    generation's columns never change, so the decode happens at most
    once per generation however many queries read it — the same cache
    the tuple read path uses).
    """

    __slots__ = ("table", "column_names", "physical_rows", "rows_hint")

    def __init__(self, table, selection=None, rows_hint=None):
        super().__init__(selection)
        self.table = table
        self.column_names = table.schema.column_names
        self.physical_rows = table.nrows
        # A zero-arg callable returning the materialized rows of the
        # *initial* selection (owners pass their cached surviving-row
        # lists so repeated full scans never re-gather), or ``None``
        # when the owner's state has moved past what this batch
        # captured — the batch then gathers from its own selection,
        # which is always correct.  Dropped the moment the selection is
        # tightened — with_selection never carries it over.
        self.rows_hint = rows_hint

    def with_selection(self, selection) -> "TableBatch":
        return TableBatch(self.table, selection)

    def _matches(self, predicate) -> PlainBitmap:
        bitmap = predicate.bitmap(self.table)
        if isinstance(bitmap, PlainBitmap):
            return bitmap
        return PlainBitmap(bitmap.to_dense())

    def rows(self, out_positions=None) -> list[tuple]:
        if self.selection is None:
            base = decoded_main_rows(self.table)
        else:
            base = self.rows_hint() if self.rows_hint is not None else None
            if base is None:
                positions = self.selection.positions()
                if not len(positions):
                    return []
                base = gather(decoded_main_rows(self.table), positions)
        return project_rows(base, out_positions)


class DeltaBatch(ColumnBatch):
    """A batch over a :class:`~repro.delta.store.DeltaStore` write
    buffer, pinned at one epoch.

    Physical rows are every row ever appended (as of construction);
    the initial selection is the liveness mask at the pinned epoch.
    Predicates go through the buffer's per-column hash indexes when
    they apply (equality/IN lookups, bounded range probes — exactly
    :meth:`DeltaStore.index_matches`), falling back to the compiled
    per-column evaluators over the buffer's plain vectors.
    """

    __slots__ = ("delta", "epoch", "column_names", "physical_rows",
                 "rows_hint")

    def __init__(self, delta, epoch: int | None = None, selection=...,
                 physical_rows: int | None = None):
        self.delta = delta
        self.epoch = delta.epoch if epoch is None else epoch
        self.column_names = delta.schema.column_names
        self.physical_rows = (
            delta.n_appended if physical_rows is None else physical_rows
        )
        self.rows_hint = None
        if selection is ...:
            live = delta.live_indices(self.epoch)
            selection = (
                None
                if len(live) == self.physical_rows
                else mask_from_positions(live, self.physical_rows)
            )
            # The initial (liveness) selection materializes through the
            # store's epoch-keyed memo instead of re-gathering per scan.
            self.rows_hint = self._live_rows
        super().__init__(selection)

    def _live_rows(self) -> list[tuple]:
        return self.delta.live_rows(self.epoch)

    def with_selection(self, selection) -> "DeltaBatch":
        return DeltaBatch(
            self.delta, self.epoch, selection, self.physical_rows
        )

    def _matches(self, predicate) -> PlainBitmap:
        matched = self.delta.index_matches(predicate)
        if matched is not None:
            return mask_from_positions(
                [p for p in matched if p < self.physical_rows],
                self.physical_rows,
            )
        positions = self.selected_positions()
        hits = compile_predicate(predicate)(self.delta.columns, positions)
        return mask_from_positions(positions[hits], self.physical_rows)

    def rows(self, out_positions=None) -> list[tuple]:
        if self.rows_hint is not None:
            return project_rows(self.rows_hint(), out_positions)
        names = (
            self.column_names
            if out_positions is None
            else [self.column_names[p] for p in out_positions]
        )
        positions = self.selected_positions()
        return list(
            zip(
                *(
                    gather(self.delta.columns[name], positions)
                    for name in names
                )
            )
        )
