"""The vectorized execution layer: columnar batches from storage to
the façade.

Everything under :mod:`repro.exec` moves *column batches* — parallel
per-column value vectors plus a selection bitmap (a
:class:`repro.bitmap.plain.PlainBitmap`) — instead of row tuples.  The
read path flows ``scan → filter → project → [hash_join] → limit`` over
batches, and tuples are only materialized at the cursor/adapter
boundary (:func:`iter_rows`).  Each batch kind evaluates predicates
with the cheapest representation its source offers:

* :class:`TableBatch` — the compressed main store; predicates resolve
  in the compressed domain (``Predicate.bitmap``) without decoding;
* :class:`DeltaBatch` — the write buffer; predicates resolve through
  the delta's per-column hash indexes when built, columnar loops below
  the threshold;
* :class:`ValuesBatch` — already-decoded column vectors (the row-store
  and query-level baselines); predicates run as compiled per-column
  evaluators (:func:`compile_predicate`).

Aggregation (GROUP BY, COUNT/SUM/MIN/MAX/AVG), DISTINCT and ORDER BY
run in the same spirit — dictionary vids and bitmap popcounts on the
main store, hash/sort fallbacks elsewhere, chosen by per-table
statistics (:mod:`repro.exec.aggregate`).

See ``docs/ARCHITECTURE.md``, "The execution pipeline".
"""

from repro.exec.aggregate import (
    GroupAccumulator,
    accumulate_batch,
    aggregate_rows,
    choose_aggregate_strategy,
    distinct_values,
    ordered_rows,
    validate_aggregate_select,
)
from repro.exec.batch import (
    ColumnBatch,
    DeltaBatch,
    TableBatch,
    ValuesBatch,
    mask_from_positions,
)
from repro.exec.operators import (
    DEFAULT_BATCH_ROWS,
    batches_from_rows,
    dedup_rows,
    filter_batches,
    hash_join_rows,
    iter_rows,
    limit_rows,
)
from repro.exec.planner import execute_select
from repro.exec.predicate import compile_predicate

__all__ = [
    "ColumnBatch",
    "DEFAULT_BATCH_ROWS",
    "DeltaBatch",
    "GroupAccumulator",
    "TableBatch",
    "ValuesBatch",
    "accumulate_batch",
    "aggregate_rows",
    "batches_from_rows",
    "choose_aggregate_strategy",
    "compile_predicate",
    "dedup_rows",
    "distinct_values",
    "execute_select",
    "filter_batches",
    "hash_join_rows",
    "iter_rows",
    "limit_rows",
    "mask_from_positions",
    "ordered_rows",
    "validate_aggregate_select",
]
