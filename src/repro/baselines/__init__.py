"""Comparator systems: CODS plus the query-level baselines of Figure 3."""

from repro.baselines.base import CodsSystem, EvolutionSystem
from repro.baselines.query_level import QueryLevelEvolution, render_create_table
from repro.baselines.row_sqlite import SqliteEvolution
from repro.baselines.systems import (
    SERIES,
    cods_system,
    column_query_level_system,
    commercial_row_indexed_system,
    commercial_row_system,
    make_system,
    sqlite_system,
)

__all__ = [
    "SERIES",
    "CodsSystem",
    "EvolutionSystem",
    "QueryLevelEvolution",
    "SqliteEvolution",
    "cods_system",
    "column_query_level_system",
    "commercial_row_indexed_system",
    "commercial_row_system",
    "make_system",
    "render_create_table",
    "sqlite_system",
]
