"""Concrete comparator systems matching the Figure 3 series labels."""

from __future__ import annotations

from repro.baselines.base import CodsSystem, EvolutionSystem
from repro.baselines.query_level import QueryLevelEvolution
from repro.baselines.row_sqlite import SqliteEvolution
from repro.sql.adapter import ColumnStoreAdapter, RowEngineAdapter


def cods_system() -> CodsSystem:
    """D — the data-level approach (CODS)."""
    return CodsSystem()


def commercial_row_system() -> QueryLevelEvolution:
    """C — commercial-style row store, query-level, no indexes."""
    return QueryLevelEvolution(
        RowEngineAdapter(), name="Commercial row store (query-level)"
    )


def commercial_row_indexed_system() -> QueryLevelEvolution:
    """C+I — commercial-style row store with index rebuilds."""
    return QueryLevelEvolution(
        RowEngineAdapter(),
        name="Commercial row store + indexes (query-level)",
        with_indexes=True,
    )


def sqlite_system() -> SqliteEvolution:
    """S — SQLite executing the same evolution SQL."""
    return SqliteEvolution()


def column_query_level_system() -> QueryLevelEvolution:
    """M — a column store evolving at the *query* level (MonetDB-style).

    Same storage substrate as CODS; the only difference is the pipeline:
    decompress -> tuples -> query -> split -> re-compress.  This isolates
    the paper's claim that the win comes from data-level execution, not
    from column orientation alone.
    """
    return QueryLevelEvolution(
        ColumnStoreAdapter(), name="Column store (query-level)"
    )


SERIES = {
    "D": cods_system,
    "C": commercial_row_system,
    "C+I": commercial_row_indexed_system,
    "S": sqlite_system,
    "M": column_query_level_system,
}
"""Factories keyed by the paper's Figure 3 legend labels."""


def make_system(label: str) -> EvolutionSystem:
    """Instantiate a comparator by its Figure 3 label."""
    return SERIES[label]()
