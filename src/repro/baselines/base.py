"""The common interface all evolution systems implement.

The benchmark harness compares CODS against the query-level baselines
through this interface: load tables, apply an SMO stream, extract
results for verification.
"""

from __future__ import annotations

import time

from repro.core.engine import EvolutionEngine
from repro.smo.ops import SchemaModificationOperator
from repro.storage.table import Table


class EvolutionSystem:
    """A database system capable of executing schema evolutions."""

    name: str = "abstract"

    def load(self, table: Table) -> None:
        """Ingest a table (not part of timed evolution)."""
        raise NotImplementedError

    def apply(self, op: SchemaModificationOperator) -> None:
        """Execute one SMO (the timed operation)."""
        raise NotImplementedError

    def extract(self, name: str) -> Table:
        """Return a table's current contents in the common format."""
        raise NotImplementedError

    def table_names(self) -> list[str]:
        raise NotImplementedError

    def declare_fd(self, fd) -> None:
        """Declare a known functional dependency (schema-level metadata).

        A DBA requesting a decomposition knows which side carries the
        key; declaring the FD lets every system validate losslessness
        from metadata instead of scanning the data inside the timed
        evolution.
        """
        raise NotImplementedError

    def timed_apply(self, op: SchemaModificationOperator) -> float:
        """Apply and return wall-clock seconds."""
        started = time.perf_counter()
        self.apply(op)
        return time.perf_counter() - started


class CodsSystem(EvolutionSystem):
    """The data-level system of the paper ("D" in Figure 3)."""

    name = "CODS (data-level)"

    def __init__(self, verify_with_data: bool = True):
        self.engine = EvolutionEngine(verify_with_data=verify_with_data)

    def declare_fd(self, fd) -> None:
        self.engine.extra_fds = tuple(self.engine.extra_fds) + (fd,)

    def load(self, table: Table) -> None:
        self.engine.load_table(table)

    def apply(self, op: SchemaModificationOperator) -> None:
        self.engine.apply(op)

    def extract(self, name: str) -> Table:
        return self.engine.table(name)

    def table_names(self) -> list[str]:
        return self.engine.catalog.table_names()
