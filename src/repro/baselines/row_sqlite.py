"""SQLite baseline — the "S" series of Figure 3.

Unlike the other comparators this is the *real* system (Python's stdlib
``sqlite3``): the same evolution SQL the paper shows is executed by a
production row-oriented engine.  Values are mapped to SQLite's dynamic
types and back through the tracked schemas.
"""

from __future__ import annotations

import datetime
import sqlite3

from repro.baselines.base import EvolutionSystem
from repro.baselines.query_level import QueryLevelEvolution
from repro.errors import EvolutionError
from repro.smo.ops import (
    AddColumn,
    CopyTable,
    CreateTable,
    DecomposeTable,
    DropColumn,
    DropTable,
    MergeTables,
    PartitionTable,
    RenameColumn,
    RenameTable,
    SchemaModificationOperator,
    UnionTables,
)
from repro.smo.plan import simulate
from repro.storage.schema import TableSchema
from repro.storage.table import Table
from repro.storage.types import DataType

_SQLITE_TYPES = {
    DataType.INT: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.STRING: "TEXT",
    DataType.BOOL: "INTEGER",
    DataType.DATE: "TEXT",
}


def _to_sqlite(value, dtype: DataType):
    if value is None:
        return None
    if dtype is DataType.BOOL:
        return int(value)
    if dtype is DataType.DATE:
        return value.isoformat()
    return value


def _from_sqlite(value, dtype: DataType):
    if value is None:
        return None
    if dtype is DataType.BOOL:
        return bool(value)
    if dtype is DataType.DATE:
        return datetime.date.fromisoformat(value)
    if dtype is DataType.FLOAT:
        return float(value)
    return value


class SqliteEvolution(EvolutionSystem):
    """Query-level evolution through a real SQLite database."""

    name = "SQLite (query-level)"

    def __init__(self, path: str = ":memory:", with_indexes: bool = False):
        self.connection = sqlite3.connect(path)
        self.connection.execute("PRAGMA journal_mode=MEMORY")
        self.connection.execute("PRAGMA synchronous=OFF")
        self.with_indexes = with_indexes
        self.schemas: dict[str, TableSchema] = {}
        self.extra_fds: tuple = ()

    def declare_fd(self, fd) -> None:
        self.extra_fds = self.extra_fds + (fd,)

    # -- plumbing -----------------------------------------------------------

    def _create_sql(self, schema: TableSchema) -> str:
        columns = ", ".join(
            f'"{c.name}" {_SQLITE_TYPES[c.dtype]}' for c in schema.columns
        )
        return f'CREATE TABLE "{schema.name}" ({columns})'

    def _build_indexes(self, schema: TableSchema) -> None:
        indexed = []
        for key in schema.all_keys():
            for attr in key:
                if attr not in indexed:
                    self.connection.execute(
                        f'CREATE INDEX "idx_{schema.name}_{attr}" ON '
                        f'"{schema.name}" ("{attr}")'
                    )
                    indexed.append(attr)

    # -- interface ------------------------------------------------------------

    def load(self, table: Table) -> None:
        schema = table.schema
        self.connection.execute(self._create_sql(schema))
        placeholders = ", ".join("?" for _ in schema.columns)
        dtypes = [c.dtype for c in schema.columns]
        self.connection.executemany(
            f'INSERT INTO "{schema.name}" VALUES ({placeholders})',
            (
                tuple(_to_sqlite(v, d) for v, d in zip(row, dtypes))
                for row in table.to_rows()
            ),
        )
        self.connection.commit()
        self.schemas[schema.name] = schema
        if self.with_indexes:
            self._build_indexes(schema)

    def extract(self, name: str) -> Table:
        schema = self.schemas[name]
        dtypes = [c.dtype for c in schema.columns]
        cursor = self.connection.execute(
            f'SELECT {", ".join(chr(34) + c + chr(34) for c in schema.column_names)} '
            f'FROM "{name}"'
        )
        rows = [
            tuple(_from_sqlite(v, d) for v, d in zip(row, dtypes))
            for row in cursor
        ]
        return Table.from_rows(schema.renamed(name), rows)

    def table_names(self) -> list[str]:
        return sorted(self.schemas)

    def close(self) -> None:
        self.connection.close()

    # -- execution ---------------------------------------------------------------

    def apply(self, op: SchemaModificationOperator) -> None:
        new_schemas = simulate(op, self.schemas)
        execute = self.connection.execute
        if isinstance(op, DecomposeTable):
            changed = QueryLevelEvolution._changed_side(self, op)
            for side, out, attrs in (
                ("left", op.left_name, op.left_attrs),
                ("right", op.right_name, op.right_attrs),
            ):
                execute(self._create_sql(new_schemas[out]))
                distinct = "DISTINCT " if side == changed else ""
                columns = ", ".join(f'"{a}"' for a in attrs)
                execute(
                    f'INSERT INTO "{out}" SELECT {distinct}{columns} '
                    f'FROM "{op.table}"'
                )
            execute(f'DROP TABLE "{op.table}"')
            if self.with_indexes:
                self._build_indexes(new_schemas[op.left_name])
                self._build_indexes(new_schemas[op.right_name])
        elif isinstance(op, MergeTables):
            join = op.join_attrs or tuple(
                a
                for a in self.schemas[op.left].column_names
                if a in self.schemas[op.right].attribute_set
            )
            out_schema = new_schemas[op.out_name]
            execute(self._create_sql(out_schema))
            using = ", ".join(f'"{a}"' for a in join)
            columns = ", ".join(f'"{c}"' for c in out_schema.column_names)
            execute(
                f'INSERT INTO "{op.out_name}" SELECT {columns} FROM '
                f'"{op.left}" JOIN "{op.right}" USING ({using})'
            )
            execute(f'DROP TABLE "{op.left}"')
            execute(f'DROP TABLE "{op.right}"')
            if self.with_indexes:
                self._build_indexes(out_schema)
        elif isinstance(op, CreateTable):
            execute(self._create_sql(op.schema))
        elif isinstance(op, DropTable):
            execute(f'DROP TABLE "{op.table}"')
        elif isinstance(op, RenameTable):
            execute(
                f'ALTER TABLE "{op.table}" RENAME TO "{op.new_name}"'
            )
        elif isinstance(op, CopyTable):
            execute(self._create_sql(new_schemas[op.new_name]))
            execute(
                f'INSERT INTO "{op.new_name}" SELECT * FROM "{op.table}"'
            )
            if self.with_indexes:
                self._build_indexes(new_schemas[op.new_name])
        elif isinstance(op, UnionTables):
            temp = f"__union_{op.out_name}"
            execute(self._create_sql(new_schemas[op.out_name].renamed(temp)))
            for source in (op.left, op.right):
                execute(f'INSERT INTO "{temp}" SELECT * FROM "{source}"')
            execute(f'DROP TABLE "{op.left}"')
            if op.right != op.left:
                execute(f'DROP TABLE "{op.right}"')
            execute(f'ALTER TABLE "{temp}" RENAME TO "{op.out_name}"')
            if self.with_indexes:
                self._build_indexes(new_schemas[op.out_name])
        elif isinstance(op, PartitionTable):
            for out, where in (
                (op.true_name, str(op.predicate)),
                (op.false_name, f"NOT ({op.predicate})"),
            ):
                execute(self._create_sql(new_schemas[out]))
                execute(
                    f'INSERT INTO "{out}" SELECT * FROM "{op.table}" '
                    f"WHERE {where}"
                )
            execute(f'DROP TABLE "{op.table}"')
            if self.with_indexes:
                self._build_indexes(new_schemas[op.true_name])
                self._build_indexes(new_schemas[op.false_name])
        elif isinstance(op, AddColumn):
            if op.values is not None:
                raise EvolutionError(
                    "SQLite baseline supports ADD COLUMN with defaults only"
                )
            default = _to_sqlite(op.default, op.column.dtype)
            rendered = (
                "NULL"
                if default is None
                else repr(default)
                if not isinstance(default, str)
                else "'" + default.replace("'", "''") + "'"
            )
            execute(
                f'ALTER TABLE "{op.table}" ADD COLUMN "{op.column.name}" '
                f"{_SQLITE_TYPES[op.column.dtype]} DEFAULT {rendered}"
            )
            # Backfill existing rows (ALTER ADD fills new rows only when
            # the default is non-constant; here it fills all, but be
            # explicit for clarity):
            execute(
                f'UPDATE "{op.table}" SET "{op.column.name}" = {rendered} '
                f'WHERE "{op.column.name}" IS NULL'
            )
        elif isinstance(op, DropColumn):
            execute(
                f'ALTER TABLE "{op.table}" DROP COLUMN "{op.column}"'
            )
        elif isinstance(op, RenameColumn):
            execute(
                f'ALTER TABLE "{op.table}" RENAME COLUMN "{op.column}" '
                f'TO "{op.new_name}"'
            )
        else:  # pragma: no cover - future operators
            raise EvolutionError(f"unsupported operator {op!r}")
        self.connection.commit()
        self.schemas = new_schemas
