"""Query-level data evolution (the approach CODS replaces).

Every SMO is translated into the SQL a DBA would write — the paper's
Section 1 example verbatim for DECOMPOSE:

    INSERT INTO S SELECT Employee, Skill FROM R
    INSERT INTO T SELECT DISTINCT Employee, Address FROM R

— executed through the row-at-a-time SQL engine, materializing results
and reloading them into fresh tables.  With ``with_indexes=True`` the
driver also rebuilds B+-tree indexes on the key columns of every table
it produces (the "C+I" series of Figure 3).
"""

from __future__ import annotations

from repro.baselines.base import EvolutionSystem
from repro.errors import EvolutionError, LosslessJoinError
from repro.fd import check_lossless, fds_from_keys, holds
from repro.smo.ops import (
    AddColumn,
    CopyTable,
    CreateTable,
    DecomposeTable,
    DropColumn,
    DropTable,
    MergeTables,
    PartitionTable,
    RenameColumn,
    RenameTable,
    SchemaModificationOperator,
    UnionTables,
)
from repro.smo.plan import simulate
from repro.sql.adapter import EngineAdapter
from repro.sql.executor import SqlExecutor
from repro.storage.schema import TableSchema
from repro.storage.table import Table


def render_create_table(schema: TableSchema) -> str:
    """Render CREATE TABLE in the library's SQL dialect."""
    parts = [f"{c.name} {c.dtype}" for c in schema.columns]
    if schema.primary_key:
        parts.append(f"KEY ({', '.join(schema.primary_key)})")
    return f"CREATE TABLE {schema.name} ({', '.join(parts)})"


class QueryLevelEvolution(EvolutionSystem):
    """Evolution via SQL over any :class:`EngineAdapter`."""

    def __init__(
        self,
        adapter: EngineAdapter,
        name: str = "query-level",
        with_indexes: bool = False,
    ):
        self.adapter = adapter
        self.executor = SqlExecutor(adapter)
        self.name = name
        self.with_indexes = with_indexes
        self.schemas: dict[str, TableSchema] = {}
        self.extra_fds: tuple = ()

    def declare_fd(self, fd) -> None:
        self.extra_fds = self.extra_fds + (fd,)

    # -- loading -----------------------------------------------------------

    def load(self, table: Table) -> None:
        self.adapter.create_table(table.schema)
        self.adapter.insert_rows(table.schema.name, table.to_rows())
        self.schemas[table.schema.name] = table.schema
        if self.with_indexes:
            self._build_indexes(table.schema)

    def extract(self, name: str) -> Table:
        schema = self.schemas.get(name) or self.adapter.schema(name)
        return Table.from_rows(
            schema.renamed(name), self.adapter.scan_rows(name)
        )

    def table_names(self) -> list[str]:
        return sorted(self.schemas)

    # -- helpers -------------------------------------------------------------

    def _build_indexes(self, schema: TableSchema) -> None:
        """Rebuild indexes on all declared key columns of a table."""
        indexed = []
        for key in schema.all_keys():
            for attr in key:
                if attr not in indexed:
                    self.executor.execute(
                        f"CREATE INDEX idx_{schema.name}_{attr} ON "
                        f"{schema.name} ({attr})"
                    )
                    indexed.append(attr)

    def _changed_side(self, op: DecomposeTable) -> str:
        """Which output needs DISTINCT — same decision CODS makes."""
        schema = self.schemas[op.table]
        fds = list(fds_from_keys(schema)) + list(
            getattr(self, "extra_fds", ())
        )
        try:
            plan = check_lossless(
                schema.column_names, op.left_attrs, op.right_attrs, fds
            )
            return plan.changed_side
        except LosslessJoinError:
            table = self.extract(op.table)
            common = sorted(set(op.left_attrs) & set(op.right_attrs))
            left_holds = holds(table, common, op.left_attrs)
            right_holds = holds(table, common, op.right_attrs)
            if not left_holds and not right_holds:
                raise
            if left_holds and right_holds:
                return (
                    "left"
                    if len(op.left_attrs) <= len(op.right_attrs)
                    else "right"
                )
            return "left" if left_holds else "right"

    # -- execution ------------------------------------------------------------

    def apply(self, op: SchemaModificationOperator) -> None:
        new_schemas = simulate(op, self.schemas)
        handler = {
            DecomposeTable: self._decompose,
            MergeTables: self._merge,
            CreateTable: self._create,
            DropTable: self._drop,
            RenameTable: self._rename,
            CopyTable: self._copy,
            UnionTables: self._union,
            PartitionTable: self._partition,
            AddColumn: self._add_column,
            DropColumn: self._drop_column,
            RenameColumn: self._rename_column,
        }.get(type(op))
        if handler is None:  # pragma: no cover - future operators
            raise EvolutionError(f"unsupported operator {op!r}")
        handler(op, new_schemas)
        self.schemas = new_schemas

    def _decompose(self, op: DecomposeTable, new_schemas) -> None:
        changed = self._changed_side(op)
        for side, out_name, attrs in (
            ("left", op.left_name, op.left_attrs),
            ("right", op.right_name, op.right_attrs),
        ):
            self.executor.execute(render_create_table(new_schemas[out_name]))
            distinct = "DISTINCT " if side == changed else ""
            self.executor.execute(
                f"INSERT INTO {out_name} SELECT {distinct}"
                f"{', '.join(attrs)} FROM {op.table}"
            )
        self.executor.execute(f"DROP TABLE {op.table}")
        if self.with_indexes:
            self._build_indexes(new_schemas[op.left_name])
            self._build_indexes(new_schemas[op.right_name])

    def _merge(self, op: MergeTables, new_schemas) -> None:
        join = op.join_attrs or tuple(
            a
            for a in self.schemas[op.left].column_names
            if a in self.schemas[op.right].attribute_set
        )
        out_schema = new_schemas[op.out_name]
        self.executor.execute(render_create_table(out_schema))
        columns = ", ".join(out_schema.column_names)
        self.executor.execute(
            f"INSERT INTO {op.out_name} SELECT {columns} FROM {op.left} "
            f"JOIN {op.right} ON ({', '.join(join)})"
        )
        self.executor.execute(f"DROP TABLE {op.left}")
        self.executor.execute(f"DROP TABLE {op.right}")
        if self.with_indexes:
            self._build_indexes(out_schema)

    def _create(self, op: CreateTable, new_schemas) -> None:
        self.executor.execute(render_create_table(op.schema))

    def _drop(self, op: DropTable, new_schemas) -> None:
        self.executor.execute(f"DROP TABLE {op.table}")

    def _rename(self, op: RenameTable, new_schemas) -> None:
        self.executor.execute(
            f"ALTER TABLE {op.table} RENAME TO {op.new_name}"
        )

    def _copy(self, op: CopyTable, new_schemas) -> None:
        self.executor.execute(render_create_table(new_schemas[op.new_name]))
        self.executor.execute(
            f"INSERT INTO {op.new_name} SELECT * FROM {op.table}"
        )
        if self.with_indexes:
            self._build_indexes(new_schemas[op.new_name])

    def _union(self, op: UnionTables, new_schemas) -> None:
        out_schema = new_schemas[op.out_name]
        temp_name = f"__union_{op.out_name}"
        self.executor.execute(
            render_create_table(out_schema.renamed(temp_name))
        )
        for source in (op.left, op.right):
            self.executor.execute(
                f"INSERT INTO {temp_name} SELECT * FROM {source}"
            )
        self.executor.execute(f"DROP TABLE {op.left}")
        if op.right != op.left:
            self.executor.execute(f"DROP TABLE {op.right}")
        self.executor.execute(
            f"ALTER TABLE {temp_name} RENAME TO {op.out_name}"
        )
        if self.with_indexes:
            self._build_indexes(out_schema)

    def _partition(self, op: PartitionTable, new_schemas) -> None:
        for out_name, where in (
            (op.true_name, str(op.predicate)),
            (op.false_name, f"NOT ({op.predicate})"),
        ):
            self.executor.execute(render_create_table(new_schemas[out_name]))
            self.executor.execute(
                f"INSERT INTO {out_name} SELECT * FROM {op.table} "
                f"WHERE {where}"
            )
        self.executor.execute(f"DROP TABLE {op.table}")
        if self.with_indexes:
            self._build_indexes(new_schemas[op.true_name])
            self._build_indexes(new_schemas[op.false_name])

    def _add_column(self, op: AddColumn, new_schemas) -> None:
        # Full scan + reload: literal SELECT items are outside the SQL
        # subset, so the driver stages the widened rows itself — the same
        # materialize-everything cost profile.
        schema = new_schemas[op.table]
        temp_name = f"__add_{op.table}"
        self.adapter.create_table(schema.renamed(temp_name))
        if op.values is not None:
            extras = list(op.values)
            rows = (
                row + (extras[index],)
                for index, row in enumerate(self.adapter.scan_rows(op.table))
            )
        else:
            rows = (
                row + (op.default,)
                for row in self.adapter.scan_rows(op.table)
            )
        self.adapter.insert_rows(temp_name, rows)
        self.executor.execute(f"DROP TABLE {op.table}")
        self.executor.execute(
            f"ALTER TABLE {temp_name} RENAME TO {op.table}"
        )
        if self.with_indexes:
            self._build_indexes(schema)

    def _drop_column(self, op: DropColumn, new_schemas) -> None:
        schema = new_schemas[op.table]
        temp_name = f"__drop_{op.table}"
        self.executor.execute(render_create_table(schema.renamed(temp_name)))
        self.executor.execute(
            f"INSERT INTO {temp_name} SELECT "
            f"{', '.join(schema.column_names)} FROM {op.table}"
        )
        self.executor.execute(f"DROP TABLE {op.table}")
        self.executor.execute(
            f"ALTER TABLE {temp_name} RENAME TO {op.table}"
        )
        if self.with_indexes:
            self._build_indexes(schema)

    def _rename_column(self, op: RenameColumn, new_schemas) -> None:
        # Metadata-only in real systems; granted here to keep the
        # comparison conservative (Table 1 lists it as a no-data SMO).
        self.adapter.rename_column(op.table, op.column, op.new_name)
