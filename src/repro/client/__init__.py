"""repro.client — the DB-API-flavored client for :mod:`repro.server`.

::

    from repro.client import connect

    with connect(host, port) as conn:
        conn.execute("INSERT INTO r VALUES (?, ?)", (1, "a"))
        rows = conn.execute("SELECT * FROM r")

See :mod:`repro.client.connection` for the full surface
(``Connection``, ``Cursor``, ``RemoteTransaction``) and
``docs/server.md`` for the wire protocol underneath.
"""

from repro.client.connection import Connection, Cursor, RemoteTransaction, connect

__all__ = ["Connection", "Cursor", "RemoteTransaction", "connect"]
