"""The DB-API-flavored network client.

:func:`connect` opens a socket to a :class:`~repro.server.CodsServer`
and returns a :class:`Connection` with the same code shape the
in-process façade has — ``execute``/``executemany``/``cursor``/
``transaction`` — so examples, the workload generator and tests drive
a remote catalog with the code they drive a :class:`~repro.db.Session`
with::

    from repro.client import connect

    with connect(host, port) as conn:
        conn.execute("CREATE TABLE r (k INT, s STRING)")
        conn.executemany("INSERT INTO r VALUES (?, ?)",
                         [(1, "a"), (2, "b")])
        with conn.transaction() as tx:
            tx.execute("INSERT INTO r VALUES (?, ?)", (3, "c"))
            rows = tx.execute("SELECT * FROM r")   # sees the 3rd row
        for row in conn.cursor().execute("SELECT * FROM r"):
            ...

Result sets stream from the server in bounded batches
(``fetch_rows`` rows per frame): a :class:`Cursor` refills its buffer
with ``fetch`` frames as ``fetchone``/``fetchmany``/``fetchall``
drain it, so the client never holds more than one batch beyond what
the caller keeps.  Parameters are qmark-style, bound server-side.
Errors raised by the server arrive as the *same*
:class:`~repro.errors.CodsError` subclasses (see
:mod:`repro.server.protocol`); transport failures raise
:class:`~repro.errors.NetworkError`.

The conversation is synchronous, so a :class:`Connection` is not
thread-safe — give each thread its own (the stress tests and the
benchmark do exactly that).
"""

from __future__ import annotations

import socket
import threading

from repro.errors import CapabilityError, NetworkError, TransactionError
from repro.server.protocol import (
    DEFAULT_FETCH_ROWS,
    DEFAULT_MAX_FRAME,
    PREAMBLE,
    PREAMBLE_SIZE,
    check_preamble,
    decode_rows,
    encode_row,
    encode_rows,
    raise_remote,
    read_frame,
    recv_exactly,
    write_frame,
)


def connect(
    host: str = "127.0.0.1",
    port: int = 7437,
    *,
    auth_token: str | None = None,
    timeout: float | None = None,
    fetch_rows: int = DEFAULT_FETCH_ROWS,
    max_frame: int = DEFAULT_MAX_FRAME,
) -> "Connection":
    """Open a connection (preamble exchange + ``hello``) and return it."""
    return Connection(
        host, port,
        auth_token=auth_token, timeout=timeout,
        fetch_rows=fetch_rows, max_frame=max_frame,
    )


class Connection:
    """One socket to a CODS server; create via :func:`connect`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        auth_token: str | None = None,
        timeout: float | None = None,
        fetch_rows: int = DEFAULT_FETCH_ROWS,
        max_frame: int = DEFAULT_MAX_FRAME,
    ):
        self.fetch_rows = max(1, int(fetch_rows))
        self.max_frame = max_frame
        self._closed = False
        self._lock = threading.Lock()
        try:
            self._sock = socket.create_connection((host, port), timeout)
        except OSError as exc:
            raise NetworkError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        try:
            # Small request/response frames: disable Nagle so writes go
            # out immediately instead of waiting on the peer's ACK.
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock.sendall(PREAMBLE)
            self._reader = self._sock.makefile("rb")
            check_preamble(
                recv_exactly(self._reader, PREAMBLE_SIZE, "server"), "server"
            )
            self._auth_token = auth_token
            self.server_info = self._request(
                {"cmd": "hello", "token": auth_token}
            )
        except BaseException:
            self._abandon()
            raise

    def tables(self) -> list[str]:
        """A fresh sorted table list (re-runs the ``hello`` exchange,
        which also refreshes :attr:`server_info`)."""
        self.server_info = self._request(
            {"cmd": "hello", "token": self._auth_token}
        )
        return self.server_info["tables"]

    # -- the synchronous round trip -------------------------------------

    def _request(self, payload: dict) -> dict:
        with self._lock:
            if self._closed:
                raise NetworkError("connection is closed")
            try:
                write_frame(self._sock, payload, self.max_frame, "server")
                response, _ = read_frame(
                    self._reader, self.max_frame, "server"
                )
            except NetworkError:
                # The stream is broken (server gone, session reaped):
                # no further request can succeed on this socket.
                self._abandon()
                raise
        if not response.get("ok"):
            raise_remote(response)
        return response

    # -- execution ------------------------------------------------------

    def execute(self, sql: str, params=None):
        """One statement; returns what :meth:`repro.db.Session.execute`
        would — a fully fetched row list for SELECT/EXPLAIN, a count
        for DML, ``None`` for DDL, and a counters dict for SMOs."""
        cursor = self.cursor()
        cursor.execute(sql, params)
        if cursor.description is not None:
            return cursor.fetchall()
        if cursor.rowcount >= 0:
            return cursor.rowcount
        return cursor.status

    def executemany(self, sql: str, param_rows) -> int:
        """One parameterized statement per tuple, in a single round
        trip; returns the summed affected-row count."""
        response = self._request({
            "cmd": "executemany",
            "sql": sql,
            "param_rows": encode_rows(param_rows),
        })
        return response["count"]

    def cursor(self) -> "Cursor":
        return Cursor(self)

    # -- transactions ---------------------------------------------------

    def begin(self, read_only: bool = False) -> "RemoteTransaction":
        """Open a server-side transaction scope on this connection
        (pinned reads + read-your-writes across round trips)."""
        self._request({"cmd": "begin", "read_only": read_only})
        return RemoteTransaction(self)

    def commit(self) -> int:
        return self._request({"cmd": "commit"})["count"]

    def rollback(self) -> int:
        return self._request({"cmd": "rollback"})["discarded"]

    def transaction(self, read_only: bool = False) -> "RemoteTransaction":
        """Context-manager flavor: commit on clean exit, roll back on
        exception — the remote shape of ``db.transaction()``."""
        return self.begin(read_only=read_only)

    # -- observability --------------------------------------------------

    def metrics(self, fmt: str | None = None):
        """The server database's metrics (see ``Database.metrics``)."""
        return self._request({"cmd": "metrics", "fmt": fmt})["metrics"]

    def slow_queries(self) -> list[dict]:
        """The server's slow-query log (``Database.slow_query_log``)."""
        return self._request({"cmd": "metrics"})["slow_queries"]

    # -- lifecycle ------------------------------------------------------

    def _abandon(self) -> None:
        self._closed = True
        # Close the makefile reader too: it holds an io-ref on the
        # socket, and without this the fd (and the server's view of
        # the connection) would outlive the Connection object.
        try:
            self._reader.close()
        except (OSError, AttributeError):
            pass  # reader may not exist if connect itself failed
        try:
            self._sock.close()
        except OSError:
            pass

    def close(self) -> None:
        """Say goodbye and close the socket (idempotent; transport
        errors during goodbye are swallowed — the server cleans up
        either way)."""
        if self._closed:
            return
        try:
            self._request({"cmd": "goodbye"})
        except NetworkError:
            pass
        self._abandon()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Connection({self._sock.getsockname()!r}, {state})"


class RemoteTransaction:
    """The context-manager handle :meth:`Connection.transaction`
    returns.  ``execute`` goes through the connection (the server
    routes it into the open scope); exit commits or rolls back."""

    def __init__(self, connection: Connection):
        self._connection = connection
        self._done = False

    def execute(self, sql: str, params=None):
        return self._connection.execute(sql, params)

    def commit(self) -> int:
        self._done = True
        return self._connection.commit()

    def rollback(self) -> int:
        self._done = True
        return self._connection.rollback()

    def __enter__(self) -> "RemoteTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._done:
            return
        if exc_type is None:
            self.commit()
        else:
            try:
                self.rollback()
            except (NetworkError, TransactionError):
                pass  # the original exception matters more


class Cursor:
    """DB-API-shaped access with transparent batch-wise fetch.

    ``description`` is a sequence of 7-tuples after a SELECT/EXPLAIN
    and ``None`` otherwise; ``rowcount`` is the affected count after
    DML and ``-1`` otherwise; ``status`` carries an SMO's counters
    dict.  Iterating (or ``fetch*``) pulls further batches from the
    server on demand."""

    arraysize = 1

    def __init__(self, connection: Connection):
        self.connection = connection
        self.description = None
        self.rowcount = -1
        self.status: dict | None = None
        self._buffer: list = []
        self._position = 0
        self._cursor_id: int | None = None
        self._done = True
        self._has_result = False
        self._closed = False

    # -- execution ------------------------------------------------------

    def _reset(self) -> None:
        self._finish_remote()
        self.description = None
        self.rowcount = -1
        self.status = None
        self._buffer = []
        self._position = 0
        self._cursor_id = None
        self._done = True
        self._has_result = False

    def execute(self, sql: str, params=None) -> "Cursor":
        self._check_open()
        self._reset()
        response = self.connection._request({
            "cmd": "execute",
            "sql": sql,
            "params": encode_row(params) if params is not None else None,
            "fetch": self.connection.fetch_rows,
        })
        kind = response.get("kind")
        if kind == "rows":
            self.description = tuple(
                (name, None, None, None, None, None, None)
                for name in response["columns"]
            )
            self._buffer = decode_rows(response["rows"])
            self._done = response["done"]
            self._cursor_id = response.get("cursor")
            self._has_result = True
        elif kind == "count":
            self.rowcount = response["count"]
        elif kind == "status":
            self.status = response["summary"]
        return self

    def executemany(self, sql: str, param_rows) -> "Cursor":
        self._check_open()
        self._reset()
        self.rowcount = self.connection.executemany(sql, param_rows)
        return self

    # -- fetching -------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise CapabilityError("cursor is closed")

    def _refill(self) -> bool:
        """Pull the next batch from the server; returns False when the
        result set is exhausted."""
        if self._done:
            return False
        response = self.connection._request({
            "cmd": "fetch",
            "cursor": self._cursor_id,
            "n": self.connection.fetch_rows,
        })
        self._buffer = decode_rows(response["rows"])
        self._position = 0
        self._done = response["done"]
        if self._done:
            self._cursor_id = None
        return bool(self._buffer)

    def fetchone(self):
        self._check_open()
        if not self._has_result:
            raise CapabilityError("no result set; execute a SELECT first")
        if self._position >= len(self._buffer) and not self._refill():
            return None
        row = self._buffer[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: int | None = None) -> list:
        count = self.arraysize if size is None else size
        out = []
        while len(out) < count:
            row = self.fetchone()
            if row is None:
                break
            out.append(row)
        return out

    def fetchall(self) -> list:
        out = []
        while True:
            row = self.fetchone()
            if row is None:
                return out
            out.append(row)

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle ------------------------------------------------------

    def _finish_remote(self) -> None:
        """Release a half-streamed server-side cursor."""
        if self._cursor_id is not None and not self.connection.closed:
            try:
                self.connection._request(
                    {"cmd": "close_cursor", "cursor": self._cursor_id}
                )
            except NetworkError:
                pass
            self._cursor_id = None

    def close(self) -> None:
        if self._closed:
            return
        self._finish_remote()
        self._closed = True
        self._buffer = []

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
