"""Lossless-join validation for binary decompositions.

The CODS decomposition (paper Section 2.4) assumes a lossless-join
split: ``R -> S, T`` is lossless iff the common attributes functionally
determine all of ``S`` or all of ``T``.  This module implements that
check — from declared FDs, from declared keys, or empirically from the
data — and identifies which output table is the *changed* one (the side
keyed by the common attributes; the other side is reused unchanged,
Property 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LosslessJoinError
from repro.fd.functional_deps import FunctionalDependency, closure


@dataclass(frozen=True)
class DecompositionPlan:
    """The validated shape of a binary lossless-join decomposition.

    ``changed_side`` is ``"left"`` or ``"right"``: the output table whose
    rows must be deduplicated (its key is the common attributes).  The
    other side is unchanged and reuses the input's columns directly.
    """

    common: frozenset
    changed_side: str

    @property
    def unchanged_side(self) -> str:
        return "right" if self.changed_side == "left" else "left"


def check_lossless(
    all_attrs,
    left_attrs,
    right_attrs,
    fds=(),
    prefer_changed: str | None = None,
) -> DecompositionPlan:
    """Validate ``R(all) -> left, right`` and pick the changed side.

    Raises :class:`LosslessJoinError` when the attribute sets do not
    cover ``R`` or when the common attributes determine neither side.
    When the common attributes determine *both* sides, ``prefer_changed``
    breaks the tie (default: the smaller side is changed, which touches
    fewer bitmaps).
    """
    all_attrs = frozenset(all_attrs)
    left = frozenset(left_attrs)
    right = frozenset(right_attrs)
    if left | right != all_attrs:
        missing = sorted(all_attrs - (left | right))
        extra = sorted((left | right) - all_attrs)
        raise LosslessJoinError(
            f"output attributes must cover the input exactly; "
            f"missing={missing}, unknown={extra}"
        )
    common = left & right
    if not common:
        raise LosslessJoinError(
            "output tables share no attributes; the decomposition cannot "
            "be lossless-join"
        )
    determined = closure(common, fds)
    determines_left = left <= determined
    determines_right = right <= determined
    if not determines_left and not determines_right:
        raise LosslessJoinError(
            f"common attributes {sorted(common)} determine neither output "
            "side under the declared functional dependencies; the "
            "decomposition would be lossy"
        )
    if determines_left and determines_right:
        if prefer_changed in ("left", "right"):
            changed = prefer_changed
        else:
            changed = "left" if len(left) <= len(right) else "right"
    else:
        changed = "left" if determines_left else "right"
    return DecompositionPlan(common, changed)


def fds_from_keys(schema) -> list[FunctionalDependency]:
    """Derive FDs from a table schema's declared keys."""
    attrs = frozenset(schema.column_names)
    return [
        FunctionalDependency(frozenset(key), attrs - frozenset(key))
        for key in schema.all_keys()
    ]


def chase_lossless(all_attrs, decomposition, fds) -> bool:
    """The general chase test for n-ary lossless-join decompositions.

    ``decomposition`` is a list of attribute sets.  Included for
    completeness beyond the binary case CODS implements; tests use it to
    cross-validate :func:`check_lossless`.
    """
    attrs = sorted(frozenset(all_attrs))
    attr_index = {attr: i for i, attr in enumerate(attrs)}
    # tableau[i][j]: distinguished (True) or row-subscripted symbol.
    tableau = [
        [attr in frozenset(component) for attr in attrs]
        for component in decomposition
    ]
    symbols = [
        [True if cell else ("b", row, col) for col, cell in enumerate(line)]
        for row, line in enumerate(tableau)
    ]

    changed = True
    while changed:
        changed = False
        for fd in fds:
            lhs_cols = [attr_index[a] for a in fd.lhs if a in attr_index]
            rhs_cols = [attr_index[a] for a in fd.rhs if a in attr_index]
            if len(lhs_cols) != len(fd.lhs):
                continue
            groups: dict = {}
            for row, line in enumerate(symbols):
                key = tuple(line[c] for c in lhs_cols)
                groups.setdefault(key, []).append(row)
            for rows in groups.values():
                if len(rows) < 2:
                    continue
                for col in rhs_cols:
                    cells = [symbols[r][col] for r in rows]
                    if any(c is True for c in cells):
                        target = True
                    else:
                        target = min(cells, key=str)
                    for r in rows:
                        if symbols[r][col] != target:
                            symbols[r][col] = target
                            changed = True
    return any(all(cell is True for cell in line) for line in symbols)
