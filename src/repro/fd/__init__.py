"""Functional-dependency theory and data-driven validation."""

from repro.fd.decompose_check import (
    DecompositionPlan,
    chase_lossless,
    check_lossless,
    fds_from_keys,
)
from repro.fd.discovery import discover, holds, is_key_in_data
from repro.fd.functional_deps import (
    FunctionalDependency,
    candidate_keys,
    closure,
    implies,
    is_superkey,
    minimal_cover,
    project_fds,
)

__all__ = [
    "DecompositionPlan",
    "FunctionalDependency",
    "candidate_keys",
    "chase_lossless",
    "check_lossless",
    "closure",
    "discover",
    "fds_from_keys",
    "holds",
    "implies",
    "is_key_in_data",
    "is_superkey",
    "minimal_cover",
    "project_fds",
]
