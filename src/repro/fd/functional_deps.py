"""Functional dependencies: closure, implication, candidate keys.

The decomposition operator of CODS (paper Section 2.4) is only valid for
lossless-join decompositions, and its two structural properties rest on
FD reasoning: the common attributes of the two output tables must
functionally determine one side.  This module provides the classical
algorithms: attribute-set closure, FD implication, and candidate-key
enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations


@dataclass(frozen=True)
class FunctionalDependency:
    """``lhs -> rhs`` over attribute names."""

    lhs: frozenset
    rhs: frozenset

    def __post_init__(self):
        object.__setattr__(self, "lhs", frozenset(self.lhs))
        object.__setattr__(self, "rhs", frozenset(self.rhs))

    @classmethod
    def of(cls, lhs, rhs) -> "FunctionalDependency":
        """Build from iterables or single attribute names."""
        if isinstance(lhs, str):
            lhs = [lhs]
        if isinstance(rhs, str):
            rhs = [rhs]
        return cls(frozenset(lhs), frozenset(rhs))

    def __str__(self) -> str:
        left = ",".join(sorted(self.lhs))
        right = ",".join(sorted(self.rhs))
        return f"{left} -> {right}"


def closure(attrs, fds) -> frozenset:
    """Attribute-set closure under ``fds`` (the standard fixpoint)."""
    result = set(attrs)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if fd.lhs <= result and not fd.rhs <= result:
                result |= fd.rhs
                changed = True
    return frozenset(result)


def implies(fds, candidate: FunctionalDependency) -> bool:
    """True if ``fds`` logically implies ``candidate`` (Armstrong)."""
    return candidate.rhs <= closure(candidate.lhs, fds)


def is_superkey(attrs, all_attrs, fds) -> bool:
    """True if ``attrs`` functionally determines every attribute."""
    return frozenset(all_attrs) <= closure(attrs, fds)


def candidate_keys(all_attrs, fds) -> list[frozenset]:
    """All minimal keys of a relation with attributes ``all_attrs``.

    Uses the classical observation that attributes never appearing on
    any right-hand side must belong to every key, which keeps the
    search practical for the schema sizes that occur in practice.
    """
    all_attrs = frozenset(all_attrs)
    in_rhs = frozenset().union(*(fd.rhs for fd in fds)) if fds else frozenset()
    core = all_attrs - in_rhs  # must be in every key
    optional = sorted(all_attrs & in_rhs)

    if is_superkey(core, all_attrs, fds):
        return [core]

    keys: list[frozenset] = []
    for size in range(1, len(optional) + 1):
        for extra in combinations(optional, size):
            candidate = core | frozenset(extra)
            if any(key <= candidate for key in keys):
                continue  # not minimal
            if is_superkey(candidate, all_attrs, fds):
                keys.append(candidate)
        if keys and all(
            any(key <= core | frozenset(extra) for key in keys)
            for extra in combinations(optional, size)
        ):
            # every larger candidate would contain a found key
            break
    return keys


def minimal_cover(fds) -> list[FunctionalDependency]:
    """A minimal (canonical) cover: singleton RHS, no extraneous LHS
    attributes, no redundant FDs."""
    # Split to singleton right-hand sides.
    split = [
        FunctionalDependency(fd.lhs, frozenset([attr]))
        for fd in fds
        for attr in fd.rhs
    ]
    # Remove extraneous LHS attributes.
    reduced: list[FunctionalDependency] = []
    for fd in split:
        lhs = set(fd.lhs)
        for attr in sorted(fd.lhs):
            if len(lhs) == 1:
                break
            trial = frozenset(lhs - {attr})
            if fd.rhs <= closure(trial, split):
                lhs.discard(attr)
        reduced.append(FunctionalDependency(frozenset(lhs), fd.rhs))
    # Remove redundant FDs.
    result = list(dict.fromkeys(reduced))  # dedupe, keep order
    index = 0
    while index < len(result):
        fd = result[index]
        rest = result[:index] + result[index + 1 :]
        if implies(rest, fd):
            result = rest
        else:
            index += 1
    return result


def project_fds(fds, attrs) -> list[FunctionalDependency]:
    """FDs implied on a projection (restricted to subsets of ``attrs``).

    Exponential in ``len(attrs)`` in the worst case; intended for the
    small schemas of decompositions.
    """
    attrs = frozenset(attrs)
    projected: list[FunctionalDependency] = []
    names = sorted(attrs)
    for size in range(1, len(names)):
        for lhs in combinations(names, size):
            lhs_set = frozenset(lhs)
            determined = closure(lhs_set, fds) & attrs
            rhs = determined - lhs_set
            if rhs:
                projected.append(FunctionalDependency(lhs_set, rhs))
    return minimal_cover(projected)
