"""Empirical FD validation and discovery on column-store tables.

When a decomposition is requested without declared keys, CODS can verify
against the data that the common attributes functionally determine the
changed side (Property 2 requires it).  ``holds`` answers that in
vectorized time; ``discover`` enumerates all minimal FDs with small
left-hand sides (a TANE-flavoured levelwise search, adequate for the
schema sizes in the paper's scenarios).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.fd.functional_deps import FunctionalDependency, implies


def _group_ids(table, attrs) -> np.ndarray:
    """Dense group id per row for the combination of ``attrs`` values."""
    attrs = list(attrs)
    if not attrs:
        return np.zeros(table.nrows, dtype=np.int64)
    matrix = np.stack(
        [table.column(attr).decode_vids() for attr in attrs], axis=1
    )
    _, inverse = np.unique(matrix, axis=0, return_inverse=True)
    return inverse.astype(np.int64)


def _distinct_count(ids: np.ndarray) -> int:
    if len(ids) == 0:
        return 0
    return int(ids.max()) + 1


def holds(table, lhs, rhs) -> bool:
    """True iff ``lhs -> rhs`` holds in the data of ``table``.

    Standard partition argument: the FD holds iff grouping by ``lhs``
    yields exactly as many groups as grouping by ``lhs ∪ rhs``.
    """
    lhs = list(lhs)
    rhs = [attr for attr in rhs if attr not in lhs]
    if not rhs:
        return True
    left_ids = _group_ids(table, lhs)
    both_ids = _group_ids(table, lhs + rhs)
    return _distinct_count(left_ids) == _distinct_count(both_ids)


def is_key_in_data(table, attrs) -> bool:
    """True iff ``attrs`` values are unique per row (a key of the data)."""
    ids = _group_ids(table, attrs)
    return _distinct_count(ids) == table.nrows


def discover(table, max_lhs: int = 2) -> list[FunctionalDependency]:
    """All minimal FDs with ``|lhs| <= max_lhs`` holding in the data.

    Levelwise search with pruning: once ``X -> A`` is found, no superset
    of ``X`` is reported for ``A``.
    """
    attrs = list(table.schema.column_names)
    found: list[FunctionalDependency] = []
    for size in range(1, max_lhs + 1):
        for lhs in combinations(attrs, size):
            lhs_set = frozenset(lhs)
            for target in attrs:
                if target in lhs_set:
                    continue
                candidate = FunctionalDependency(lhs_set, frozenset([target]))
                if implies(found, candidate):
                    continue  # already implied by a smaller FD
                if holds(table, lhs, [target]):
                    found.append(candidate)
    return found
