"""Binary on-disk format for column-store tables (``.cods`` files).

Layout (all integers little-endian):

    magic "CODS" | u16 format version | u32 schema JSON length | schema JSON
    u32 column count
    per column:
        u32 codec name length | codec name
        u32 dictionary JSON length | dictionary JSON (vid order)
        u32 bitmap count
        per bitmap: u32 byte length | bitmap bytes (codec serialization)

Bitmaps are stored in their *compressed* form byte-for-byte, so loading
a table never decompresses anything — matching the paper's premise that
data can move between disk and the evolution engine fully compressed.
"""

from __future__ import annotations

import datetime
import json
import struct
from pathlib import Path

from repro.bitmap.codecs import get_codec
from repro.errors import SerializationError
from repro.storage.column import BitmapColumn
from repro.storage.dictionary import Dictionary
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.table import Table
from repro.storage.types import DataType

_MAGIC = b"CODS"
_VERSION = 1


def _encode_value(value):
    if isinstance(value, datetime.date):
        return {"__date__": value.isoformat()}
    return value


def _decode_value(value):
    if isinstance(value, dict) and "__date__" in value:
        return datetime.date.fromisoformat(value["__date__"])
    return value


def _schema_to_json(schema: TableSchema) -> dict:
    return {
        "name": schema.name,
        "columns": [
            {"name": c.name, "dtype": c.dtype.value, "nullable": c.nullable}
            for c in schema.columns
        ],
        "primary_key": list(schema.primary_key),
        "candidate_keys": [list(k) for k in schema.candidate_keys],
    }


def _schema_from_json(payload: dict) -> TableSchema:
    return TableSchema(
        payload["name"],
        tuple(
            ColumnSchema(c["name"], DataType(c["dtype"]), c["nullable"])
            for c in payload["columns"]
        ),
        tuple(payload["primary_key"]),
        tuple(tuple(k) for k in payload["candidate_keys"]),
    )


def _write_block(handle, data: bytes) -> None:
    handle.write(struct.pack("<I", len(data)))
    handle.write(data)


def _read_block(handle) -> bytes:
    header = handle.read(4)
    if len(header) != 4:
        raise SerializationError("truncated .cods file")
    (length,) = struct.unpack("<I", header)
    data = handle.read(length)
    if len(data) != length:
        raise SerializationError("truncated .cods file")
    return data


def save_table(table: Table, path) -> None:
    """Serialize a table (schema, dictionaries, compressed bitmaps)."""
    path = Path(path)
    with path.open("wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<HQ", _VERSION, table.nrows))
        _write_block(
            handle, json.dumps(_schema_to_json(table.schema)).encode()
        )
        handle.write(struct.pack("<I", len(table.schema.column_names)))
        for name in table.schema.column_names:
            column = table.column(name)
            _write_block(handle, column.codec_name.encode())
            dictionary_json = json.dumps(
                [_encode_value(v) for v in column.dictionary.values()]
            )
            _write_block(handle, dictionary_json.encode())
            handle.write(struct.pack("<I", column.distinct_count))
            for bitmap in column.bitmaps:
                _write_block(handle, bitmap.to_bytes())


def load_table(path) -> Table:
    """Inverse of :func:`save_table`; bitmaps stay compressed."""
    path = Path(path)
    with path.open("rb") as handle:
        if handle.read(4) != _MAGIC:
            raise SerializationError(f"{path}: not a .cods file")
        version, nrows = struct.unpack("<HQ", handle.read(10))
        if version != _VERSION:
            raise SerializationError(
                f"{path}: unsupported format version {version}"
            )
        schema = _schema_from_json(json.loads(_read_block(handle).decode()))
        (column_count,) = struct.unpack("<I", handle.read(4))
        if column_count != len(schema.columns):
            raise SerializationError(f"{path}: column count mismatch")
        columns = {}
        for column_schema in schema.columns:
            codec_name = _read_block(handle).decode()
            codec = get_codec(codec_name)
            values = [
                _decode_value(v)
                for v in json.loads(_read_block(handle).decode())
            ]
            (bitmap_count,) = struct.unpack("<I", handle.read(4))
            if bitmap_count != len(values):
                raise SerializationError(
                    f"{path}: bitmap/dictionary mismatch in column "
                    f"{column_schema.name!r}"
                )
            bitmaps = [
                codec.from_bytes(_read_block(handle))
                for _ in range(bitmap_count)
            ]
            columns[column_schema.name] = BitmapColumn(
                column_schema.name,
                column_schema.dtype,
                Dictionary(values),
                bitmaps,
                nrows,
                codec_name,
            )
    return Table(schema, columns, nrows)


def save_catalog(catalog, directory) -> None:
    """Save every table of a catalog into ``directory`` as .cods files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {"tables": catalog.table_names(), "version": catalog.version}
    (directory / "catalog.json").write_text(json.dumps(manifest))
    for name in catalog.table_names():
        save_table(catalog.table(name), directory / f"{name}.cods")


def load_catalog(directory):
    """Inverse of :func:`save_catalog`."""
    from repro.storage.catalog import Catalog

    directory = Path(directory)
    manifest_path = directory / "catalog.json"
    if not manifest_path.exists():
        raise SerializationError(f"{directory}: no catalog.json")
    manifest = json.loads(manifest_path.read_text())
    catalog = Catalog()
    for name in manifest["tables"]:
        catalog.put(load_table(directory / f"{name}.cods"), f"LOAD {name}")
    return catalog
