"""Binary on-disk format for column-store tables (``.cods`` files).

Layout (all integers little-endian):

    magic "CODS" | u16 format version | u32 schema JSON length | schema JSON
    u32 column count
    per column:
        u32 codec name length | codec name
        u32 dictionary JSON length | dictionary JSON (vid order)
        u32 bitmap count
        per bitmap: u32 byte length | bitmap bytes (codec serialization)

Bitmaps are stored in their *compressed* form byte-for-byte, so loading
a table never decompresses anything — matching the paper's premise that
data can move between disk and the evolution engine fully compressed.

Tables with a pending write buffer (:mod:`repro.delta`) persist that
state in a ``.delta`` sidecar next to the ``.cods`` file:

    magic "CODD" | u16 format version | u32 payload JSON length | JSON

The delta is uncompressed in memory, so it is stored uncompressed too:
the JSON carries the appended column vectors, the per-row insert
epochs, both epoch-tagged deletion maps, the epoch counter, and the
hash-index metadata (threshold + which columns had an index built, so
it can be rebuilt on load).  Version 3 adds the write-ahead-log
checkpoint fields: ``wal_lsn`` (the log position this sidecar
checkpoints) and ``main_file`` (the versioned main this sidecar
masks — the sidecar is the per-table atomic commit point of the
checkpoint protocol, see ``docs/wal-format.md``).  Versions 1 (no
epochs, deletion *sets*) and 2 are still readable.  All layouts are
specified field by field in ``docs/delta-format.md``.

Every file in this module is written atomically: to a temp file that is
fsynced and ``os.replace``\\ d into place, so a crash mid-save can never
leave a truncated or half-written table, sidecar or manifest behind.
"""

from __future__ import annotations

import datetime
import json
import os
import struct
from contextlib import contextmanager
from pathlib import Path

from repro.bitmap.codecs import get_codec
from repro.errors import SerializationError
from repro.storage.column import BitmapColumn
from repro.storage.dictionary import Dictionary
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.table import Table
from repro.storage.types import DataType, coerce

_MAGIC = b"CODS"
_VERSION = 1
_DELTA_MAGIC = b"CODD"
_DELTA_VERSION = 3


def delta_sidecar_path(path) -> Path:
    """The ``.delta`` sidecar belonging to a ``.cods`` table file."""
    path = Path(path)
    return path.with_name(path.name + ".delta")


@contextmanager
def _atomic_write(path, label: str):
    """Write-to-temp + fsync + ``os.replace``: the file at ``path`` is
    either its old content or the complete new one, never a torn
    in-between.  ``label`` names the crash points so the fault-injection
    harness can abort before the temp write and before the rename."""
    # Imported lazily: repro.wal's own modules import this one, so a
    # module-level import of the wal package here would be circular.
    from repro.wal.crashpoints import crash_point

    path = Path(path)
    temp = path.with_name(path.name + ".tmp")
    crash_point(f"{label}.temp")
    with temp.open("wb") as handle:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    crash_point(f"{label}.replace")
    os.replace(temp, path)


def _encode_value(value):
    if isinstance(value, datetime.date):
        return {"__date__": value.isoformat()}
    return value


def _decode_value(value):
    if isinstance(value, dict) and "__date__" in value:
        return datetime.date.fromisoformat(value["__date__"])
    return value


def _schema_to_json(schema: TableSchema) -> dict:
    return {
        "name": schema.name,
        "columns": [
            {"name": c.name, "dtype": c.dtype.value, "nullable": c.nullable}
            for c in schema.columns
        ],
        "primary_key": list(schema.primary_key),
        "candidate_keys": [list(k) for k in schema.candidate_keys],
    }


def _schema_from_json(payload: dict) -> TableSchema:
    return TableSchema(
        payload["name"],
        tuple(
            ColumnSchema(c["name"], DataType(c["dtype"]), c["nullable"])
            for c in payload["columns"]
        ),
        tuple(payload["primary_key"]),
        tuple(tuple(k) for k in payload["candidate_keys"]),
    )


def _write_block(handle, data: bytes) -> None:
    handle.write(struct.pack("<I", len(data)))
    handle.write(data)


def _read_block(handle) -> bytes:
    header = handle.read(4)
    if len(header) != 4:
        raise SerializationError("truncated .cods file")
    (length,) = struct.unpack("<I", header)
    data = handle.read(length)
    if len(data) != length:
        raise SerializationError("truncated .cods file")
    return data


def save_table(table: Table, path) -> None:
    """Serialize a table (schema, dictionaries, compressed bitmaps);
    atomic via temp file + ``os.replace``."""
    path = Path(path)
    with _atomic_write(path, "save.table") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<HQ", _VERSION, table.nrows))
        _write_block(
            handle, json.dumps(_schema_to_json(table.schema)).encode()
        )
        handle.write(struct.pack("<I", len(table.schema.column_names)))
        for name in table.schema.column_names:
            column = table.column(name)
            _write_block(handle, column.codec_name.encode())
            dictionary_json = json.dumps(
                [_encode_value(v) for v in column.dictionary.values()]
            )
            _write_block(handle, dictionary_json.encode())
            handle.write(struct.pack("<I", column.distinct_count))
            for bitmap in column.bitmaps:
                _write_block(handle, bitmap.to_bytes())


def load_table(path) -> Table:
    """Inverse of :func:`save_table`; bitmaps stay compressed."""
    path = Path(path)
    with path.open("rb") as handle:
        if handle.read(4) != _MAGIC:
            raise SerializationError(f"{path}: not a .cods file")
        version, nrows = struct.unpack("<HQ", handle.read(10))
        if version != _VERSION:
            raise SerializationError(
                f"{path}: unsupported format version {version}"
            )
        schema = _schema_from_json(json.loads(_read_block(handle).decode()))
        (column_count,) = struct.unpack("<I", handle.read(4))
        if column_count != len(schema.columns):
            raise SerializationError(f"{path}: column count mismatch")
        columns = {}
        for column_schema in schema.columns:
            codec_name = _read_block(handle).decode()
            codec = get_codec(codec_name)
            values = [
                _decode_value(v)
                for v in json.loads(_read_block(handle).decode())
            ]
            (bitmap_count,) = struct.unpack("<I", handle.read(4))
            if bitmap_count != len(values):
                raise SerializationError(
                    f"{path}: bitmap/dictionary mismatch in column "
                    f"{column_schema.name!r}"
                )
            bitmaps = [
                codec.from_bytes(_read_block(handle))
                for _ in range(bitmap_count)
            ]
            columns[column_schema.name] = BitmapColumn(
                column_schema.name,
                column_schema.dtype,
                Dictionary(values),
                bitmaps,
                nrows,
                codec_name,
            )
    return Table(schema, columns, nrows)


def save_delta(store, path, wal_lsn=None, main_file=None) -> None:
    """Serialize a :class:`repro.delta.DeltaStore` (uncompressed);
    atomic via temp file + ``os.replace``.

    The payload carries the full MVCC state — per-row insert epochs,
    epoch-tagged deletion maps, the epoch counter — plus the hash-index
    metadata (see ``docs/delta-format.md``).  The write-ahead-log
    checkpoint path passes ``wal_lsn`` (the log position this sidecar
    makes durable) and ``main_file`` (the versioned main file it
    masks); plain saves omit both."""
    path = Path(path)
    payload = {
        "table": store.schema.name,
        "epoch": store.epoch,
        "columns": {
            name: [_encode_value(v) for v in values]
            for name, values in store.columns.items()
        },
        "insert_epochs": list(store.insert_epochs),
        "deleted_main": sorted(
            [position, at] for position, at in store.deleted_main.items()
        ),
        "deleted_delta": sorted(
            [index, at] for index, at in store.deleted_delta.items()
        ),
        "index": {
            "threshold": store.index_threshold,
            "columns": list(store.indexed_columns),
        },
    }
    if wal_lsn is not None:
        payload["wal_lsn"] = int(wal_lsn)
    if main_file is not None:
        payload["main_file"] = str(main_file)
    with _atomic_write(path, "save.delta") as handle:
        handle.write(_DELTA_MAGIC)
        handle.write(struct.pack("<H", _DELTA_VERSION))
        _write_block(handle, json.dumps(payload).encode())


def _delta_columns_from_payload(path, payload, schema):
    """Decode and validate the column vectors shared by both versions."""
    if set(payload["columns"]) != set(schema.column_names):
        raise SerializationError(
            f"{path}: delta columns {sorted(payload['columns'])} do not "
            f"match schema {list(schema.column_names)}"
        )
    columns = {
        name: [
            coerce(_decode_value(v), schema.column(name).dtype)
            for v in values
        ]
        for name, values in payload["columns"].items()
    }
    lengths = {len(values) for values in columns.values()}
    if len(lengths) > 1:
        raise SerializationError(f"{path}: ragged delta columns")
    return columns, (lengths.pop() if lengths else 0)


def _read_delta_payload(path) -> tuple[int, dict]:
    """A sidecar's (version, raw payload) — the schema-free peek the
    catalog-open path uses to resolve ``main_file``/``wal_lsn`` before
    any main table has been loaded."""
    path = Path(path)
    with path.open("rb") as handle:
        if handle.read(4) != _DELTA_MAGIC:
            raise SerializationError(f"{path}: not a .delta file")
        version_bytes = handle.read(2)
        if len(version_bytes) != 2:
            raise SerializationError(f"{path}: truncated .delta file")
        (version,) = struct.unpack("<H", version_bytes)
        if version not in (1, 2, _DELTA_VERSION):
            raise SerializationError(
                f"{path}: unsupported delta format version {version}"
            )
        try:
            payload = json.loads(_read_block(handle).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerializationError(
                f"{path}: undecodable .delta payload: {exc}"
            ) from exc
    return version, payload


def load_delta(path, schema: TableSchema):
    """Inverse of :func:`save_delta`; validated against ``schema``.

    Version-1 sidecars predate MVCC: their deletion *sets* become
    deletion maps with synthetic epochs (inserts at epoch 1, deletions
    at epoch 2)."""
    from repro.delta.store import DEFAULT_INDEX_THRESHOLD, DeltaStore

    path = Path(path)
    version, payload = _read_delta_payload(path)
    columns, n_appended = _delta_columns_from_payload(path, payload, schema)
    if version == 1:
        insert_epochs = [1] * n_appended
        deleted_main = {int(p): 2 for p in payload["deleted_main"]}
        deleted_delta = {int(i): 2 for i in payload["deleted_delta"]}
        epoch = 2 if (deleted_main or deleted_delta) else min(n_appended, 1)
        threshold = DEFAULT_INDEX_THRESHOLD
        indexed = ()
    else:
        insert_epochs = [int(e) for e in payload["insert_epochs"]]
        deleted_main = {
            int(position): int(at) for position, at in payload["deleted_main"]
        }
        deleted_delta = {
            int(index): int(at) for index, at in payload["deleted_delta"]
        }
        epoch = int(payload["epoch"])
        index_meta = payload.get("index", {})
        threshold = index_meta.get("threshold", DEFAULT_INDEX_THRESHOLD)
        indexed = index_meta.get("columns", ())
    for index in deleted_delta:
        if index < 0 or index >= n_appended:
            raise SerializationError(
                f"{path}: deleted delta index {index} out of range"
            )
    store = DeltaStore.restore(
        schema,
        columns,
        insert_epochs,
        deleted_main,
        deleted_delta,
        epoch,
        index_threshold=threshold,
    )
    for name in indexed:
        store.build_index(name)
    return store


def _load_delta_for_table(sidecar, table):
    """Load a sidecar and validate it against the main it masks."""
    loaded = load_delta(sidecar, table.schema)
    out_of_range = [p for p in loaded.deleted_main if p >= table.nrows]
    if out_of_range:
        raise SerializationError(
            f"{sidecar}: deleted positions {out_of_range} beyond the "
            f"main store's {table.nrows} rows"
        )
    return loaded


def save_mutable_table(mutable, path) -> None:
    """Persist a :class:`repro.delta.MutableTable`: the compressed main
    as a ``.cods`` file plus (when non-empty) the delta sidecar.  A
    stale sidecar from an earlier save is removed."""
    path = Path(path)
    save_table(mutable.main, path)
    sidecar = delta_sidecar_path(path)
    if mutable.has_pending_changes:
        save_delta(mutable.delta, sidecar)
    elif sidecar.exists():
        sidecar.unlink()


def _resolve_main_path(path) -> tuple[Path, Path]:
    """The (main file, sidecar) pair for the table addressed by the
    canonical ``.cods`` path.  A v3 sidecar may point at a *versioned*
    main file (the WAL checkpoint protocol writes a fresh main under a
    new name, then atomically republishes the sidecar to point at it —
    so a crash between the two writes leaves the old, still-consistent
    pair)."""
    path = Path(path)
    sidecar = delta_sidecar_path(path)
    if sidecar.exists():
        version, payload = _read_delta_payload(sidecar)
        main_file = payload.get("main_file")
        if version >= 3 and main_file is not None:
            return path.with_name(main_file), sidecar
    return path, sidecar


def load_mutable_table(path, policy=None):
    """Inverse of :func:`save_mutable_table`: restores the write buffer
    from the sidecar when present (following the sidecar's
    ``main_file`` pointer when it names a versioned main)."""
    from repro.delta.mutable import MutableTable

    main_path, sidecar = _resolve_main_path(path)
    table = load_table(main_path)
    mutable = MutableTable(table, policy)
    if sidecar.exists():
        mutable.restore_delta(_load_delta_for_table(sidecar, table))
    return mutable


def save_manifest(catalog, directory) -> None:
    """Atomically (re)write ``catalog.json`` for the current table set."""
    manifest = {"tables": catalog.table_names(), "version": catalog.version}
    with _atomic_write(Path(directory) / "catalog.json", "save.manifest") as f:
        f.write(json.dumps(manifest).encode())


def save_catalog(catalog, directory) -> None:
    """Save every table of a catalog into ``directory`` as .cods files.

    Tables first, manifest last: the manifest names only files that are
    already complete on disk, so a crash mid-save leaves the previous
    catalog loadable."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name in catalog.table_names():
        save_table(catalog.table(name), directory / f"{name}.cods")
    save_manifest(catalog, directory)


def load_catalog(directory):
    """Inverse of :func:`save_catalog`."""
    from repro.storage.catalog import Catalog

    directory = Path(directory)
    manifest_path = directory / "catalog.json"
    if not manifest_path.exists():
        raise SerializationError(f"{directory}: no catalog.json")
    manifest = json.loads(manifest_path.read_text())
    catalog = Catalog()
    for name in manifest["tables"]:
        catalog.put(load_table(directory / f"{name}.cods"), f"LOAD {name}")
    return catalog


def save_engine(engine, directory) -> None:
    """Save an evolution engine's catalog plus, for every table with
    unflushed writes, its delta sidecar."""
    directory = Path(directory)
    save_catalog(engine.catalog, directory)
    for name in engine.catalog.table_names():
        sidecar = delta_sidecar_path(directory / f"{name}.cods")
        pending = engine.pending_delta(name)
        if pending is not None:
            save_delta(pending.delta, sidecar)
        elif sidecar.exists():
            sidecar.unlink()


def load_engine(directory, policy=None):
    """Inverse of :func:`save_engine`: a fresh
    :class:`~repro.core.engine.EvolutionEngine` with the write buffers
    re-attached.  Each table's main file is resolved through its
    sidecar's ``main_file`` pointer when present (WAL checkpoints), the
    canonical ``{name}.cods`` otherwise."""
    from repro.core.engine import EvolutionEngine
    from repro.storage.catalog import Catalog

    directory = Path(directory)
    manifest_path = directory / "catalog.json"
    if not manifest_path.exists():
        raise SerializationError(f"{directory}: no catalog.json")
    manifest = json.loads(manifest_path.read_text())
    catalog = Catalog()
    sidecars: dict[str, Path] = {}
    for name in manifest["tables"]:
        main_path, sidecar = _resolve_main_path(directory / f"{name}.cods")
        catalog.put(load_table(main_path), f"LOAD {name}")
        if sidecar.exists():
            sidecars[name] = sidecar
    engine = EvolutionEngine(catalog)
    for name, sidecar in sidecars.items():
        table = engine.catalog.table(name)
        engine.mutable(name, policy).restore_delta(
            _load_delta_for_table(sidecar, table)
        )
    return engine
