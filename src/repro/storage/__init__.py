"""Column-oriented storage: schemas, bitmap columns, tables, catalog, IO."""

from repro.storage.catalog import Catalog, CatalogVersion
from repro.storage.column import BitmapColumn
from repro.storage.csvio import infer_type, load_csv, save_csv
from repro.storage.dictionary import Dictionary
from repro.storage.filefmt import (
    delta_sidecar_path,
    load_catalog,
    load_delta,
    load_engine,
    load_mutable_table,
    load_table,
    save_catalog,
    save_delta,
    save_engine,
    save_mutable_table,
    save_table,
)
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.statistics import ColumnStats, TableStats, table_statistics
from repro.storage.table import Table, table_from_python
from repro.storage.verify import (
    VerificationReport,
    verify_catalog,
    verify_column,
    verify_table,
)
from repro.storage.types import (
    DataType,
    coerce,
    parse_text,
    parse_type_name,
    python_type,
    render_text,
)

__all__ = [
    "BitmapColumn",
    "Catalog",
    "CatalogVersion",
    "ColumnSchema",
    "ColumnStats",
    "DataType",
    "Dictionary",
    "Table",
    "TableSchema",
    "TableStats",
    "VerificationReport",
    "verify_catalog",
    "verify_column",
    "verify_table",
    "coerce",
    "delta_sidecar_path",
    "infer_type",
    "load_catalog",
    "load_csv",
    "load_delta",
    "load_engine",
    "load_mutable_table",
    "load_table",
    "parse_text",
    "parse_type_name",
    "python_type",
    "render_text",
    "save_catalog",
    "save_csv",
    "save_delta",
    "save_engine",
    "save_mutable_table",
    "save_table",
    "table_from_python",
    "table_statistics",
]
