"""Table schemas: ordered columns plus key metadata.

Key metadata matters to CODS: the decomposition algorithm needs to know
which side of a lossless-join decomposition carries the key of the
common attributes (paper Section 2.4), and the key-foreign-key mergence
(Section 2.5.1) requires the join attributes to be a key of one input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.storage.types import DataType


@dataclass(frozen=True)
class ColumnSchema:
    """One column: a name and a logical type."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")

    def renamed(self, new_name: str) -> "ColumnSchema":
        return ColumnSchema(new_name, self.dtype, self.nullable)


@dataclass(frozen=True)
class TableSchema:
    """An ordered set of columns with optional key declarations.

    ``primary_key`` is a tuple of column names (possibly composite).
    ``candidate_keys`` may list further keys; they feed the lossless-join
    validation of DECOMPOSE and the reusable-side detection of MERGE.
    """

    name: str
    columns: tuple[ColumnSchema, ...]
    primary_key: tuple[str, ...] = ()
    candidate_keys: tuple[tuple[str, ...], ...] = field(default_factory=tuple)

    def __post_init__(self):
        if not self.name:
            raise SchemaError("table name must be non-empty")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        for key in (self.primary_key, *self.candidate_keys):
            for attr in key:
                if attr not in names:
                    raise SchemaError(
                        f"key column {attr!r} not in table {self.name!r}"
                    )

    # -- lookups ----------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    @property
    def attribute_set(self) -> frozenset[str]:
        return frozenset(self.column_names)

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def column(self, name: str) -> ColumnSchema:
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def index_of(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def all_keys(self) -> tuple[tuple[str, ...], ...]:
        """Primary key first, then candidate keys (deduplicated)."""
        keys: list[tuple[str, ...]] = []
        if self.primary_key:
            keys.append(self.primary_key)
        for key in self.candidate_keys:
            if key not in keys:
                keys.append(key)
        return tuple(keys)

    def is_key(self, attrs) -> bool:
        """True if ``attrs`` is a superset of any declared key."""
        attrs = frozenset(attrs)
        return any(attrs >= frozenset(key) for key in self.all_keys())

    # -- derivations ------------------------------------------------------

    def renamed(self, new_name: str) -> "TableSchema":
        return TableSchema(
            new_name, self.columns, self.primary_key, self.candidate_keys
        )

    def with_column(self, column: ColumnSchema) -> "TableSchema":
        if self.has_column(column.name):
            raise SchemaError(
                f"column {column.name!r} already exists in {self.name!r}"
            )
        return TableSchema(
            self.name,
            self.columns + (column,),
            self.primary_key,
            self.candidate_keys,
        )

    def without_column(self, name: str) -> "TableSchema":
        self.column(name)  # raises if missing
        if name in self.primary_key:
            raise SchemaError(
                f"cannot drop key column {name!r} of table {self.name!r}"
            )
        keys = tuple(k for k in self.candidate_keys if name not in k)
        return TableSchema(
            self.name,
            tuple(c for c in self.columns if c.name != name),
            self.primary_key,
            keys,
        )

    def with_renamed_column(self, old: str, new: str) -> "TableSchema":
        self.column(old)  # raises if missing
        if self.has_column(new):
            raise SchemaError(f"column {new!r} already exists in {self.name!r}")

        def fix(key: tuple[str, ...]) -> tuple[str, ...]:
            return tuple(new if attr == old else attr for attr in key)

        return TableSchema(
            self.name,
            tuple(c.renamed(new) if c.name == old else c for c in self.columns),
            fix(self.primary_key),
            tuple(fix(k) for k in self.candidate_keys),
        )

    def project(self, attrs, new_name: str, primary_key=()) -> "TableSchema":
        """Schema of a projection onto ``attrs`` (order preserved)."""
        attrs = list(attrs)
        missing = [a for a in attrs if not self.has_column(a)]
        if missing:
            raise SchemaError(
                f"columns {missing} not in table {self.name!r}"
            )
        columns = tuple(self.column(a) for a in attrs)
        keys = tuple(
            key
            for key in self.candidate_keys
            if all(attr in attrs for attr in key)
        )
        return TableSchema(new_name, columns, tuple(primary_key), keys)

    def compatible_with(self, other: "TableSchema") -> bool:
        """Same column names and types in the same order (for UNION)."""
        return self.column_names == other.column_names and all(
            a.dtype == b.dtype for a, b in zip(self.columns, other.columns)
        )
