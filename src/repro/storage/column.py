"""Bitmap-encoded columns.

A :class:`BitmapColumn` stores one compressed bitmap per distinct value
(the ``v × r`` matrix of paper Section 2.2): bit ``k`` of value ``u``'s
bitmap is set iff row ``k`` holds ``u``.  All evolution algorithms work
on this representation; the expensive "materialize the rows" path is
:meth:`decode_vids` / :meth:`to_values`, and callers that care (the
engine, the benchmarks) count how often it runs.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap.codecs import WAH, get_codec
from repro.bitmap.stats import CompressionStats
from repro.errors import StorageError
from repro.storage.dictionary import Dictionary
from repro.storage.types import DataType, coerce


class BitmapColumn:
    """One column of a column-store table, encoded as per-value bitmaps."""

    __slots__ = ("name", "dtype", "codec_name", "_codec", "_dictionary",
                 "_bitmaps", "_nrows")

    def __init__(
        self,
        name: str,
        dtype: DataType,
        dictionary: Dictionary,
        bitmaps: list,
        nrows: int,
        codec_name: str = WAH,
    ):
        self.name = name
        self.dtype = dtype
        self.codec_name = codec_name
        self._codec = get_codec(codec_name)
        self._dictionary = dictionary
        self._bitmaps = bitmaps
        self._nrows = int(nrows)
        if len(bitmaps) != len(dictionary):
            raise StorageError(
                f"column {name!r}: {len(bitmaps)} bitmaps for "
                f"{len(dictionary)} dictionary entries"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_values(
        cls,
        name: str,
        dtype: DataType,
        values,
        codec_name: str = WAH,
    ) -> "BitmapColumn":
        """Build a column from row-ordered values.

        Values are dictionary-encoded, then each distinct value's sorted
        row positions become one compressed bitmap.  Well-typed NumPy
        arrays skip per-value coercion (the bulk-load fast path).
        """
        dictionary = Dictionary()
        if isinstance(values, np.ndarray) and values.dtype != object:
            vids = dictionary.encode(values)
        else:
            vids = dictionary.encode([coerce(v, dtype) for v in values])
        return cls.from_vids(name, dtype, dictionary, vids, codec_name)

    @classmethod
    def from_vids(
        cls,
        name: str,
        dtype: DataType,
        dictionary: Dictionary,
        vids: np.ndarray,
        codec_name: str = WAH,
    ) -> "BitmapColumn":
        """Build from a pre-encoded vid array (row order)."""
        codec = get_codec(codec_name)
        nrows = len(vids)
        nvals = len(dictionary)
        bitmaps = [None] * nvals
        if nrows:
            order = np.argsort(vids, kind="stable")
            sorted_vids = vids[order]
            boundaries = np.concatenate(
                (
                    [0],
                    np.flatnonzero(sorted_vids[1:] != sorted_vids[:-1]) + 1,
                    [nrows],
                )
            )
            for i in range(len(boundaries) - 1):
                lo, hi = int(boundaries[i]), int(boundaries[i + 1])
                vid = int(sorted_vids[lo])
                bitmaps[vid] = codec.from_positions(order[lo:hi], nrows)
        for vid in range(nvals):
            if bitmaps[vid] is None:
                bitmaps[vid] = codec.zeros(nrows)
        return cls(name, dtype, dictionary, bitmaps, nrows, codec_name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def nrows(self) -> int:
        return self._nrows

    @property
    def distinct_count(self) -> int:
        return len(self._dictionary)

    @property
    def dictionary(self) -> Dictionary:
        return self._dictionary

    @property
    def bitmaps(self) -> list:
        """Per-vid bitmaps (the live list; treat as read-only)."""
        return self._bitmaps

    def bitmap_for_vid(self, vid: int):
        return self._bitmaps[vid]

    def bitmap_for_value(self, value):
        """Compressed bitmap of ``value``; raises if the value is absent."""
        return self._bitmaps[self._dictionary.vid(coerce(value, self.dtype))]

    def positions_for_value(self, value) -> np.ndarray:
        """Sorted row positions holding ``value`` (empty if absent)."""
        vid = self._dictionary.vid_or_none(coerce(value, self.dtype))
        if vid is None:
            return np.empty(0, dtype=np.int64)
        return self._bitmaps[vid].positions()

    def value_counts(self) -> np.ndarray:
        """Occurrences of each value, by vid — compressed-domain counts."""
        from repro.bitmap.batch import batch_count

        return batch_count(self._bitmaps)

    def get(self, row: int):
        """Value at a single row (slow; for display and tests)."""
        if row < 0 or row >= self._nrows:
            raise StorageError(f"row {row} out of range")
        for vid, bitmap in enumerate(self._bitmaps):
            if bitmap.get(row):
                return self._dictionary.value(vid)
        return None  # pragma: no cover - only with corrupted bitmaps

    # ------------------------------------------------------------------
    # Materialization ("decompression") — the expensive path
    # ------------------------------------------------------------------

    def decode_vids(self) -> np.ndarray:
        """Materialize the row-ordered vid array.

        This is what the paper calls decompression: ``O(nrows)`` work and
        memory.  CODS algorithms only call it where the paper's
        algorithms also scan sequentially (e.g. mergence pass 2).
        """
        from repro.bitmap.batch import batch_decode_vids

        if self._nrows == 0:
            return np.empty(0, dtype=np.int64)
        try:
            return batch_decode_vids(self._bitmaps, self._nrows)
        except StorageError as exc:
            raise StorageError(
                f"column {self.name!r}: {exc} (NULLs or corruption)"
            ) from exc

    def to_values(self) -> list:
        """Materialize the row-ordered Python values."""
        return self._dictionary.decode(self.decode_vids())

    # ------------------------------------------------------------------
    # Structural operations used by evolution
    # ------------------------------------------------------------------

    def select(self, sorted_positions: np.ndarray, compact: bool = True
               ) -> "BitmapColumn":
        """Bitmap-filter every value's bitmap to ``sorted_positions``.

        Implements the paper's "bitmap filtering" for one column: the new
        column has ``len(sorted_positions)`` rows and bit ``i`` of value
        ``u`` is set iff row ``sorted_positions[i]`` held ``u``.  With
        ``compact=True`` values that vanish are dropped from the
        dictionary (PARTITION needs this; DECOMPOSE keys keep all).
        """
        from repro.bitmap.batch import batch_select

        new_len = len(sorted_positions)
        filtered = batch_select(self._bitmaps, sorted_positions)
        if not compact:
            return BitmapColumn(
                self.name, self.dtype, self._dictionary, filtered,
                new_len, self.codec_name,
            )
        dictionary = Dictionary()
        bitmaps = []
        for vid, bitmap in enumerate(filtered):
            if bitmap.count() > 0:
                dictionary.add(self._dictionary.value(vid))
                bitmaps.append(bitmap)
        return BitmapColumn(
            self.name, self.dtype, dictionary, bitmaps, new_len,
            self.codec_name,
        )

    def concat(self, other: "BitmapColumn") -> "BitmapColumn":
        """Concatenate rows of two columns (UNION TABLES).

        Bitmaps of shared values are concatenated; values present on only
        one side get a zero-extension on the other.
        """
        if self.dtype != other.dtype:
            raise StorageError(
                f"cannot union column {self.name!r}: type mismatch "
                f"{self.dtype} vs {other.dtype}"
            )
        from repro.bitmap.batch import batch_concat_positions

        dictionary = Dictionary(self._dictionary.values())
        pairing: list[tuple] = [
            (vid, None) for vid in range(len(self._bitmaps))
        ]
        for vid_other, value in enumerate(other._dictionary.values()):
            existing = dictionary.vid_or_none(value)
            if existing is not None and existing < len(self._bitmaps):
                pairing[existing] = (existing, vid_other)
            else:
                dictionary.add(value)
                pairing.append((None, vid_other))
        bitmaps = batch_concat_positions(
            self._bitmaps, other._bitmaps, pairing,
            self._nrows, other._nrows,
        )
        return BitmapColumn(
            self.name, self.dtype, dictionary, bitmaps,
            self._nrows + other._nrows, self.codec_name,
        )

    def renamed(self, new_name: str) -> "BitmapColumn":
        """Same data under a new column name (shares bitmaps)."""
        return BitmapColumn(
            new_name, self.dtype, self._dictionary, self._bitmaps,
            self._nrows, self.codec_name,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def compression_stats(self) -> CompressionStats:
        """Aggregate compressed size over all value bitmaps."""
        total = CompressionStats(0, 0)
        for bitmap in self._bitmaps:
            total = total + CompressionStats(bitmap.nbits, bitmap.nbytes)
        return total

    def same_content(self, other: "BitmapColumn") -> bool:
        """Row-by-row logical equality (dictionary order independent)."""
        if self._nrows != other._nrows or self.dtype != other.dtype:
            return False
        mine = self.to_values()
        theirs = other.to_values()
        return mine == theirs

    def __repr__(self) -> str:
        return (
            f"BitmapColumn({self.name!r}, {self.dtype}, rows={self._nrows}, "
            f"distinct={self.distinct_count}, codec={self.codec_name})"
        )
