"""Data types for the column store.

The CODS storage model encodes every column as a set of per-value
bitmaps, so values only need to be hashable, orderable and serializable.
We support the types the paper's examples use (strings and numbers) plus
booleans and dates for the warehouse workloads.
"""

from __future__ import annotations

import datetime
from enum import Enum

from repro.errors import SchemaError


class DataType(Enum):
    """Logical column types."""

    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "STRING"
    BOOL = "BOOL"
    DATE = "DATE"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_PYTHON_TYPES = {
    DataType.INT: int,
    DataType.FLOAT: float,
    DataType.STRING: str,
    DataType.BOOL: bool,
    DataType.DATE: datetime.date,
}


def python_type(dtype: DataType) -> type:
    """The Python type used to represent values of ``dtype``."""
    return _PYTHON_TYPES[dtype]


def coerce(value, dtype: DataType):
    """Coerce ``value`` to the Python representation of ``dtype``.

    ``None`` passes through (NULL).  Raises :class:`SchemaError` on
    values that cannot be represented.
    """
    if value is None:
        return None
    try:
        if dtype is DataType.INT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float) and not value.is_integer():
                raise ValueError(f"non-integral float {value!r}")
            return int(value)
        if dtype is DataType.FLOAT:
            return float(value)
        if dtype is DataType.STRING:
            return value if isinstance(value, str) else str(value)
        if dtype is DataType.BOOL:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1", "yes"):
                    return True
                if lowered in ("false", "f", "0", "no"):
                    return False
                raise ValueError(f"not a boolean: {value!r}")
            return bool(value)
        if dtype is DataType.DATE:
            if isinstance(value, datetime.date):
                return value
            return datetime.date.fromisoformat(str(value))
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"cannot coerce {value!r} to {dtype}") from exc
    raise SchemaError(f"unknown data type {dtype!r}")  # pragma: no cover


def parse_text(text: str, dtype: DataType):
    """Parse a CSV cell into a value of ``dtype`` (empty string = NULL)."""
    if text == "":
        return None
    return coerce(text, dtype)


def render_text(value) -> str:
    """Render a value for CSV output (NULL becomes the empty string)."""
    if value is None:
        return ""
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)


def parse_type_name(name: str) -> DataType:
    """Parse a SQL-ish type name (``INT``, ``VARCHAR``, ``TEXT``, …)."""
    upper = name.strip().upper()
    aliases = {
        "INT": DataType.INT,
        "INTEGER": DataType.INT,
        "BIGINT": DataType.INT,
        "SMALLINT": DataType.INT,
        "FLOAT": DataType.FLOAT,
        "REAL": DataType.FLOAT,
        "DOUBLE": DataType.FLOAT,
        "DECIMAL": DataType.FLOAT,
        "NUMERIC": DataType.FLOAT,
        "STRING": DataType.STRING,
        "TEXT": DataType.STRING,
        "VARCHAR": DataType.STRING,
        "CHAR": DataType.STRING,
        "BOOL": DataType.BOOL,
        "BOOLEAN": DataType.BOOL,
        "DATE": DataType.DATE,
    }
    base = upper.split("(")[0].strip()
    if base not in aliases:
        raise SchemaError(f"unknown type name {name!r}")
    return aliases[base]
