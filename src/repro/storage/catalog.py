"""The catalog: named tables plus schema-version history.

The PRISM line of work the paper builds on (Curino et al., VLDB 2008)
treats a database's life as a sequence of schema versions connected by
SMOs.  Our catalog records that history so it can be inspected and
replayed (tests verify replay determinism).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.storage.schema import TableSchema
from repro.storage.table import Table


@dataclass(frozen=True)
class CatalogVersion:
    """A snapshot entry in the evolution history."""

    version: int
    operation: str
    tables: tuple[str, ...]


@dataclass
class Catalog:
    """A mutable collection of named tables with version history."""

    tables: dict = field(default_factory=dict)
    history: list = field(default_factory=list)
    version: int = 0
    #: Serializes mutations (the version counter and history list are
    #: not atomic to update) — DDL from one session can race the
    #: background compactor's post-compaction ``put``.  Reads stay
    #: lock-free: dict get/set are atomic, and multi-table consistency
    #: is the transaction layer's job, not the catalog's.
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    # -- queries ------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no table named {name!r}") from None

    def schema(self, name: str) -> TableSchema:
        return self.table(name).schema

    def table_names(self) -> list[str]:
        return sorted(self.tables)

    # -- mutations ------------------------------------------------------------

    def _record(self, operation: str) -> None:
        self.version += 1
        self.history.append(
            CatalogVersion(self.version, operation, tuple(sorted(self.tables)))
        )

    def put(self, table: Table, operation: str | None = None) -> None:
        """Insert or replace a table under its schema name."""
        with self._lock:
            self.tables[table.schema.name] = table
            self._record(operation or f"PUT {table.schema.name}")

    def create(self, table: Table, operation: str | None = None) -> None:
        """Insert a table; fails if the name exists."""
        with self._lock:
            if table.schema.name in self.tables:
                raise SchemaError(
                    f"table {table.schema.name!r} already exists"
                )
            self.put(table, operation or f"CREATE TABLE {table.schema.name}")

    def drop(self, name: str, operation: str | None = None) -> Table:
        """Remove and return a table."""
        with self._lock:
            table = self.table(name)
            del self.tables[name]
            self._record(operation or f"DROP TABLE {name}")
            return table

    def rename(self, old: str, new: str, operation: str | None = None) -> None:
        with self._lock:
            table = self.table(old)
            if new in self.tables:
                raise SchemaError(f"table {new!r} already exists")
            del self.tables[old]
            self.tables[new] = table.renamed(new)
            self._record(operation or f"RENAME TABLE {old} TO {new}")

    # -- introspection ------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable schema listing (demo UI)."""
        lines = []
        for name in self.table_names():
            table = self.tables[name]
            columns = ", ".join(
                f"{c.name} {c.dtype}" for c in table.schema.columns
            )
            key = (
                f", KEY({', '.join(table.schema.primary_key)})"
                if table.schema.primary_key
                else ""
            )
            lines.append(f"{name}({columns}{key}) -- {table.nrows} rows")
        return "\n".join(lines) if lines else "(empty catalog)"
