"""Structural integrity verification for bitmap-encoded tables.

A well-formed bitmap column satisfies three invariants (the ``v × r``
matrix of paper Section 2.2 is a permutation matrix per row):

1. every bitmap has exactly ``nrows`` bits;
2. bitmaps are pairwise disjoint (a row holds one value);
3. together they cover every row exactly once.

``verify_table`` / ``verify_catalog`` check them and report violations —
the failure-injection tests corrupt columns on purpose and assert these
checks catch it, and the evolution tests run them over every output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.storage.column import BitmapColumn
from repro.storage.table import Table


@dataclass
class VerificationReport:
    """Outcome of an integrity check."""

    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def __str__(self) -> str:
        if self.ok:
            return "ok"
        return "; ".join(self.violations)


def verify_column(column: BitmapColumn, report: VerificationReport | None
                  = None, context: str = "") -> VerificationReport:
    """Check the three structural invariants of one column."""
    report = report if report is not None else VerificationReport()
    prefix = f"{context}column {column.name!r}: "

    if len(column.bitmaps) != len(column.dictionary):
        report.add(
            f"{prefix}{len(column.bitmaps)} bitmaps for "
            f"{len(column.dictionary)} dictionary entries"
        )
        return report

    coverage = np.zeros(column.nrows, dtype=np.int64)
    for vid, bitmap in enumerate(column.bitmaps):
        if bitmap.nbits != column.nrows:
            report.add(
                f"{prefix}bitmap of vid {vid} has {bitmap.nbits} bits, "
                f"expected {column.nrows}"
            )
            continue
        positions = bitmap.positions()
        coverage[positions] += 1
    over = np.flatnonzero(coverage > 1)
    under = np.flatnonzero(coverage == 0)
    if len(over):
        report.add(
            f"{prefix}{len(over)} rows covered by multiple values "
            f"(first at row {int(over[0])})"
        )
    if len(under):
        report.add(
            f"{prefix}{len(under)} rows covered by no value "
            f"(first at row {int(under[0])})"
        )
    return report


def verify_table(table: Table) -> VerificationReport:
    """Verify every column of a table, plus key uniqueness if declared."""
    report = VerificationReport()
    context = f"table {table.schema.name!r}: "
    for name in table.schema.column_names:
        verify_column(table.column(name), report, context)
    if report.ok and table.schema.primary_key:
        from repro.fd.discovery import is_key_in_data

        if not is_key_in_data(table, table.schema.primary_key):
            report.add(
                f"{context}declared key "
                f"{table.schema.primary_key} has duplicate values"
            )
    return report


def verify_catalog(catalog) -> VerificationReport:
    """Verify every table of a catalog."""
    report = VerificationReport()
    for name in catalog.table_names():
        table_report = verify_table(catalog.table(name))
        report.violations.extend(table_report.violations)
    return report
