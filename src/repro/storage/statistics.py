"""Per-column statistics for statistics-driven plan choices.

The dictionary of a :class:`~repro.storage.column.BitmapColumn` already
*is* a distinct-value catalog, so main-store statistics cost O(distinct)
to compute — no data scan.  ``TableStats`` adds the delta row share so a
planner can judge how representative the compressed main store is of
the full (main + delta) table.

``MutableTable.statistics()`` / ``Snapshot.statistics()`` build these
(cached per compaction generation on the mutable side) and adapters
surface them through the optional ``EngineAdapter.table_stats`` hook;
``repro.exec`` uses them to pick compressed-domain vs row-wise
aggregation and the delta store uses the same idea to decide indexed vs
row-wise range probes.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

__all__ = [
    "ColumnStats",
    "TableStats",
    "cached_table_column_stats",
    "table_statistics",
]


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column of a table's *main* (compressed) store.

    ``distinct`` counts dictionary entries (including a ``None`` entry
    if present); ``min``/``max`` range over the non-``None`` dictionary
    values and are ``None`` for an all-NULL or empty column.
    """

    name: str
    distinct: int
    min: object = None
    max: object = None


@dataclass(frozen=True)
class TableStats:
    """Table-level statistics: live row counts and per-column stats.

    ``main_rows`` counts main-store rows still visible (appended minus
    deleted); ``delta_rows`` counts live delta rows.  Column statistics
    describe the main store only — ``delta_share`` tells the planner how
    much of the table those statistics do *not* cover.
    """

    table: str
    main_rows: int
    delta_rows: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return self.main_rows + self.delta_rows

    @property
    def delta_share(self) -> float:
        total = self.total_rows
        return self.delta_rows / total if total else 0.0

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)


def column_statistics(name: str, column) -> ColumnStats:
    """Statistics for one :class:`BitmapColumn` — O(distinct), no scan."""
    values = [v for v in column.dictionary.values() if v is not None]
    try:
        lo = min(values) if values else None
        hi = max(values) if values else None
    except TypeError:  # mixed incomparable types; keep the distinct count
        lo = hi = None
    return ColumnStats(name, column.distinct_count, lo, hi)


#: Column statistics weakly keyed by the immutable main-store Table.  A
#: generation's compressed columns never change — and a metadata-only
#: rename swaps in a fresh relabeled Table object — so one computation
#: serves every MutableTable view and pinned Snapshot of the same
#: generation, and the entry dies with the generation.
_COLUMN_STATS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def cached_table_column_stats(table) -> dict[str, ColumnStats]:
    """Memoized per-column statistics for one main-store generation."""
    stats = _COLUMN_STATS.get(table)
    if stats is None:
        stats = {
            column.name: column_statistics(column.name, column)
            for column in table.columns()
        }
        _COLUMN_STATS[table] = stats
    return stats


def table_statistics(table, main_rows: int | None = None,
                     delta_rows: int = 0) -> TableStats:
    """Statistics for a :class:`~repro.storage.table.Table` main store.

    ``main_rows`` overrides the physical row count with the *live* count
    when the caller tracks deletions (MutableTable / Snapshot do).
    """
    columns = cached_table_column_stats(table)
    rows = table.nrows if main_rows is None else main_rows
    return TableStats(table.name, rows, delta_rows, columns)
