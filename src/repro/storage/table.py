"""Column-store tables.

A :class:`Table` is a schema plus one :class:`BitmapColumn` per
attribute.  Row-level accessors exist (the demo UI and the query-level
baseline need them) but are explicit, separate entry points — the
data-level evolution algorithms never materialize rows.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap.codecs import WAH
from repro.errors import SchemaError, StorageError
from repro.storage.column import BitmapColumn
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.types import DataType, coerce


def canonical_sort_key(row) -> tuple:
    """Total order over heterogeneous row tuples: NULLs first, then by
    value type, then by value.  Shared by every ``sorted_rows``
    implementation so multiset comparisons agree across table kinds."""
    return tuple(
        (value is not None, str(type(value)), value) for value in row
    )


class Table:
    """An immutable-by-convention column-store table."""

    # __weakref__ lets read-path caches key decoded rows by generation
    # (repro.delta.snapshot) without pinning the table alive.
    __slots__ = ("schema", "_columns", "_nrows", "__weakref__")

    def __init__(self, schema: TableSchema, columns: dict, nrows: int):
        self.schema = schema
        self._columns = columns
        self._nrows = int(nrows)
        if set(columns) != set(schema.column_names):
            raise SchemaError(
                f"table {schema.name!r}: columns {sorted(columns)} do not "
                f"match schema {list(schema.column_names)}"
            )
        for name, column in columns.items():
            if column.nrows != nrows:
                raise StorageError(
                    f"column {name!r} has {column.nrows} rows; table "
                    f"{schema.name!r} has {nrows}"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        schema: TableSchema,
        data: dict,
        codec_name: str = WAH,
    ) -> "Table":
        """Build from ``{column_name: row-ordered values}``."""
        lengths = {len(values) for values in data.values()}
        if len(lengths) > 1:
            raise StorageError(f"ragged columns: lengths {sorted(lengths)}")
        nrows = lengths.pop() if lengths else 0
        columns = {}
        for column_schema in schema.columns:
            if column_schema.name not in data:
                raise SchemaError(
                    f"missing data for column {column_schema.name!r}"
                )
            columns[column_schema.name] = BitmapColumn.from_values(
                column_schema.name,
                column_schema.dtype,
                data[column_schema.name],
                codec_name,
            )
        return cls(schema, columns, nrows)

    @classmethod
    def from_rows(
        cls,
        schema: TableSchema,
        rows,
        codec_name: str = WAH,
    ) -> "Table":
        """Build from an iterable of row tuples (schema column order)."""
        rows = list(rows)
        names = schema.column_names
        data = {
            name: [row[index] for row in rows]
            for index, name in enumerate(names)
        }
        return cls.from_columns(schema, data, codec_name)

    @classmethod
    def empty(cls, schema: TableSchema, codec_name: str = WAH) -> "Table":
        return cls.from_columns(
            schema, {name: [] for name in schema.column_names}, codec_name
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def nrows(self) -> int:
        return self._nrows

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.schema.column_names

    def column(self, name: str) -> BitmapColumn:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r} in table {self.schema.name!r}"
            ) from None

    def columns(self) -> list[BitmapColumn]:
        """Columns in schema order."""
        return [self._columns[name] for name in self.schema.column_names]

    # ------------------------------------------------------------------
    # Row materialization (the expensive path, used by baselines/demo)
    # ------------------------------------------------------------------

    def to_rows(self) -> list[tuple]:
        """Materialize all rows in row order — the "merge into tuples"
        stage of query-level evolution (Figure 2, right side)."""
        if self._nrows == 0:
            return []
        value_lists = [
            self._columns[name].to_values() for name in self.schema.column_names
        ]
        return list(zip(*value_lists))

    def iter_rows(self):
        """Iterate rows without holding more than the decoded columns."""
        return iter(self.to_rows())

    def head(self, limit: int = 10) -> list[tuple]:
        """First ``limit`` rows (for display)."""
        return self.to_rows()[:limit]

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------

    def renamed(self, new_name: str) -> "Table":
        """Same data under a new table name (shares columns)."""
        return Table(self.schema.renamed(new_name), self._columns, self._nrows)

    def project(self, attrs, new_name: str, primary_key=()) -> "Table":
        """Projection onto ``attrs`` without duplicate elimination.

        Columns are *shared*, not copied — this is Property 1 of the
        paper at work: the unchanged output table of a decomposition is
        just a projection view over existing compressed columns.
        """
        schema = self.schema.project(attrs, new_name, primary_key)
        columns = {name: self._columns[name] for name in schema.column_names}
        return Table(schema, columns, self._nrows)

    def select_rows(self, sorted_positions: np.ndarray, new_name: str | None
                    = None, compact: bool = True) -> "Table":
        """Keep only the rows at ``sorted_positions`` (bitmap filtering
        applied to every column)."""
        name = new_name or self.schema.name
        schema = self.schema.renamed(name)
        columns = {
            column_name: self._columns[column_name].select(
                sorted_positions, compact=compact
            )
            for column_name in self.schema.column_names
        }
        return Table(schema, columns, len(sorted_positions))

    def with_column(self, column_schema: ColumnSchema,
                    column: BitmapColumn) -> "Table":
        if column.nrows != self._nrows:
            raise StorageError(
                f"new column {column_schema.name!r} has {column.nrows} rows; "
                f"table has {self._nrows}"
            )
        schema = self.schema.with_column(column_schema)
        columns = dict(self._columns)
        columns[column_schema.name] = column
        return Table(schema, columns, self._nrows)

    def without_column(self, name: str) -> "Table":
        schema = self.schema.without_column(name)
        columns = {n: c for n, c in self._columns.items() if n != name}
        return Table(schema, columns, self._nrows)

    def with_renamed_column(self, old: str, new: str) -> "Table":
        schema = self.schema.with_renamed_column(old, new)
        columns = {}
        for n, c in self._columns.items():
            if n == old:
                columns[new] = c.renamed(new)
            else:
                columns[n] = c
        return Table(schema, columns, self._nrows)

    def concat(self, other: "Table", new_name: str | None = None) -> "Table":
        """UNION ALL of two union-compatible tables."""
        if not self.schema.compatible_with(other.schema):
            raise SchemaError(
                f"tables {self.name!r} and {other.name!r} are not "
                "union-compatible"
            )
        name = new_name or self.schema.name
        columns = {
            column_name: self._columns[column_name].concat(
                other._columns[column_name]
            )
            for column_name in self.schema.column_names
        }
        return Table(
            self.schema.renamed(name), columns, self._nrows + other._nrows
        )

    # ------------------------------------------------------------------
    # Comparison helpers (tests, verification)
    # ------------------------------------------------------------------

    def sorted_rows(self) -> list[tuple]:
        """All rows sorted canonically (None sorts first)."""
        return sorted(self.to_rows(), key=canonical_sort_key)

    def same_content(self, other: "Table", ordered: bool = False) -> bool:
        """Logical equality: same schema shape and same multiset of rows
        (or same sequence when ``ordered``)."""
        if self.schema.column_names != other.schema.column_names:
            return False
        if self._nrows != other._nrows:
            return False
        if ordered:
            return self.to_rows() == other.to_rows()
        return self.sorted_rows() == other.sorted_rows()

    def value_multiset(self, attr: str):
        """Multiset of values of one column, as a sorted list."""
        return sorted(self.column(attr).to_values(), key=lambda v: (v is None, str(v)))

    def __repr__(self) -> str:
        return (
            f"Table({self.schema.name!r}, rows={self._nrows}, "
            f"columns={list(self.schema.column_names)})"
        )


def table_from_python(name: str, spec: dict, primary_key=(), codec_name=WAH,
                      candidate_keys=()) -> Table:
    """Convenience constructor: ``spec`` maps column name to
    ``(DataType, values)``; used heavily by tests and examples."""
    columns = tuple(
        ColumnSchema(cname, dtype) for cname, (dtype, _values) in spec.items()
    )
    schema = TableSchema(
        name, columns, tuple(primary_key), tuple(candidate_keys)
    )
    data = {cname: values for cname, (_dtype, values) in spec.items()}
    return Table.from_columns(schema, data, codec_name)
