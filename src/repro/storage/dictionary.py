"""Value dictionaries: the value <-> value-id mapping of a bitmap column.

A bitmap-encoded column keeps one compressed bitvector per *distinct*
value; the dictionary assigns each distinct value a dense integer id
(vid) in first-seen order.  Bulk encoding is vectorized through
``np.unique`` so loading large columns does not pay a per-row Python
dictionary lookup.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError


class Dictionary:
    """Bidirectional mapping between values and dense integer ids."""

    __slots__ = ("_values", "_ids")

    def __init__(self, values=()):
        self._values: list = []
        self._ids: dict = {}
        for value in values:
            self.add(value)

    # -- construction -------------------------------------------------------

    def add(self, value) -> int:
        """Insert ``value`` if new; return its vid."""
        vid = self._ids.get(value)
        if vid is None:
            vid = len(self._values)
            self._values.append(value)
            self._ids[value] = vid
        return vid

    def encode(self, values) -> np.ndarray:
        """Vectorized bulk encode: map each value to its vid, adding new
        values in first-occurrence order.  Returns an int64 array."""
        values = list(values) if not isinstance(values, np.ndarray) else values
        n = len(values)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        array = np.asarray(values, dtype=object)
        try:
            # np.unique needs a homogeneous, orderable array; fall back to
            # the Python path for mixed/unorderable content (e.g. None).
            typed = np.asarray(values)
            if typed.dtype == object:
                raise TypeError
            uniques, inverse = np.unique(typed, return_inverse=True)
        except TypeError:
            return np.fromiter(
                (self.add(value) for value in array),
                dtype=np.int64,
                count=n,
            )
        # Map the sorted uniques to vids, registering first occurrences in
        # row order so ids stay deterministic under streaming loads.
        first_rows = np.full(len(uniques), n, dtype=np.int64)
        np.minimum.at(first_rows, inverse, np.arange(n, dtype=np.int64))
        order = np.argsort(first_rows, kind="stable")
        vid_of_unique = np.empty(len(uniques), dtype=np.int64)
        for unique_index in order.tolist():
            vid_of_unique[unique_index] = self.add(uniques[unique_index].item())
        return vid_of_unique[inverse]

    # -- lookups ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value) -> bool:
        return value in self._ids

    def vid(self, value) -> int:
        """Vid of ``value``; raises if absent."""
        try:
            return self._ids[value]
        except KeyError:
            raise StorageError(f"value {value!r} not in dictionary") from None

    def vid_or_none(self, value):
        return self._ids.get(value)

    def value(self, vid: int):
        """Value stored under ``vid``."""
        if vid < 0 or vid >= len(self._values):
            raise StorageError(f"vid {vid} out of range")
        return self._values[vid]

    def values(self) -> list:
        """All values in vid order (copy)."""
        return list(self._values)

    def decode(self, vids: np.ndarray) -> list:
        """Map an array of vids back to values."""
        table = self._values
        return [table[v] for v in vids.tolist()]

    def decode_array(self, vids: np.ndarray) -> np.ndarray:
        """Decode to a NumPy array (object dtype unless homogeneous)."""
        table = np.asarray(self._values, dtype=object)
        return table[np.asarray(vids, dtype=np.int64)]

    def __iter__(self):
        return iter(self._values)

    def __repr__(self) -> str:
        return f"Dictionary({len(self)} values)"
