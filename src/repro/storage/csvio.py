"""CSV import/export for column-store tables.

The demo workflow ("load data" in Figure 4) ingests CSV files.  Types
can be declared via a schema or inferred from the data.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.errors import StorageError
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.table import Table
from repro.storage.types import DataType, parse_text, render_text


def infer_type(samples) -> DataType:
    """Infer the narrowest type that parses every non-empty sample."""
    non_empty = [s for s in samples if s != ""]
    if not non_empty:
        return DataType.STRING

    def all_parse(dtype: DataType) -> bool:
        for sample in non_empty:
            try:
                parse_text(sample, dtype)
            except Exception:
                return False
        return True

    for dtype in (DataType.INT, DataType.FLOAT, DataType.BOOL, DataType.DATE):
        if all_parse(dtype):
            return dtype
    return DataType.STRING


def load_csv(
    path,
    table_name: str | None = None,
    schema: TableSchema | None = None,
    primary_key=(),
) -> Table:
    """Load a CSV file (with header row) into a column-store table.

    If ``schema`` is given its column names must match the header; types
    are otherwise inferred from the full file contents.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError(f"{path}: empty CSV file") from None
        rows = list(reader)
    for index, row in enumerate(rows):
        if len(row) != len(header):
            raise StorageError(
                f"{path}: row {index + 2} has {len(row)} fields, "
                f"expected {len(header)}"
            )
    name = table_name or path.stem
    if schema is None:
        dtypes = [
            infer_type([row[i] for row in rows]) for i in range(len(header))
        ]
        schema = TableSchema(
            name,
            tuple(
                ColumnSchema(header[i], dtypes[i]) for i in range(len(header))
            ),
            tuple(primary_key),
        )
    else:
        if tuple(schema.column_names) != tuple(header):
            raise StorageError(
                f"{path}: header {header} does not match schema "
                f"{list(schema.column_names)}"
            )
        schema = schema.renamed(name)
    data = {
        column.name: [
            parse_text(row[index], column.dtype) for row in rows
        ]
        for index, column in enumerate(schema.columns)
    }
    return Table.from_columns(schema, data)


def save_csv(table: Table, path) -> None:
    """Write a table to CSV (header row + all rows, row order)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.column_names)
        for row in table.to_rows():
            writer.writerow([render_text(value) for value in row])
