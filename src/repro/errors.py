"""Exception hierarchy for the CODS reproduction.

Every error raised by the library derives from :class:`CodsError`, so a
caller can guard an entire evolution plan with a single ``except`` clause.
The subclasses mirror the layers of the system: storage, schema/SMO
validation, SQL parsing/execution and the evolution engine itself.
"""

from __future__ import annotations


class CodsError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(CodsError):
    """A problem in the physical storage layer (bitmaps, columns, files)."""


class BitmapError(StorageError):
    """Invalid bitmap operation, e.g. length mismatch in a logical op."""


class SerializationError(StorageError):
    """A table or column file is malformed or version-incompatible."""


class WalError(StorageError):
    """A problem in the write-ahead log subsystem (``repro.wal``):
    misuse of the log API, a durability mode mismatch on open, or a
    recovery precondition that does not hold."""


class WalCorruptionError(WalError):
    """The write-ahead log is damaged in a way recovery cannot repair
    silently: a checksum mismatch *before* the final record, a mangled
    header, or a checkpoint pointing outside the log.  A torn final
    record is *not* corruption — it is the expected shape of a crash
    mid-append and recovery discards it."""


class SchemaError(CodsError):
    """Schema-level violation: unknown table/column, duplicate names, etc."""


class KeyViolationError(SchemaError):
    """Data does not satisfy a declared key or functional dependency."""


class SmoValidationError(SchemaError):
    """A schema modification operator is not applicable to the catalog."""


class LosslessJoinError(SmoValidationError):
    """A requested decomposition is not lossless-join."""


class SqlError(CodsError):
    """Base class for errors in the SQL subset engine."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""


class SqlExecutionError(SqlError):
    """The statement parsed but could not be executed."""


class CapabilityError(CodsError):
    """A statement needs a capability the selected backend lacks (e.g.
    SMOs on the row store, snapshots on the query-level column store)."""


class TransactionError(CodsError):
    """Misuse of a :meth:`repro.db.Database.transaction` scope: writes
    in a read-only scope, schema changes inside any scope, or use of a
    scope that already committed or rolled back."""


class NetworkError(CodsError):
    """A transport-level problem in the client/server layer
    (:mod:`repro.server` / :mod:`repro.client`): the peer hung up, the
    connection was reaped, or a send/recv failed."""


class ProtocolError(NetworkError):
    """The byte stream is not a valid CODS wire conversation: bad
    magic, unsupported version, a checksum mismatch, an oversized
    frame, or a command the server does not understand."""


class AuthenticationError(NetworkError):
    """The server requires an auth token and the ``hello`` frame's
    token was missing or wrong."""


class EvolutionError(CodsError):
    """The evolution engine failed while applying an operator."""


class ObservabilityError(CodsError):
    """Misuse of the metrics registry (e.g. setting a callback-backed
    gauge) or of the query-tracing machinery."""


class WorkloadError(CodsError):
    """Invalid workload-generator parameters."""
