"""Read-your-writes overlays for read-write transactions.

A read-write :class:`~repro.db.transaction.Transaction` buffers its DML
as text and replays it at commit — but a SELECT inside the scope must
still *see* those buffered writes (read-your-writes), while every other
session keeps reading live state.  The seam is the adapter: the
transaction's session reads through a :class:`ReadYourWritesAdapter`,
which serves untouched tables straight from the scoped (pinned) adapter
underneath and written tables from a per-table :class:`TableOverlay` —
the pinned base rows with the scope's own inserts, updates and deletes
applied on top, flowing into the batch pipeline as
:class:`~repro.exec.batch.ValuesBatch` windows like any row-backed
source.

The overlay is *presentation only*: nothing here touches the delta
stores or the WAL.  Commit replays the buffered statement text against
live state (the classic deferred-update design), so another session's
writes landing between execute and commit are merged by replay, not by
the overlay — ``docs/migration.md`` spells out the visible differences.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.sql.adapter import (
    EngineAdapter,
    _filter_rows,
    _matching_row_ids,
    _patch_rows,
)
from repro.storage.types import coerce


class TableOverlay:
    """One written table's view inside a transaction: the pinned base
    rows patched by the scope's own DML, in insertion order."""

    __slots__ = ("schema", "_rows")

    def __init__(self, schema, base_rows):
        self.schema = schema
        self._rows = list(base_rows)

    def _coerce_row(self, row) -> tuple:
        row = tuple(row)
        if len(row) != len(self.schema.columns):
            raise StorageError(
                f"row arity {len(row)} != {len(self.schema.columns)} for "
                f"table {self.schema.name!r}"
            )
        return tuple(
            coerce(value, column.dtype)
            for value, column in zip(row, self.schema.columns)
        )

    def insert_rows(self, rows) -> int:
        incoming = [self._coerce_row(row) for row in rows]
        self._rows.extend(incoming)
        return len(incoming)

    def update(self, assignments, predicate) -> int:
        self._rows, count = _patch_rows(
            self.schema, self._rows, assignments, predicate
        )
        return count

    def delete(self, predicate) -> int:
        self._rows, count = _filter_rows(self.schema, self._rows, predicate)
        return count

    def scan(self):
        return iter(list(self._rows))

    def matching_rows(self, predicate) -> list[tuple]:
        if predicate is None:
            return list(self._rows)
        ids = _matching_row_ids(self.schema, self._rows, predicate)
        return [self._rows[int(row_id)] for row_id in ids]


class ReadYourWritesAdapter(EngineAdapter):
    """The transaction session's adapter: reads fall through to the
    scoped (pinned) adapter until a table is written, then come from
    its :class:`TableOverlay`; DML always lands in the overlay (the
    transaction buffers the statement text separately for commit
    replay).

    The first write to a table materializes its overlay from the
    *inner* adapter's view — the pinned snapshot, thanks to the
    transaction's pin-on-first-touch — so the overlay starts from
    exactly the rows the scope was already reading.
    """

    def __init__(self, inner: EngineAdapter):
        self._inner = inner
        self._overlays: dict[str, TableOverlay] = {}

    @property
    def capabilities(self):
        return self._inner.capabilities

    @property
    def metrics(self):
        return self._inner.metrics

    # -- overlay lifecycle ----------------------------------------------

    def overlay(self, name: str) -> TableOverlay:
        """The table's overlay, materialized from the pinned view on
        first touch."""
        overlay = self._overlays.get(name)
        if overlay is None:
            overlay = TableOverlay(
                self._inner.schema(name), self._inner.scan_rows(name)
            )
            self._overlays[name] = overlay
        return overlay

    @property
    def written_tables(self) -> list[str]:
        return sorted(self._overlays)

    def discard(self) -> None:
        """Drop every overlay (rollback)."""
        self._overlays.clear()

    # -- reads ----------------------------------------------------------

    def has_table(self, name: str) -> bool:
        return self._inner.has_table(name)

    def table_names(self) -> list[str]:
        return self._inner.table_names()

    def schema(self, name: str):
        overlay = self._overlays.get(name)
        if overlay is not None:
            return overlay.schema
        return self._inner.schema(name)

    def scan_rows(self, name: str):
        overlay = self._overlays.get(name)
        if overlay is not None:
            return overlay.scan()
        return self._inner.scan_rows(name)

    def scan_batches(self, name: str):
        overlay = self._overlays.get(name)
        if overlay is not None:
            return EngineAdapter.scan_batches(self, name)
        return self._inner.scan_batches(name)

    def filter_rows(self, name: str, predicate):
        overlay = self._overlays.get(name)
        if overlay is not None:
            return iter(overlay.matching_rows(predicate))
        return self._inner.filter_rows(name, predicate)

    def table_stats(self, name: str):
        # A written table reads from its overlay rows, which the inner
        # backend's statistics no longer describe — decline, so the
        # planner takes the row-wise (always-correct) strategies.
        if name in self._overlays:
            return None
        return self._inner.table_stats(name)

    def create_index(self, table: str, column: str) -> None:
        self._inner.create_index(table, column)

    # -- writes (presentation only; commit replays the text) ------------

    def insert_rows(self, name: str, rows) -> int:
        return self.overlay(name).insert_rows(rows)

    def update_rows(self, name: str, assignments, predicate) -> int:
        return self.overlay(name).update(assignments, predicate)

    def delete_rows(self, name: str, predicate) -> int:
        return self.overlay(name).delete(predicate)
