"""repro.db — the serving façade over the CODS reproduction.

One ``Database`` object consolidates the four entry points the system
grew across PRs — SMOs (:class:`~repro.core.engine.EvolutionEngine`),
SQL (:class:`~repro.sql.executor.SqlExecutor` + adapters), DML/MVCC
(:class:`~repro.delta.MutableTable`/:class:`~repro.delta.Snapshot`) and
persistence (:mod:`repro.storage.filefmt`) — behind a DB-API-flavored
surface:

* :class:`Database` — opens/creates a catalog directory, selects a
  backend from the :mod:`registry <repro.db.registry>` (``mutable``,
  ``column``, ``row``);
* :class:`Session` / :class:`Cursor` — ``execute()`` /
  ``executemany()`` / ``execute_script()`` accepting SQL **and** SMO
  text through one routing front door;
* :class:`Transaction` — ``db.transaction(read_only=...)`` pins a
  whole-catalog epoch vector for mutually consistent multi-table
  reads, with buffered-write commit/rollback.

Quickstart::

    from repro.db import Database

    db = Database()                       # in-memory, mutable backend
    db.execute("CREATE TABLE r (k INT, s STRING)")
    db.executemany("INSERT INTO r VALUES (?, ?)", [(1, "a"), (2, "b")])
    db.execute("DECOMPOSE TABLE r INTO a (k), b (k, s)")
    with db.transaction(read_only=True) as tx:
        rows = tx.execute("SELECT * FROM b")

See ``docs/ARCHITECTURE.md`` ("The API layer") and ``docs/migration.md``
for the mapping from the old entry points.
"""

from repro.db.database import Database, connect
from repro.db.registry import (
    BackendSpec,
    available_backends,
    backend_spec,
    create_adapter,
    register_backend,
)
from repro.db.router import classify_statement, iter_script_statements
from repro.db.session import Cursor, Session, bind_parameters
from repro.db.transaction import Transaction

__all__ = [
    "BackendSpec",
    "Cursor",
    "Database",
    "Session",
    "Transaction",
    "available_backends",
    "backend_spec",
    "bind_parameters",
    "classify_statement",
    "connect",
    "create_adapter",
    "iter_script_statements",
    "register_backend",
]
