"""Sessions and cursors: the DB-API-flavored execution surface.

A :class:`Session` owns a :class:`~repro.sql.executor.SqlExecutor` over
its database's adapter and routes every statement through the
:mod:`repro.db.router` front door — SQL and DML to the executor, SMO
text to the :class:`~repro.core.engine.EvolutionEngine` — so one
``execute()`` speaks both languages against the same catalog.

Statements take ``qmark``-style positional parameters (``?``), bound by
literal substitution before parsing:

    session.execute("SELECT * FROM r WHERE k = ?", (3,))
    session.executemany("INSERT INTO r VALUES (?, ?)", [(1, "a"), (2, "b")])

:class:`Cursor` wraps a session with the familiar
``execute``/``fetchone``/``fetchall`` protocol plus ``description`` and
``rowcount``, for callers porting DB-API code.
"""

from __future__ import annotations

import time

from repro.db.router import SMO, classify_statement, iter_script_statements
from repro.errors import (
    CapabilityError,
    CodsError,
    SmoValidationError,
    SqlSyntaxError,
)
from repro.obs.trace import TRACE_COLUMNS
from repro.smo.parser import render_literal as _render_literal
from repro.sql.ast import (
    Aggregate,
    CreateIndex,
    CreateTable,
    DropTable,
    Explain,
    RenameTable,
    Select,
    Statement,
)
from repro.sql.executor import SqlExecutor, script_error
from repro.sql.parser import parse_sql

#: SQL AST nodes that change the table set or its physical layout —
#: under durability these checkpoint synchronously (see
#: ``Database._schema_changed``).
_DDL_NODES = (CreateTable, DropTable, RenameTable, CreateIndex)

#: Leading keywords of textual DDL, mirroring :data:`_DDL_NODES`.
_DDL_KEYWORDS = ("CREATE", "DROP", "ALTER")


def render_literal(value) -> str:
    """One Python value as a literal of the shared SQL/SMO grammar
    (delegates to :func:`repro.smo.parser.render_literal`, recast as a
    binding error)."""
    try:
        return _render_literal(value)
    except SmoValidationError as exc:
        raise SqlSyntaxError(f"cannot bind parameter: {exc}") from exc


def bind_parameters(text: str, params) -> str:
    """Substitute ``?`` placeholders (outside string literals) with the
    rendered ``params``; arity mismatches raise."""
    params = tuple(params)
    out = []
    next_param = 0
    in_string = False
    for char in text:
        if char == "'":
            in_string = not in_string
            out.append(char)
        elif char == "?" and not in_string:
            if next_param >= len(params):
                raise SqlSyntaxError(
                    f"statement has more placeholders than the "
                    f"{len(params)} bound parameter(s)"
                )
            out.append(render_literal(params[next_param]))
            next_param += 1
        else:
            out.append(char)
    if next_param != len(params):
        raise SqlSyntaxError(
            f"{len(params)} parameter(s) bound but the statement has "
            f"{next_param} placeholder(s)"
        )
    return "".join(out)


class Session:
    """One execution scope over a :class:`~repro.db.Database`.

    Sessions are cheap — they share the database's adapter (and
    therefore its catalog) and add only the executor and routing
    state.  A transaction passes its *scoped* adapter instead, so its
    pinned read view never leaks into other sessions.  ``execute``
    returns what the underlying layer returns: a row list for SELECT,
    an affected-row count for DML, ``None`` for DDL, and an
    :class:`~repro.core.status.EvolutionStatus` for SMO statements.
    """

    def __init__(self, database, adapter=None):
        self.database = database
        self.adapter = adapter if adapter is not None else database.adapter
        self.executor = SqlExecutor(self.adapter)
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Mark this session closed (idempotent): further ``execute``
        calls raise.  Sessions hold no resources of their own — this
        exists so long-lived owners (the network server's per-connection
        sessions, notably the idle reaper) can fence off late use."""
        self._closed = True

    # -- observability ---------------------------------------------------

    @property
    def trace_queries(self) -> bool:
        """When set, every SELECT records a timed span tree (see
        :attr:`last_trace`).  Off by default — span timing wraps each
        pipeline stage; the always-on counters do not."""
        return self.executor.trace_queries

    @trace_queries.setter
    def trace_queries(self, value: bool) -> None:
        self.executor.trace_queries = bool(value)

    @property
    def last_trace(self):
        """The :class:`~repro.obs.QueryTrace` of the most recent traced
        SELECT or EXPLAIN on this session (``None`` before one runs)."""
        return self.executor.last_trace

    # -- execution ------------------------------------------------------

    def execute(self, statement, params=None):
        """Execute one SQL *or* SMO statement (text or SQL AST).

        When the database's ``slow_query_seconds`` threshold is set,
        statements at or over it are appended to
        ``database.slow_query_log``.
        """
        if self._closed:
            raise CapabilityError("session is closed")
        self.database._check_open()
        threshold = self.database.slow_query_seconds
        if threshold is None:
            return self._execute(statement, params)
        start = time.perf_counter()
        result = self._execute(statement, params)
        elapsed = time.perf_counter() - start
        if elapsed >= threshold:
            self.database.slow_query_log.append({
                "statement": (
                    statement
                    if isinstance(statement, str)
                    else repr(statement)
                ),
                "seconds": elapsed,
            })
        return result

    def _execute(self, statement, params=None):
        if isinstance(statement, Statement):
            result = self.executor.execute(statement)
            if isinstance(statement, _DDL_NODES):
                self.database._schema_changed()
            return result
        text = statement
        if params is not None:
            text = bind_parameters(text, params)
        if classify_statement(text) == SMO:
            return self._execute_smo(text)
        result = self.executor.execute(text)
        first_word = text.lstrip().split(None, 1)[0].upper() if text.strip() else ""
        if first_word in _DDL_KEYWORDS:
            self.database._schema_changed()
        return result

    def _execute_smo(self, text: str):
        engine = self.database.engine
        if engine is None or not self.adapter.capabilities.smo:
            raise CapabilityError(
                f"backend {self.database.backend!r} cannot run schema "
                f"modification operators; use backend='mutable'"
            )
        status = engine.apply_sql_like(text)
        self.database._schema_changed()
        return status

    def executemany(self, statement: str, param_rows) -> int:
        """Execute one parameterized statement per parameter tuple;
        returns the summed affected-row count."""
        total = 0
        for params in param_rows:
            result = self.execute(statement, params)
            if isinstance(result, int):
                total += result
        return total

    def execute_script(self, text: str) -> list:
        """Execute a ``;``-separated script that may mix SQL and SMO
        statements; returns per-statement results.

        The whole script is syntax-checked (with each statement's own
        parser) before anything runs, so a typo anywhere executes
        nothing; a statement failing *during execution* leaves the
        earlier statements applied.  Like
        :meth:`SqlExecutor.execute_script`, either failure re-raises
        annotated with its 1-based position and fragment.
        """
        from repro.smo.parser import parse_smo

        fragments = iter_script_statements(text)
        prepared = []
        for position, fragment in enumerate(fragments, start=1):
            try:
                if classify_statement(fragment) == SMO:
                    parse_smo(fragment)  # syntax check; routed as text
                    prepared.append(fragment)
                else:
                    prepared.append(parse_sql(fragment))
            except CodsError as exc:
                raise script_error(exc, position, fragment) from exc
        results = []
        for position, (fragment, statement) in enumerate(
            zip(fragments, prepared), start=1
        ):
            try:
                results.append(self.execute(statement))
            except CodsError as exc:
                raise script_error(exc, position, fragment) from exc
        return results

    def cursor(self) -> "Cursor":
        """A DB-API-flavored cursor over this session."""
        return Cursor(self)

    # -- description helper ---------------------------------------------

    def select_columns(self, select: Select) -> tuple[str, ...]:
        """The output column names of a SELECT, mirroring the
        executor's projection rules (the network server uses this to
        ship a result set's column list alongside the first batch)."""
        if select.columns is not None:
            # Aggregates surface under their rendered label, e.g.
            # ``count(*)`` or ``sum(Salary)``.
            return tuple(
                item.label if isinstance(item, Aggregate) else item
                for item in select.columns
            )
        left = self.adapter.schema(select.table).column_names
        if select.join is None:
            return tuple(left)
        right = self.adapter.schema(select.join.table).column_names
        return tuple(left) + tuple(
            n for n in right if n not in select.join.join_attrs
        )


class Cursor:
    """DB-API-shaped access: ``execute`` then ``fetch*``.

    ``description`` is a sequence of 7-tuples (name first, the rest
    ``None``) after a SELECT and ``None`` otherwise; ``rowcount`` is
    the affected-row count after DML and ``-1`` otherwise.  After an
    EXPLAIN [ANALYZE] the result set uses the fixed
    :data:`~repro.obs.TRACE_COLUMNS` shape and :attr:`trace` retains
    the underlying :class:`~repro.obs.QueryTrace` (also populated after
    a SELECT when the session's ``trace_queries`` is on).
    """

    arraysize = 1

    def __init__(self, session: Session):
        self.session = session
        self.description = None
        self.rowcount = -1
        self.trace = None
        self._rows: list | None = None
        self._position = 0
        self._closed = False

    # -- execution ------------------------------------------------------

    def execute(self, statement, params=None) -> "Cursor":
        self._check_open()
        self.description = None
        self.rowcount = -1
        self.trace = None
        self._rows, self._position = None, 0

        select = None
        explain = None
        if isinstance(statement, Select):
            select = statement
        elif isinstance(statement, Explain):
            explain = statement
        elif isinstance(statement, str):
            text = (
                bind_parameters(statement, params)
                if params is not None
                else statement
            )
            if classify_statement(text) != SMO:
                parsed = parse_sql(text)
                if isinstance(parsed, Select):
                    select = parsed
                elif isinstance(parsed, Explain):
                    explain = parsed
                statement, params = parsed, None
            else:
                statement, params = text, None

        result = self.session.execute(statement, params)
        if explain is not None:
            self._rows = list(result)
            self.description = tuple(
                (name, None, None, None, None, None, None)
                for name in TRACE_COLUMNS
            )
            self.trace = self.session.last_trace
        elif select is not None:
            self._rows = list(result)
            self.description = tuple(
                (name, None, None, None, None, None, None)
                for name in self.session.select_columns(select)
            )
            if self.session.trace_queries:
                self.trace = self.session.last_trace
        elif isinstance(result, int):
            self.rowcount = result
        return self

    def executemany(self, statement: str, param_rows) -> "Cursor":
        self._check_open()
        self.description = None
        self.trace = None
        self._rows, self._position = None, 0
        self.rowcount = self.session.executemany(statement, param_rows)
        return self

    # -- fetching -------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise CapabilityError("cursor is closed")

    def _result_rows(self) -> list:
        if self._rows is None:
            raise CapabilityError("no result set; execute a SELECT first")
        return self._rows

    def fetchone(self):
        rows = self._result_rows()
        if self._position >= len(rows):
            return None
        row = rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: int | None = None) -> list:
        rows = self._result_rows()
        count = self.arraysize if size is None else size
        chunk = rows[self._position:self._position + count]
        self._position += len(chunk)
        return chunk

    def fetchall(self) -> list:
        rows = self._result_rows()
        chunk = rows[self._position:]
        self._position = len(rows)
        return chunk

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def close(self) -> None:
        self._closed = True
        self._rows = None
