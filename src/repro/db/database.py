"""The Database façade: one object for SQL, SMOs, transactions and
persistence.

Before this layer the reproduction exposed four disjoint entry points —
:class:`~repro.core.engine.EvolutionEngine` for SMOs,
:class:`~repro.sql.executor.SqlExecutor` plus a hand-picked adapter for
SQL, :class:`~repro.delta.MutableTable` for DML/snapshots, and
:mod:`repro.storage.filefmt` for disk.  A :class:`Database` owns one
backend adapter (resolved from the :mod:`repro.db.registry`) and serves
all four through it, against one catalog::

    from repro.db import Database

    with Database("catalog_dir") as db:          # opens or creates
        db.execute("CREATE TABLE r (k INT, s STRING)")
        db.execute("INSERT INTO r VALUES (?, ?)", (1, "a"))
        db.execute("DECOMPOSE TABLE r INTO a (k), b (k, s)")   # SMO
        rows = db.execute("SELECT * FROM b")
    # closed cleanly -> saved back to catalog_dir

Reads that must be mutually consistent across tables go through
:meth:`Database.transaction`, which pins a whole-catalog epoch vector
(see :mod:`repro.db.transaction`).
"""

from __future__ import annotations

import threading
from collections import deque
from pathlib import Path

from repro.db.compactor import BackgroundCompactor
from repro.db.registry import backend_spec, create_adapter
from repro.db.session import Cursor, Session
from repro.db.transaction import Transaction
from repro.errors import (
    CapabilityError,
    ObservabilityError,
    StorageError,
    WalCorruptionError,
    WalError,
)
from repro.obs.export import to_json_lines, to_prometheus
from repro.storage.table import Table
from repro.wal import (
    DEFAULT_GROUP_SIZE,
    WriteAheadLog,
    log_has_records,
    recover,
    wal_path,
)
from repro.wal import checkpoint as run_checkpoint

_DURABILITY_MODES = ("none", "commit", "group")


class Database:
    """A catalog served by one named backend (default ``mutable``).

    ``path`` is a catalog directory: when it holds a saved catalog the
    database opens it, otherwise a fresh in-memory catalog is created
    and :meth:`save`/:meth:`close` will write it there.  ``path=None``
    keeps everything in memory.  ``policy`` is the
    :class:`~repro.delta.CompactionPolicy` handed to delta-backed
    tables (mutable backend only).

    ``durability`` selects the write-ahead-log mode (mutable backend,
    catalog directory required):

    ``"none"`` (default)
        no redo logging; writes persist only at :meth:`save`/
        :meth:`close` — the pre-WAL behaviour;
    ``"commit"``
        every committed statement/transaction is fsynced to ``wal.log``
        before it is acknowledged;
    ``"group"``
        commits are fsynced in groups of ``group_size`` — a bounded
        loss window in exchange for amortized fsyncs.

    With durability on, opening a directory runs recovery: committed
    transactions past the last checkpoint are replayed into the
    deltas, torn log tails are discarded, and deeper damage raises
    :class:`~repro.errors.WalCorruptionError` (``docs/wal-format.md``).
    """

    def __init__(
        self,
        path=None,
        backend: str = "mutable",
        policy=None,
        durability: str = "none",
        group_size: int = DEFAULT_GROUP_SIZE,
    ):
        if durability not in _DURABILITY_MODES:
            raise WalError(
                f"unknown durability {durability!r}; use one of "
                f"{_DURABILITY_MODES}"
            )
        self.path = Path(path) if path is not None else None
        self.backend = backend
        self.policy = policy
        self.durability = durability
        self.group_size = group_size
        self._closed = False
        self._wal: WriteAheadLog | None = None
        self._compactor: BackgroundCompactor | None = None
        # close() and start/stop_compactor() are callable from any
        # thread (the network server's shutdown path races its handler
        # threads): the close lock makes double-close a no-op whatever
        # the interleaving, and the compactor lock makes the
        # swap-and-stop handoff atomic so two concurrent stops never
        # both stop (and double-raise from) the same thread.
        self._close_lock = threading.Lock()
        self._compactor_lock = threading.Lock()
        # Head of the system lock order (see docs/ARCHITECTURE.md,
        # "Concurrency"): transaction commits, checkpoints and DDL-
        # driven checkpoints serialize here BEFORE taking any table
        # writer lock, so two multi-table writers can never take table
        # locks in conflicting orders.
        self._commit_lock = threading.RLock()
        spec = backend_spec(backend)
        if (
            self.path is not None
            and (self.path / "catalog.json").exists()
        ):
            if spec.loader is None:
                raise CapabilityError(
                    f"backend {backend!r} cannot open a saved catalog"
                )
            self.adapter = spec.loader(self.path, policy)
        else:
            self.adapter = create_adapter(backend, policy)
        self._wire_durability()
        # Slow-query log: statements at or over the threshold (seconds)
        # are appended by every session; None disables the timing.
        self.slow_query_seconds: float | None = None
        self.slow_query_log: deque = deque(maxlen=128)
        self._session = Session(self)

    def _wire_durability(self) -> None:
        if self.durability == "none":
            # Refuse to strand committed-but-uncheckpointed writes: a
            # log with records means the directory was last written by
            # a durable database that crashed before checkpointing.
            if self.path is not None:
                log = wal_path(self.path)
                if log.exists() and log_has_records(log):
                    raise WalError(
                        f"{log} holds unapplied committed records; open "
                        f"with durability='commit' or 'group' to recover "
                        f"them"
                    )
            return
        if self.path is None:
            raise WalError(
                "durability needs a catalog directory: pass a path"
            )
        if self.engine is None:
            raise CapabilityError(
                f"backend {self.backend!r} has no write-ahead log; use "
                f"backend='mutable'"
            )
        self.path.mkdir(parents=True, exist_ok=True)
        had_catalog = (self.path / "catalog.json").exists()
        log = wal_path(self.path)
        if not had_catalog and log.exists() and log_has_records(log):
            raise WalCorruptionError(
                f"{log} holds records but {self.path} has no "
                f"catalog.json to recover into"
            )
        self._wal = WriteAheadLog(
            log,
            flush_policy=(
                "commit" if self.durability == "commit" else "group"
            ),
            group_size=self.group_size,
            metrics=self.adapter.metrics,
        )
        # Recover BEFORE attaching the log to the engine: replay must
        # not re-emit the records it is applying.
        if had_catalog and recover(
            self.engine, self.path, self._wal, self.policy
        ):
            # Replayed state is in memory only; checkpoint right away
            # so the next crash does not have to replay it again.
            run_checkpoint(self.engine, self.path, self._wal, self.policy)
        self.engine.attach_wal(self._wal)

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def open(
        cls,
        path,
        backend: str = "mutable",
        policy=None,
        durability: str = "none",
        group_size: int = DEFAULT_GROUP_SIZE,
    ) -> "Database":
        """Alias of the constructor for callers who prefer a verb."""
        return cls(
            path,
            backend=backend,
            policy=policy,
            durability=durability,
            group_size=group_size,
        )

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("database is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    def save(self, path=None) -> Path:
        """Persist the catalog (and any delta sidecars) to ``path`` or
        the directory the database was opened with."""
        self._check_open()
        spec = backend_spec(self.backend)
        if spec.saver is None:
            raise CapabilityError(
                f"backend {self.backend!r} has no persistence"
            )
        target = Path(path) if path is not None else self.path
        if target is None:
            raise StorageError(
                "no catalog directory: pass save(path) or open the "
                "database with one"
            )
        if self._wal is not None and target == self.path:
            # A durable database's home-directory save IS a checkpoint:
            # versioned mains, sidecars carrying the log position, and
            # log truncation, in crash-atomic order.
            self.checkpoint()
            return target
        spec.saver(self.adapter, target)
        return target

    def checkpoint(self) -> int:
        """Flush the log and publish an incremental checkpoint (every
        table's main + sidecar, then truncate the log).  Returns the
        checkpointed log position.  Durability must be on."""
        self._check_open()
        if self._wal is None:
            raise WalError(
                "checkpoint needs durability: open the database with "
                "durability='commit' or 'group'"
            )
        with self._commit_lock:
            return run_checkpoint(
                self.engine, self.path, self._wal, self.policy
            )

    def _schema_changed(self) -> None:
        """Table-set changes (DDL, SMOs, bulk loads) checkpoint
        synchronously: redo records name tables, so the table set in
        the manifest must never lag the log (see
        ``docs/wal-format.md``)."""
        if self._wal is not None:
            self.checkpoint()

    def close(self, save: bool | None = None) -> None:
        """Close the database (idempotent, and safe to call from
        several threads at once — the server's shutdown path does).
        ``save`` defaults to "write back if a catalog directory is
        attached"."""
        with self._close_lock:
            if self._closed:
                return
            self.stop_compactor()
            if save is None:
                save = (
                    self.path is not None
                    and backend_spec(self.backend).saver is not None
                )
            if save:
                self.save()
            if self._wal is not None:
                # Flushes any acked-but-buffered group commits.
                self._wal.close()
            self._closed = True

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Persist only on a clean exit; an exception leaves the last
        # saved state on disk untouched.
        self.close(save=None if exc_type is None else False)

    # -- the engine underneath ------------------------------------------

    @property
    def engine(self):
        """The :class:`~repro.core.engine.EvolutionEngine` under an
        SMO-capable backend, else ``None``."""
        return getattr(self.adapter, "evolution_engine", None)

    @property
    def capabilities(self):
        return self.adapter.capabilities

    # -- execution (the default session) --------------------------------

    def session(self) -> Session:
        """A fresh execution scope sharing this database's catalog."""
        self._check_open()
        return Session(self)

    def cursor(self) -> Cursor:
        """A DB-API-flavored cursor on the default session."""
        self._check_open()
        return self._session.cursor()

    def execute(self, statement, params=None):
        """Execute one SQL or SMO statement on the default session."""
        return self._session.execute(statement, params)

    def executemany(self, statement: str, param_rows) -> int:
        return self._session.executemany(statement, param_rows)

    def execute_script(self, text: str) -> list:
        return self._session.execute_script(text)

    def transaction(self, read_only: bool = False) -> Transaction:
        """A whole-catalog transactional scope (see
        :class:`~repro.db.transaction.Transaction`)."""
        self._check_open()
        return Transaction(self, read_only=read_only)

    # -- catalog introspection ------------------------------------------

    def tables(self) -> list[str]:
        """Sorted names of every table."""
        self._check_open()
        return self.adapter.table_names()

    def schema(self, name: str):
        self._check_open()
        return self.adapter.schema(name)

    def load_table(self, table: Table) -> None:
        """Register an already-built :class:`~repro.storage.table.
        Table` (CSV imports, workload generators) under its schema
        name."""
        self._check_open()
        self.adapter.load_table(table)
        self._schema_changed()

    # -- maintenance ----------------------------------------------------

    def _require_compaction(self) -> None:
        if not self.adapter.capabilities.compaction:
            raise CapabilityError(
                f"backend {self.backend!r} has no delta compaction"
            )

    def compact(self, name: str):
        """Fold table ``name``'s write buffer into fresh compressed
        columns; returns the new main table."""
        self._check_open()
        self._require_compaction()
        return self.adapter.compact(name)

    def compact_step(self, name: str, columns: int | None = None):
        """One incremental compaction step on table ``name``."""
        self._check_open()
        self._require_compaction()
        return self.adapter.compact_step(name, columns)

    def delta_stats(self) -> list:
        """Per-table delta statistics (mutable backend), else empty."""
        self._check_open()
        engine = self.engine
        return engine.delta_stats() if engine is not None else []

    def start_compactor(
        self, interval: float | None = None, columns: int | None = None
    ) -> BackgroundCompactor:
        """Start the background compaction thread (idempotent while one
        is running; see :mod:`repro.db.compactor`).  It folds pending
        delta buffers incrementally under the per-table writer locks,
        and :meth:`close` stops it.  Returns the compactor."""
        self._check_open()
        self._require_compaction()
        with self._compactor_lock:
            if self._compactor is not None and self._compactor.running:
                return self._compactor
            kwargs = {}
            if interval is not None:
                kwargs["interval"] = interval
            if columns is not None:
                kwargs["columns"] = columns
            self._compactor = BackgroundCompactor(self, **kwargs).start()
            return self._compactor

    def stop_compactor(self) -> None:
        """Stop the background compactor if one is running (idempotent
        and thread-safe; re-raises anything the thread died on, to
        exactly one caller)."""
        with self._compactor_lock:
            compactor, self._compactor = self._compactor, None
        if compactor is not None:
            compactor.stop()

    # -- observability --------------------------------------------------

    def metrics(self, fmt: str | None = None):
        """The adapter's metrics as a snapshot dict (default), JSON
        lines (``fmt="json"``) or Prometheus text exposition
        (``fmt="prometheus"``).  See ``docs/observability.md`` for the
        metric catalog."""
        self._check_open()
        snapshot = self.adapter.metrics.snapshot()
        if fmt is None:
            return snapshot
        if fmt == "json":
            return to_json_lines(snapshot)
        if fmt == "prometheus":
            return to_prometheus(snapshot)
        raise ObservabilityError(
            f"unknown metrics format {fmt!r}; use None, 'json' or "
            f"'prometheus'"
        )

    def __repr__(self) -> str:
        if self._closed:
            return f"Database(backend={self.backend!r}, closed)"
        location = str(self.path) if self.path is not None else "memory"
        return (
            f"Database({location!r}, backend={self.backend!r}, "
            f"tables={self.tables()})"
        )


def connect(
    path=None,
    backend: str = "mutable",
    policy=None,
    durability: str = "none",
    group_size: int = DEFAULT_GROUP_SIZE,
) -> Database:
    """DB-API-flavored alias: ``repro.db.connect(...)``."""
    return Database(
        path,
        backend=backend,
        policy=policy,
        durability=durability,
        group_size=group_size,
    )
