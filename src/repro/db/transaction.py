"""Whole-catalog transactions: multi-table epoch-vector snapshots.

PR 2's :class:`~repro.delta.Snapshot` pins *one* table's (generation,
epoch) pair.  A :class:`Transaction` extends that to the whole catalog:
entering the scope pins every table atomically (the runtime is
single-threaded, so no write can interleave with the acquisition loop),
producing an **epoch vector** — ``{table: (generation, epoch)}`` — that
stays frozen while concurrent inserts, deletes, updates and
``compact_step()`` calls proceed outside the scope.  Cross-table reads
inside the scope are therefore mutually consistent: they all observe
the catalog as of one instant.

The pins live on a *scoped adapter* (a per-transaction adapter over the
same engine, see :meth:`~repro.sql.adapter.EngineAdapter.scoped`), so
only reads issued through the transaction see the frozen view — other
sessions of the same database keep reading live state throughout.

Write semantics follow the classic deferred-update design, with
read-your-writes on top:

* ``read_only=True`` scopes reject DML outright;
* read-write scopes apply DML to a per-table **overlay** (see
  :mod:`repro.db.overlay`) *and* buffer the statement text; reads
  inside the scope see the pinned state plus the scope's own writes
  (read-your-writes), while every other session keeps reading live
  state.  Commit replays the buffered text against live state (when
  the scope exits cleanly); an exception rolls overlay and buffer away
  untouched.  See ``docs/ARCHITECTURE.md`` ("Concurrency") and
  ``docs/migration.md``.

Tables created by *other* sessions after :meth:`Transaction.begin` are
pinned on first touch, so a read through the scope never silently
serves live (mutating) state.

Schema changes (SMOs, CREATE/DROP/ALTER) are not transactional and are
rejected inside any scope.
"""

from __future__ import annotations

from repro.db.overlay import ReadYourWritesAdapter
from repro.db.router import SMO, classify_statement
from repro.db.session import Session, bind_parameters
from repro.errors import CapabilityError, CodsError, TransactionError
from repro.sql.adapter import require_table
from repro.sql.ast import (
    Delete,
    Explain,
    InsertSelect,
    InsertValues,
    Select,
    Update,
)
from repro.sql.executor import script_error
from repro.sql.parser import parse_sql
from repro.wal.crashpoints import crash_point

_DML = (InsertValues, InsertSelect, Update, Delete)


class Transaction:
    """A pinned, whole-catalog scope over an MVCC-capable backend.

    Use as a context manager::

        with db.transaction(read_only=True) as tx:
            before = tx.execute("SELECT * FROM s")
            # concurrent DML / compaction elsewhere ...
            assert tx.execute("SELECT * FROM s") == before

        with db.transaction() as tx:
            tx.execute("INSERT INTO s VALUES (1, 'a')")  # buffered
        # committed here; an exception inside the block rolls back
    """

    def __init__(self, database, read_only: bool = False):
        if not database.adapter.capabilities.snapshots:
            raise CapabilityError(
                f"backend {database.backend!r} has no MVCC snapshots; "
                f"transactions need backend='mutable'"
            )
        self.database = database
        self.read_only = read_only
        # Pins land on a scoped adapter so only this transaction's
        # reads see them; the session reads through a read-your-writes
        # wrapper over it (written tables come from per-table
        # overlays); buffered writes replay through a session on the
        # database's shared adapter at commit.
        self._adapter = database.adapter.scoped()
        self._overlay = ReadYourWritesAdapter(self._adapter)
        self._session = Session(database, adapter=self._overlay)
        self._commit_session = database.session()
        self._pins: dict = {}
        self._buffered: list[str] = []
        self._state = "pending"  # -> open -> committed | rolled-back

    # -- lifecycle ------------------------------------------------------

    def begin(self) -> "Transaction":
        """Pin every table of the catalog at its current (generation,
        epoch); reads through this transaction observe that frozen
        state until the scope ends (other sessions read live).

        The pin loop holds the database's commit lock: a committing
        transaction (which also holds it) can therefore never land
        *between* two of our pins, so the epoch vector is atomic with
        respect to whole-transaction commits — no torn vectors."""
        if self._state != "pending":
            raise TransactionError(f"transaction already {self._state}")
        with self.database._commit_lock:
            self._pins = {
                name: self._adapter.begin_snapshot(name)
                for name in self._adapter.table_names()
            }
        self._state = "open"
        return self

    @property
    def epoch_vector(self) -> dict[str, tuple[int, int]]:
        """The pinned ``{table: (generation, epoch)}`` coordinates."""
        return {
            name: (snapshot.generation, snapshot.epoch)
            for name, snapshot in self._pins.items()
        }

    @property
    def state(self) -> str:
        return self._state

    def _release_pins(self) -> None:
        # Close the handles directly rather than via end_snapshot(name):
        # a concurrent DROP/RENAME may have moved or already closed a
        # table's scope stack, and the adapter drains closed entries
        # lazily on its next read.
        for snapshot in self._pins.values():
            snapshot.close()

    def commit(self) -> int:
        """Release the pins and replay the buffered writes against the
        live state; returns the summed affected-row count.

        Replay is sequential and non-atomic: a statement that fails
        mid-commit raises annotated with its 1-based buffer position
        and leaves the transaction in the terminal ``commit-failed``
        state — earlier statements stay applied and are *removed* from
        the buffer, so ``pending_writes`` names exactly the statements
        that did not land.
        """
        self._check_open()
        self._release_pins()
        total = 0
        # Under durability the whole replay is one WAL transaction: its
        # commit record lands (and is fsynced, per the flush policy)
        # when the loop finishes.  A *statement* failure mid-replay
        # leaves the earlier statements applied (documented above), so
        # that path commits the WAL transaction too — and force-flushes
        # it, because by the time the caller sees the error it has been
        # told the prefix is applied, so the prefix must survive a
        # crash even under the group policy's buffered-commit window.
        # Any other unwind (notably the fault-injection harness's
        # simulated power cut) aborts instead: abort touches no disk,
        # so the partial replay is forgotten exactly as a real crash
        # would forget it.
        #
        # The replay holds the database's commit lock (the head of the
        # lock order): whole commits serialize against each other and
        # against checkpoints, and each statement then takes its
        # table's writer lock underneath.
        wal = self.database._wal
        in_wal_txn = wal is not None and bool(self._buffered)
        with self.database._commit_lock:
            if in_wal_txn:
                wal.begin()
            try:
                for position, text in enumerate(self._buffered, start=1):
                    try:
                        result = self._commit_session.execute(text)
                    except CodsError as exc:
                        self._state = "commit-failed"
                        self._buffered = self._buffered[position - 1:]
                        if in_wal_txn:
                            in_wal_txn = False
                            # A crash here loses the prefix's commit
                            # record — recovery then rolls the whole
                            # transaction back, which is fine: the
                            # caller never saw this failure ack.
                            crash_point("txn.commit.statement-failed")
                            wal.commit()
                            wal.flush()
                        raise script_error(exc, position, text) from exc
                    if isinstance(result, int):
                        total += result
            except BaseException:
                if in_wal_txn and wal.in_transaction:
                    wal.abort()
                raise
            if in_wal_txn:
                wal.commit()
        self._buffered = []
        self._state = "committed"
        self.database.adapter.metrics.counter("txn.commits").inc()
        return total

    def rollback(self) -> int:
        """Discard the buffered writes and release the pins; returns
        how many statements were discarded."""
        self._check_open()
        self._release_pins()
        self._state = "rolled-back"
        discarded = len(self._buffered)
        self._buffered.clear()
        self._overlay.discard()
        self.database.adapter.metrics.counter("txn.rollbacks").inc()
        return discarded

    def __enter__(self) -> "Transaction":
        return self.begin()

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._state != "open":
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()

    def _check_open(self) -> None:
        if self._state != "open":
            raise TransactionError(
                f"transaction is {self._state}, not open"
            )

    # -- execution ------------------------------------------------------

    def _referenced_tables(self, parsed) -> list[str]:
        """Table names a parsed statement touches, reads first."""
        if isinstance(parsed, Explain):
            parsed = parsed.select
        if isinstance(parsed, Select):
            names = [parsed.table]
            if parsed.join is not None:
                names.append(parsed.join.table)
            return names
        if isinstance(parsed, InsertSelect):
            return self._referenced_tables(parsed.select) + [parsed.table]
        if isinstance(parsed, _DML):
            return [parsed.table]
        return []

    def _pin_on_touch(self, parsed) -> None:
        """Pin any referenced table missing from the epoch vector — a
        table created by another session after :meth:`begin`.  Without
        this, reads through the scope would silently serve live
        (mutating) state for that table."""
        for name in self._referenced_tables(parsed):
            if not self._adapter.has_table(name):
                continue  # unknown table: the read path raises properly
            # Ask the adapter, not self._pins: a concurrent RENAME
            # re-keys the adapter's scope stack to the new name while
            # the pin stays filed here under the old one — pinning
            # again would shadow the followed view with live state.
            if self._adapter._pinned(name) is None:
                self._pins[name] = self._adapter.begin_snapshot(name)

    def execute(self, statement: str, params=None):
        """Run a read against the pinned state (plus this scope's own
        writes), or apply-and-buffer a write.

        SELECTs return their rows immediately (resolved against the
        epoch vector, with the scope's buffered DML overlaid —
        read-your-writes).  In a read-write scope, DML lands in the
        overlay, returns its affected-row count, and replays against
        live state at commit.  SMOs and DDL raise — schema changes are
        not transactional.
        """
        self._check_open()
        text = (
            bind_parameters(statement, params)
            if params is not None
            else statement
        )
        if classify_statement(text) == SMO:
            raise TransactionError(
                "schema modification operators are not transactional; "
                "run them outside the scope"
            )
        parsed = parse_sql(text)
        if isinstance(parsed, (Select, Explain)):
            # EXPLAIN [ANALYZE] is a read: it plans (or runs) its SELECT
            # against the pinned state like any other query here.
            self._pin_on_touch(parsed)
            return self._session.execute(parsed)
        if isinstance(parsed, _DML):
            if self.read_only:
                raise TransactionError(
                    "cannot write inside a read-only transaction"
                )
            # Fail fast on an unknown target instead of deferring the
            # error to commit, where earlier statements have already
            # been applied.
            require_table(self._adapter, parsed.table)
            if isinstance(parsed, InsertSelect):
                require_table(self._adapter, parsed.select.table)
            self._pin_on_touch(parsed)
            # Apply to the overlay first: the count comes back now,
            # bad statements fail here instead of at commit, and later
            # reads in this scope see the write.
            result = self._session.execute(parsed)
            self._buffered.append(text)
            return result
        raise TransactionError(
            "DDL is not transactional; run it outside the scope"
        )

    @property
    def pending_writes(self) -> int:
        """Buffered statements awaiting commit."""
        return len(self._buffered)
