"""The background compactor: incremental delta folding off the hot path.

A :class:`BackgroundCompactor` is a daemon thread owned by a
:class:`~repro.db.Database` (``db.start_compactor()`` /
``db.stop_compactor()``).  Each cycle it walks the catalog, finds
tables whose delta buffers hold pending writes, and runs one
budget-bounded :meth:`~repro.delta.MutableTable.compact_step` per
table through the adapter — the same code path manual compaction uses,
so the WAL ``compact`` record, the catalog republish and the
``compaction.*`` gauges all behave identically.

Every step runs under the table's writer lock (``compact_step`` takes
it), so the compactor is just another writer to the MVCC structures:
pinned snapshots keep their (generation, epoch) view, concurrent DML
serializes per table, and the thread never holds more than one table
lock at a time — it cannot participate in a lock-order deadlock.

A table dropped or invalidated between the catalog walk and the step
raises a :class:`~repro.errors.CodsError`; the compactor skips it and
moves on (``compactor.skipped`` counts these).  Any other exception
stops the thread and is re-raised by :meth:`stop` so tests cannot
silently pass over a broken compactor.
"""

from __future__ import annotations

import threading

from repro.errors import CodsError

#: Seconds between catalog sweeps when nothing is pending.
DEFAULT_INTERVAL = 0.05

#: Columns folded per compact_step call (the budget).
DEFAULT_COLUMNS = 2


class BackgroundCompactor:
    """The daemon thread; create via ``Database.start_compactor()``."""

    def __init__(
        self,
        database,
        interval: float = DEFAULT_INTERVAL,
        columns: int = DEFAULT_COLUMNS,
    ):
        self.database = database
        self.interval = interval
        self.columns = columns
        metrics = database.adapter.metrics
        self._cycles = metrics.counter("compactor.cycles")
        self._steps = metrics.counter("compactor.steps")
        self._skipped = metrics.counter("compactor.skipped")
        self._stop_event = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="cods-compactor", daemon=True
        )

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "BackgroundCompactor":
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Signal the thread, join it, and re-raise anything it died
        on.  Idempotent."""
        self._stop_event.set()
        if self._thread.is_alive():
            self._thread.join(timeout)
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    @property
    def running(self) -> bool:
        return self._thread.is_alive()

    # -- the loop -------------------------------------------------------

    def _run(self) -> None:
        try:
            while not self._stop_event.is_set():
                if not self._sweep():
                    # Nothing pending: sleep, but wake promptly on stop.
                    self._stop_event.wait(self.interval)
        except BaseException as exc:  # noqa: BLE001 - surfaced by stop()
            self._error = exc

    def _sweep(self) -> bool:
        """One pass over the catalog; returns True when any table still
        has pending writes (the loop then sweeps again immediately)."""
        database = self.database
        if database.closed:
            return False
        engine = database.engine
        if engine is None:
            return False
        self._cycles.inc()
        busy = False
        for name in engine.catalog.table_names():
            if self._stop_event.is_set():
                return False
            mutable = engine.pending_delta(name)
            if mutable is None:
                continue
            try:
                database.adapter.compact_step(name, self.columns)
                self._steps.inc()
            except CodsError:
                # Dropped/renamed/invalidated between the walk and the
                # step — another session won that race; skip it.
                self._skipped.inc()
                continue
            if engine.pending_delta(name) is not None:
                busy = True
        return busy
