"""Statement routing: one front door for SQL and SMO text.

The platform of the paper is *one* system — schema evolution requests
and ordinary query/DML traffic hit the same store.  The façade keeps
that property at the API level: :meth:`repro.db.Session.execute` takes
any statement text and this module decides which language it belongs
to, so callers never pick a parser.

Routing is by leading verb (case-insensitive):

* ``DECOMPOSE`` / ``MERGE`` / ``COPY`` / ``UNION`` / ``PARTITION`` /
  ``ADD`` / ``RENAME`` — always the SMO language (none of these starts
  a statement of the SQL subset);
* ``DROP COLUMN`` — SMO; ``DROP TABLE`` — SQL (the adapter's
  ``drop_table`` also discards the table's delta and releases pinned
  scopes);
* everything else (``SELECT``, ``INSERT``, ``UPDATE``, ``DELETE``,
  ``CREATE``, ``ALTER``, …) — SQL.  Unknown verbs route to the SQL
  parser so its syntax errors are the ones callers see.
"""

from __future__ import annotations

import re

from repro.sql.parser import iter_script_statements

__all__ = ["SQL", "SMO", "classify_statement", "iter_script_statements"]

SQL = "sql"
SMO = "smo"

#: Verbs that can only begin a schema-modification statement.
SMO_ONLY_VERBS = frozenset(
    {"DECOMPOSE", "MERGE", "COPY", "UNION", "PARTITION", "ADD", "RENAME"}
)

_LEADING_WORDS = re.compile(r"\s*([A-Za-z_]+)(?:\s+([A-Za-z_]+))?")


def classify_statement(text: str) -> str:
    """``"smo"`` or ``"sql"`` for one statement's text."""
    match = _LEADING_WORDS.match(text or "")
    if match is None:
        return SQL
    verb = match.group(1).upper()
    if verb in SMO_ONLY_VERBS:
        return SMO
    if verb == "DROP" and (match.group(2) or "").upper() == "COLUMN":
        return SMO
    return SQL
