"""The backend registry: storage engines selectable by name.

A backend is an :class:`~repro.sql.adapter.EngineAdapter` factory plus
(optionally) the load/save pair that persists its catalog to a
directory.  :class:`repro.db.Database` resolves its ``backend=``
argument here, so a new storage engine plugs into the whole façade —
SQL, SMOs, transactions, persistence — by registering one spec instead
of teaching every entry point about a new class.

Built-in backends:

* ``mutable`` — the CODS write path (delta-backed compressed columns,
  MVCC snapshots, SMOs, ``.cods`` + ``.delta`` persistence);
* ``column`` — the query-level column-store baseline (rebuilds
  compressed columns on every write; ``.cods`` persistence);
* ``row`` — the row-store baseline (in-memory only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import CapabilityError


@dataclass(frozen=True)
class BackendSpec:
    """One registered storage backend.

    ``factory(policy)`` builds a fresh adapter; ``loader(path, policy)``
    rebuilds one from a saved catalog directory and ``saver(adapter,
    path)`` writes one — both ``None`` for in-memory-only backends.
    """

    name: str
    description: str
    factory: Callable
    loader: Callable | None = None
    saver: Callable | None = None


_REGISTRY: dict[str, BackendSpec] = {}


def register_backend(spec: BackendSpec, replace: bool = False) -> None:
    """Add a backend to the registry (``replace`` to override)."""
    if spec.name in _REGISTRY and not replace:
        raise CapabilityError(f"backend {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def backend_spec(name: str) -> BackendSpec:
    """Look a backend up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CapabilityError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


def create_adapter(name: str, policy=None):
    """Instantiate a fresh adapter for backend ``name``."""
    return backend_spec(name).factory(policy)


def _register_builtins() -> None:
    from repro.sql.adapter import (
        ColumnStoreAdapter,
        MutableColumnAdapter,
        RowEngineAdapter,
    )
    from repro.storage.filefmt import (
        load_catalog,
        load_engine,
        save_catalog,
        save_engine,
    )

    register_backend(BackendSpec(
        name="mutable",
        description=(
            "CODS write path: delta-backed compressed columns, MVCC "
            "snapshots, SMOs, .cods/.delta persistence"
        ),
        factory=lambda policy: MutableColumnAdapter(policy=policy),
        loader=lambda path, policy: MutableColumnAdapter(
            load_engine(path, policy), policy
        ),
        saver=lambda adapter, path: save_engine(
            adapter.evolution_engine, path
        ),
    ))
    register_backend(BackendSpec(
        name="column",
        description=(
            "query-level column store baseline (rebuilds compressed "
            "columns on write)"
        ),
        factory=lambda policy: ColumnStoreAdapter(),
        loader=lambda path, policy: ColumnStoreAdapter(load_catalog(path)),
        saver=lambda adapter, path: save_catalog(adapter.catalog, path),
    ))
    register_backend(BackendSpec(
        name="row",
        description="row store baseline (in-memory only)",
        factory=lambda policy: RowEngineAdapter(),
    ))


_register_builtins()
