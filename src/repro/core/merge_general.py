"""General mergence: the two-pass equi-join algorithm (Section 2.5.2).

Neither input is reusable.  The algorithm never materializes the output
tuples; it computes, for every value of every output column, *where* its
bits land, from arithmetic on occurrence counts:

**Pass 1** — count the occurrences ``n1(v)``, ``n2(v)`` of each distinct
join value in ``S`` and ``T``.  A value appearing in both sides occupies
``n1·n2`` rows of ``R``; clustering ``R`` by join value makes every join
attribute's bitmap a single one-fill interval, derived purely from the
counts (for single-attribute joins the counts come straight from the
compressed bitmaps — no decompression).

**Pass 2** — place the non-join values.  Within value ``v``'s block
(offset ``o``, sized ``n1·n2``), the pairing of ``S``-occurrence ``p``
with ``T``-occurrence ``q`` sits at row ``o + p·n2 + q``.  Hence:

* ``S``'s non-join value at occurrence ``p`` covers the *consecutive*
  run ``[o + p·n2, o + (p+1)·n2)`` — an interval per source row;
* ``T``'s non-join value at occurrence ``q`` covers the *strided* set
  ``{o + p·n2 + q : 0 <= p < n1}`` — "non-consecutive but with the same
  distance" in the paper's words.

Both position sets are generated arithmetically and fed to the
compressed-bitmap constructors; building ``R``'s S-side columns costs
``O(|S| log |S|)`` regardless of ``|R|``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.status import EvolutionStatus
from repro.smo.ops import MergeTables
from repro.storage.column import BitmapColumn
from repro.storage.dictionary import Dictionary
from repro.storage.schema import TableSchema
from repro.storage.table import Table


@dataclass
class _JoinGroups:
    """Output of pass 1: the aligned join-value groups.

    ``C`` common join values (groups), each with counts ``n1``/``n2``
    and a block ``[offsets[c], offsets[c] + n1[c] * n2[c])`` in ``R``.
    ``s_cid``/``t_cid`` give each input row's group (or -1 if dropped).
    ``group_value_vids[attr]`` maps group -> vid *in S's dictionary*.
    """

    n1: np.ndarray
    n2: np.ndarray
    offsets: np.ndarray
    s_cid: np.ndarray
    t_cid: np.ndarray
    group_value_vids: dict
    total_rows: int


def _pass1_single(left: Table, right: Table, attr: str,
                  status: EvolutionStatus) -> _JoinGroups:
    """Pass 1 for a single join attribute.

    Counts come from the compressed bitmaps (``value_counts``); only the
    row->group assignment needed by pass 2 decodes the join columns.
    """
    s_col = left.column(attr)
    t_col = right.column(attr)
    s_counts = s_col.value_counts()
    t_counts = t_col.value_counts()

    svid_to_cid = np.full(s_col.distinct_count, -1, dtype=np.int64)
    tvid_to_cid = np.full(t_col.distinct_count, -1, dtype=np.int64)
    group_svids = []
    n1_list = []
    n2_list = []
    for svid, value in enumerate(s_col.dictionary.values()):
        tvid = t_col.dictionary.vid_or_none(value)
        if tvid is None:
            continue
        cid = len(group_svids)
        svid_to_cid[svid] = cid
        tvid_to_cid[tvid] = cid
        group_svids.append(svid)
        n1_list.append(int(s_counts[svid]))
        n2_list.append(int(t_counts[tvid]))
    n1 = np.array(n1_list, dtype=np.int64)
    n2 = np.array(n2_list, dtype=np.int64)
    sizes = n1 * n2
    offsets = np.concatenate(([0], np.cumsum(sizes)))[:-1]
    status.emit(
        "merge pass 1",
        f"{len(n1)} common join values counted on compressed bitmaps "
        f"({attr}); output has {int(sizes.sum())} rows",
    )

    s_cid = svid_to_cid[s_col.decode_vids()]
    t_cid = tvid_to_cid[t_col.decode_vids()]
    status.decompressed_column(2)
    return _JoinGroups(
        n1, n2, offsets, s_cid, t_cid,
        {attr: np.array(group_svids, dtype=np.int64)},
        int(sizes.sum()),
    )


def _pass1_composite(left: Table, right: Table, join_attrs,
                     status: EvolutionStatus) -> _JoinGroups:
    """Pass 1 for composite join attributes, via a shared vid space."""
    k = len(join_attrs)
    s_matrix = np.empty((left.nrows, k), dtype=np.int64)
    t_matrix = np.empty((right.nrows, k), dtype=np.int64)
    for index, attr in enumerate(join_attrs):
        s_col = left.column(attr)
        t_col = right.column(attr)
        s_matrix[:, index] = s_col.decode_vids()
        remap = np.array(
            [
                -1 if (v := s_col.dictionary.vid_or_none(value)) is None
                else v
                for value in t_col.dictionary.values()
            ],
            dtype=np.int64,
        )
        t_matrix[:, index] = remap[t_col.decode_vids()]
        status.decompressed_column(2)
    t_valid = ~np.any(t_matrix < 0, axis=1)

    stacked = np.vstack((s_matrix, t_matrix[t_valid]))
    uniques, inverse = np.unique(stacked, axis=0, return_inverse=True)
    s_group = inverse[: left.nrows]
    t_group_valid = inverse[left.nrows :]
    n_groups = len(uniques)
    n1_all = np.bincount(s_group, minlength=n_groups)
    n2_all = np.bincount(t_group_valid, minlength=n_groups)
    common = (n1_all > 0) & (n2_all > 0)
    cid_of_group = np.full(n_groups, -1, dtype=np.int64)
    cid_of_group[common] = np.arange(int(common.sum()), dtype=np.int64)

    n1 = n1_all[common].astype(np.int64)
    n2 = n2_all[common].astype(np.int64)
    sizes = n1 * n2
    offsets = np.concatenate(([0], np.cumsum(sizes)))[:-1]
    status.emit(
        "merge pass 1",
        f"{int(common.sum())} common join combinations of "
        f"({', '.join(join_attrs)}); output has {int(sizes.sum())} rows",
    )

    s_cid = cid_of_group[s_group]
    t_cid = np.full(right.nrows, -1, dtype=np.int64)
    t_cid[t_valid] = cid_of_group[t_group_valid]
    group_value_vids = {
        attr: uniques[common, index].astype(np.int64)
        for index, attr in enumerate(join_attrs)
    }
    return _JoinGroups(
        n1, n2, offsets, s_cid, t_cid, group_value_vids, int(sizes.sum())
    )


def _grouped_rank(cids: np.ndarray, n_groups: int) -> np.ndarray:
    """Occurrence rank of each row within its group, in row order.

    Rows with ``cid == -1`` get rank -1.
    """
    ranks = np.full(len(cids), -1, dtype=np.int64)
    kept = cids >= 0
    if not np.any(kept):
        return ranks
    kept_idx = np.flatnonzero(kept)
    kept_cids = cids[kept_idx]
    order = np.argsort(kept_cids, kind="stable")
    sorted_cids = kept_cids[order]
    group_start = np.concatenate(
        ([0], np.flatnonzero(sorted_cids[1:] != sorted_cids[:-1]) + 1)
    )
    starts_per_row = np.repeat(
        group_start,
        np.diff(np.concatenate((group_start, [len(sorted_cids)]))),
    )
    rank_sorted = np.arange(len(sorted_cids), dtype=np.int64) - starts_per_row
    kept_ranks = np.empty(len(sorted_cids), dtype=np.int64)
    kept_ranks[order] = rank_sorted
    ranks[kept_idx] = kept_ranks
    return ranks


def _build_join_column(
    column: BitmapColumn,
    groups: _JoinGroups,
    attr: str,
    total: int,
) -> BitmapColumn:
    """R's join-attribute column: per group one pure interval fill."""
    codec = type(column.bitmaps[0]) if column.bitmaps else None
    group_vids = groups.group_value_vids[attr]
    sizes = groups.n1 * groups.n2
    ends = groups.offsets + sizes
    # Group intervals are consecutive in group order; collect per vid.
    order = np.lexsort((groups.offsets, group_vids))
    dictionary = Dictionary()
    bitmaps = []
    boundaries = np.concatenate(
        (
            [0],
            np.flatnonzero(np.diff(group_vids[order])) + 1,
            [len(order)],
        )
    )
    from repro.bitmap.codecs import get_codec

    codec = get_codec(column.codec_name)
    for b in range(len(boundaries) - 1):
        lo, hi = int(boundaries[b]), int(boundaries[b + 1])
        if lo == hi:
            continue
        chunk = order[lo:hi]
        vid = int(group_vids[chunk[0]])
        dictionary.add(column.dictionary.value(vid))
        bitmaps.append(
            codec.from_intervals(groups.offsets[chunk], ends[chunk], total)
        )
    return BitmapColumn(
        column.name, column.dtype, dictionary, bitmaps, total,
        column.codec_name,
    )


def _build_s_side_column(
    column: BitmapColumn,
    groups: _JoinGroups,
    s_rank: np.ndarray,
    total: int,
    status: EvolutionStatus,
) -> BitmapColumn:
    """R's S-side non-join column: one interval per source row."""
    vids = column.decode_vids()
    status.decompressed_column()
    kept = groups.s_cid >= 0
    cids = groups.s_cid[kept]
    ranks = s_rank[kept]
    starts = groups.offsets[cids] + ranks * groups.n2[cids]
    ends = starts + groups.n2[cids]
    kept_vids = vids[kept]

    order = np.lexsort((starts, kept_vids))
    sorted_vids = kept_vids[order]
    sorted_starts = starts[order]
    sorted_ends = ends[order]
    from repro.bitmap.codecs import get_codec

    codec = get_codec(column.codec_name)
    dictionary = Dictionary()
    bitmaps = []
    if len(order):
        boundaries = np.concatenate(
            (
                [0],
                np.flatnonzero(np.diff(sorted_vids)) + 1,
                [len(order)],
            )
        )
        for b in range(len(boundaries) - 1):
            lo, hi = int(boundaries[b]), int(boundaries[b + 1])
            vid = int(sorted_vids[lo])
            dictionary.add(column.dictionary.value(vid))
            bitmaps.append(
                codec.from_intervals(
                    sorted_starts[lo:hi], sorted_ends[lo:hi], total
                )
            )
    status.created_bitmaps(len(bitmaps))
    return BitmapColumn(
        column.name, column.dtype, dictionary, bitmaps, total,
        column.codec_name,
    )


def _build_t_side_column(
    column: BitmapColumn,
    groups: _JoinGroups,
    t_rank: np.ndarray,
    total: int,
    status: EvolutionStatus,
) -> BitmapColumn:
    """R's T-side non-join column: a stride-``n2`` progression per source
    row ("non-consecutive but with the same distance")."""
    vids = column.decode_vids()
    status.decompressed_column()
    kept = groups.t_cid >= 0
    cids = groups.t_cid[kept]
    ranks = t_rank[kept]
    kept_vids = vids[kept]

    repeats = groups.n1[cids]            # each T row pairs with n1 S rows
    strides = groups.n2[cids]
    bases = groups.offsets[cids] + ranks
    total_positions = int(repeats.sum())
    row_of_position = np.repeat(np.arange(len(cids)), repeats)
    first_of_row = np.concatenate(([0], np.cumsum(repeats)))[:-1]
    p_index = (
        np.arange(total_positions, dtype=np.int64)
        - np.repeat(first_of_row, repeats)
    )
    positions = (
        np.repeat(bases, repeats) + p_index * np.repeat(strides, repeats)
    )
    vid_per_position = kept_vids[row_of_position]

    order = np.lexsort((positions, vid_per_position))
    sorted_vids = vid_per_position[order]
    sorted_positions = positions[order]
    from repro.bitmap.codecs import get_codec

    codec = get_codec(column.codec_name)
    dictionary = Dictionary()
    bitmaps = []
    if len(order):
        boundaries = np.concatenate(
            (
                [0],
                np.flatnonzero(np.diff(sorted_vids)) + 1,
                [len(order)],
            )
        )
        for b in range(len(boundaries) - 1):
            lo, hi = int(boundaries[b]), int(boundaries[b + 1])
            vid = int(sorted_vids[lo])
            dictionary.add(column.dictionary.value(vid))
            bitmaps.append(
                codec.from_positions(sorted_positions[lo:hi], total)
            )
    status.created_bitmaps(len(bitmaps))
    return BitmapColumn(
        column.name, column.dtype, dictionary, bitmaps, total,
        column.codec_name,
    )


def merge_general(
    left: Table,
    right: Table,
    op: MergeTables,
    join_attrs,
    status: EvolutionStatus,
) -> Table:
    """Execute the two-pass general mergence; returns the joined table.

    The output is clustered by join value (deterministic group order),
    with ``S``-occurrences consecutive and ``T``-occurrences strided
    inside each block.
    """
    join = tuple(join_attrs)
    if len(join) == 1:
        groups = _pass1_single(left, right, join[0], status)
    else:
        groups = _pass1_composite(left, right, join, status)
    total = groups.total_rows

    s_rank = _grouped_rank(groups.s_cid, len(groups.n1))
    t_rank = _grouped_rank(groups.t_cid, len(groups.n1))

    columns = {}
    with status.step(
        "merge pass 2",
        f"placing values into {total} clustered output rows",
    ):
        for attr in join:
            columns[attr] = _build_join_column(
                left.column(attr), groups, attr, total
            )
            status.created_bitmaps(columns[attr].distinct_count)
        for column_schema in left.schema.columns:
            if column_schema.name in join:
                continue
            columns[column_schema.name] = _build_s_side_column(
                left.column(column_schema.name), groups, s_rank, total, status
            )
        for column_schema in right.schema.columns:
            if column_schema.name in join:
                continue
            columns[column_schema.name] = _build_t_side_column(
                right.column(column_schema.name), groups, t_rank, total, status
            )

    out_columns = left.schema.columns + tuple(
        c for c in right.schema.columns if c.name not in join
    )
    schema = TableSchema(op.out_name, out_columns)
    return Table(schema, columns, total)
