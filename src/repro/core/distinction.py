"""The "distinction" step of decomposition (paper Section 2.4, step 1).

For every distinct value of the changed output table's key attributes,
find one witness tuple position in the input table.  Property 2
guarantees any witness works: the non-key attributes are functionally
determined by the key, so all rows sharing a key value agree on them.

Two strategies:

* **bitmap** (single key attribute, the paper's headline path): the
  first set bit of each value's compressed bitmap, found without
  decompressing anything — ``O(Σ words)`` over the value bitmaps.
* **scan** (composite keys): decode the key columns to vid arrays and
  take the first occurrence of each distinct combination.  The demo
  paper defers composite keys to the tech report; this is our
  reconstruction (documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.bitmap.batch import batch_first_set
from repro.core.status import EvolutionStatus
from repro.errors import EvolutionError


def distinction_with_ranks(
    column, status: EvolutionStatus
) -> tuple[np.ndarray, np.ndarray]:
    """Witness positions plus the rank each vid's witness occupies.

    Returns ``(positions, rank_of_vid)``: ``positions`` is the sorted
    witness list (one per distinct value), and ``rank_of_vid[v]`` is the
    index of vid ``v``'s witness within it.  The ranks let decomposition
    build the changed table's key column directly — each value's new
    bitmap is the unit bitmap at its rank — without any filtering.
    """
    firsts = batch_first_set(column.bitmaps)
    if np.any(firsts < 0):
        stale = int(np.flatnonzero(firsts < 0)[0])
        raise EvolutionError(
            f"column {column.name!r}: value id {stale} has an empty "
            "bitmap; dictionary is stale"
        )
    order = np.argsort(firsts, kind="stable")
    positions = firsts[order]
    rank_of_vid = np.empty(len(order), dtype=np.int64)
    rank_of_vid[order] = np.arange(len(order), dtype=np.int64)
    status.emit(
        "distinction",
        f"{column.distinct_count} distinct values of ({column.name}) "
        "located via first-set-bit on compressed bitmaps",
    )
    return positions, rank_of_vid


def distinction_bitmap(column, status: EvolutionStatus) -> np.ndarray:
    """Witness positions for each distinct value of one column.

    Operates purely on the compressed bitmaps (first-set-bit per value);
    returns sorted positions, one per distinct value.
    """
    positions, _ranks = distinction_with_ranks(column, status)
    return positions


def distinction_scan(table, key_attrs, status: EvolutionStatus) -> np.ndarray:
    """Witness positions for distinct combinations of several columns."""
    matrix = []
    for attr in key_attrs:
        matrix.append(table.column(attr).decode_vids())
        status.decompressed_column()
    stacked = np.stack(matrix, axis=1)
    _, first_rows = np.unique(stacked, axis=0, return_index=True)
    positions = np.sort(first_rows.astype(np.int64))
    status.emit(
        "distinction",
        f"{len(positions)} distinct combinations of "
        f"({', '.join(key_attrs)}) located via vid-array scan",
    )
    return positions


def distinction(table, key_attrs, status: EvolutionStatus) -> np.ndarray:
    """Dispatch on key arity: bitmap path for one attribute, scan for
    composites.  Returns sorted witness positions."""
    key_attrs = list(key_attrs)
    if not key_attrs:
        raise EvolutionError("distinction requires at least one key attribute")
    if len(key_attrs) == 1:
        return distinction_bitmap(table.column(key_attrs[0]), status)
    return distinction_scan(table, key_attrs, status)
