"""The DECOMPOSE TABLE algorithm (paper Section 2.4).

``R -> S, T`` with the common attributes a key of (say) ``T``:

* Property 1 — ``S`` is *unchanged*: it adopts ``R``'s compressed
  columns by reference.  No bitmap is read, decompressed or copied.
* ``T`` is built by **distinction** (one witness position per distinct
  key value, found on the compressed bitmaps) followed by **bitmap
  filtering** (shrinking each affected bitmap to those positions).

Losslessness is validated from declared keys/FDs first; if they are
inconclusive the engine can fall back to verifying the functional
dependency in the data (Property 2 must hold for correctness).
"""

from __future__ import annotations

from repro.bitmap.batch import batch_unit_bitmaps
from repro.bitmap.wah import WAHBitmap
from repro.core.distinction import distinction, distinction_with_ranks
from repro.core.filtering import filter_column
from repro.core.status import EvolutionStatus
from repro.errors import LosslessJoinError
from repro.fd import check_lossless, fds_from_keys, holds
from repro.fd.decompose_check import DecompositionPlan
from repro.smo.ops import DecomposeTable
from repro.storage.column import BitmapColumn
from repro.storage.table import Table


def plan_decomposition(
    table: Table,
    op: DecomposeTable,
    extra_fds=(),
    verify_with_data: bool = True,
) -> DecompositionPlan:
    """Determine the changed side, proving losslessness.

    Declared keys (of the input schema) and ``extra_fds`` are tried
    first; if they cannot prove the split lossless and
    ``verify_with_data`` is set, the functional dependency
    ``common -> side`` is tested against the data (vectorized partition
    counting).
    """
    fds = list(fds_from_keys(table.schema)) + list(extra_fds)
    all_attrs = table.schema.column_names
    try:
        return check_lossless(all_attrs, op.left_attrs, op.right_attrs, fds)
    except LosslessJoinError:
        if not verify_with_data:
            raise
    common = sorted(set(op.left_attrs) & set(op.right_attrs))
    left_holds = holds(table, common, op.left_attrs)
    right_holds = holds(table, common, op.right_attrs)
    if not left_holds and not right_holds:
        raise LosslessJoinError(
            f"common attributes {common} determine neither output side, "
            "in the schema or in the data; the decomposition would be lossy"
        )
    if left_holds and right_holds:
        changed = "left" if len(op.left_attrs) <= len(op.right_attrs) else "right"
    else:
        changed = "left" if left_holds else "right"
    return DecompositionPlan(frozenset(common), changed)


def decompose(
    table: Table,
    op: DecomposeTable,
    status: EvolutionStatus,
    extra_fds=(),
    verify_with_data: bool = True,
) -> tuple[Table, Table]:
    """Execute a decomposition; returns ``(left, right)`` tables."""
    plan = plan_decomposition(table, op, extra_fds, verify_with_data)

    if plan.changed_side == "left":
        changed_name, changed_attrs = op.left_name, op.left_attrs
        unchanged_name, unchanged_attrs = op.right_name, op.right_attrs
    else:
        changed_name, changed_attrs = op.right_name, op.right_attrs
        unchanged_name, unchanged_attrs = op.left_name, op.left_attrs

    # Property 1: the unchanged side reuses R's columns by reference.
    with status.step(
        "column reuse",
        f"{unchanged_name} adopts columns "
        f"({', '.join(unchanged_attrs)}) of {table.name} unchanged",
    ):
        pk = (
            table.schema.primary_key
            if table.schema.primary_key
            and set(table.schema.primary_key) <= set(unchanged_attrs)
            else ()
        )
        unchanged = table.project(unchanged_attrs, unchanged_name, pk)
        status.reuse_columns(len(unchanged_attrs))
        status.reuse_bitmaps(
            sum(
                table.column(attr).distinct_count
                for attr in unchanged_attrs
            )
        )

    # The changed side: distinction, then bitmap filtering.
    key_attrs = [a for a in changed_attrs if a in plan.common]
    changed = _build_changed_table(
        table, changed_attrs, key_attrs, changed_name, status
    )

    if plan.changed_side == "left":
        return changed, unchanged
    return unchanged, changed


def _build_changed_table(
    table: Table,
    changed_attrs,
    key_attrs,
    changed_name: str,
    status: EvolutionStatus,
) -> Table:
    """Distinction + bitmap filtering for the changed output table.

    For a single-attribute key, distinction already tells where each key
    value's (unique) row lands, so the key column of the output is built
    directly from unit bitmaps; only the non-key columns need filtering.
    """
    single_key = (
        len(key_attrs) == 1
        and isinstance(
            table.column(key_attrs[0]).bitmaps[0]
            if table.column(key_attrs[0]).bitmaps
            else None,
            WAHBitmap,
        )
    )
    schema = table.schema.project(
        changed_attrs, changed_name, tuple(key_attrs)
    )
    columns = {}
    if single_key:
        key_column = table.column(key_attrs[0])
        positions, rank_of_vid = distinction_with_ranks(key_column, status)
        new_len = len(positions)
        with status.step(
            "filtering",
            f"key column rebuilt from witness ranks; bitmap filtering "
            f"{len(changed_attrs) - 1} non-key columns down to "
            f"{new_len} rows",
        ):
            columns[key_attrs[0]] = BitmapColumn(
                key_column.name,
                key_column.dtype,
                key_column.dictionary,
                batch_unit_bitmaps(rank_of_vid, new_len),
                new_len,
                key_column.codec_name,
            )
            status.created_bitmaps(key_column.distinct_count)
            for attr in changed_attrs:
                if attr == key_attrs[0]:
                    continue
                columns[attr] = filter_column(
                    table.column(attr), positions, status
                )
    else:
        positions = distinction(table, key_attrs, status)
        new_len = len(positions)
        with status.step(
            "filtering",
            f"bitmap filtering {len(changed_attrs)} columns down to "
            f"{new_len} rows",
        ):
            for attr in changed_attrs:
                columns[attr] = filter_column(
                    table.column(attr), positions, status
                )
    return Table(schema, columns, new_len)
