"""Key–foreign-key mergence (paper Section 2.5.1).

``S ⋈ T -> R`` where the join attributes form the key of ``T``: the
output has exactly ``S``'s rows, so every column of ``S`` is **reused**
by reference, and only ``T``'s non-key columns are generated.

The paper first sketches a per-value algorithm (for each value ``u`` of
a ``T`` attribute, OR together the ``S``-bitmaps of the key values
co-occurring with ``u``) and then observes that a single *sequential
scan* of ``S``'s key column produces the same result with better
locality.  We implement the sequential-scan variant, vectorized: decode
``S``'s key column once, map each row's key to its (unique) ``T`` row,
and gather ``T``'s attribute values — then rebuild compressed bitmaps
per value.
"""

from __future__ import annotations

import numpy as np

from repro.core.status import EvolutionStatus
from repro.errors import EvolutionError
from repro.smo.ops import MergeTables
from repro.storage.column import BitmapColumn
from repro.storage.schema import TableSchema
from repro.storage.table import Table


def keys_all_present(s_col: BitmapColumn, t_col: BitmapColumn) -> bool:
    """Cheap referential-integrity probe on dictionaries only: every join
    value of ``S`` appears in ``T``."""
    t_dict = t_col.dictionary
    return all(value in t_dict for value in s_col.dictionary.values())


def _t_row_of_svid_single(s_col: BitmapColumn, t_col: BitmapColumn
                          ) -> np.ndarray:
    """Map each S-vid of the join attribute to its unique T row.

    Uses only compressed-domain operations on ``T``: the key property
    means each value's bitmap in ``T`` has exactly one set bit, located
    with ``first_set``.
    """
    from repro.bitmap.batch import batch_count, batch_first_set

    counts = batch_count(t_col.bitmaps)
    if np.any(counts != 1):
        bad_vid = int(np.flatnonzero(counts != 1)[0])
        raise EvolutionError(
            f"join attribute {t_col.name!r} is not a key of the right "
            f"table: value {t_col.dictionary.value(bad_vid)!r} occurs "
            f"{int(counts[bad_vid])} times"
        )
    t_first = batch_first_set(t_col.bitmaps)
    rows = np.full(s_col.distinct_count, -1, dtype=np.int64)
    t_dict = t_col.dictionary
    for svid, value in enumerate(s_col.dictionary.values()):
        tvid = t_dict.vid_or_none(value)
        if tvid is not None:
            rows[svid] = t_first[tvid]
    return rows


def _t_row_per_s_row(
    left: Table, right: Table, join_attrs, status: EvolutionStatus
) -> np.ndarray:
    """For every row of ``left``, the matching (unique) row of ``right``.

    Returns -1 where the key has no match (caller decides policy).
    """
    if len(join_attrs) == 1:
        attr = join_attrs[0]
        s_col = left.column(attr)
        t_col = right.column(attr)
        t_row_of_svid = _t_row_of_svid_single(s_col, t_col)
        s_vids = s_col.decode_vids()
        status.decompressed_column()
        return t_row_of_svid[s_vids]

    # Composite key: match vid tuples through a shared value space.
    s_matrix = np.empty((left.nrows, len(join_attrs)), dtype=np.int64)
    t_matrix = np.empty((right.nrows, len(join_attrs)), dtype=np.int64)
    for k, attr in enumerate(join_attrs):
        s_col = left.column(attr)
        t_col = right.column(attr)
        s_matrix[:, k] = s_col.decode_vids()
        status.decompressed_column()
        remap = np.array(
            [
                -1 if (v := s_col.dictionary.vid_or_none(value)) is None else v
                for value in t_col.dictionary.values()
            ],
            dtype=np.int64,
        )
        t_matrix[:, k] = remap[t_col.decode_vids()]
        status.decompressed_column()
    # T rows holding values never seen in S cannot match any S row; give
    # each a unique sentinel key so they form singleton groups instead of
    # colliding with one another.
    unmatched = np.any(t_matrix < 0, axis=1)
    if np.any(unmatched):
        rows = np.flatnonzero(unmatched)
        t_matrix[rows, 0] = -(rows + 2)
    stacked = np.vstack((t_matrix, s_matrix))
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    t_group = inverse[: right.nrows]
    s_group = inverse[right.nrows :]
    group_row = np.full(int(inverse.max()) + 1, -1, dtype=np.int64)
    seen = np.zeros(len(group_row), dtype=np.int64)
    np.add.at(seen, t_group, 1)
    if np.any(seen > 1):
        raise EvolutionError(
            f"join attributes {list(join_attrs)} are not a key of the "
            "right table (duplicate combinations found)"
        )
    group_row[t_group] = np.arange(right.nrows, dtype=np.int64)
    return group_row[s_group]


def merge_key_fk(
    left: Table,
    right: Table,
    op: MergeTables,
    join_attrs,
    status: EvolutionStatus,
) -> Table:
    """Merge where ``join_attrs`` is a key of ``right``.

    ``left``'s columns are reused; one new column is generated per
    non-key attribute of ``right``.
    """
    join = tuple(join_attrs)
    t_rows = _t_row_per_s_row(left, right, join, status)
    if np.any(t_rows < 0):
        missing = int(np.count_nonzero(t_rows < 0))
        raise EvolutionError(
            f"key–foreign-key mergence requires every key of {left.name!r} "
            f"to exist in {right.name!r}; {missing} rows dangle"
        )

    with status.step(
        "column reuse",
        f"{op.out_name} adopts all {len(left.schema.columns)} columns of "
        f"{left.name} unchanged",
    ):
        status.reuse_columns(len(left.schema.columns))
        status.reuse_bitmaps(
            sum(left.column(a).distinct_count for a in left.column_names)
        )
        columns = {name: left.column(name) for name in left.column_names}

    new_schemas = []
    for column_schema in right.schema.columns:
        if column_schema.name in join:
            continue
        t_col = right.column(column_schema.name)
        with status.step(
            "sequential scan",
            f"generating {column_schema.name!r} by scanning "
            f"{left.name}'s key column against {right.name}",
        ):
            t_vids = t_col.decode_vids()
            status.decompressed_column()
            out_vids = t_vids[t_rows]
            new_column = BitmapColumn.from_vids(
                column_schema.name,
                column_schema.dtype,
                t_col.dictionary,
                out_vids,
                t_col.codec_name,
            )
            status.created_bitmaps(new_column.distinct_count)
        columns[column_schema.name] = new_column
        new_schemas.append(column_schema)

    schema = TableSchema(
        op.out_name,
        left.schema.columns + tuple(new_schemas),
        left.schema.primary_key,
        left.schema.candidate_keys,
    )
    return Table(schema, columns, left.nrows)
