"""The CODS core: data-level data evolution on compressed columns."""

from repro.core.decompose import decompose, plan_decomposition
from repro.core.distinction import (
    distinction,
    distinction_bitmap,
    distinction_scan,
)
from repro.core.engine import EvolutionEngine
from repro.core.filtering import filter_column, filter_table
from repro.core.merge_general import merge_general
from repro.core.merge_kfk import merge_key_fk
from repro.core.query import (
    count_where,
    group_count,
    positions_where,
    select_where,
    value_exists,
)
from repro.core.status import EvolutionStatus, StatusEvent

__all__ = [
    "EvolutionEngine",
    "EvolutionStatus",
    "StatusEvent",
    "count_where",
    "decompose",
    "distinction",
    "distinction_bitmap",
    "distinction_scan",
    "filter_column",
    "filter_table",
    "group_count",
    "merge_general",
    "merge_key_fk",
    "plan_decomposition",
    "positions_where",
    "select_where",
    "value_exists",
]
