"""Evolution status tracking.

The demo UI (paper Section 3, "Tracking Data Evolution Status") shows
each step CODS takes — "distinction", "filtering", column reuse — as it
runs.  :class:`EvolutionStatus` is that facility plus the accounting the
tests rely on: e.g. Property 1 is verified by asserting that the
unchanged side of a decomposition incurred zero bitmap operations.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(frozen=True)
class StatusEvent:
    """One logged evolution step."""

    step: str
    detail: str
    seconds: float


@dataclass
class EvolutionStatus:
    """Event log plus operation counters for one SMO execution."""

    events: list = field(default_factory=list)
    listeners: list = field(default_factory=list)

    # Counters — the currency of the paper's cost argument.
    columns_reused: int = 0        # columns adopted without any data work
    bitmaps_reused: int = 0        # bitmaps shared into the output as-is
    bitmaps_filtered: int = 0      # "bitmap filtering" operations
    bitmaps_created: int = 0       # new bitmaps built from scratch
    columns_decompressed: int = 0  # decode_vids calls (sequential scans)
    rows_materialized: int = 0     # tuples formed (query-level only)
    delta_rows_flushed: int = 0    # buffered writes folded in pre-SMO

    def subscribe(self, listener) -> None:
        """Register a callable invoked with each :class:`StatusEvent`."""
        self.listeners.append(listener)

    def emit(self, step: str, detail: str = "", seconds: float = 0.0) -> None:
        event = StatusEvent(step, detail, seconds)
        self.events.append(event)
        for listener in self.listeners:
            listener(event)

    @contextmanager
    def step(self, step: str, detail: str = ""):
        """Time a step and log it on exit."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.emit(step, detail, time.perf_counter() - started)

    # -- counter helpers -------------------------------------------------

    def reuse_columns(self, count: int) -> None:
        self.columns_reused += count
        self.bitmaps_reused += 0  # bitmap-level reuse tracked separately

    def reuse_bitmaps(self, count: int) -> None:
        self.bitmaps_reused += count

    def filtered_bitmaps(self, count: int) -> None:
        self.bitmaps_filtered += count

    def created_bitmaps(self, count: int) -> None:
        self.bitmaps_created += count

    def decompressed_column(self, count: int = 1) -> None:
        self.columns_decompressed += count

    def materialized_rows(self, count: int) -> None:
        self.rows_materialized += count

    def flushed_delta(self, count: int) -> None:
        self.delta_rows_flushed += count

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict:
        return {
            "columns_reused": self.columns_reused,
            "bitmaps_reused": self.bitmaps_reused,
            "bitmaps_filtered": self.bitmaps_filtered,
            "bitmaps_created": self.bitmaps_created,
            "columns_decompressed": self.columns_decompressed,
            "rows_materialized": self.rows_materialized,
            "delta_rows_flushed": self.delta_rows_flushed,
        }

    def describe(self) -> str:
        lines = [
            f"  [{event.step}] {event.detail} ({event.seconds * 1e3:.2f} ms)"
            for event in self.events
        ]
        lines.append(f"  counters: {self.summary()}")
        return "\n".join(lines)

    @property
    def total_seconds(self) -> float:
        return sum(event.seconds for event in self.events)
