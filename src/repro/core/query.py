"""Querying bitmap-encoded tables in the compressed domain.

Section 2.2 of the paper adopts WAH precisely because it "supports query
processing on compressed data directly".  This module provides that
capability over our column store: predicates evaluate to bitmaps
(:meth:`Predicate.bitmap`), and these helpers turn the bitmaps into
counts, row sets or aggregated views — without decompressing unaffected
columns.  The demo and the examples use them; they also show why keeping
bitmaps live across evolutions matters (query-level evolution would have
to rebuild them first).
"""

from __future__ import annotations

import numpy as np

from repro.smo.predicate import Predicate
from repro.storage.table import Table


def count_where(table: Table, predicate: Predicate) -> int:
    """Number of rows satisfying ``predicate`` — bitmap count only."""
    predicate.validate(table.schema)
    return predicate.bitmap(table).count()


def select_where(
    table: Table, predicate: Predicate, attrs=None
) -> list[tuple]:
    """Rows satisfying ``predicate`` (optionally projected to ``attrs``).

    Only the *selected* rows of the projected columns are materialized:
    the predicate bitmap gives positions, and each projected column is
    bitmap-filtered to those positions.
    """
    predicate.validate(table.schema)
    positions = predicate.bitmap(table).positions()
    attrs = list(attrs) if attrs is not None else list(table.column_names)
    columns = [
        table.column(attr).select(positions, compact=True).to_values()
        for attr in attrs
    ]
    return list(zip(*columns)) if columns and len(positions) else []


def positions_where(table: Table, predicate: Predicate) -> np.ndarray:
    """Sorted row positions satisfying ``predicate``."""
    predicate.validate(table.schema)
    return predicate.bitmap(table).positions()


def group_count(table: Table, attr: str) -> dict:
    """``value -> occurrence count`` for one column, from bitmap counts.

    Equivalent to ``SELECT attr, COUNT(*) … GROUP BY attr`` with zero
    decompression: each value's cardinality is its bitmap's count.
    """
    column = table.column(attr)
    counts = column.value_counts()
    return {
        column.dictionary.value(vid): int(counts[vid])
        for vid in range(column.distinct_count)
    }


def value_exists(table: Table, attr: str, value) -> bool:
    """Point-lookup membership via the dictionary (no data access)."""
    from repro.storage.types import coerce

    column = table.column(attr)
    vid = column.dictionary.vid_or_none(coerce(value, column.dtype))
    if vid is None:
        return False
    return column.bitmap_for_vid(vid).count() > 0
