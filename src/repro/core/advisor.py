"""Evolution cost advisor.

The paper argues CODS "guides the choice between row oriented databases
and column oriented databases when schema changes are potentially
wanted".  This module makes that guidance concrete: a calibrated linear
cost model predicts data-level vs query-level cost for a planned SMO
stream over given table statistics, and recommends a storage strategy.

The model is deliberately simple — each pipeline's cost is a weighted
sum of the work units its stages touch:

* data level: bitmaps filtered/created (per distinct value of affected
  columns) + rows decoded where a sequential scan is required;
* query level: rows scanned + tuples materialized + rows reloaded
  (re-compressed / re-inserted) + index rebuild work.

Unit costs default to values measured on this substrate and can be
re-calibrated on the current machine with :func:`calibrate`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.smo.ops import (
    AddColumn,
    CopyTable,
    DecomposeTable,
    DropColumn,
    MergeTables,
    PartitionTable,
    RenameColumn,
    RenameTable,
    SchemaModificationOperator,
    UnionTables,
)


@dataclass(frozen=True)
class TableStats:
    """What the advisor needs to know about one table."""

    nrows: int
    distinct: dict  # column name -> distinct value count

    def distinct_of(self, attr: str) -> int:
        return self.distinct.get(attr, max(self.nrows // 100, 1))

    @classmethod
    def of(cls, table) -> "TableStats":
        """Extract stats from a live column-store table."""
        return cls(
            table.nrows,
            {
                name: table.column(name).distinct_count
                for name in table.column_names
            },
        )


@dataclass(frozen=True)
class CostModel:
    """Per-unit costs in seconds (calibrated on this substrate)."""

    per_bitmap_op: float = 1e-5       # filter/create one value bitmap
    per_row_decode: float = 3e-8      # decode one row of one column
    per_row_scan: float = 4e-7        # scan one tuple at query level
    per_row_load: float = 8e-7        # materialize + reload one tuple
    per_row_index: float = 1.2e-6     # insert one key into an index


DEFAULT_MODEL = CostModel()


@dataclass(frozen=True)
class Estimate:
    """Predicted cost of one operator under both pipelines."""

    operator: str
    data_level_seconds: float
    query_level_seconds: float

    @property
    def speedup(self) -> float:
        if self.data_level_seconds <= 0:
            return float("inf")
        return self.query_level_seconds / self.data_level_seconds


def estimate(
    op: SchemaModificationOperator,
    stats: dict,
    model: CostModel = DEFAULT_MODEL,
    with_indexes: bool = True,
) -> Estimate:
    """Predict the cost of ``op`` over ``{table_name: TableStats}``."""
    name = type(op).__name__

    def query_cost(rows_scanned, rows_loaded, indexed_rows=0):
        cost = (
            rows_scanned * model.per_row_scan
            + rows_loaded * model.per_row_load
        )
        if with_indexes:
            cost += indexed_rows * model.per_row_index
        return cost

    if isinstance(op, DecomposeTable):
        source = stats[op.table]
        common = set(op.left_attrs) & set(op.right_attrs)
        key_attr = next(iter(common))
        distinct_keys = source.distinct_of(key_attr)
        changed_attrs = (
            op.right_attrs
            if len(op.right_attrs) <= len(op.left_attrs)
            else op.left_attrs
        )
        touched_bitmaps = sum(
            source.distinct_of(a) for a in changed_attrs
        )
        data = touched_bitmaps * model.per_bitmap_op
        query = query_cost(
            rows_scanned=2 * source.nrows,
            rows_loaded=source.nrows + distinct_keys,
            indexed_rows=source.nrows + distinct_keys,
        )
        return Estimate(name, data, query)

    if isinstance(op, MergeTables):
        left = stats[op.left]
        right = stats[op.right]
        # Key–FK shape: output has max(nrows) rows; new columns come from
        # the smaller side.
        out_rows = max(left.nrows, right.nrows)
        small = min(left.nrows, right.nrows)
        data = (
            out_rows * model.per_row_decode  # sequential scan of the key
            + small * model.per_bitmap_op / 10
            + sum(right.distinct.values()) * model.per_bitmap_op
        )
        query = query_cost(
            rows_scanned=left.nrows + right.nrows,
            rows_loaded=out_rows,
            indexed_rows=out_rows,
        )
        return Estimate(name, data, query)

    if isinstance(op, (CopyTable, RenameTable, RenameColumn)):
        source = stats[getattr(op, "table")]
        data = 1e-5  # metadata / reference sharing
        if isinstance(op, (RenameTable, RenameColumn)):
            query = 1e-5  # metadata for real systems too
        else:
            query = query_cost(source.nrows, source.nrows, source.nrows)
        return Estimate(name, data, query)

    if isinstance(op, UnionTables):
        left = stats[op.left]
        right = stats[op.right]
        total_bitmaps = sum(left.distinct.values()) + sum(
            right.distinct.values()
        )
        data = total_bitmaps * model.per_bitmap_op
        query = query_cost(
            left.nrows + right.nrows,
            left.nrows + right.nrows,
            left.nrows + right.nrows,
        )
        return Estimate(name, data, query)

    if isinstance(op, PartitionTable):
        source = stats[op.table]
        data = 2 * sum(source.distinct.values()) * model.per_bitmap_op
        query = query_cost(
            2 * source.nrows, source.nrows, source.nrows
        )
        return Estimate(name, data, query)

    if isinstance(op, AddColumn):
        source = stats[op.table]
        if op.values is None:
            data = model.per_bitmap_op  # one fill bitmap
        else:
            data = source.nrows * model.per_row_decode * 10
        query = query_cost(source.nrows, source.nrows, source.nrows)
        return Estimate(name, data, query)

    if isinstance(op, DropColumn):
        source = stats[op.table]
        return Estimate(
            name,
            1e-5,
            query_cost(source.nrows, source.nrows, source.nrows),
        )

    # CREATE/DROP TABLE and anything schema-level.
    return Estimate(name, 1e-5, 1e-5)


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict for a planned evolution stream."""

    estimates: tuple
    total_data_level: float
    total_query_level: float

    @property
    def speedup(self) -> float:
        if self.total_data_level <= 0:
            return float("inf")
        return self.total_query_level / self.total_data_level

    @property
    def verdict(self) -> str:
        if self.speedup >= 5:
            return (
                "column store with data-level evolution (CODS): expected "
                f"{self.speedup:.0f}x cheaper evolution"
            )
        if self.speedup >= 1.5:
            return (
                "column store preferred; moderate evolution advantage "
                f"({self.speedup:.1f}x)"
            )
        return (
            "evolution cost similar; choose storage by query workload, "
            "not by evolution cost"
        )

    def describe(self) -> str:
        lines = ["planned evolution cost (data-level vs query-level):"]
        for item in self.estimates:
            lines.append(
                f"  {item.operator:<16} {item.data_level_seconds * 1e3:10.2f} ms"
                f" vs {item.query_level_seconds * 1e3:10.2f} ms"
                f"   ({item.speedup:,.0f}x)"
            )
        lines.append(f"verdict: {self.verdict}")
        return "\n".join(lines)


def advise(
    operators,
    stats: dict,
    model: CostModel = DEFAULT_MODEL,
    with_indexes: bool = True,
) -> Recommendation:
    """Estimate a whole operator stream.

    ``stats`` maps table names to :class:`TableStats`; intermediate
    tables produced by the stream inherit their source's stats (a
    coarse but adequate approximation for advisory purposes).
    """
    from repro.smo.ops import CreateTable, DropTable

    live = dict(stats)
    estimates = []
    for op in operators:
        estimates.append(estimate(op, live, model, with_indexes))
        # Propagate coarse stats to outputs.
        if isinstance(op, DecomposeTable):
            source = live.pop(op.table)
            key = next(iter(set(op.left_attrs) & set(op.right_attrs)))
            live[op.left_name] = TableStats(
                source.nrows,
                {a: source.distinct_of(a) for a in op.left_attrs},
            )
            live[op.right_name] = TableStats(
                source.distinct_of(key),
                {a: source.distinct_of(a) for a in op.right_attrs},
            )
        elif isinstance(op, MergeTables):
            left = live.pop(op.left)
            right = live.pop(op.right)
            merged = dict(left.distinct)
            merged.update(right.distinct)
            live[op.out_name] = TableStats(
                max(left.nrows, right.nrows), merged
            )
        elif isinstance(op, CopyTable):
            live[op.new_name] = live[op.table]
        elif isinstance(op, RenameTable):
            live[op.new_name] = live.pop(op.table)
        elif isinstance(op, UnionTables):
            left = live.pop(op.left)
            right = live.pop(op.right, left)
            live[op.out_name] = TableStats(
                left.nrows + right.nrows, dict(left.distinct)
            )
        elif isinstance(op, PartitionTable):
            source = live.pop(op.table)
            half = TableStats(source.nrows // 2, dict(source.distinct))
            live[op.true_name] = half
            live[op.false_name] = half
        elif isinstance(op, DropTable):
            live.pop(op.table, None)
        elif isinstance(op, CreateTable):
            live[op.schema.name] = TableStats(0, {})
    total_data = sum(e.data_level_seconds for e in estimates)
    total_query = sum(e.query_level_seconds for e in estimates)
    return Recommendation(tuple(estimates), total_data, total_query)


def calibrate(sample_rows: int = 20_000) -> CostModel:
    """Measure unit costs on this machine and return a fitted model.

    Runs one small decomposition through the data-level engine and the
    query-level row baseline, then scales the default model so its
    predictions match the measurements.
    """
    from repro.baselines.systems import SERIES
    from repro.workload import EmployeeWorkload

    distinct = max(sample_rows // 100, 2)
    workload = EmployeeWorkload(sample_rows, distinct, seed=99)

    cods = SERIES["D"]()
    cods.engine.extra_fds = (workload.fd,)
    cods.load(workload.build())
    started = time.perf_counter()
    cods.apply(workload.decompose_op())
    data_measured = time.perf_counter() - started

    row = SERIES["C+I"]()
    row.load(workload.build())
    started = time.perf_counter()
    row.apply(workload.decompose_op())
    query_measured = time.perf_counter() - started

    stats = {
        "R": TableStats(
            sample_rows,
            {"Employee": distinct, "Skill": 100, "Address": 50},
        )
    }
    predicted = estimate(workload.decompose_op(), stats)
    data_scale = data_measured / max(predicted.data_level_seconds, 1e-9)
    query_scale = query_measured / max(
        predicted.query_level_seconds, 1e-9
    )
    base = DEFAULT_MODEL
    return replace(
        base,
        per_bitmap_op=base.per_bitmap_op * data_scale,
        per_row_decode=base.per_row_decode * data_scale,
        per_row_scan=base.per_row_scan * query_scale,
        per_row_load=base.per_row_load * query_scale,
        per_row_index=base.per_row_index * query_scale,
    )
