"""The "bitmap filtering" step of decomposition (Section 2.4, step 2).

Given the witness position list produced by distinction, shrink every
bitmap of the changed table's attributes to exactly those positions —
directly on the compressed representation.  The result is the changed
output table, never materialized as tuples.
"""

from __future__ import annotations

import numpy as np

from repro.core.status import EvolutionStatus
from repro.storage.column import BitmapColumn
from repro.storage.dictionary import Dictionary
from repro.storage.schema import TableSchema
from repro.storage.table import Table


def filter_column(
    column: BitmapColumn,
    positions: np.ndarray,
    status: EvolutionStatus,
    compact: bool = True,
) -> BitmapColumn:
    """Bitmap-filter one column to the given sorted positions."""
    from repro.bitmap.batch import batch_select

    new_len = len(positions)
    filtered = batch_select(column.bitmaps, positions)
    status.filtered_bitmaps(len(filtered))
    if not compact:
        return BitmapColumn(
            column.name, column.dtype, column.dictionary, filtered,
            new_len, column.codec_name,
        )
    dictionary = Dictionary()
    bitmaps = []
    for vid, bitmap in enumerate(filtered):
        if bitmap.count() > 0:
            dictionary.add(column.dictionary.value(vid))
            bitmaps.append(bitmap)
    return BitmapColumn(
        column.name, column.dtype, dictionary, bitmaps, new_len,
        column.codec_name,
    )


def filter_table(
    table: Table,
    attrs,
    positions: np.ndarray,
    new_name: str,
    status: EvolutionStatus,
    primary_key=(),
) -> Table:
    """Build a new table from ``attrs`` of ``table`` at ``positions``."""
    attrs = list(attrs)
    with status.step(
        "filtering",
        f"bitmap filtering {len(attrs)} columns down to "
        f"{len(positions)} rows",
    ):
        schema = table.schema.project(attrs, new_name, primary_key)
        columns = {
            attr: filter_column(table.column(attr), positions, status)
            for attr in attrs
        }
    return Table(schema, columns, len(positions))
