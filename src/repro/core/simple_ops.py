"""The straightforward SMOs (paper Section 2.3).

CREATE/DROP/RENAME TABLE are schema-level only.  COPY, UNION and
PARTITION move data but never change it, so they operate on whole
compressed bitmaps: COPY shares them (bitmaps are immutable), UNION
concatenates them in the compressed domain, PARTITION evaluates its
predicate on compressed bitmaps and then bitmap-filters both ways.
ADD COLUMN with a default is a single fill bitmap — O(1) regardless of
table size; DROP/RENAME COLUMN are metadata.
"""

from __future__ import annotations

import numpy as np

from repro.core.filtering import filter_table
from repro.core.status import EvolutionStatus
from repro.smo.ops import (
    AddColumn,
    CopyTable,
    PartitionTable,
    UnionTables,
)
from repro.storage.column import BitmapColumn
from repro.storage.dictionary import Dictionary
from repro.storage.table import Table
from repro.storage.types import coerce


def copy_table(table: Table, new_name: str, status: EvolutionStatus) -> Table:
    """COPY TABLE: share all compressed columns under a new name."""
    with status.step(
        "column reuse",
        f"copy of {table.name} shares all {len(table.schema.columns)} "
        "compressed columns",
    ):
        status.reuse_columns(len(table.schema.columns))
        return table.renamed(new_name)


def union_tables(
    left: Table, right: Table, op: UnionTables, status: EvolutionStatus
) -> Table:
    """UNION TABLES: concatenate compressed bitmaps column by column."""
    with status.step(
        "bitmap concat",
        f"appending {right.nrows} rows of {right.name} to "
        f"{left.nrows} rows of {left.name}",
    ):
        result = left.concat(right, op.out_name)
        status.created_bitmaps(
            sum(result.column(n).distinct_count for n in result.column_names)
        )
        return result


def partition_table(
    table: Table, op: PartitionTable, status: EvolutionStatus
) -> tuple[Table, Table]:
    """PARTITION TABLE: predicate bitmap + two-way bitmap filtering."""
    with status.step(
        "predicate",
        f"evaluating {op.predicate} on compressed bitmaps",
    ):
        matches = op.predicate.bitmap(table)
    true_positions = matches.positions()
    false_positions = matches.invert().positions()
    true_table = filter_table(
        table,
        table.schema.column_names,
        true_positions,
        op.true_name,
        status,
        primary_key=table.schema.primary_key,
    )
    false_table = filter_table(
        table,
        table.schema.column_names,
        false_positions,
        op.false_name,
        status,
        primary_key=table.schema.primary_key,
    )
    return true_table, false_table


def add_column(
    table: Table, op: AddColumn, status: EvolutionStatus
) -> Table:
    """ADD COLUMN: from explicit values, or a default fill bitmap."""
    if op.values is not None:
        with status.step(
            "column build",
            f"building {op.column.name!r} from {len(op.values)} user values",
        ):
            column = BitmapColumn.from_values(
                op.column.name, op.column.dtype, list(op.values)
            )
            status.created_bitmaps(column.distinct_count)
    else:
        with status.step(
            "fill bitmap",
            f"default column {op.column.name!r} is one fill bitmap "
            "(O(1) in the table size)",
        ):
            from repro.bitmap.codecs import get_codec

            codec_name = (
                table.columns()[0].codec_name if table.schema.columns else "wah"
            )
            codec = get_codec(codec_name)
            value = coerce(op.default, op.column.dtype)
            column = BitmapColumn(
                op.column.name,
                op.column.dtype,
                Dictionary([value]),
                [codec.ones(table.nrows)],
                table.nrows,
                codec_name,
            )
            status.created_bitmaps(1)
    return table.with_column(op.column, column)


def drop_column(table: Table, column: str, status: EvolutionStatus) -> Table:
    """DROP COLUMN: other columns untouched (the paper's simplest case)."""
    with status.step(
        "metadata",
        f"dropping column {column!r}; "
        f"{len(table.schema.columns) - 1} columns unaffected",
    ):
        status.reuse_columns(len(table.schema.columns) - 1)
        return table.without_column(column)


def rename_column(
    table: Table, old: str, new: str, status: EvolutionStatus
) -> Table:
    """RENAME COLUMN: pure metadata."""
    with status.step("metadata", f"renaming column {old!r} to {new!r}"):
        return table.with_renamed_column(old, new)
