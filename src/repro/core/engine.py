"""The CODS evolution engine: data-level execution of SMOs.

This is the platform of the paper's Figure 2 (left side): schema
modification requests come in as :mod:`repro.smo` operators, and the
engine evolves the *compressed* columns directly to the new schema — no
query execution, no tuple materialization, no unnecessary
decompression/re-compression.

Conventions:

* DECOMPOSE, MERGE, UNION and PARTITION consume their input tables
  (matching PRISM semantics of schema versions); COPY and CREATE add.
* Every ``apply`` returns an :class:`EvolutionStatus` whose event log is
  the "Data Evolution Status" pane of the demo UI and whose counters
  back the tests' cost assertions.
"""

from __future__ import annotations

import threading
import weakref

from repro.core.decompose import decompose
from repro.core.merge_general import merge_general
from repro.core.merge_kfk import keys_all_present, merge_key_fk
from repro.core.simple_ops import (
    add_column,
    copy_table,
    drop_column,
    partition_table,
    union_tables,
)
from repro.core.status import EvolutionStatus
from repro.delta import CompactionPolicy, MutableTable
from repro.errors import EvolutionError
from repro.fd import is_key_in_data
from repro.smo.history import EvolutionHistory
from repro.smo.ops import (
    AddColumn,
    CopyTable,
    CreateTable,
    DecomposeTable,
    DropColumn,
    DropTable,
    MergeTables,
    PartitionTable,
    RenameColumn,
    RenameTable,
    SchemaModificationOperator,
    UnionTables,
)
from repro.smo.parser import parse_script, parse_smo
from repro.smo.plan import EvolutionPlan
from repro.storage.catalog import Catalog
from repro.storage.table import Table


class EvolutionEngine:
    """Applies SMOs to a catalog at the data level (the CODS way)."""

    def __init__(
        self,
        catalog: Catalog | None = None,
        verify_with_data: bool = True,
        extra_fds=(),
    ):
        self.catalog = catalog if catalog is not None else Catalog()
        self.history = EvolutionHistory()
        self.verify_with_data = verify_with_data
        self.extra_fds = tuple(extra_fds)
        self._listeners: list = []
        self._rename_listeners: list = []
        self._drop_listeners: list = []
        self._mutables: dict[str, MutableTable] = {}
        # Guards handle *creation* only (two threads first-touching the
        # same table must share one MutableTable, else they would hold
        # different writer locks); established handles are read
        # lock-free — dict get is atomic.
        self._handles_lock = threading.Lock()
        self._wal = None

    # -- catalog passthroughs -------------------------------------------

    def load_table(self, table: Table) -> None:
        """Register a loaded table (the demo's "load data" action)."""
        self.catalog.create(table, f"LOAD {table.name}")

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def subscribe(self, listener) -> None:
        """Attach a status listener applied to every future operation."""
        self._listeners.append(listener)

    def subscribe_renames(self, listener) -> None:
        """Attach a ``listener(old, new)`` invoked after every table
        rename, whichever entry point requested it.  Adapters holding
        per-table state keyed by name (pinned snapshot scopes) use this
        to follow metadata-only renames.

        Bound methods are held weakly so short-lived subscribers (e.g.
        the per-transaction scoped adapters of :mod:`repro.db`) are
        reclaimed with their owner instead of accumulating on the
        engine.  Plain functions and lambdas are held *strongly* (a
        weak reference to an inline lambda would die immediately), so
        long-lived engines should subscribe bound methods, not
        closures, for anything created per-operation."""
        self._subscribe_weak(self._rename_listeners, listener)

    def subscribe_drops(self, listener) -> None:
        """Attach a ``listener(name)`` invoked whenever a table is
        removed from the catalog — by SQL DROP TABLE or by an SMO that
        consumes its input (DROP, DECOMPOSE, MERGE, UNION, PARTITION).
        Adapters use it to invalidate per-table state keyed by name
        (pinned snapshot scopes), so a name reused after a drop can
        never serve the dropped rows to a stale scope.  Same weak-
        reference semantics as :meth:`subscribe_renames`."""
        self._subscribe_weak(self._drop_listeners, listener)

    @staticmethod
    def _subscribe_weak(listeners: list, listener) -> None:
        try:
            reference = weakref.WeakMethod(listener)
        except TypeError:
            reference = (lambda listener=listener: listener)
        # Prune dead references here too: notifications may be rare
        # while subscribers (per-transaction scoped adapters) come and
        # go, so the list must not grow with subscriber churn.
        listeners[:] = [
            existing for existing in listeners if existing() is not None
        ]
        listeners.append(reference)

    @staticmethod
    def _notify_weak(listeners: list, *args) -> None:
        alive = []
        for reference in listeners:
            listener = reference()
            if listener is not None:
                listener(*args)
                alive.append(reference)
        listeners[:] = alive

    def _notify_rename(self, old: str, new: str) -> None:
        self._notify_weak(self._rename_listeners, old, new)

    def _notify_drop(self, name: str) -> None:
        self._notify_weak(self._drop_listeners, name)

    # -- mutable tables (the write path) --------------------------------

    def attach_wal(self, wal) -> None:
        """Route every mutable table's redo records into ``wal`` (a
        :class:`repro.wal.WriteAheadLog`) — existing handles and any
        created later.  Renames rewire the per-table facade in place."""
        from repro.wal.log import TableWal

        self._wal = wal
        for name, mutable in self._mutables.items():
            mutable.attach_wal(TableWal(wal, name))

    def mutable(
        self, name: str, policy: CompactionPolicy | None = None
    ) -> MutableTable:
        """The delta-backed DML handle for table ``name``.

        One handle per table; compactions republish the table into the
        catalog.  SMOs that consume the table invalidate the handle
        (after auto-flushing any pending writes).
        """
        existing = self._mutables.get(name)
        if existing is not None:
            if policy is not None:
                existing.policy = policy
            return existing
        with self._handles_lock:
            existing = self._mutables.get(name)  # lost the create race?
            if existing is not None:
                if policy is not None:
                    existing.policy = policy
                return existing
            mutable = MutableTable(self.catalog.table(name), policy)
            mutable.on_compact = lambda table, reason: self.catalog.put(
                table, f"COMPACT {table.name}: {reason}"
            )
            if self._wal is not None:
                from repro.wal.log import TableWal

                mutable.attach_wal(TableWal(self._wal, name))
            self._mutables[name] = mutable
            return mutable

    def delta_handle(self, name: str) -> MutableTable | None:
        """The table's registered mutable handle, if any — a read-only
        lookup that never creates one."""
        return self._mutables.get(name)

    def pending_delta(self, name: str) -> MutableTable | None:
        """The table's mutable handle if it has unflushed writes."""
        mutable = self._mutables.get(name)
        if mutable is not None and mutable.has_pending_changes:
            return mutable
        return None

    def delta_stats(self) -> list:
        """Delta statistics of every registered mutable table."""
        return [
            self._mutables[name].delta_stats()
            for name in sorted(self._mutables)
        ]

    def flush_delta(self, name: str) -> int:
        """Fold table ``name``'s pending delta into the catalog and
        invalidate its handle; returns the number of buffered rows
        folded.  No-op (0) when the table has no delta."""
        mutable = self._mutables.pop(name, None)
        if mutable is None:
            return 0
        flushed = 0
        if mutable.has_pending_changes:
            flushed = mutable.delta_stats().delta_live
            mutable.compact("flush before evolve")
        mutable.invalidate()
        return flushed

    def discard_delta(self, name: str) -> bool:
        """Drop table ``name``'s write buffer unflushed and invalidate
        its handle (for DROP TABLE: compacting first would be wasted
        work).  True if a handle existed."""
        mutable = self._mutables.pop(name, None)
        if mutable is None:
            return False
        mutable.invalidate()
        return True

    def drop_table(self, name: str, operation: str | None = None) -> None:
        """DROP TABLE at the data level: discard the write buffer
        unflushed, remove the catalog entry, and notify drop listeners
        so every adapter over this engine invalidates its pinned scopes
        on the name.  Both entry points — SQL ``DROP TABLE`` and the
        SMO operator — route here, so the invalidation semantics cannot
        diverge."""
        self.discard_delta(name)
        self.catalog.drop(name, operation or f"DROP TABLE {name}")
        self._notify_drop(name)

    def rename_table_metadata(
        self, old: str, new: str, operation: str | None = None
    ) -> None:
        """RENAME TABLE as a pure metadata operation: the catalog entry
        is re-keyed and any pending delta is rewired in place — O(1),
        never a compaction (see ``docs/ARCHITECTURE.md``, "Renames are
        metadata-only")."""
        self.catalog.rename(
            old, new, operation or f"RENAME TABLE {old} TO {new}"
        )
        mutable = self._mutables.pop(old, None)
        if mutable is not None:
            mutable.rewire_metadata(self.catalog.table(new))
            if mutable._wal is not None:
                mutable._wal.rename(new)
            self._mutables[new] = mutable
        self._notify_rename(old, new)

    def rename_column_metadata(
        self, table: str, old: str, new: str, operation: str | None = None
    ) -> None:
        """RENAME COLUMN as a pure metadata operation, delta-preserving
        like :meth:`rename_table_metadata`."""
        renamed = self.catalog.table(table).with_renamed_column(old, new)
        self.catalog.put(
            renamed, operation or f"RENAME COLUMN {old} TO {new}"
        )
        mutable = self._mutables.get(table)
        if mutable is not None:
            mutable.rewire_metadata(renamed, {old: new})

    def _flush_before_evolve(
        self, op: SchemaModificationOperator, status: EvolutionStatus
    ) -> None:
        """SMOs evolve the compressed main store, so any table they read
        must have its delta folded in first (recorded in the status).

        Renames are exempt: they are metadata-only, so the delta is
        rewired in place by ``_dispatch`` instead of being compacted.
        Pinned MVCC snapshots never block the flush — they keep reading
        the generation they pinned (and are noted in the status).
        """
        if isinstance(op, (RenameTable, RenameColumn)):
            return
        for attr in ("table", "left", "right"):
            name = getattr(op, attr, None)
            if not isinstance(name, str) or name not in self._mutables:
                continue
            mutable = self._mutables[name]
            stats = mutable.delta_stats()
            if not mutable.has_pending_changes or isinstance(op, DropTable):
                # Nothing to fold — or the table is about to go away, in
                # which case compacting first would be wasted work.
                self.discard_delta(name)
                continue
            pinned = (
                f", {stats.open_snapshots} pinned snapshot(s) retained"
                if stats.open_snapshots
                else ""
            )
            with status.step(
                "delta flush",
                f"{name}: +{stats.delta_live} buffered, "
                f"-{stats.deleted_main} deleted{pinned}",
            ):
                self.flush_delta(name)
            status.flushed_delta(stats.delta_live + stats.deleted_main)

    # -- execution ---------------------------------------------------------

    def apply(self, op: SchemaModificationOperator) -> EvolutionStatus:
        """Validate and execute one operator; returns its status log."""
        status = EvolutionStatus()
        for listener in self._listeners:
            status.subscribe(listener)
        # Flush first: AddColumn-with-values validates against the row
        # count the operator will actually see, which is the post-flush
        # one.  A flush triggered by an operator that then fails
        # validation is harmless — it preserves the merged content and
        # invalidates the handle, so no write is ever lost.
        self._flush_before_evolve(op, status)
        op.validate(self.catalog)
        with status.step("execute", op.describe()):
            self._dispatch(op, status)
        self.history.record(op, self.catalog.table_names())
        return status

    def apply_sql_like(self, text: str) -> EvolutionStatus:
        """Parse and apply one textual SMO statement."""
        return self.apply(parse_smo(text))

    def apply_script(self, text: str) -> list[EvolutionStatus]:
        """Parse and apply a multi-statement SMO script."""
        return [self.apply(op) for op in parse_script(text)]

    def apply_plan(self, plan: EvolutionPlan) -> list[EvolutionStatus]:
        """Validate a whole plan first, then execute it."""
        plan.validate(self.catalog)
        return [self.apply(op) for op in plan]

    # -- dispatch -------------------------------------------------------------

    def _dispatch(self, op: SchemaModificationOperator,
                  status: EvolutionStatus) -> None:
        if isinstance(op, DecomposeTable):
            self._decompose(op, status)
        elif isinstance(op, MergeTables):
            self._merge(op, status)
        elif isinstance(op, CreateTable):
            self.catalog.create(Table.empty(op.schema), op.describe())
        elif isinstance(op, DropTable):
            self.drop_table(op.table, op.describe())
        elif isinstance(op, RenameTable):
            self.rename_table_metadata(op.table, op.new_name, op.describe())
        elif isinstance(op, CopyTable):
            table = copy_table(self.catalog.table(op.table), op.new_name, status)
            self.catalog.create(table, op.describe())
        elif isinstance(op, UnionTables):
            left = self.catalog.drop(op.left, op.describe())
            right = self.catalog.drop(op.right, op.describe())
            self._notify_drop(op.left)
            self._notify_drop(op.right)
            self.catalog.put(union_tables(left, right, op, status), op.describe())
        elif isinstance(op, PartitionTable):
            table = self.catalog.drop(op.table, op.describe())
            self._notify_drop(op.table)
            true_table, false_table = partition_table(table, op, status)
            self.catalog.put(true_table, op.describe())
            self.catalog.put(false_table, op.describe())
        elif isinstance(op, AddColumn):
            table = self.catalog.table(op.table)
            self.catalog.put(add_column(table, op, status), op.describe())
        elif isinstance(op, DropColumn):
            table = self.catalog.table(op.table)
            self.catalog.put(
                drop_column(table, op.column, status), op.describe()
            )
        elif isinstance(op, RenameColumn):
            with status.step(
                "metadata",
                f"renaming column {op.column!r} to {op.new_name!r}",
            ):
                self.rename_column_metadata(
                    op.table, op.column, op.new_name, op.describe()
                )
        else:  # pragma: no cover - future operators
            raise EvolutionError(f"unsupported operator {op!r}")

    def _decompose(self, op: DecomposeTable, status: EvolutionStatus) -> None:
        table = self.catalog.table(op.table)
        left, right = decompose(
            table, op, status,
            extra_fds=self.extra_fds,
            verify_with_data=self.verify_with_data,
        )
        self.catalog.drop(op.table, op.describe())
        self._notify_drop(op.table)
        self.catalog.put(left, op.describe())
        self.catalog.put(right, op.describe())

    def choose_merge_strategy(self, op: MergeTables) -> str:
        """Pick the mergence algorithm (Section 2.5's two scenarios).

        Returns ``"kfk-right"`` (join attrs key the right table; left is
        reused), ``"kfk-left"`` (mirror), or ``"general"``.
        """
        left = self.catalog.table(op.left)
        right = self.catalog.table(op.right)
        join = op.effective_join_attrs(self.catalog)

        def keyed_by(table: Table) -> bool:
            if table.schema.is_key(join):
                return True
            return self.verify_with_data and is_key_in_data(table, join)

        def integrity(source: Table, target: Table) -> bool:
            if len(join) != 1:
                return True  # checked during execution; falls back on error
            return keys_all_present(
                source.column(join[0]), target.column(join[0])
            )

        if keyed_by(right) and integrity(left, right):
            return "kfk-right"
        if keyed_by(left) and integrity(right, left):
            return "kfk-left"
        return "general"

    def _merge(self, op: MergeTables, status: EvolutionStatus) -> None:
        left = self.catalog.table(op.left)
        right = self.catalog.table(op.right)
        join = op.effective_join_attrs(self.catalog)
        strategy = self.choose_merge_strategy(op)
        status.emit("merge strategy", strategy)
        result = None
        if strategy in ("kfk-right", "kfk-left"):
            source, target = (
                (left, right) if strategy == "kfk-right" else (right, left)
            )
            try:
                result = merge_key_fk(source, target, op, join, status)
            except EvolutionError as exc:
                # Referential integrity does not hold (only detectable
                # during execution for composite keys): the output is not
                # simply the source's rows, so use the general algorithm.
                status.emit("merge strategy", f"fallback to general: {exc}")
        if result is None:
            result = merge_general(left, right, op, join, status)
        # Canonical column order: left's columns, then right's non-join
        # columns (the kfk-left path produces the mirror order).
        expected = left.schema.column_names + tuple(
            n for n in right.schema.column_names if n not in join
        )
        if result.schema.column_names != expected:
            pk = (
                result.schema.primary_key
                if set(result.schema.primary_key) <= set(expected)
                else ()
            )
            result = result.project(expected, op.out_name, pk)
        self.catalog.drop(op.left, op.describe())
        self.catalog.drop(op.right, op.describe())
        self._notify_drop(op.left)
        self._notify_drop(op.right)
        self.catalog.put(result, op.describe())
