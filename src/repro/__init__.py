"""repro — a reproduction of *CODS: Evolving Data Efficiently and
Scalably in Column Oriented Databases* (Liu, Natarajan, He, Hsiao, Chen;
PVLDB 3(2), 2010).

The package implements the paper's platform end to end:

* :mod:`repro.bitmap` — WAH-compressed bitmaps (the storage encoding);
* :mod:`repro.storage` — a bitmap-encoded column store with catalog,
  CSV and binary persistence;
* :mod:`repro.fd` — functional-dependency theory (lossless-join checks);
* :mod:`repro.smo` — the 11 Schema Modification Operators of Table 1,
  with a textual language, plans and history;
* :mod:`repro.core` — the CODS contribution: data-level data evolution
  (distinction, bitmap filtering, key–foreign-key and general two-pass
  mergence) on compressed columns;
* :mod:`repro.delta` — the write path: per-table delta stores with
  ``insert``/``update``/``delete``, query-time merged reads, and
  threshold-driven compaction back into fresh WAH columns (SMOs applied
  to a table with pending writes auto-flush its delta first);
* :mod:`repro.rowstore` / :mod:`repro.sql` — a row-store engine and a
  SQL subset powering the query-level baselines;
* :mod:`repro.baselines` — the comparators of Figure 3 (commercial-style
  row store, SQLite, column store at query level);
* :mod:`repro.workload` / :mod:`repro.bench` — evaluation workloads and
  the harness regenerating the paper's figures;
* :mod:`repro.demo` — the demonstration platform as a CLI.

Quickstart::

    from repro import EvolutionEngine, table_from_python, DataType

    engine = EvolutionEngine()
    engine.load_table(table_from_python("R", {
        "Employee": (DataType.STRING, ["Jones", "Jones", "Ellis"]),
        "Skill":    (DataType.STRING, ["Typing", "Whittling", "Alchemy"]),
        "Address":  (DataType.STRING, ["425 Grant", "425 Grant", "747 Ind"]),
    }))
    engine.apply_sql_like(
        "DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)"
    )
    print(engine.table("T").to_rows())

Write-path quickstart — DML lands in a delta store, never in the
compressed columns, until compaction folds it back::

    mutable = engine.mutable("S")             # delta-backed DML handle
    mutable.insert(("Harrison", "Juggling"))
    mutable.update({"Skill": "Typing"}, None) # None = all rows
    print(mutable.to_rows())                  # merged main + delta
    mutable.compact()                         # fresh all-WAH table
"""

from repro.baselines import (
    CodsSystem,
    EvolutionSystem,
    QueryLevelEvolution,
    SqliteEvolution,
    make_system,
)
from repro.bitmap import PlainBitmap, RLEVector, WAHBitmap
from repro.core import EvolutionEngine, EvolutionStatus
from repro.delta import (
    CompactionPolicy,
    DeltaStats,
    DeltaStore,
    MutableTable,
)
from repro.errors import (
    BitmapError,
    CodsError,
    EvolutionError,
    LosslessJoinError,
    SchemaError,
    SmoValidationError,
    SqlError,
    StorageError,
)
from repro.fd import FunctionalDependency
from repro.smo import (
    AddColumn,
    CopyTable,
    CreateTable,
    DecomposeTable,
    DropColumn,
    DropTable,
    EvolutionPlan,
    MergeTables,
    PartitionTable,
    RenameColumn,
    RenameTable,
    UnionTables,
    parse_script,
    parse_smo,
)
from repro.sql import MutableColumnAdapter, SqlExecutor
from repro.storage import (
    Catalog,
    ColumnSchema,
    DataType,
    Table,
    TableSchema,
    load_csv,
    load_table,
    save_csv,
    save_table,
    table_from_python,
)
from repro.workload import (
    EmployeeWorkload,
    GeneralMergeWorkload,
    MixedReadWriteWorkload,
    SalesStarWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "AddColumn",
    "BitmapError",
    "Catalog",
    "CodsError",
    "CodsSystem",
    "ColumnSchema",
    "CompactionPolicy",
    "CopyTable",
    "CreateTable",
    "DataType",
    "DecomposeTable",
    "DeltaStats",
    "DeltaStore",
    "DropColumn",
    "DropTable",
    "EmployeeWorkload",
    "EvolutionEngine",
    "EvolutionError",
    "EvolutionPlan",
    "EvolutionStatus",
    "EvolutionSystem",
    "FunctionalDependency",
    "GeneralMergeWorkload",
    "LosslessJoinError",
    "MergeTables",
    "MixedReadWriteWorkload",
    "MutableColumnAdapter",
    "MutableTable",
    "PartitionTable",
    "PlainBitmap",
    "QueryLevelEvolution",
    "RLEVector",
    "RenameColumn",
    "RenameTable",
    "SalesStarWorkload",
    "SchemaError",
    "SmoValidationError",
    "SqlError",
    "SqlExecutor",
    "SqliteEvolution",
    "StorageError",
    "Table",
    "TableSchema",
    "UnionTables",
    "WAHBitmap",
    "load_csv",
    "load_table",
    "make_system",
    "parse_script",
    "parse_smo",
    "save_csv",
    "save_table",
    "table_from_python",
]
