"""repro — a reproduction of *CODS: Evolving Data Efficiently and
Scalably in Column Oriented Databases* (Liu, Natarajan, He, Hsiao, Chen;
PVLDB 3(2), 2010).

The package implements the paper's platform end to end:

* :mod:`repro.bitmap` — WAH-compressed bitmaps (the storage encoding);
* :mod:`repro.storage` — a bitmap-encoded column store with catalog,
  CSV and binary persistence;
* :mod:`repro.fd` — functional-dependency theory (lossless-join checks);
* :mod:`repro.smo` — the 11 Schema Modification Operators of Table 1,
  with a textual language, plans and history;
* :mod:`repro.core` — the CODS contribution: data-level data evolution
  (distinction, bitmap filtering, key–foreign-key and general two-pass
  mergence) on compressed columns;
* :mod:`repro.delta` — the write path: per-table delta stores with
  ``insert``/``update``/``delete``, query-time merged reads, and
  threshold-driven compaction back into fresh WAH columns (SMOs applied
  to a table with pending writes auto-flush its delta first);
* :mod:`repro.rowstore` / :mod:`repro.sql` — a row-store engine and a
  SQL subset powering the query-level baselines;
* :mod:`repro.baselines` — the comparators of Figure 3 (commercial-style
  row store, SQLite, column store at query level);
* :mod:`repro.workload` / :mod:`repro.bench` — evaluation workloads and
  the harness regenerating the paper's figures;
* :mod:`repro.demo` — the demonstration platform as a CLI.

The single documented entry point is :class:`repro.db.Database` — one
``execute()`` for SQL *and* SMO text, whole-catalog transactions, and
catalog-directory persistence (``docs/migration.md`` maps the older
per-layer entry points onto it)::

    from repro.db import Database

    db = Database()                       # in-memory, mutable backend
    db.execute("CREATE TABLE R (Employee STRING, Skill STRING, "
               "Address STRING)")
    db.executemany(
        "INSERT INTO R VALUES (?, ?, ?)",
        [("Jones", "Typing", "425 Grant"),
         ("Jones", "Whittling", "425 Grant"),
         ("Ellis", "Alchemy", "747 Ind")],
    )
    db.execute(
        "DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)"
    )
    with db.transaction(read_only=True) as tx:
        print(tx.execute("SELECT * FROM T"))

The per-layer classes remain importable for library use (the façade is
built on them)::

    engine = db.engine                        # the EvolutionEngine
    mutable = engine.mutable("S")             # delta-backed DML handle
    mutable.insert(("Harrison", "Juggling"))
    mutable.compact()                         # fresh all-WAH table
"""

from repro.baselines import (
    CodsSystem,
    EvolutionSystem,
    QueryLevelEvolution,
    SqliteEvolution,
    make_system,
)
from repro.bitmap import PlainBitmap, RLEVector, WAHBitmap
from repro.core import EvolutionEngine, EvolutionStatus
from repro.db import Database, Session, Transaction, connect
from repro.delta import (
    CompactionPolicy,
    DeltaStats,
    DeltaStore,
    MutableTable,
)
from repro.errors import (
    BitmapError,
    CapabilityError,
    CodsError,
    EvolutionError,
    LosslessJoinError,
    SchemaError,
    SmoValidationError,
    SqlError,
    StorageError,
    TransactionError,
)
from repro.fd import FunctionalDependency
from repro.smo import (
    AddColumn,
    CopyTable,
    CreateTable,
    DecomposeTable,
    DropColumn,
    DropTable,
    EvolutionPlan,
    MergeTables,
    PartitionTable,
    RenameColumn,
    RenameTable,
    UnionTables,
    parse_script,
    parse_smo,
)
from repro.sql import MutableColumnAdapter, SqlExecutor
from repro.storage import (
    Catalog,
    ColumnSchema,
    DataType,
    Table,
    TableSchema,
    load_csv,
    load_table,
    save_csv,
    save_table,
    table_from_python,
)
from repro.workload import (
    EmployeeWorkload,
    GeneralMergeWorkload,
    MixedReadWriteWorkload,
    SalesStarWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "AddColumn",
    "BitmapError",
    "CapabilityError",
    "Catalog",
    "CodsError",
    "CodsSystem",
    "ColumnSchema",
    "CompactionPolicy",
    "CopyTable",
    "CreateTable",
    "DataType",
    "Database",
    "DecomposeTable",
    "DeltaStats",
    "DeltaStore",
    "DropColumn",
    "DropTable",
    "EmployeeWorkload",
    "EvolutionEngine",
    "EvolutionError",
    "EvolutionPlan",
    "EvolutionStatus",
    "EvolutionSystem",
    "FunctionalDependency",
    "GeneralMergeWorkload",
    "LosslessJoinError",
    "MergeTables",
    "MixedReadWriteWorkload",
    "MutableColumnAdapter",
    "MutableTable",
    "PartitionTable",
    "PlainBitmap",
    "QueryLevelEvolution",
    "RLEVector",
    "RenameColumn",
    "RenameTable",
    "SalesStarWorkload",
    "SchemaError",
    "Session",
    "SmoValidationError",
    "SqlError",
    "SqlExecutor",
    "SqliteEvolution",
    "StorageError",
    "Table",
    "TableSchema",
    "Transaction",
    "TransactionError",
    "UnionTables",
    "WAHBitmap",
    "connect",
    "load_csv",
    "load_table",
    "make_system",
    "parse_script",
    "parse_smo",
    "save_csv",
    "save_table",
    "table_from_python",
]
