"""The row-store engine: a minimal row-oriented RDBMS kernel.

Provides the relational operations the query-level evolution driver
needs — create/drop/rename, scans with predicates, DISTINCT projection,
hash equi-join, index maintenance — all tuple-at-a-time, as a row store
does them.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.rowstore.heap import HeapTable
from repro.storage.schema import TableSchema


class RowEngine:
    """Catalog of heap tables with row-at-a-time operators."""

    def __init__(self):
        self.tables: dict[str, HeapTable] = {}

    # -- catalog -----------------------------------------------------------

    def create_table(self, schema: TableSchema) -> HeapTable:
        if schema.name in self.tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        table = HeapTable(schema)
        self.tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise SchemaError(f"no table named {name!r}")
        del self.tables[name]

    def rename_table(self, old: str, new: str) -> None:
        if new in self.tables:
            raise SchemaError(f"table {new!r} already exists")
        table = self.table(old)
        del self.tables[old]
        table.schema = table.schema.renamed(new)
        self.tables[new] = table

    def table(self, name: str) -> HeapTable:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no table named {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self.tables)

    # -- operators (tuple-at-a-time) ------------------------------------------

    def scan(self, name: str, predicate=None):
        """Yield rows of ``name``; ``predicate`` is a row-dict callable."""
        table = self.table(name)
        names = table.schema.column_names
        if predicate is None:
            yield from table.scan()
            return
        for row in table.scan():
            values = dict(zip(names, row))
            if predicate(values.__getitem__):
                yield row

    def project(self, name: str, attrs, distinct: bool = False,
                predicate=None):
        """Projection with optional DISTINCT (hash-based dedup)."""
        table = self.table(name)
        positions = [table.column_index(a) for a in attrs]
        seen = set()
        for row in self.scan(name, predicate):
            projected = tuple(row[p] for p in positions)
            if distinct:
                if projected in seen:
                    continue
                seen.add(projected)
            yield projected

    def hash_join(self, left_name: str, right_name: str, join_attrs,
                  out_attrs):
        """Hash equi-join, yielding ``out_attrs`` tuples.

        Builds the hash table on the smaller input; output attributes are
        resolved against the left schema first, then the right.
        """
        left = self.table(left_name)
        right = self.table(right_name)
        join_attrs = list(join_attrs)
        left_positions = [left.column_index(a) for a in join_attrs]
        right_positions = [right.column_index(a) for a in join_attrs]

        # Resolve each output attribute to (side, position).
        resolution = []
        for attr in out_attrs:
            if left.schema.has_column(attr):
                resolution.append(("L", left.column_index(attr)))
            elif right.schema.has_column(attr):
                resolution.append(("R", right.column_index(attr)))
            else:
                raise SchemaError(f"unknown join output column {attr!r}")

        build_on_right = right.nrows <= left.nrows
        if build_on_right:
            build, probe = right, left
            build_positions, probe_positions = right_positions, left_positions
        else:
            build, probe = left, right
            build_positions, probe_positions = left_positions, right_positions

        buckets: dict = {}
        for row in build.scan():
            key = tuple(row[p] for p in build_positions)
            buckets.setdefault(key, []).append(row)

        for probe_row in probe.scan():
            key = tuple(probe_row[p] for p in probe_positions)
            for build_row in buckets.get(key, ()):
                if build_on_right:
                    left_row, right_row = probe_row, build_row
                else:
                    left_row, right_row = build_row, probe_row
                yield tuple(
                    left_row[p] if side == "L" else right_row[p]
                    for side, p in resolution
                )

    # -- loading -------------------------------------------------------------

    def insert_rows(self, name: str, rows) -> int:
        return self.table(name).insert_many(rows)

    def create_index(self, table_name: str, column_name: str) -> None:
        self.table(table_name).create_index(column_name)
