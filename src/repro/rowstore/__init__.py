"""Row-oriented storage substrate for the query-level baselines."""

from repro.rowstore.btree import BPlusTree
from repro.rowstore.engine import RowEngine
from repro.rowstore.heap import HeapTable

__all__ = ["BPlusTree", "HeapTable", "RowEngine"]
