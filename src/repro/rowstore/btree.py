"""A B+-tree for row-store secondary indexes.

The "C+I" series of the paper's Figure 3 is a commercial row store with
indexes: after query-level evolution loads the result tables, indexes
must be rebuilt from scratch — a cost CODS avoids entirely.  This tree
is that index: keys map to lists of row ids, leaves are chained for
range scans, and :meth:`bulk_load` builds a packed tree from sorted
pairs (what a CREATE INDEX does).
"""

from __future__ import annotations

from repro.errors import StorageError

DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: list = []
        self.children: list = []   # internal nodes
        self.values: list = []     # leaves: list of row-id lists
        self.next_leaf: "_Node | None" = None


class BPlusTree:
    """Maps orderable keys to lists of integer row ids."""

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 4:
            raise StorageError("B+-tree order must be at least 4")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0  # number of (key, rowid) pairs

    def __len__(self) -> int:
        return self._size

    # -- search ---------------------------------------------------------

    def _find_leaf(self, key) -> _Node:
        node = self._root
        while not node.is_leaf:
            index = self._child_index(node, key)
            node = node.children[index]
        return node

    @staticmethod
    def _child_index(node: _Node, key) -> int:
        lo, hi = 0, len(node.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if key < node.keys[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @staticmethod
    def _leaf_index(node: _Node, key) -> int:
        lo, hi = 0, len(node.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if node.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def search(self, key) -> list[int]:
        """Row ids stored under ``key`` (empty list if absent)."""
        leaf = self._find_leaf(key)
        index = self._leaf_index(leaf, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def range_search(self, low=None, high=None) -> list[int]:
        """Row ids with ``low <= key <= high`` (either bound optional)."""
        result: list[int] = []
        if low is None:
            node = self._root
            while not node.is_leaf:
                node = node.children[0]
            index = 0
        else:
            node = self._find_leaf(low)
            index = self._leaf_index(node, low)
        while node is not None:
            while index < len(node.keys):
                key = node.keys[index]
                if high is not None and high < key:
                    return result
                result.extend(node.values[index])
                index += 1
            node = node.next_leaf
            index = 0
        return result

    def items(self):
        """Yield ``(key, row_ids)`` in key order."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next_leaf

    def keys(self) -> list:
        return [key for key, _ in self.items()]

    @property
    def height(self) -> int:
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    # -- insertion ---------------------------------------------------------

    def insert(self, key, row_id: int) -> None:
        """Insert one (key, row id) pair."""
        split = self._insert_into(self._root, key, row_id)
        if split is not None:
            middle_key, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [middle_key]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert_into(self, node: _Node, key, row_id: int):
        if node.is_leaf:
            index = self._leaf_index(node, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(row_id)
                return None
            node.keys.insert(index, key)
            node.values.insert(index, [row_id])
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        index = self._child_index(node, key)
        split = self._insert_into(node.children[index], key, row_id)
        if split is None:
            return None
        middle_key, right = split
        node.keys.insert(index, middle_key)
        node.children.insert(index + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        middle = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        middle = len(node.keys) // 2
        middle_key = node.keys[middle]
        right = _Node(is_leaf=False)
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return middle_key, right

    # -- bulk load ------------------------------------------------------------

    @classmethod
    def bulk_load(cls, pairs, order: int = DEFAULT_ORDER) -> "BPlusTree":
        """Build a packed tree from (key, row_id) pairs (any order).

        This is what CREATE INDEX does after a query-level evolution:
        sort all pairs, pack leaves, then build internal levels.
        """
        tree = cls(order)
        pairs = sorted(pairs, key=lambda kv: kv[0])
        if not pairs:
            return tree

        # Group duplicate keys.
        keys: list = []
        values: list = []
        for key, row_id in pairs:
            if keys and keys[-1] == key:
                values[-1].append(row_id)
            else:
                keys.append(key)
                values.append([row_id])
        tree._size = len(pairs)

        # Pack leaves at ~order fill.
        fill = max(order // 2, 2)
        leaves: list[_Node] = []
        for start in range(0, len(keys), fill):
            leaf = _Node(is_leaf=True)
            leaf.keys = keys[start : start + fill]
            leaf.values = values[start : start + fill]
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)

        # Build internal levels bottom-up.
        level: list[_Node] = leaves
        while len(level) > 1:
            parents: list[_Node] = []
            for start in range(0, len(level), fill):
                group = level[start : start + fill]
                parent = _Node(is_leaf=False)
                parent.children = group
                parent.keys = [
                    cls._leftmost_key(child) for child in group[1:]
                ]
                parents.append(parent)
            level = parents
        tree._root = level[0]
        return tree

    @staticmethod
    def _leftmost_key(node: _Node):
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]
