"""Row-oriented heap tables.

The "commercial RDBMS" baseline stores tuples row by row: every access
touches whole rows, which is precisely the cost model the paper argues
column stores escape during data evolution.
"""

from __future__ import annotations

from repro.errors import SchemaError, StorageError
from repro.rowstore.btree import BPlusTree
from repro.storage.schema import TableSchema
from repro.storage.types import coerce


class HeapTable:
    """A schema plus a list of row tuples plus optional indexes."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.rows: list[tuple] = []
        self.indexes: dict[str, BPlusTree] = {}

    @property
    def nrows(self) -> int:
        return len(self.rows)

    def column_index(self, name: str) -> int:
        return self.schema.index_of(name)

    # -- mutation -----------------------------------------------------------

    def insert(self, row) -> None:
        """Insert one row (coerced to schema types), maintaining indexes."""
        if len(row) != len(self.schema.columns):
            raise StorageError(
                f"row arity {len(row)} != {len(self.schema.columns)} for "
                f"table {self.schema.name!r}"
            )
        coerced = tuple(
            coerce(value, column.dtype)
            for value, column in zip(row, self.schema.columns)
        )
        row_id = len(self.rows)
        self.rows.append(coerced)
        for column_name, tree in self.indexes.items():
            tree.insert(coerced[self.column_index(column_name)], row_id)

    def insert_many(self, rows) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    # -- indexes ----------------------------------------------------------

    def create_index(self, column_name: str) -> BPlusTree:
        """Build a B+-tree index on one column (bulk load)."""
        if not self.schema.has_column(column_name):
            raise SchemaError(
                f"no column {column_name!r} in table {self.schema.name!r}"
            )
        position = self.column_index(column_name)
        tree = BPlusTree.bulk_load(
            (row[position], row_id) for row_id, row in enumerate(self.rows)
        )
        self.indexes[column_name] = tree
        return tree

    def drop_index(self, column_name: str) -> None:
        self.indexes.pop(column_name, None)

    # -- access ----------------------------------------------------------

    def scan(self):
        """Full scan: yields every row tuple."""
        return iter(self.rows)

    def lookup(self, column_name: str, value) -> list[tuple]:
        """Index lookup if available, else a filtered scan."""
        position = self.column_index(column_name)
        tree = self.indexes.get(column_name)
        if tree is not None:
            return [self.rows[row_id] for row_id in tree.search(value)]
        return [row for row in self.rows if row[position] == value]

    def __repr__(self) -> str:
        return (
            f"HeapTable({self.schema.name!r}, rows={len(self.rows)}, "
            f"indexes={sorted(self.indexes)})"
        )
