"""Interactive demo mirroring the paper's Figure 4 workflow.

The original demonstration is a GUI with buttons for *create/drop
table*, *load data*, *display table*, adding schema modification
operators, *execution*, and a live "Data Evolution Status" pane.  This
CLI provides the same workflow (plus a scripted mode for automation):

    $ cods-demo                 # interactive session
    $ cods-demo --example       # run the built-in Figure 1 walkthrough
    $ cods-demo --script f.smo  # execute an SMO script with status output
"""

from __future__ import annotations

import argparse
import sys

from repro.db import Database
from repro.delta import CompactionPolicy
from repro.errors import CodsError
from repro.smo.parser import TokenStream, literal_value, parse_predicate, parse_smo
from repro.storage.csvio import load_csv
from repro.storage.table import Table, table_from_python
from repro.storage.types import DataType

_HELP = """\
Commands (mirroring the Figure 4 buttons):
  create <SMO>        e.g. create CREATE TABLE R (A INT, B STRING)
  load <csv> [name]   load a CSV file into a table
  display <table>     show a table's rows (first 20)
  tables              list tables (the schema pane)
  add <SMO>           queue a schema modification operator
  queue               show queued operators
  execute             run the queued operators (with live status)
  history             show the evolution history
  sql <statement>     run one SQL or SMO statement via the repro.db facade
                      (SELECTs execute on the vectorized batch pipeline)
  insert <t> (v, ...) [, (v, ...)]  buffer rows in the table's delta
  delete <t> [WHERE <predicate>]    delete rows (delta-masked)
  compact <t>         fold the delta into fresh WAH columns
  deltastat [t]       show main/delta statistics
  explain <SELECT>    show the query plan (no execution)
  stats [fmt]         dump the metrics registry (fmt: json | prometheus)
  example             load the paper's Figure 1 table R
  help                this text
  quit                exit\
"""


def figure1_table() -> Table:
    """The exact 7-row table R of the paper's Figure 1."""
    return table_from_python(
        "R",
        {
            "Employee": (
                DataType.STRING,
                ["Jones", "Jones", "Roberts", "Ellis", "Jones", "Ellis",
                 "Harrison"],
            ),
            "Skill": (
                DataType.STRING,
                ["Typing", "Shorthand", "Light Cleaning", "Alchemy",
                 "Whittling", "Juggling", "Light Cleaning"],
            ),
            "Address": (
                DataType.STRING,
                ["425 Grant Ave", "425 Grant Ave", "747 Industrial Way",
                 "747 Industrial Way", "425 Grant Ave",
                 "747 Industrial Way", "425 Grant Ave"],
            ),
        },
    )


class DemoSession:
    """One interactive session: a database, a queue, and an output
    stream.  Built on the :class:`repro.db.Database` façade — the
    ``sql`` command goes straight through ``db.execute``; the SMO
    queue and write-path commands use the engine underneath."""

    def __init__(self, out=sys.stdout):
        # Size-only trigger: ratio policies would fold the delta straight
        # back into the tiny demo tables, hiding the buffering from view.
        self.delta_policy = CompactionPolicy(
            max_delta_rows=1024, max_delta_ratio=None, max_deleted_ratio=None
        )
        self.db = Database(policy=self.delta_policy)
        self.engine = self.db.engine
        self.queue: list = []
        self.out = out
        self.engine.subscribe(self._on_status)

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    def _on_status(self, event) -> None:
        millis = event.seconds * 1e3
        self._print(f"    [status] {event.step}: {event.detail} "
                    f"({millis:.2f} ms)")

    # -- commands ----------------------------------------------------------

    def cmd_tables(self) -> None:
        self._print(self.engine.catalog.describe())

    def cmd_display(self, name: str) -> None:
        pending = self.engine.pending_delta(name)
        if pending is not None:
            rows, nrows = pending.to_rows(), pending.nrows
            names = pending.schema.column_names
        else:
            table = self.engine.table(name)
            rows, nrows = table.to_rows(), table.nrows
            names = table.schema.column_names
        widths = [
            max(len(str(n)), *(len(str(row[i])) for row in rows), 1)
            if rows
            else len(str(n))
            for i, n in enumerate(names)
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        self._print(header)
        self._print("-+-".join("-" * w for w in widths))
        for row in rows[:20]:
            self._print(
                " | ".join(str(v).ljust(w) for v, w in zip(row, widths))
            )
        if nrows > 20:
            self._print(f"… ({nrows} rows total)")
        if pending is not None:
            stats = pending.delta_stats()
            self._print(
                f"(merged view: {stats.main_rows} main rows, "
                f"+{stats.delta_live} buffered, -{stats.deleted_main} deleted)"
            )

    def cmd_load(self, path: str, name: str | None = None) -> None:
        table = load_csv(path, name)
        self.engine.load_table(table)
        self._print(
            f"loaded {table.nrows} rows into {table.schema.name} "
            f"({', '.join(table.schema.column_names)})"
        )

    def cmd_add(self, smo_text: str) -> None:
        op = parse_smo(smo_text)
        op.validate(self.engine.catalog)
        self.queue.append(op)
        self._print(f"queued [{len(self.queue)}]: {op.describe()}")

    def cmd_queue(self) -> None:
        if not self.queue:
            self._print("(no queued operators)")
        for index, op in enumerate(self.queue):
            self._print(f"  {index + 1}. {op.describe()}")

    def cmd_execute(self) -> None:
        if not self.queue:
            self._print("(nothing to execute)")
            return
        self._print("Data Evolution Status:")
        for op in self.queue:
            self._print(f"  executing: {op.describe()}")
            status = self.engine.apply(op)
            counters = status.summary()
            interesting = {k: v for k, v in counters.items() if v}
            self._print(f"  done. counters: {interesting or '{}'}")
        self.queue.clear()

    def cmd_insert(self, rest: str) -> None:
        tokens = TokenStream(rest.strip())
        name = tokens.expect_ident()
        rows = [self._parse_row(tokens)]
        while tokens.punct_is(","):
            tokens.next()
            rows.append(self._parse_row(tokens))
        tokens.done()
        mutable = self.engine.mutable(name, self.delta_policy)
        count = mutable.insert_rows(rows)
        stats = mutable.delta_stats()
        self._print(
            f"buffered {count} row(s) in {name}'s delta "
            f"({stats.delta_live} pending, {stats.compactions} compactions)"
        )

    @staticmethod
    def _parse_row(tokens: TokenStream) -> tuple:
        tokens.expect_punct("(")
        values = [literal_value(*tokens.next())]
        while tokens.punct_is(","):
            tokens.next()
            values.append(literal_value(*tokens.next()))
        tokens.expect_punct(")")
        return tuple(values)

    def cmd_delete(self, rest: str) -> None:
        tokens = TokenStream(rest.strip())
        name = tokens.expect_ident()
        predicate = None
        if tokens.keyword_is("WHERE"):
            tokens.next()
            predicate = parse_predicate(tokens)
        tokens.done()
        count = self.engine.mutable(name, self.delta_policy).delete(predicate)
        self._print(f"deleted {count} row(s) from {name}")

    def cmd_compact(self, name: str) -> None:
        mutable = self.engine.delta_handle(name)
        if mutable is None or not mutable.has_pending_changes:
            self.engine.table(name)  # raises for unknown tables
            self._print(f"{name}: delta is empty, nothing to compact")
            return
        stats = mutable.delta_stats()
        table = mutable.compact()
        self._print(
            f"compacted {name}: +{stats.delta_live} buffered, "
            f"-{stats.deleted_main} deleted -> {table.nrows} rows, all WAH"
        )

    def cmd_deltastat(self, name: str = "") -> None:
        if name:
            mutable = self.engine.delta_handle(name)
            if mutable is None:
                self.engine.table(name)  # raises for unknown tables
                self._print(f"(no delta state for {name})")
                return
            stats_list = [mutable.delta_stats()]
        else:
            stats_list = self.engine.delta_stats()
        if not stats_list:
            self._print("(no tables with delta state)")
            return
        for stats in stats_list:
            self._print(
                f"{stats.table}: main={stats.main_rows} "
                f"delta=+{stats.delta_live} -{stats.deleted_main} "
                f"live={stats.live_rows} "
                f"ratio={stats.delta_ratio:.3f} "
                f"compactions={stats.compactions}"
            )
        if not name:
            # The registry's delta gauges aggregate the same
            # delta_stats() — one source of truth for both views.
            snapshot = self.db.metrics()
            self._print(
                f"totals: tables={snapshot['delta.tables']} "
                f"buffered={snapshot['delta.buffered_rows']} "
                f"live={snapshot['delta.live_rows']} "
                f"pins={snapshot['snapshot.pins_active']} "
                f"compaction_steps={snapshot['compaction.steps']}"
            )

    def cmd_explain(self, statement: str) -> None:
        """The static plan of a SELECT, via EXPLAIN (no execution)."""
        for row in self.db.execute(f"EXPLAIN {statement}"):
            operator, detail = row[0], row[1]
            self._print(f"    {operator}  {detail}")

    def cmd_stats(self, fmt: str = "") -> None:
        """Dump the metrics registry (plain, JSON lines or Prometheus
        text — the same exporters ``db.metrics(fmt)`` serves), then the
        slow-query log when one is armed."""
        fmt = fmt.strip().lower()
        if fmt in ("json", "prometheus"):
            self._print(self.db.metrics(fmt))
            return
        for name, value in sorted(self.db.metrics().items()):
            if isinstance(value, dict):  # histogram
                if value["count"]:
                    self._print(
                        f"{name}: count={value['count']} "
                        f"mean={value['mean']:.6f}s max={value['max']:.6f}s"
                    )
                else:
                    self._print(f"{name}: count=0")
            else:
                self._print(f"{name}: {value}")
        print_slow_queries(self.db.slow_query_log, self._print)

    def cmd_sql(self, statement: str) -> None:
        """One statement through the façade: SELECT prints rows, DML
        prints the affected count, SMOs print their status summary."""
        result = self.db.execute(statement)
        if result is None:
            self._print("ok")
        elif isinstance(result, int):
            self._print(f"{result} row(s) affected")
        elif isinstance(result, list):
            for row in result[:20]:
                self._print(f"    {row}")
            if len(result) > 20:
                self._print(f"… ({len(result)} rows total)")
            self._print(f"({len(result)} row(s))")
        else:  # EvolutionStatus
            counters = {k: v for k, v in result.summary().items() if v}
            self._print(f"done. counters: {counters or '{}'}")

    def cmd_history(self) -> None:
        text = self.engine.history.describe()
        self._print(text if text else "(no evolution history)")

    def cmd_example(self) -> None:
        self.engine.load_table(figure1_table())
        self._print("loaded Figure 1 table R (7 rows); try:")
        self._print(
            "  add DECOMPOSE TABLE R INTO S (Employee, Skill), "
            "T (Employee, Address)"
        )
        self._print("  execute")

    # -- loop ---------------------------------------------------------------

    def handle(self, line: str) -> bool:
        """Process one command line; returns False to quit."""
        line = line.strip()
        if not line:
            return True
        verb, _, rest = line.partition(" ")
        verb = verb.lower()
        try:
            if verb in ("quit", "exit"):
                return False
            if verb == "help":
                self._print(_HELP)
            elif verb == "tables":
                self.cmd_tables()
            elif verb == "display":
                self.cmd_display(rest.strip())
            elif verb == "load":
                parts = rest.split()
                self.cmd_load(parts[0], parts[1] if len(parts) > 1 else None)
            elif verb in ("add", "create"):
                self.cmd_add(rest if verb == "add" else rest)
            elif verb == "queue":
                self.cmd_queue()
            elif verb == "execute":
                self.cmd_execute()
            elif verb == "sql":
                self.cmd_sql(rest)
            elif verb == "insert":
                self.cmd_insert(rest)
            elif verb == "delete":
                self.cmd_delete(rest)
            elif verb == "compact":
                self.cmd_compact(rest.strip())
            elif verb == "deltastat":
                self.cmd_deltastat(rest.strip())
            elif verb == "explain":
                self.cmd_explain(rest.strip())
            elif verb == "stats":
                self.cmd_stats(rest)
            elif verb == "history":
                self.cmd_history()
            elif verb == "example":
                self.cmd_example()
            else:
                self._print(f"unknown command {verb!r}; try 'help'")
        except CodsError as exc:
            self._print(f"error: {exc}")
        except FileNotFoundError as exc:
            self._print(f"error: {exc}")
        except IndexError:
            self._print("error: missing argument; try 'help'")
        return True

    def run_example_walkthrough(self) -> None:
        """The scripted Figure 1 demo (for --example and tests)."""
        for line in (
            "example",
            "tables",
            "display R",
            "add DECOMPOSE TABLE R INTO S (Employee, Skill), "
            "T (Employee, Address)",
            "execute",
            "display S",
            "display T",
            "add MERGE TABLES S, T INTO R",
            "execute",
            "display R",
            "history",
        ):
            self._print(f"cods> {line}")
            self.handle(line)


def print_slow_queries(entries, out_line) -> None:
    """Render a slow-query log (local deque or remote list) via
    ``out_line`` — shared by the local and remote ``stats`` commands."""
    entries = list(entries)
    if not entries:
        return
    out_line(f"slow queries ({len(entries)}):")
    for entry in entries:
        out_line(
            f"  {entry['seconds'] * 1e3:8.2f} ms  {entry['statement']}"
        )


_REMOTE_HELP = """\
Commands (remote REPL over repro.client):
  sql <statement>     run one SQL or SMO statement on the server
  tables              list the server's tables
  begin [ro]          open a transaction ('ro' = read-only)
  commit / rollback   end the open transaction
  stats [fmt]         remote metrics (fmt: json | prometheus) + slow queries
  help                this text
  quit                exit\
"""


class RemoteDemoSession:
    """The REPL in client mode: the same command surface, served by a
    remote :class:`~repro.server.CodsServer` through
    :mod:`repro.client` — ``stats`` shows the *server's* registry
    (compactor counters included) and its slow-query log, so an
    operator needs no shell access to the data directory."""

    def __init__(self, connection, out=sys.stdout):
        self.connection = connection
        self.out = out

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    def cmd_sql(self, statement: str) -> None:
        result = self.connection.execute(statement)
        if result is None:
            self._print("ok")
        elif isinstance(result, int):
            self._print(f"{result} row(s) affected")
        elif isinstance(result, list):
            for row in result[:20]:
                self._print(f"    {row}")
            if len(result) > 20:
                self._print(f"… ({len(result)} rows total)")
            self._print(f"({len(result)} row(s))")
        else:  # SMO counters dict
            counters = {k: v for k, v in result.items() if v}
            self._print(f"done. counters: {counters or '{}'}")

    def cmd_stats(self, fmt: str = "") -> None:
        fmt = fmt.strip().lower()
        if fmt in ("json", "prometheus"):
            self._print(self.connection.metrics(fmt))
            return
        for name, value in sorted(self.connection.metrics().items()):
            if isinstance(value, dict):  # histogram
                if value["count"]:
                    self._print(
                        f"{name}: count={value['count']} "
                        f"mean={value['mean']:.6f}s max={value['max']:.6f}s"
                    )
                else:
                    self._print(f"{name}: count=0")
            else:
                self._print(f"{name}: {value}")
        print_slow_queries(self.connection.slow_queries(), self._print)

    def handle(self, line: str) -> bool:
        line = line.strip()
        if not line:
            return True
        verb, _, rest = line.partition(" ")
        verb = verb.lower()
        try:
            if verb in ("quit", "exit"):
                return False
            if verb == "help":
                self._print(_REMOTE_HELP)
            elif verb == "sql":
                self.cmd_sql(rest)
            elif verb == "tables":
                for name in self.connection.tables():
                    self._print(f"  {name}")
            elif verb == "begin":
                self.connection.begin(read_only=rest.strip() == "ro")
                self._print("transaction open")
            elif verb == "commit":
                self._print(f"{self.connection.commit()} row(s) committed")
            elif verb == "rollback":
                self._print(
                    f"{self.connection.rollback()} statement(s) discarded"
                )
            elif verb == "stats":
                self.cmd_stats(rest)
            else:
                self._print(f"unknown command {verb!r}; try 'help'")
        except CodsError as exc:
            self._print(f"error: {exc}")
        return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="cods-demo",
        description="CODS demonstration platform (paper Figure 4, as a CLI)",
    )
    parser.add_argument(
        "--example", action="store_true",
        help="run the built-in Figure 1 walkthrough and exit",
    )
    parser.add_argument(
        "--script", type=str, default=None,
        help="execute an SMO script file (one operator per line) and exit",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="run the network server instead of the REPL "
             "(see python -m repro.server; --data/--host/--port apply)",
    )
    parser.add_argument("--data", default=None,
                        help="catalog directory for --serve")
    parser.add_argument("--host", default=None, help="host for --serve")
    parser.add_argument("--port", type=int, default=None,
                        help="port for --serve, or with --connect")
    parser.add_argument(
        "--connect", metavar="HOST[:PORT]", default=None,
        help="REPL against a remote cods server instead of a local "
             "in-memory database",
    )
    parser.add_argument("--auth-token", default=None,
                        help="token for --serve / --connect")
    args = parser.parse_args(argv)

    if args.serve:
        from repro.server.__main__ import main as serve_main

        serve_argv = []
        if args.data is not None:
            serve_argv += ["--data", args.data]
        if args.host is not None:
            serve_argv += ["--host", args.host]
        if args.port is not None:
            serve_argv += ["--port", str(args.port)]
        if args.auth_token is not None:
            serve_argv += ["--auth-token", args.auth_token]
        return serve_main(serve_argv)

    if args.connect is not None:
        from repro.client import connect
        from repro.server import DEFAULT_PORT

        host, _, port_text = args.connect.partition(":")
        port = int(port_text) if port_text else (
            args.port if args.port is not None else DEFAULT_PORT
        )
        try:
            connection = connect(
                host or "127.0.0.1", port, auth_token=args.auth_token
            )
        except CodsError as exc:
            print(f"error: {exc}")
            return 1
        remote = RemoteDemoSession(connection)
        print(f"CODS demo — connected to {host or '127.0.0.1'}:{port} "
              f"(backend={connection.server_info['backend']}); "
              f"type 'help' for commands.")
        try:
            while True:
                try:
                    line = input("cods> ")
                except (EOFError, KeyboardInterrupt):
                    print()
                    return 0
                if not remote.handle(line):
                    return 0
        finally:
            connection.close()

    session = DemoSession()
    if args.example:
        session.run_example_walkthrough()
        return 0
    if args.script:
        with open(args.script) as handle:
            text = handle.read()
        for op in text.splitlines():
            if op.strip() and not op.strip().startswith("--"):
                session.handle(f"add {op}")
        session.handle("execute")
        session.handle("history")
        return 0

    print("CODS demo — type 'help' for commands, 'example' to begin.")
    while True:
        try:
            line = input("cods> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not session.handle(line):
            return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
