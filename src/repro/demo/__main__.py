"""``python -m repro.demo`` entry point."""

from repro.demo.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
