"""The CODS demonstration platform (CLI version of paper Figure 4)."""

from repro.demo.cli import DemoSession, figure1_table, main

__all__ = ["DemoSession", "figure1_table", "main"]
