"""Rendering benchmark results in the paper's format.

Figure 3 is a pair of line charts (time vs #distinct values, one line
per system); we render the same series as an aligned text table plus a
crude log-scale ASCII chart, and compute the headline speedup factors
for EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import defaultdict


def _format_seconds(seconds: float) -> str:
    if seconds < 1e-4:
        return f"{seconds * 1e6:8.1f}µs"
    if seconds < 0.1:
        return f"{seconds * 1e3:8.2f}ms"
    return f"{seconds:8.3f}s "


def series_table(results, title: str) -> str:
    """Aligned table: one row per series, one column per distinct count."""
    by_series: dict = defaultdict(dict)
    sweep: list[int] = []
    for result in results:
        by_series[result.series][result.distinct] = result.seconds
        if result.distinct not in sweep:
            sweep.append(result.distinct)
    sweep.sort()

    lines = [title]
    header = "series    " + "".join(f"{d:>11,}" for d in sweep)
    lines.append(header)
    lines.append("-" * len(header))
    for series, points in by_series.items():
        cells = "".join(
            _format_seconds(points[d]) if d in points else "         -"
            for d in sweep
        )
        lines.append(f"{series:<10}" + cells)
    return "\n".join(lines)


def speedup_summary(results, baseline_series=("C", "C+I", "S", "M")) -> str:
    """CODS speedup over each query-level series, min–max over the sweep."""
    by_series: dict = defaultdict(dict)
    for result in results:
        by_series[result.series][result.distinct] = result.seconds
    if "D" not in by_series:
        return "(no CODS series in results)"
    lines = []
    for series in baseline_series:
        if series not in by_series:
            continue
        ratios = [
            by_series[series][d] / by_series["D"][d]
            for d in by_series["D"]
            if d in by_series[series] and by_series["D"][d] > 0
        ]
        if ratios:
            lines.append(
                f"D vs {series}: {min(ratios):.0f}x – {max(ratios):.0f}x faster"
            )
    return "\n".join(lines)


def ascii_chart(results, width: int = 60, height: int = 12) -> str:
    """Log-log scatter of the series (x: distinct values, y: seconds)."""
    import math

    points = [
        (r.series, r.distinct, r.seconds) for r in results if r.seconds > 0
    ]
    if not points:
        return "(no data)"
    xs = [math.log10(p[1]) for p in points]
    ys = [math.log10(p[2]) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = {}
    for (series, distinct, seconds), x, y in zip(points, xs, ys):
        marker = markers.setdefault(series, series[0])
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = marker
    legend = "  ".join(f"{m}={s}" for s, m in markers.items())
    body = "\n".join("|" + "".join(row) for row in grid)
    axis = "+" + "-" * width
    return (
        f"time (log s) vs #distinct values (log)   {legend}\n{body}\n{axis}"
    )


def table1_report(rows, series=("D", "C+I", "M")) -> str:
    """Per-operator table for the Table 1 micro-benchmarks."""
    header = f"{'operator':<18}" + "".join(f"{label:>12}" for label in series)
    lines = ["Table 1 operators — evolution time per system", header,
             "-" * len(header)]
    for record in rows:
        cells = "".join(
            _format_seconds(record[label]).rjust(12)
            for label in series
        )
        lines.append(f"{record['operator']:<18}" + cells)
    return "\n".join(lines)
