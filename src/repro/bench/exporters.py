"""Exporting benchmark results for external plotting.

`series_csv` writes Figure 3-style results in long form (one row per
measured point); `table1_csv` writes the per-operator grid.  Both are
plain CSV so any plotting tool can regenerate the paper's charts.
`write_path_json` persists the write-path benchmark
(``benchmarks/bench_write_path.py``) so the update-throughput
trajectory can be tracked across revisions.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path


def series_csv(results, path) -> None:
    """Write BenchResult records as long-form CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(
            handle,
            fieldnames=[
                "figure", "series", "system", "rows", "distinct", "seconds",
            ],
        )
        writer.writeheader()
        for result in results:
            writer.writerow(result.as_row())


def table1_csv(rows, path, series=("D", "C+I", "M")) -> None:
    """Write run_table1 output as CSV (operator × system grid)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["operator", "rows", *series])
        for record in rows:
            writer.writerow(
                [record["operator"], record["rows"]]
                + [record[label] for label in series]
            )


def bench_json(payload: dict, path) -> None:
    """Write any benchmark record as indented JSON."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_bench_json(path) -> dict:
    """Read back a benchmark record written by :func:`bench_json`."""
    return json.loads(Path(path).read_text())


def write_path_json(payload: dict, path) -> None:
    """Write the write-path benchmark record as indented JSON."""
    bench_json(payload, path)


def load_write_path_json(path) -> dict:
    """Read back a write-path benchmark record."""
    return load_bench_json(path)


def snapshot_scan_json(payload: dict, path) -> None:
    """Write the snapshot-scan benchmark record
    (``benchmarks/bench_snapshot_scan.py``) as indented JSON."""
    bench_json(payload, path)


def load_snapshot_scan_json(path) -> dict:
    """Read back a snapshot-scan benchmark record."""
    return load_bench_json(path)


def session_api_json(payload: dict, path) -> None:
    """Write the session-API benchmark record
    (``benchmarks/bench_session_api.py``) as indented JSON."""
    bench_json(payload, path)


def load_session_api_json(path) -> dict:
    """Read back a session-API benchmark record."""
    return load_bench_json(path)


def vectorized_scan_json(payload: dict, path) -> None:
    """Write the vectorized-scan benchmark record
    (``benchmarks/bench_vectorized_scan.py``) as indented JSON."""
    bench_json(payload, path)


def load_vectorized_scan_json(path) -> dict:
    """Read back a vectorized-scan benchmark record."""
    return load_bench_json(path)


def obs_overhead_json(payload: dict, path) -> None:
    """Write the observability-overhead benchmark record
    (``benchmarks/bench_obs_overhead.py``) as indented JSON."""
    bench_json(payload, path)


def load_obs_overhead_json(path) -> dict:
    """Read back an observability-overhead benchmark record."""
    return load_bench_json(path)


def wal_commit_json(payload: dict, path) -> None:
    """Write the WAL commit-overhead benchmark record
    (``benchmarks/bench_wal_commit.py``) as indented JSON."""
    bench_json(payload, path)


def load_wal_commit_json(path) -> dict:
    """Read back a WAL commit-overhead benchmark record."""
    return load_bench_json(path)


def server_json(payload: dict, path) -> None:
    """Write the network-server benchmark record
    (``benchmarks/bench_server.py``) as indented JSON."""
    bench_json(payload, path)


def load_server_json(path) -> dict:
    """Read back a network-server benchmark record."""
    return load_bench_json(path)


def aggregate_json(payload: dict, path) -> None:
    """Write the compressed-domain aggregation benchmark record
    (``benchmarks/bench_aggregate.py``) as indented JSON."""
    bench_json(payload, path)


def load_aggregate_json(path) -> dict:
    """Read back an aggregation benchmark record."""
    return load_bench_json(path)


def load_series_csv(path) -> list[dict]:
    """Read back a series CSV (values re-typed)."""
    path = Path(path)
    out = []
    with path.open(newline="") as handle:
        for row in csv.DictReader(handle):
            row["rows"] = int(row["rows"])
            row["distinct"] = int(row["distinct"])
            row["seconds"] = float(row["seconds"])
            out.append(row)
    return out
