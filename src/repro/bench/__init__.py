"""Benchmark harness and reporting for the paper's evaluation."""

from repro.bench.harness import (
    BenchResult,
    bench_rows,
    run_decomposition_point,
    run_figure,
    run_mergence_point,
    run_table1,
    scaled_distinct_sweep,
)
from repro.bench.report import (
    ascii_chart,
    series_table,
    speedup_summary,
    table1_report,
)

__all__ = [
    "BenchResult",
    "ascii_chart",
    "bench_rows",
    "run_decomposition_point",
    "run_figure",
    "run_mergence_point",
    "run_table1",
    "scaled_distinct_sweep",
    "series_table",
    "speedup_summary",
    "table1_report",
]
