"""Benchmark harness: sweeps, timing and result records.

Regenerates the paper's evaluation (Figure 3a/3b) and the per-operator
Table 1 micro-benchmarks.  The paper runs 10 M rows with distinct-value
counts 100 … 1 M; scale is configurable (``CODS_BENCH_ROWS``) and the
sweep keeps the paper's distinct/rows ratios so the curve *shapes* are
comparable (see DESIGN.md §2 on faithfulness limits).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.baselines.systems import SERIES
from repro.smo.ops import (
    AddColumn,
    CopyTable,
    CreateTable,
    DecomposeTable,
    DropColumn,
    DropTable,
    MergeTables,
    PartitionTable,
    RenameColumn,
    RenameTable,
    UnionTables,
)
from repro.smo.predicate import Comparison
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.types import DataType
from repro.workload.generator import EmployeeWorkload

PAPER_ROWS = 10_000_000
PAPER_DISTINCT_SWEEP = (100, 1_000, 10_000, 100_000, 1_000_000)

DEFAULT_ROWS = 200_000

FIG3A_SERIES = ("D", "C", "C+I", "S", "M")
FIG3B_SERIES = ("D", "C", "C+I", "M")  # the paper omits S for mergence


def bench_rows() -> int:
    """Row count for benchmarks (``CODS_BENCH_ROWS`` env override)."""
    return int(os.environ.get("CODS_BENCH_ROWS", DEFAULT_ROWS))


def scaled_distinct_sweep(nrows: int) -> list[int]:
    """The paper's sweep, scaled to keep distinct/rows ratios."""
    sweep = []
    for paper_distinct in PAPER_DISTINCT_SWEEP:
        scaled = max(2, round(paper_distinct * nrows / PAPER_ROWS))
        if scaled <= nrows and scaled not in sweep:
            sweep.append(scaled)
    return sweep


@dataclass(frozen=True)
class BenchResult:
    """One measured point."""

    figure: str
    series: str
    system: str
    nrows: int
    distinct: int
    seconds: float

    def as_row(self) -> dict:
        return {
            "figure": self.figure,
            "series": self.series,
            "system": self.system,
            "rows": self.nrows,
            "distinct": self.distinct,
            "seconds": self.seconds,
        }


def run_decomposition_point(
    label: str, nrows: int, distinct: int, seed: int = 2010
) -> BenchResult:
    """One Figure 3(a) point: time DECOMPOSE on one system."""
    workload = EmployeeWorkload(nrows, distinct, seed=seed)
    system = SERIES[label]()
    system.declare_fd(workload.fd)
    system.load(workload.build())
    seconds = system.timed_apply(workload.decompose_op())
    _verify_decomposition(system, nrows, distinct)
    return BenchResult("3a", label, system.name, nrows, distinct, seconds)


def run_mergence_point(
    label: str, nrows: int, distinct: int, seed: int = 2010
) -> BenchResult:
    """One Figure 3(b) point: time MERGE (S ⋈ T -> R) on one system."""
    workload = EmployeeWorkload(nrows, distinct, seed=seed)
    left, right = workload.build_decomposed()
    system = SERIES[label]()
    system.load(left)
    system.load(right)
    seconds = system.timed_apply(workload.merge_op())
    merged = system.extract("R")
    if merged.nrows != nrows:
        raise AssertionError(
            f"{system.name}: merged {merged.nrows} rows, expected {nrows}"
        )
    return BenchResult("3b", label, system.name, nrows, distinct, seconds)


def _verify_decomposition(system, nrows: int, distinct: int) -> None:
    left = system.extract("S")
    right = system.extract("T")
    if left.nrows != nrows or right.nrows != distinct:
        raise AssertionError(
            f"{system.name}: decomposition produced {left.nrows}/"
            f"{right.nrows} rows, expected {nrows}/{distinct}"
        )


def run_figure(
    figure: str,
    nrows: int | None = None,
    series=None,
    sweep=None,
    progress=None,
) -> list[BenchResult]:
    """Run a whole figure's sweep; returns all measured points."""
    nrows = nrows or bench_rows()
    if figure == "3a":
        series = series or FIG3A_SERIES
        runner = run_decomposition_point
    elif figure == "3b":
        series = series or FIG3B_SERIES
        runner = run_mergence_point
    else:
        raise ValueError(f"unknown figure {figure!r}")
    sweep = sweep or scaled_distinct_sweep(nrows)
    results = []
    for distinct in sweep:
        for label in series:
            if progress is not None:
                progress(f"figure {figure}: {label} @ distinct={distinct}")
            results.append(runner(label, nrows, distinct))
    return results


# ---------------------------------------------------------------------------
# Table 1: per-operator micro-benchmarks (data-level vs query-level)
# ---------------------------------------------------------------------------

def table1_operator_stream(nrows: int):
    """A stream of (operator-name, setup-fn, smo) covering all 11 SMOs.

    ``setup-fn(system)`` loads whatever tables the operator needs; the
    returned SMO is then timed.
    """
    workload = EmployeeWorkload(nrows, max(2, nrows // 100), seed=99)

    def load_r(system):
        system.declare_fd(workload.fd)
        system.load(workload.build())

    def load_st(system):
        left, right = workload.build_decomposed()
        system.load(left)
        system.load(right)

    def load_two_r(system):
        table = workload.build()
        system.load(table)
        system.load(table.renamed("R2"))

    schema_new = TableSchema(
        "Fresh",
        (
            ColumnSchema("a", DataType.INT),
            ColumnSchema("b", DataType.STRING),
        ),
    )

    return [
        ("DECOMPOSE TABLE", load_r, workload.decompose_op()),
        ("MERGE TABLES", load_st, workload.merge_op()),
        ("CREATE TABLE", lambda s: None, CreateTable(schema_new)),
        ("DROP TABLE", load_r, DropTable("R")),
        ("RENAME TABLE", load_r, RenameTable("R", "Rx")),
        ("COPY TABLE", load_r, CopyTable("R", "Rcopy")),
        ("UNION TABLES", load_two_r, UnionTables("R", "R2", "Rall")),
        (
            "PARTITION TABLE",
            load_r,
            PartitionTable(
                "R", "Rt", "Rf", Comparison("Employee", "=", "emp0000000")
            ),
        ),
        (
            "ADD COLUMN",
            load_r,
            AddColumn("R", ColumnSchema("Country", DataType.STRING), "US"),
        ),
        ("DROP COLUMN", load_r, DropColumn("R", "Address")),
        ("RENAME COLUMN", load_r, RenameColumn("R", "Skill", "Expertise")),
    ]


def run_table1(
    nrows: int | None = None, series=("D", "C+I", "M"), progress=None
) -> list[dict]:
    """Time every Table 1 operator on the selected systems."""
    nrows = nrows or max(bench_rows() // 4, 1_000)
    rows = []
    for op_name, setup, smo in table1_operator_stream(nrows):
        record = {"operator": op_name, "rows": nrows}
        for label in series:
            if progress is not None:
                progress(f"table 1: {op_name} on {label}")
            system = SERIES[label]()
            setup(system)
            record[label] = system.timed_apply(smo)
        rows.append(record)
    return rows
