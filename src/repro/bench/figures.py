"""CLI entry point regenerating the paper's figures and table.

Usage::

    cods-figures --figure 3a            # Figure 3(a), default scale
    cods-figures --figure 3b --rows 1000000
    cods-figures --figure tab1
    cods-figures --figure all --out results.txt

Absolute times depend on this substrate (pure-Python/NumPy engines);
the claim under reproduction is the *shape*: data-level evolution (D)
beats every query-level series by orders of magnitude.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import bench_rows, run_figure, run_table1
from repro.bench.report import (
    ascii_chart,
    series_table,
    speedup_summary,
    table1_report,
)


def _progress(message: str) -> None:
    print(f"  … {message}", file=sys.stderr, flush=True)


def figure_text(figure: str, nrows: int) -> str:
    """Run one artifact and render its report."""
    if figure == "3a":
        results = run_figure("3a", nrows, progress=_progress)
        title = (
            f"Figure 3(a) Decomposition — {nrows:,} rows, time vs "
            "#distinct values"
        )
        return "\n\n".join(
            [
                series_table(results, title),
                ascii_chart(results),
                speedup_summary(results),
            ]
        )
    if figure == "3b":
        results = run_figure("3b", nrows, progress=_progress)
        title = (
            f"Figure 3(b) Mergence — {nrows:,} rows, time vs "
            "#distinct values"
        )
        return "\n\n".join(
            [
                series_table(results, title),
                ascii_chart(results),
                speedup_summary(results, baseline_series=("C", "C+I", "M")),
            ]
        )
    if figure == "tab1":
        rows = run_table1(progress=_progress)
        return table1_report(rows)
    raise ValueError(f"unknown figure {figure!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="cods-figures",
        description="Regenerate the CODS paper's evaluation artifacts.",
    )
    parser.add_argument(
        "--figure",
        choices=["3a", "3b", "tab1", "all"],
        default="all",
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=None,
        help=f"table size (default {bench_rows():,}; paper used 10,000,000)",
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="also write the report to this file",
    )
    args = parser.parse_args(argv)

    nrows = args.rows or bench_rows()
    figures = ["3a", "3b", "tab1"] if args.figure == "all" else [args.figure]
    sections = [figure_text(figure, nrows) for figure in figures]
    report = ("\n\n" + "=" * 72 + "\n\n").join(sections)
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
